file(REMOVE_RECURSE
  "CMakeFiles/fig13_assoc.dir/fig13_assoc.cpp.o"
  "CMakeFiles/fig13_assoc.dir/fig13_assoc.cpp.o.d"
  "fig13_assoc"
  "fig13_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
