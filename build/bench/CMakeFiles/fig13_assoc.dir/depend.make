# Empty dependencies file for fig13_assoc.
# This may be replaced when dependencies are built.
