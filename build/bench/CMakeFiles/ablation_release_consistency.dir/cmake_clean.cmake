file(REMOVE_RECURSE
  "CMakeFiles/ablation_release_consistency.dir/ablation_release_consistency.cpp.o"
  "CMakeFiles/ablation_release_consistency.dir/ablation_release_consistency.cpp.o.d"
  "ablation_release_consistency"
  "ablation_release_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_release_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
