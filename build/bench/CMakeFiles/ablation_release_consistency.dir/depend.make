# Empty dependencies file for ablation_release_consistency.
# This may be replaced when dependencies are built.
