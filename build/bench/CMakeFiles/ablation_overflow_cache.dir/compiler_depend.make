# Empty compiler generated dependencies file for ablation_overflow_cache.
# This may be replaced when dependencies are built.
