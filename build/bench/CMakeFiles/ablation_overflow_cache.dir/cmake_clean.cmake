file(REMOVE_RECURSE
  "CMakeFiles/ablation_overflow_cache.dir/ablation_overflow_cache.cpp.o"
  "CMakeFiles/ablation_overflow_cache.dir/ablation_overflow_cache.cpp.o.d"
  "ablation_overflow_cache"
  "ablation_overflow_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overflow_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
