file(REMOVE_RECURSE
  "CMakeFiles/fig07_10_schemes.dir/fig07_10_schemes.cpp.o"
  "CMakeFiles/fig07_10_schemes.dir/fig07_10_schemes.cpp.o.d"
  "fig07_10_schemes"
  "fig07_10_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_10_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
