# Empty dependencies file for fig07_10_schemes.
# This may be replaced when dependencies are built.
