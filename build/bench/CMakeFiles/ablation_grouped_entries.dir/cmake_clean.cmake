file(REMOVE_RECURSE
  "CMakeFiles/ablation_grouped_entries.dir/ablation_grouped_entries.cpp.o"
  "CMakeFiles/ablation_grouped_entries.dir/ablation_grouped_entries.cpp.o.d"
  "ablation_grouped_entries"
  "ablation_grouped_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grouped_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
