# Empty dependencies file for ablation_grouped_entries.
# This may be replaced when dependencies are built.
