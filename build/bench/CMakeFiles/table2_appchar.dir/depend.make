# Empty dependencies file for table2_appchar.
# This may be replaced when dependencies are built.
