file(REMOVE_RECURSE
  "CMakeFiles/table2_appchar.dir/table2_appchar.cpp.o"
  "CMakeFiles/table2_appchar.dir/table2_appchar.cpp.o.d"
  "table2_appchar"
  "table2_appchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_appchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
