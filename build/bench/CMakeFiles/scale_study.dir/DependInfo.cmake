
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scale_study.cpp" "bench/CMakeFiles/scale_study.dir/scale_study.cpp.o" "gcc" "bench/CMakeFiles/scale_study.dir/scale_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dircc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dircc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sci/CMakeFiles/dircc_sci.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dircc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/dircc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dircc_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dircc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/dircc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dircc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
