file(REMOVE_RECURSE
  "CMakeFiles/baseline_sci.dir/baseline_sci.cpp.o"
  "CMakeFiles/baseline_sci.dir/baseline_sci.cpp.o.d"
  "baseline_sci"
  "baseline_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
