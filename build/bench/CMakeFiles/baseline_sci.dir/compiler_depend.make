# Empty compiler generated dependencies file for baseline_sci.
# This may be replaced when dependencies are built.
