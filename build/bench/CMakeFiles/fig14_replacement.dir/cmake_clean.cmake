file(REMOVE_RECURSE
  "CMakeFiles/fig14_replacement.dir/fig14_replacement.cpp.o"
  "CMakeFiles/fig14_replacement.dir/fig14_replacement.cpp.o.d"
  "fig14_replacement"
  "fig14_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
