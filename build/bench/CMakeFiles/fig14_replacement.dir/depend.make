# Empty dependencies file for fig14_replacement.
# This may be replaced when dependencies are built.
