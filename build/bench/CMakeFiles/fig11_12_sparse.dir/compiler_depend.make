# Empty compiler generated dependencies file for fig11_12_sparse.
# This may be replaced when dependencies are built.
