file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_sparse.dir/fig11_12_sparse.cpp.o"
  "CMakeFiles/fig11_12_sparse.dir/fig11_12_sparse.cpp.o.d"
  "fig11_12_sparse"
  "fig11_12_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
