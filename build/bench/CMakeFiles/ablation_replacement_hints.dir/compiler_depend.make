# Empty compiler generated dependencies file for ablation_replacement_hints.
# This may be replaced when dependencies are built.
