file(REMOVE_RECURSE
  "CMakeFiles/ablation_replacement_hints.dir/ablation_replacement_hints.cpp.o"
  "CMakeFiles/ablation_replacement_hints.dir/ablation_replacement_hints.cpp.o.d"
  "ablation_replacement_hints"
  "ablation_replacement_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replacement_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
