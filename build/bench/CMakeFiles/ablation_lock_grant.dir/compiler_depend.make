# Empty compiler generated dependencies file for ablation_lock_grant.
# This may be replaced when dependencies are built.
