file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_grant.dir/ablation_lock_grant.cpp.o"
  "CMakeFiles/ablation_lock_grant.dir/ablation_lock_grant.cpp.o.d"
  "ablation_lock_grant"
  "ablation_lock_grant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_grant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
