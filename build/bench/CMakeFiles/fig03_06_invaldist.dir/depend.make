# Empty dependencies file for fig03_06_invaldist.
# This may be replaced when dependencies are built.
