file(REMOVE_RECURSE
  "CMakeFiles/fig03_06_invaldist.dir/fig03_06_invaldist.cpp.o"
  "CMakeFiles/fig03_06_invaldist.dir/fig03_06_invaldist.cpp.o.d"
  "fig03_06_invaldist"
  "fig03_06_invaldist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_06_invaldist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
