file(REMOVE_RECURSE
  "CMakeFiles/fig02_invalidations.dir/fig02_invalidations.cpp.o"
  "CMakeFiles/fig02_invalidations.dir/fig02_invalidations.cpp.o.d"
  "fig02_invalidations"
  "fig02_invalidations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_invalidations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
