# Empty dependencies file for fig02_invalidations.
# This may be replaced when dependencies are built.
