# Empty dependencies file for robustness_full_machine.
# This may be replaced when dependencies are built.
