file(REMOVE_RECURSE
  "CMakeFiles/robustness_full_machine.dir/robustness_full_machine.cpp.o"
  "CMakeFiles/robustness_full_machine.dir/robustness_full_machine.cpp.o.d"
  "robustness_full_machine"
  "robustness_full_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_full_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
