
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/dircc_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cli_table.cpp" "tests/CMakeFiles/dircc_tests.dir/test_cli_table.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_cli_table.cpp.o.d"
  "/root/repo/tests/test_combined.cpp" "tests/CMakeFiles/dircc_tests.dir/test_combined.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_combined.cpp.o.d"
  "/root/repo/tests/test_contention.cpp" "tests/CMakeFiles/dircc_tests.dir/test_contention.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_contention.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dircc_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_entry_bits.cpp" "tests/CMakeFiles/dircc_tests.dir/test_entry_bits.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_entry_bits.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/dircc_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_formats.cpp" "tests/CMakeFiles/dircc_tests.dir/test_formats.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_formats.cpp.o.d"
  "/root/repo/tests/test_grouped.cpp" "tests/CMakeFiles/dircc_tests.dir/test_grouped.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_grouped.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dircc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/dircc_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/dircc_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/dircc_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_release_consistency.cpp" "tests/CMakeFiles/dircc_tests.dir/test_release_consistency.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_release_consistency.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dircc_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_reproduction.cpp" "tests/CMakeFiles/dircc_tests.dir/test_reproduction.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_reproduction.cpp.o.d"
  "/root/repo/tests/test_rng_stats.cpp" "tests/CMakeFiles/dircc_tests.dir/test_rng_stats.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_rng_stats.cpp.o.d"
  "/root/repo/tests/test_sci.cpp" "tests/CMakeFiles/dircc_tests.dir/test_sci.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_sci.cpp.o.d"
  "/root/repo/tests/test_store.cpp" "tests/CMakeFiles/dircc_tests.dir/test_store.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_store.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dircc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_two_level.cpp" "tests/CMakeFiles/dircc_tests.dir/test_two_level.cpp.o" "gcc" "tests/CMakeFiles/dircc_tests.dir/test_two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dircc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dircc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sci/CMakeFiles/dircc_sci.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dircc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/dircc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dircc_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dircc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/dircc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dircc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
