# Empty dependencies file for dircc_tests.
# This may be replaced when dependencies are built.
