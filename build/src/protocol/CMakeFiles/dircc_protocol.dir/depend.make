# Empty dependencies file for dircc_protocol.
# This may be replaced when dependencies are built.
