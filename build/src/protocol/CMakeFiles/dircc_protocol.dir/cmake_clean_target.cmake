file(REMOVE_RECURSE
  "libdircc_protocol.a"
)
