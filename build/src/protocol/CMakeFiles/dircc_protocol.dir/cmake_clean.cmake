file(REMOVE_RECURSE
  "CMakeFiles/dircc_protocol.dir/system.cpp.o"
  "CMakeFiles/dircc_protocol.dir/system.cpp.o.d"
  "libdircc_protocol.a"
  "libdircc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
