file(REMOVE_RECURSE
  "libdircc_network.a"
)
