file(REMOVE_RECURSE
  "CMakeFiles/dircc_network.dir/mesh.cpp.o"
  "CMakeFiles/dircc_network.dir/mesh.cpp.o.d"
  "libdircc_network.a"
  "libdircc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
