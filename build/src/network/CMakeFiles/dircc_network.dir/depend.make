# Empty dependencies file for dircc_network.
# This may be replaced when dependencies are built.
