file(REMOVE_RECURSE
  "libdircc_model.a"
)
