
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/invalidation_model.cpp" "src/model/CMakeFiles/dircc_model.dir/invalidation_model.cpp.o" "gcc" "src/model/CMakeFiles/dircc_model.dir/invalidation_model.cpp.o.d"
  "/root/repo/src/model/storage_model.cpp" "src/model/CMakeFiles/dircc_model.dir/storage_model.cpp.o" "gcc" "src/model/CMakeFiles/dircc_model.dir/storage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dircc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dircc_directory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
