file(REMOVE_RECURSE
  "CMakeFiles/dircc_model.dir/invalidation_model.cpp.o"
  "CMakeFiles/dircc_model.dir/invalidation_model.cpp.o.d"
  "CMakeFiles/dircc_model.dir/storage_model.cpp.o"
  "CMakeFiles/dircc_model.dir/storage_model.cpp.o.d"
  "libdircc_model.a"
  "libdircc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
