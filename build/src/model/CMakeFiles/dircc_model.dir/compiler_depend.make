# Empty compiler generated dependencies file for dircc_model.
# This may be replaced when dependencies are built.
