file(REMOVE_RECURSE
  "CMakeFiles/dircc_sim.dir/engine.cpp.o"
  "CMakeFiles/dircc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dircc_sim.dir/report.cpp.o"
  "CMakeFiles/dircc_sim.dir/report.cpp.o.d"
  "libdircc_sim.a"
  "libdircc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
