file(REMOVE_RECURSE
  "libdircc_sim.a"
)
