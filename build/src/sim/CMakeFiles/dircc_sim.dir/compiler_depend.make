# Empty compiler generated dependencies file for dircc_sim.
# This may be replaced when dependencies are built.
