# Empty compiler generated dependencies file for dircc_directory.
# This may be replaced when dependencies are built.
