file(REMOVE_RECURSE
  "CMakeFiles/dircc_directory.dir/format.cpp.o"
  "CMakeFiles/dircc_directory.dir/format.cpp.o.d"
  "CMakeFiles/dircc_directory.dir/overflow_format.cpp.o"
  "CMakeFiles/dircc_directory.dir/overflow_format.cpp.o.d"
  "CMakeFiles/dircc_directory.dir/store.cpp.o"
  "CMakeFiles/dircc_directory.dir/store.cpp.o.d"
  "libdircc_directory.a"
  "libdircc_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
