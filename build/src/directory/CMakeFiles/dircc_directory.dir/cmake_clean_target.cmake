file(REMOVE_RECURSE
  "libdircc_directory.a"
)
