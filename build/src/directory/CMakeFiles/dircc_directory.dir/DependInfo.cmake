
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/directory/format.cpp" "src/directory/CMakeFiles/dircc_directory.dir/format.cpp.o" "gcc" "src/directory/CMakeFiles/dircc_directory.dir/format.cpp.o.d"
  "/root/repo/src/directory/overflow_format.cpp" "src/directory/CMakeFiles/dircc_directory.dir/overflow_format.cpp.o" "gcc" "src/directory/CMakeFiles/dircc_directory.dir/overflow_format.cpp.o.d"
  "/root/repo/src/directory/store.cpp" "src/directory/CMakeFiles/dircc_directory.dir/store.cpp.o" "gcc" "src/directory/CMakeFiles/dircc_directory.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dircc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
