file(REMOVE_RECURSE
  "CMakeFiles/dircc_cache.dir/cache.cpp.o"
  "CMakeFiles/dircc_cache.dir/cache.cpp.o.d"
  "libdircc_cache.a"
  "libdircc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
