file(REMOVE_RECURSE
  "libdircc_cache.a"
)
