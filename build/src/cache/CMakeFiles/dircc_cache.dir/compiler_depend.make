# Empty compiler generated dependencies file for dircc_cache.
# This may be replaced when dependencies are built.
