file(REMOVE_RECURSE
  "libdircc_trace.a"
)
