# Empty dependencies file for dircc_trace.
# This may be replaced when dependencies are built.
