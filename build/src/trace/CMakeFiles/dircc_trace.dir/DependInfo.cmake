
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/dircc_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/gen_dwf.cpp" "src/trace/CMakeFiles/dircc_trace.dir/gen_dwf.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/gen_dwf.cpp.o.d"
  "/root/repo/src/trace/gen_locus.cpp" "src/trace/CMakeFiles/dircc_trace.dir/gen_locus.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/gen_locus.cpp.o.d"
  "/root/repo/src/trace/gen_lu.cpp" "src/trace/CMakeFiles/dircc_trace.dir/gen_lu.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/gen_lu.cpp.o.d"
  "/root/repo/src/trace/gen_mp3d.cpp" "src/trace/CMakeFiles/dircc_trace.dir/gen_mp3d.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/gen_mp3d.cpp.o.d"
  "/root/repo/src/trace/registry.cpp" "src/trace/CMakeFiles/dircc_trace.dir/registry.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/registry.cpp.o.d"
  "/root/repo/src/trace/trace_file.cpp" "src/trace/CMakeFiles/dircc_trace.dir/trace_file.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/trace_file.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/dircc_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/dircc_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dircc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
