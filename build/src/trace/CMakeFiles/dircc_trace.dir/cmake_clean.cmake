file(REMOVE_RECURSE
  "CMakeFiles/dircc_trace.dir/event.cpp.o"
  "CMakeFiles/dircc_trace.dir/event.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/gen_dwf.cpp.o"
  "CMakeFiles/dircc_trace.dir/gen_dwf.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/gen_locus.cpp.o"
  "CMakeFiles/dircc_trace.dir/gen_locus.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/gen_lu.cpp.o"
  "CMakeFiles/dircc_trace.dir/gen_lu.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/gen_mp3d.cpp.o"
  "CMakeFiles/dircc_trace.dir/gen_mp3d.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/registry.cpp.o"
  "CMakeFiles/dircc_trace.dir/registry.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/trace_file.cpp.o"
  "CMakeFiles/dircc_trace.dir/trace_file.cpp.o.d"
  "CMakeFiles/dircc_trace.dir/validate.cpp.o"
  "CMakeFiles/dircc_trace.dir/validate.cpp.o.d"
  "libdircc_trace.a"
  "libdircc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
