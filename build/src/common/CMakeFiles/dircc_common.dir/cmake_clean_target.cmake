file(REMOVE_RECURSE
  "libdircc_common.a"
)
