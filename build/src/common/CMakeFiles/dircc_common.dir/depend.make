# Empty dependencies file for dircc_common.
# This may be replaced when dependencies are built.
