file(REMOVE_RECURSE
  "CMakeFiles/dircc_common.dir/cli.cpp.o"
  "CMakeFiles/dircc_common.dir/cli.cpp.o.d"
  "CMakeFiles/dircc_common.dir/ensure.cpp.o"
  "CMakeFiles/dircc_common.dir/ensure.cpp.o.d"
  "CMakeFiles/dircc_common.dir/stats.cpp.o"
  "CMakeFiles/dircc_common.dir/stats.cpp.o.d"
  "CMakeFiles/dircc_common.dir/table.cpp.o"
  "CMakeFiles/dircc_common.dir/table.cpp.o.d"
  "libdircc_common.a"
  "libdircc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
