# Empty compiler generated dependencies file for dircc_sci.
# This may be replaced when dependencies are built.
