file(REMOVE_RECURSE
  "libdircc_sci.a"
)
