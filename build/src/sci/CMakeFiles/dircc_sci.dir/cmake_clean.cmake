file(REMOVE_RECURSE
  "CMakeFiles/dircc_sci.dir/sci_system.cpp.o"
  "CMakeFiles/dircc_sci.dir/sci_system.cpp.o.d"
  "libdircc_sci.a"
  "libdircc_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
