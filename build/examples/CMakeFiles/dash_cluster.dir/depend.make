# Empty dependencies file for dash_cluster.
# This may be replaced when dependencies are built.
