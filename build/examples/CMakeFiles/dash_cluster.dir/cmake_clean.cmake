file(REMOVE_RECURSE
  "CMakeFiles/dash_cluster.dir/dash_cluster.cpp.o"
  "CMakeFiles/dash_cluster.dir/dash_cluster.cpp.o.d"
  "dash_cluster"
  "dash_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
