file(REMOVE_RECURSE
  "CMakeFiles/sparse_tour.dir/sparse_tour.cpp.o"
  "CMakeFiles/sparse_tour.dir/sparse_tour.cpp.o.d"
  "sparse_tour"
  "sparse_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
