# Empty compiler generated dependencies file for sparse_tour.
# This may be replaced when dependencies are built.
