# Empty compiler generated dependencies file for dircc-sim.
# This may be replaced when dependencies are built.
