file(REMOVE_RECURSE
  "CMakeFiles/dircc-sim.dir/dircc_sim.cpp.o"
  "CMakeFiles/dircc-sim.dir/dircc_sim.cpp.o.d"
  "dircc-sim"
  "dircc-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dircc-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
