#!/usr/bin/env python3
"""Documentation consistency checks.

1. Link check: every relative markdown link in every *.md file under the
   repo must point at a file (or directory) that exists.
2. Flag check: every CLI flag the docs promise must appear in the
   corresponding binary's --help output, so the flag tables cannot drift
   from the binaries again.

Usage: tools/check_docs.py [--build-dir build]
Exits nonzero listing every problem found.
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "build-nocheck", "build-noobs", ".github"}

# The fourteen flags every sweep-harness-backed binary shares (README.md
# and docs/HARNESS.md both table them).
SHARED_FLAGS = ["threads", "json", "omit-timing", "progress", "trace-out",
                "metrics", "attrib-out", "backend", "engine-threads",
                "chips", "inter-scheme", "intra-scheme",
                "inter-sparse-entries", "intra-sparse-entries"]
SWEEP_BINARIES = ["sweep_grid", "datacenter_sweep", "fig07_10_schemes",
                  "fig11_12_sparse", "fig13_assoc", "scale_study",
                  "fuzz_coherence", "hotspot_report"]

# Binary-specific flags promised by a specific document. Each flag must
# appear both in that document and in the binary's --help.
DOCUMENTED_FLAGS = {
    "sweep_grid": ("docs/HARNESS.md",
                   ["apps", "clients", "schemes", "size-factors", "assocs",
                    "policy", "procs", "cache-lines", "scale", "seed",
                    "table"]),
    "datacenter_sweep": ("docs/HARNESS.md",
                         ["workloads", "schemes", "clients", "procs",
                          "cache-lines", "scale", "seed", "mode",
                          "rss-limit-mb", "table"]),
    "fuzz_coherence": ("docs/CHECKER.md",
                       ["schemes", "faults", "sparse-entries", "seeds",
                        "seed-base", "fault-trigger", "procs", "rounds",
                        "units", "hot", "pool", "locks", "cache-lines",
                        "cache-assoc", "sparse-assoc", "l1-lines",
                        "minimize", "dump", "replay", "require-caught"]),
    # model_check is deliberately NOT in SWEEP_BINARIES: exhaustive
    # exploration is serial per cell and builds its own tiny machines, so
    # it takes none of the shared sweep flags — only its own grid knobs,
    # tabled in docs/MODELCHECK.md.
    "model_check": ("docs/MODELCHECK.md",
                    ["schemes", "stores", "chips", "faults",
                     "fault-trigger", "procs", "blocks", "layout",
                     "sparse-entries", "cache-lines", "max-states",
                     "max-depth", "dump", "require-clean",
                     "require-caught"]),
    "hotspot_report": ("docs/OBSERVABILITY.md",
                       ["workloads", "schemes", "clients", "procs",
                        "cache-lines", "scale", "seed", "top", "out"]),
    "scale_study": ("docs/HIERARCHY.md",
                    ["procs", "scale", "clusters-per-chip",
                     "sparse-factor", "curve-json"]),
    # perf_suite is deliberately NOT in SWEEP_BINARIES: it measures the
    # simulator itself and runs serially, so it has none of the shared
    # sweep flags — only its own, tabled in docs/PERFORMANCE.md.
    "perf_suite": ("docs/PERFORMANCE.md",
                   ["matrix", "reps", "scale", "seed", "out", "baseline",
                    "list", "progress", "obs-overhead", "threads-axis"]),
}

# Cross-document wiring that the link check alone cannot see: each listed
# document must contain every listed substring. Keeps the concurrency doc
# suite (docs/PARALLELISM.md) reachable from the places readers start at.
REQUIRED_MENTIONS = {
    "README.md": ["--engine-threads", "docs/PARALLELISM.md", "--chips",
                  "docs/HIERARCHY.md", "model_check",
                  "docs/MODELCHECK.md"],
    "docs/HARNESS.md": ["--engine-threads", "PARALLELISM.md", "--chips",
                        "HIERARCHY.md"],
    "docs/ARCHITECTURE.md": ["PARALLELISM.md", "sharded_engine",
                             "HIERARCHY.md", "HierTopology"],
    "docs/PERFORMANCE.md": ["--threads-axis", "PARALLELISM.md"],
    "docs/PARALLELISM.md": ["--engine-threads", "determinism",
                            "shard_queue_capacity"],
    "docs/PROTOCOL.md": ["kChip", "HIERARCHY.md"],
    "docs/CHECKER.md": ["chip-uncovered", "chip-clean-dirty",
                        "chip-sharer", "HIERARCHY.md", "MODELCHECK.md",
                        "model_check"],
    "docs/MODELCHECK.md": ["guarded", "deadlock", "--require-clean",
                           "--require-caught", "fuzz_coherence --replay",
                           "CHECKER.md"],
    "docs/HIERARCHY.md": ["--chips", "--inter-scheme", "--intra-scheme",
                          "kChipRequest", "DirectoryLevel", "gateway",
                          "chip-uncovered", "chip-clean-dirty",
                          "check_scale_curve.py", "Dir0B"],
    "EXPERIMENTS.md": ["docs/HIERARCHY.md", "--curve-json",
                       "check_scale_curve.py"],
}


def md_files():
    for path in sorted(REPO.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_links():
    errors = []
    for path in md_files():
        text = path.read_text(encoding="utf-8")
        # Drop fenced code blocks: links there are illustrative.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO)}: broken link "
                              f"-> {match.group(1)}")
    return errors


def check_mentions():
    errors = []
    for doc, needles in REQUIRED_MENTIONS.items():
        path = REPO / doc
        if not path.exists():
            errors.append(f"{doc}: required document is missing")
            continue
        text = path.read_text(encoding="utf-8")
        for needle in needles:
            if needle not in text:
                errors.append(f"{doc}: expected to mention '{needle}'")
    return errors


def help_text(build_dir, binary):
    exe = build_dir / "bench" / binary
    if not exe.exists():
        return None
    out = subprocess.run([str(exe), "--help"], capture_output=True,
                         text=True)
    return out.stdout + out.stderr


def check_flags(build_dir):
    errors = []
    helps = {}
    for binary in SWEEP_BINARIES:
        text = help_text(build_dir, binary)
        if text is None:
            errors.append(f"{binary}: not built under {build_dir}/bench")
            continue
        helps[binary] = text
        for flag in SHARED_FLAGS:
            if f"--{flag}" not in text:
                errors.append(f"{binary}: documented shared flag --{flag} "
                              "missing from --help")
    for binary, (doc, flags) in DOCUMENTED_FLAGS.items():
        if binary not in helps:
            text = help_text(build_dir, binary)
            if text is None:
                errors.append(f"{binary}: not built under "
                              f"{build_dir}/bench")
            else:
                helps[binary] = text
        doc_text = (REPO / doc).read_text(encoding="utf-8")
        for flag in flags:
            if f"--{flag}" not in doc_text:
                errors.append(f"{doc}: expected to document --{flag} "
                              f"of {binary}")
            if binary in helps and f"--{flag}" not in helps[binary]:
                errors.append(f"{binary}: documented flag --{flag} "
                              "missing from --help")
    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--links-only", action="store_true",
                        help="skip the flag-vs---help checks")
    args = parser.parse_args()

    errors = check_links() + check_mentions()
    if not args.links_only:
        errors += check_flags(REPO / args.build_dir)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, required mentions present, "
          "documented flags match --help")
    return 0


if __name__ == "__main__":
    sys.exit(main())
