#!/usr/bin/env python3
"""Schema check for scale_study's --curve-json artifact.

Validates the machine-readable scaling curve (docs/HIERARCHY.md) that the
CI hierarchy-smoke job publishes: the document shape, the per-point
geometry (procs = clusters x packing, chips dividing clusters), the three
organizations present at every size, and the cross-organization storage
ordering (flat full map > two-level > directoryless at zero bits).

Usage: tools/check_scale_curve.py curve.json
Exits nonzero listing every problem found.
"""

import json
import pathlib
import sys

ORGS = ("flat-full", "two-level", "dls")

ORG_COUNTERS = ("directory_bits", "messages", "exec_cycles")


def err(errors, point, msg):
    errors.append(f"point procs={point}: {msg}" if point else msg)


def check_org(errors, procs, name, org):
    if not isinstance(org, dict):
        err(errors, procs, f"{name}: not an object")
        return
    for field in ORG_COUNTERS:
        value = org.get(field)
        if not isinstance(value, int) or value < 0:
            err(errors, procs,
                f"{name}.{field}: expected a non-negative integer, "
                f"got {value!r}")
    for field in ("overhead_fraction", "mean_invals"):
        value = org.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            err(errors, procs,
                f"{name}.{field}: expected a non-negative number, "
                f"got {value!r}")
    if isinstance(org.get("messages"), int) and org["messages"] <= 0:
        err(errors, procs, f"{name}.messages: simulated run produced "
            "no messages")
    if name == "two-level":
        for field in ("inter_bits", "intra_bits", "chip_messages",
                      "chip_local_transactions"):
            value = org.get(field)
            if not isinstance(value, int) or value < 0:
                err(errors, procs,
                    f"two-level.{field}: expected a non-negative "
                    f"integer, got {value!r}")
        if (isinstance(org.get("inter_bits"), int)
                and isinstance(org.get("intra_bits"), int)
                and isinstance(org.get("directory_bits"), int)
                and org["inter_bits"] + org["intra_bits"]
                != org["directory_bits"]):
            err(errors, procs, "two-level: inter_bits + intra_bits != "
                "directory_bits")
        if (isinstance(org.get("chip_messages"), int)
                and isinstance(org.get("messages"), int)
                and org["chip_messages"] > org["messages"]):
            err(errors, procs, "two-level: chip_messages exceeds total "
                "messages")


def check_point(errors, point):
    if not isinstance(point, dict):
        err(errors, None, "points[]: entry is not an object")
        return None
    procs = point.get("procs")
    for field in ("procs", "procs_per_cluster", "clusters", "chips"):
        value = point.get(field)
        if not isinstance(value, int) or value < 1:
            err(errors, procs,
                f"{field}: expected a positive integer, got {value!r}")
            return procs
    if point["procs"] != point["clusters"] * point["procs_per_cluster"]:
        err(errors, procs, "procs != clusters * procs_per_cluster")
    if point["chips"] < 2:
        err(errors, procs, "chips < 2: the two-level point is degenerate")
    if point["clusters"] % point["chips"] != 0:
        err(errors, procs, "chips does not divide clusters")
    orgs = point.get("organizations")
    if not isinstance(orgs, dict) or sorted(orgs) != sorted(ORGS):
        err(errors, procs,
            f"organizations: expected exactly {list(ORGS)}, got "
            f"{sorted(orgs) if isinstance(orgs, dict) else orgs!r}")
        return procs
    for name in ORGS:
        check_org(errors, procs, name, orgs[name])
    # The study's storage claim, enforced end to end: the flat full map
    # pays the most, the hierarchy strictly less, broadcast nothing.
    bits = {name: orgs[name].get("directory_bits") for name in ORGS}
    if all(isinstance(b, int) for b in bits.values()):
        if not bits["flat-full"] > bits["two-level"] > bits["dls"] == 0:
            err(errors, procs,
                "storage ordering violated: expected flat-full > "
                f"two-level > dls == 0, got {bits}")
    return procs


def check_curve(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level: expected a JSON object"]
    if doc.get("study") != "scale_hierarchy":
        err(errors, None,
            f"study: expected 'scale_hierarchy', got {doc.get('study')!r}")
    if doc.get("backend") not in ("analytic", "queued"):
        err(errors, None,
            f"backend: expected 'analytic' or 'queued', got "
            f"{doc.get('backend')!r}")
    if not isinstance(doc.get("app"), str) or not doc.get("app"):
        err(errors, None, f"app: expected a name, got {doc.get('app')!r}")
    if not isinstance(doc.get("block_size"), int) or doc["block_size"] < 1:
        err(errors, None, "block_size: expected a positive integer")
    scale = doc.get("scale")
    if not isinstance(scale, (int, float)) or not 0 < scale <= 1:
        err(errors, None, f"scale: expected a number in (0, 1], got "
            f"{scale!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        err(errors, None, "points: expected a non-empty array")
        return errors
    sizes = []
    for point in points:
        procs = check_point(errors, point)
        if isinstance(procs, int):
            sizes.append(procs)
    if sizes != sorted(sizes) or len(set(sizes)) != len(sizes):
        err(errors, None,
            f"points: sizes must be strictly increasing, got {sizes}")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = pathlib.Path(sys.argv[1])
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        return 1
    errors = check_curve(doc)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} problem(s) found", file=sys.stderr)
        return 1
    print(f"{path}: scaling curve OK "
          f"({len(doc['points'])} points, backend {doc['backend']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
