// Quickstart: simulate one application on a 32-cluster DASH-style machine
// under the coarse vector scheme (Dir3CV2) and print what happened.
//
//   $ ./quickstart
//
// Walks through the three steps every dircc study takes:
//   1. configure a machine (SystemConfig -> CoherenceSystem),
//   2. generate or load a reference trace (ProgramTrace),
//   3. replay the trace through the event-driven engine and read the stats.
#include <iostream>

#include "common/table.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace dircc;

  // 1. A 32-processor machine, one processor per cluster (the paper's
  //    simulation setup), 16-byte blocks, Dir3CV2 directories.
  SystemConfig config;
  config.num_procs = 32;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 1024;  // 16 KB of 16 B lines
  config.cache_assoc = 4;
  config.block_size = 16;
  config.scheme = SchemeConfig::coarse(/*nodes=*/32, /*pointers=*/3,
                                       /*region=*/2);
  CoherenceSystem system(config);

  // 2. A scaled-down MP3D run: 32 processors pushing particles through a
  //    shared space grid (migratory sharing).
  ProgramTrace trace = generate_app(AppKind::kMp3d, config.num_procs,
                                    config.block_size, /*seed=*/1,
                                    /*scale=*/0.25);
  std::cout << "Generated " << trace.app_name << " trace: "
            << fmt_count(trace.total_events()) << " events across "
            << trace.num_procs() << " processors\n";

  // 3. Replay and report.
  Engine engine(system, trace);
  const RunResult result = engine.run();

  std::cout << "Scheme " << system.format().name() << " finished in "
            << fmt_count(result.exec_cycles) << " cycles\n\n";

  TextTable table;
  table.header({"metric", "count"});
  const MessageCounters& msgs = result.protocol.messages;
  table.row({"requests (incl. writebacks)",
             fmt_count(msgs.requests_with_writebacks())});
  table.row({"replies", fmt_count(msgs.get(MsgClass::kReply))});
  table.row({"invalidations + acks", fmt_count(msgs.inv_plus_ack())});
  table.row({"extraneous invalidations",
             fmt_count(result.protocol.extraneous_invalidations)});
  table.row({"invalidation events",
             fmt_count(result.protocol.inval_distribution.events())});
  table.row({"mean invals per event",
             fmt(result.protocol.inval_distribution.mean(), 2)});
  table.row({"lock acquires", fmt_count(result.sync.lock_acquires)});
  table.row({"barrier episodes", fmt_count(result.sync.barrier_episodes)});
  table.print(std::cout);
  return 0;
}
