// dircc_sim: general-purpose command-line simulator driver.
//
// Runs any built-in application (or a trace file captured with the library)
// on any machine/scheme/sparse configuration and prints a full report —
// the tool a downstream user reaches for before scripting the C++ API.
//
//   $ ./dircc_sim --app locus --scheme cv --pointers 3 --region 2
//   $ ./dircc_sim --app lu --sparse --size-factor 1 --policy lru
//   $ ./dircc_sim --trace my.trc --scheme full
//   $ ./dircc_sim --app mp3d --sci            # linked-list baseline
//   $ ./dircc_sim --app mp3d --rc --l1-lines 64 --json out.json
//   $ ./dircc_sim --help
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "protocol/system.hpp"
#include "sci/sci_system.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "trace/generators.hpp"
#include "trace/trace_file.hpp"
#include "trace/validate.hpp"

namespace {

using namespace dircc;

bool pick_app(const std::string& name, AppKind& app) {
  if (name == "lu") {
    app = AppKind::kLu;
  } else if (name == "dwf") {
    app = AppKind::kDwf;
  } else if (name == "mp3d") {
    app = AppKind::kMp3d;
  } else if (name == "locus") {
    app = AppKind::kLocusRoute;
  } else {
    return false;
  }
  return true;
}

bool pick_scheme(const std::string& name, int nodes, int pointers, int region,
                 SchemeConfig& scheme) {
  if (name == "full") {
    scheme = SchemeConfig::full(nodes);
  } else if (name == "cv") {
    scheme = SchemeConfig::coarse(nodes, pointers, region);
  } else if (name == "b") {
    scheme = SchemeConfig::broadcast(nodes, pointers);
  } else if (name == "nb") {
    scheme = SchemeConfig::no_broadcast(nodes, pointers);
  } else if (name == "x") {
    scheme = SchemeConfig::superset(nodes, pointers < 2 ? 2 : pointers);
  } else {
    return false;
  }
  return true;
}

bool pick_policy(const std::string& name, ReplPolicy& policy) {
  if (name == "lru") {
    policy = ReplPolicy::kLru;
  } else if (name == "random") {
    policy = ReplPolicy::kRandom;
  } else if (name == "lra") {
    policy = ReplPolicy::kLra;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int run_main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("app", "mp3d", "workload: lu | dwf | mp3d | locus");
  cli.add_option("trace", "", "replay a trace file instead of --app");
  cli.add_option("scale", "0.5", "workload scale factor (0, 1]");
  cli.add_option("procs", "32", "processor count");
  cli.add_option("cluster", "1", "processors per cluster");
  cli.add_option("scheme", "cv", "directory scheme: full | cv | b | nb | x");
  cli.add_option("pointers", "3", "pointers per entry (limited schemes)");
  cli.add_option("region", "2", "coarse-vector region size");
  cli.add_option("cache-lines", "1024", "cache lines per processor");
  cli.add_option("cache-assoc", "4", "cache associativity");
  cli.add_flag("sparse", "use a sparse directory");
  cli.add_option("size-factor", "1", "sparse entries / total cache lines");
  cli.add_option("sparse-assoc", "4", "sparse directory associativity");
  cli.add_option("policy", "random", "sparse replacement: lru|random|lra");
  cli.add_option("per-hop", "0", "extra cycles per mesh hop");
  cli.add_option("seed", "1990", "workload seed");
  cli.add_option("save-trace", "", "write the generated trace to a file");
  cli.add_option("l1-lines", "0", "first-level cache lines (0 = one level)");
  cli.add_option("group", "1", "blocks sharing one wide directory entry");
  cli.add_flag("hints", "send replacement hints for displaced shared lines");
  cli.add_flag("rc", "release-consistency write buffering");
  cli.add_flag("contention", "model home-directory occupancy queueing");
  cli.add_flag("sci", "use the SCI linked-list directory instead");
  cli.add_option("json", "", "append a machine-readable report to a file");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("dircc_sim");
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("dircc_sim");
    return 0;
  }

  const int procs = static_cast<int>(cli.get_int("procs"));
  const int per_cluster = static_cast<int>(cli.get_int("cluster"));
  if (procs < 1 || per_cluster < 1 || procs % per_cluster != 0) {
    std::cerr << "invalid --procs/--cluster combination\n";
    return 1;
  }
  const int clusters = procs / per_cluster;

  SchemeConfig scheme;
  if (!pick_scheme(cli.get("scheme"), clusters,
                   static_cast<int>(cli.get_int("pointers")),
                   static_cast<int>(cli.get_int("region")), scheme)) {
    std::cerr << "unknown --scheme " << cli.get("scheme") << "\n";
    return 1;
  }

  ProgramTrace trace;
  if (!cli.get("trace").empty()) {
    if (!load_trace(cli.get("trace"), trace)) {
      std::cerr << "failed to load trace " << cli.get("trace") << "\n";
      return 1;
    }
    if (trace.num_procs() != procs) {
      std::cerr << "trace has " << trace.num_procs()
                << " processors; pass --procs " << trace.num_procs() << "\n";
      return 1;
    }
  } else {
    AppKind app;
    if (!pick_app(cli.get("app"), app)) {
      std::cerr << "unknown --app " << cli.get("app") << "\n";
      return 1;
    }
    trace = generate_app(app, procs, 16,
                         static_cast<std::uint64_t>(cli.get_int("seed")),
                         cli.get_double("scale"));
  }
  std::string trace_error;
  if (!validate_trace(trace, &trace_error)) {
    std::cerr << "trace is malformed: " << trace_error << "\n";
    return 1;
  }
  if (!cli.get("save-trace").empty() &&
      !save_trace(cli.get("save-trace"), trace)) {
    std::cerr << "failed to save trace to " << cli.get("save-trace") << "\n";
    return 1;
  }

  EngineConfig engine_config;
  engine_config.release_consistency = cli.get_flag("rc");

  if (cli.get_flag("sci")) {
    if (per_cluster != 1) {
      std::cerr << "--sci models one processor per cluster\n";
      return 1;
    }
    SciConfig sci_config;
    sci_config.num_procs = procs;
    sci_config.cache_lines_per_proc =
        static_cast<std::uint64_t>(cli.get_int("cache-lines"));
    sci_config.cache_assoc = static_cast<int>(cli.get_int("cache-assoc"));
    sci_config.block_size = trace.block_size;
    SciSystem system(sci_config);
    Engine engine(system, trace, engine_config);
    const RunResult result = engine.run();
    std::cout << "workload " << trace.app_name << " ("
              << fmt_count(trace.total_events())
              << " events) on SCI linked-list directory, " << procs
              << " processors\n\n";
    TextTable table;
    table.header({"metric", "value"});
    table.row({"execution cycles", fmt_count(result.exec_cycles)});
    table.row({"total messages", fmt_count(result.total_messages().total())});
    table.row({"invalidations + acks",
               fmt_count(result.total_messages().inv_plus_ack())});
    table.row({"serialized purge cycles",
               fmt_count(system.sci_stats().serialized_cycles)});
    table.row({"unlink operations",
               fmt_count(system.sci_stats().unlink_operations)});
    table.print(std::cout);
    if (!cli.get("json").empty()) {
      RunReport report(trace.app_name, result);
      report.add_field("organization", std::string("sci"));
      std::ofstream out(cli.get("json"), std::ios::app);
      report.write_json(out);
      out << '\n';
    }
    return 0;
  }

  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = per_cluster;
  config.cache_lines_per_proc =
      static_cast<std::uint64_t>(cli.get_int("cache-lines"));
  config.cache_assoc = static_cast<int>(cli.get_int("cache-assoc"));
  config.block_size = trace.block_size;
  config.scheme = scheme;
  config.latency.per_hop =
      static_cast<Cycle>(cli.get_int("per-hop"));
  config.l1_lines_per_proc =
      static_cast<std::uint64_t>(cli.get_int("l1-lines"));
  config.blocks_per_group = static_cast<int>(cli.get_int("group"));
  config.replacement_hints = cli.get_flag("hints");
  config.model_contention = cli.get_flag("contention");
  if (cli.get_flag("sparse")) {
    ReplPolicy policy;
    if (!pick_policy(cli.get("policy"), policy)) {
      std::cerr << "unknown --policy " << cli.get("policy") << "\n";
      return 1;
    }
    const std::uint64_t total_lines =
        config.cache_lines_per_proc * static_cast<std::uint64_t>(procs);
    const auto assoc =
        static_cast<std::uint64_t>(cli.get_int("sparse-assoc"));
    std::uint64_t per_home = total_lines *
                             static_cast<std::uint64_t>(
                                 cli.get_int("size-factor")) /
                             static_cast<std::uint64_t>(clusters);
    per_home = ceil_div(per_home, assoc) * assoc;
    config.store.sparse = true;
    config.store.sparse_entries = per_home;
    config.store.sparse_assoc = static_cast<int>(assoc);
    config.store.policy = policy;
  }

  CoherenceSystem system(config);
  Engine engine(system, trace, engine_config);
  const RunResult result = engine.run();

  if (!cli.get("json").empty()) {
    RunReport report(trace.app_name, result);
    report.add_field("organization", system.format().name());
    std::ofstream out(cli.get("json"), std::ios::app);
    report.write_json(out);
    out << '\n';
  }

  std::cout << "workload " << trace.app_name << " ("
            << fmt_count(trace.total_events()) << " events) on "
            << clusters << " clusters x " << per_cluster << " procs, scheme "
            << system.format().name()
            << (config.store.sparse ? " (sparse)" : "") << "\n\n";
  TextTable table;
  table.header({"metric", "value"});
  table.row({"execution cycles", fmt_count(result.exec_cycles)});
  const MessageCounters total = result.total_messages();
  table.row({"requests (incl. writebacks)",
             fmt_count(total.requests_with_writebacks())});
  table.row({"replies", fmt_count(total.get(MsgClass::kReply))});
  table.row({"invalidations + acks", fmt_count(total.inv_plus_ack())});
  table.row({"total messages", fmt_count(total.total())});
  table.row({"extraneous invalidations",
             fmt_count(result.protocol.extraneous_invalidations)});
  table.row({"invalidation events",
             fmt_count(result.protocol.inval_distribution.events())});
  table.row({"mean invals/event",
             fmt(result.protocol.inval_distribution.mean(), 2)});
  table.row({"ownership transfers",
             fmt_count(result.protocol.ownership_transfers)});
  table.row({"sparse replacements",
             fmt_count(result.protocol.sparse_replacements)});
  table.row({"cache read hit rate",
             fmt(100.0 * static_cast<double>(result.cache.read_hits) /
                     static_cast<double>(result.cache.read_hits +
                                         result.cache.read_misses + 1),
                 1) +
                 "%"});
  table.row({"lock acquires", fmt_count(result.sync.lock_acquires)});
  table.row({"barrier episodes", fmt_count(result.sync.barrier_episodes)});
  table.print(std::cout);
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
