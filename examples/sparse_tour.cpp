// sparse_tour: a guided tour of sparse directories (Section 4.2).
//
// Shows, on a live system, (1) how little of a conventional directory is
// ever occupied, (2) what a sparse directory's replacements cost, and
// (3) how size factor, associativity and replacement policy trade off.
//
//   $ ./sparse_tour
#include <iostream>

#include "common/table.hpp"
#include "model/storage_model.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace {

using namespace dircc;

SystemConfig base_config() {
  SystemConfig config;
  config.num_procs = 32;
  config.cache_lines_per_proc = 96;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(32);
  return config;
}

}  // namespace

int main() {
  using namespace dircc;

  const ProgramTrace trace = generate_app(AppKind::kMp3d, 32, 16, 3, 0.5);
  const TraceCharacteristics chars = characterize(trace);

  // Step 1: how sparse is directory occupancy, really?
  {
    SystemConfig config = base_config();
    CoherenceSystem system(config);
    Engine engine(system, trace);
    engine.run();
    std::uint64_t live = 0;
    for (NodeId h = 0; h < 32; ++h) {
      live += system.directory(h).live_entries();
    }
    const std::uint64_t total_cache_lines =
        config.cache_lines_per_proc * 32;
    std::cout << "Step 1 - occupancy: the run touched "
              << fmt_count(chars.distinct_blocks) << " distinct blocks, but "
              << "only " << fmt_count(live)
              << " directory entries are live at the end\n"
              << "         (total cache capacity: "
              << fmt_count(total_cache_lines)
              << " lines - live entries can never stay above cached+stale "
                 "blocks).\n"
              << "         A conventional directory sized for all of main "
                 "memory would waste almost all of its entries.\n\n";
  }

  // Step 2: a sparse directory the size of the caches.
  std::cout << "Step 2 - sparse directories at different size factors "
               "(entries = factor x total cache lines):\n\n";
  TextTable table;
  table.header({"size factor", "entries/home", "exec cycles", "total msgs",
                "replacements", "repl invals"});
  for (int size_factor : {1, 2, 4}) {
    SystemConfig config = base_config();
    config.store.sparse = true;
    config.store.sparse_entries =
        config.cache_lines_per_proc * static_cast<std::uint64_t>(size_factor);
    config.store.sparse_assoc = 4;
    config.store.policy = ReplPolicy::kRandom;
    CoherenceSystem system(config);
    Engine engine(system, trace);
    const RunResult result = engine.run();
    table.row({std::to_string(size_factor),
               fmt_count(config.store.sparse_entries),
               fmt_count(result.exec_cycles),
               fmt_count(result.protocol.messages.total()),
               fmt_count(result.protocol.sparse_replacements),
               fmt_count(result.protocol.sparse_replacement_invals)});
  }
  table.print(std::cout);

  // Step 3: the storage this buys, in Table 1 terms.
  MachineModel model;
  model.processors = 32 * 4;
  model.procs_per_cluster = 4;
  model.scheme = SchemeConfig::full(32);
  model.sparsity = 64;
  std::cout << "\nStep 3 - storage: on a 128-processor machine with 16 MB "
               "memory per processor,\n         a sparsity-64 full-vector "
               "directory needs "
            << model.bits_per_entry() << " bits per entry and saves "
            << fmt(model.savings_vs_full_bit_vector(), 1)
            << "x over the conventional organization.\n";
  return 0;
}
