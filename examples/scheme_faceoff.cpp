// scheme_faceoff: run one application across every directory scheme the
// library implements — including the superset scheme Dir3X that the paper
// analyzes only analytically — and compare traffic, invalidation behaviour
// and storage cost side by side.
//
//   $ ./scheme_faceoff [lu|dwf|mp3d|locus]   (default: locus)
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "model/storage_model.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

int main(int argc, char** argv) {
  using namespace dircc;

  AppKind app = AppKind::kLocusRoute;
  if (argc > 1) {
    if (std::strcmp(argv[1], "lu") == 0) {
      app = AppKind::kLu;
    } else if (std::strcmp(argv[1], "dwf") == 0) {
      app = AppKind::kDwf;
    } else if (std::strcmp(argv[1], "mp3d") == 0) {
      app = AppKind::kMp3d;
    } else if (std::strcmp(argv[1], "locus") != 0) {
      std::cerr << "usage: scheme_faceoff [lu|dwf|mp3d|locus]\n";
      return 1;
    }
  }

  constexpr int kProcs = 32;
  const ProgramTrace trace = generate_app(app, kProcs, 16, 7, 0.5);
  std::cout << "Scheme face-off on " << trace.app_name << " ("
            << fmt_count(trace.total_events()) << " events, " << kProcs
            << " processors)\n\n";

  const SchemeConfig schemes[] = {
      SchemeConfig::full(kProcs),
      SchemeConfig::coarse(kProcs, 3, 2),
      SchemeConfig::broadcast(kProcs, 3),
      SchemeConfig::no_broadcast(kProcs, 3),
      SchemeConfig::superset(kProcs, 3),
  };

  TextTable table;
  table.header({"scheme", "state bits", "exec cycles", "total msgs",
                "inv+ack", "extraneous", "mean invals/event"});
  for (const SchemeConfig& scheme : schemes) {
    SystemConfig config;
    config.num_procs = kProcs;
    config.cache_lines_per_proc = 1024;
    config.cache_assoc = 4;
    config.scheme = scheme;
    CoherenceSystem system(config);
    Engine engine(system, trace);
    const RunResult result = engine.run();
    table.row({system.format().name(),
               std::to_string(system.format().state_bits()),
               fmt_count(result.exec_cycles),
               fmt_count(result.protocol.messages.total()),
               fmt_count(result.protocol.messages.inv_plus_ack()),
               fmt_count(result.protocol.extraneous_invalidations),
               fmt(result.protocol.inval_distribution.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nLower is better everywhere except state bits, where the\n"
               "full vector pays "
            << kProcs << " bits/entry for its zero extraneous "
               "invalidations.\n";
  return 0;
}
