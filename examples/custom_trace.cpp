// custom_trace: author a reference trace directly against the trace API,
// validate it, round-trip it through the binary file format, and replay it.
//
// The workload is the textbook false-sharing demo: two processors
// ping-pong writes on the *same* block, then the fixed version where each
// writes its own block — the directory traffic difference is the point.
//
//   $ ./custom_trace
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/trace_file.hpp"
#include "trace/validate.hpp"

namespace {

using namespace dircc;

ProgramTrace make_trace(bool false_sharing) {
  ProgramTrace trace;
  trace.app_name = false_sharing ? "false-sharing" : "padded";
  trace.block_size = 16;
  trace.per_proc.resize(2);
  // Two counters: in the false-sharing variant they sit in one block; in
  // the padded variant each gets its own.
  const Addr counter0 = 0;
  const Addr counter1 = false_sharing ? 8 : 16;
  for (int round = 0; round < 2000; ++round) {
    trace.per_proc[0].push_back(TraceEvent::read(counter0));
    trace.per_proc[0].push_back(TraceEvent::write(counter0));
    trace.per_proc[0].push_back(TraceEvent::think(5));
    trace.per_proc[1].push_back(TraceEvent::read(counter1));
    trace.per_proc[1].push_back(TraceEvent::write(counter1));
    trace.per_proc[1].push_back(TraceEvent::think(5));
  }
  // A closing barrier keeps both processors' lifetimes aligned.
  trace.per_proc[0].push_back(TraceEvent::barrier(0));
  trace.per_proc[1].push_back(TraceEvent::barrier(0));
  return trace;
}

RunResult replay(const ProgramTrace& trace) {
  SystemConfig config;
  config.num_procs = 2;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(2);
  CoherenceSystem system(config);
  Engine engine(system, trace);
  return engine.run();
}

}  // namespace

int main() {
  TextTable table;
  table.header({"variant", "exec cycles", "total msgs",
                "ownership transfers"});
  for (const bool false_sharing : {true, false}) {
    ProgramTrace trace = make_trace(false_sharing);

    // Validate, save, reload — the same path an externally captured trace
    // would take.
    std::string error;
    if (!validate_trace(trace, &error)) {
      std::cerr << "trace invalid: " << error << "\n";
      return 1;
    }
    const std::string path = "/tmp/dircc_custom_" + trace.app_name + ".trc";
    if (!save_trace(path, trace)) {
      std::cerr << "could not write " << path << "\n";
      return 1;
    }
    ProgramTrace loaded;
    if (!load_trace(path, loaded)) {
      std::cerr << "could not reload " << path << "\n";
      return 1;
    }
    std::remove(path.c_str());

    const RunResult result = replay(loaded);
    table.row({loaded.app_name, fmt_count(result.exec_cycles),
               fmt_count(result.total_messages().total()),
               fmt_count(result.protocol.ownership_transfers)});
  }
  table.print(std::cout);
  std::cout << "\nThe false-sharing variant ping-pongs ownership of one "
               "block on every round;\npadding the counters to separate "
               "blocks removes nearly all coherence traffic.\n";
  return 0;
}
