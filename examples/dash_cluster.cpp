// dash_cluster: simulate the actual DASH prototype shape — 64 processors
// arranged as 16 clusters of 4, full bit vector over clusters, snoopy bus
// inside each cluster, 2-D mesh between clusters with distance-sensitive
// latencies — and show how much work the cluster bus absorbs.
//
//   $ ./dash_cluster
#include <iostream>

#include "common/table.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace dircc;

  constexpr int kProcs = 64;
  constexpr int kProcsPerCluster = 4;
  constexpr int kClusters = kProcs / kProcsPerCluster;

  const ProgramTrace trace = generate_app(AppKind::kMp3d, kProcs, 16, 5, 0.4);
  std::cout << "DASH prototype shape: " << kProcs << " processors = "
            << kClusters << " clusters x " << kProcsPerCluster
            << ", full bit vector over clusters (Dir" << kClusters << ")\n"
            << "Trace: " << trace.app_name << ", "
            << fmt_count(trace.total_events()) << " events\n\n";

  TextTable table;
  table.header({"configuration", "exec cycles", "total msgs",
                "bus-local txns", "2-cluster", "3-cluster"});
  for (const bool mesh_latency : {false, true}) {
    SystemConfig config;
    config.num_procs = kProcs;
    config.procs_per_cluster = kProcsPerCluster;
    config.cache_lines_per_proc = 512;
    config.cache_assoc = 4;
    config.scheme = SchemeConfig::full(kClusters);
    if (mesh_latency) {
      config.latency.per_hop = 4;  // wormhole hop cost on the 4x4 mesh
    }
    CoherenceSystem system(config);
    Engine engine(system, trace);
    const RunResult result = engine.run();
    table.row({mesh_latency ? "flat remote latency + 4 cyc/mesh-hop"
                            : "flat remote latency (paper model)",
               fmt_count(result.exec_cycles),
               fmt_count(result.protocol.messages.total()),
               fmt_count(result.protocol.local_transactions),
               fmt_count(result.protocol.remote2_transactions),
               fmt_count(result.protocol.remote3_transactions)});
  }
  table.print(std::cout);
  std::cout << "\nBus-local transactions (intra-cluster snoops and "
               "home-local accesses)\ncost no network messages at all - "
               "that locality is why DASH clusters four\nprocessors per "
               "directory.\n";
  return 0;
}
