// TraceRecorder: structured per-event timeline of one simulation run.
//
// The engine and the directory layer emit timestamped events — processor
// stall/resume spans, barrier episodes, lock queue/grant/retry, invalidation
// fan-out, sparse-entry victimization, limited-pointer overflow transitions —
// into fixed-capacity per-lane ring buffers (one lane per processor, one per
// home directory). Timestamps are simulated `Cycle` time, never wall clock,
// so a recording is bit-identical across sweep thread counts like everything
// else in the harness. Recordings export as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing, one cycle rendered as one
// microsecond) or as JSONL, one event object per line.
//
// Instrumentation is compile-time gated: build with -DDIRCC_OBS=0 and every
// emission site in the hot path constant-folds away (see obs::compiled()),
// leaving the simulator bit-identical to an uninstrumented build.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"

namespace dircc {
class JsonWriter;
}

#ifndef DIRCC_OBS
#define DIRCC_OBS 1
#endif

namespace dircc::obs {

/// True when instrumentation is compiled in. Emission sites guard with
/// `if (obs::compiled() && recorder != nullptr && recorder->wants(...))`;
/// at DIRCC_OBS=0 the whole branch is dead code.
constexpr bool compiled() { return DIRCC_OBS != 0; }

/// Event classes, used as a recording filter (bitmask).
enum class EvClass : std::uint8_t {
  kStall = 0,     ///< processor blocked on a lock or barrier (span)
  kBarrier = 1,   ///< barrier episodes
  kLock = 2,      ///< lock queue/grant/retry
  kInval = 3,     ///< invalidation fan-out at a home directory
  kSparse = 4,    ///< sparse-directory entry victimization
  kOverflow = 5,  ///< limited-pointer overflow transitions (B/CV/X modes)
  kMsg = 6,       ///< individual coherence-message hops (Transaction IR)
};

inline constexpr std::uint32_t bit(EvClass cls) {
  return 1u << static_cast<unsigned>(cls);
}
inline constexpr std::uint32_t kAllClasses = (1u << 7) - 1;

/// Concrete event types. Each belongs to exactly one EvClass.
enum class EvType : std::uint8_t {
  kStallLock,       ///< span: blocked on a lock       (a0 = lock id)
  kStallBarrier,    ///< span: blocked at a barrier    (a0 = barrier id)
  kBarrierEpisode,  ///< span: first arrival → release (a0 = id, a1 = procs)
  kLockQueue,       ///< instant: acquire had to queue (a0 = lock id)
  kLockGrant,       ///< instant: lock granted  (a0 = id, a1 = 1 if contended)
  kLockRetry,       ///< instant: region-grant wakeup lost (a0 = lock id)
  kInvalFanout,     ///< instant: invals sent (a0 = block, a1 = net invals)
  kSparseVictim,    ///< instant: entry displaced (a0 = victim key, a1 = set)
  kPtrOverflow,     ///< instant: entry left precise mode (a0 = key, a1 = node)
  kHop,             ///< instant: one network hop of a committed transaction
                    ///< (a0 = src * 65536 + dst, a1 = HopKind value)
};

const char* ev_type_name(EvType type);
EvClass ev_class_of(EvType type);

/// One recorded event. `dur == 0` renders as an instant; otherwise as a
/// complete span [ts, ts+dur]. `a0`/`a1` are type-specific arguments.
struct ObsEvent {
  Cycle ts = 0;
  Cycle dur = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  EvType type = EvType::kLockGrant;
};

struct TraceRecorderConfig {
  /// Events retained per lane; when a lane overflows the oldest events are
  /// dropped (drop counts are reported in the export metadata).
  std::uint32_t ring_capacity = 1u << 15;
  /// Bitmask over EvClass; events of unselected classes are never recorded.
  std::uint32_t class_mask = kAllClasses;
};

/// Per-run event recorder. One instance per simulation (per sweep cell);
/// not thread-safe — a cell is always simulated by exactly one thread.
class TraceRecorder {
 public:
  TraceRecorder(int num_procs, int num_homes, TraceRecorderConfig config = {});

  bool wants(EvClass cls) const {
    return compiled() && (config_.class_mask & bit(cls)) != 0;
  }

  void record_proc(ProcId proc, const ObsEvent& event);
  void record_home(NodeId home, const ObsEvent& event);

  int num_procs() const { return num_procs_; }
  int num_homes() const { return num_homes_; }
  /// Events currently retained across all lanes.
  std::uint64_t recorded() const;
  /// Events lost to ring overflow across all lanes.
  std::uint64_t dropped() const;
  /// Events lost to ring overflow on one processor / home lane.
  std::uint64_t dropped_proc(int proc) const;
  std::uint64_t dropped_home(int home) const;

  /// Chrome trace-event JSON: {"displayTimeUnit":...,"traceEvents":[...]}.
  /// Processors are pid 0, home directories pid 1; one simulated cycle is
  /// rendered as one microsecond. Per-lane drop counts are exported twice:
  /// as an "events_dropped_by_lane" map in otherData and as a
  /// " (dropped N)" suffix on the affected lane's thread_name, so a
  /// truncated lane is identifiable inside the viewer itself. `extra`,
  /// when set, is invoked with the writer positioned inside the
  /// traceEvents array — the hook bench harnesses use to append counter
  /// tracks (obs/attrib) next to the recorded spans.
  void write_chrome_json(
      std::ostream& out,
      const std::function<void(JsonWriter&)>& extra = {}) const;

  /// One JSON object per line: {"ts":..,"dur":..,"lane":"proc3"|"home2",
  /// "type":..,"a0":..,"a1":..}.
  void write_jsonl(std::ostream& out) const;

 private:
  struct Ring {
    std::vector<ObsEvent> buffer;  ///< ring storage, capacity-bounded
    std::uint64_t pushed = 0;      ///< total events ever recorded
  };
  /// A retained event joined with its lane and per-lane sequence number,
  /// the deterministic export sort key.
  struct Keyed {
    ObsEvent event;
    std::uint32_t lane = 0;
    std::uint64_t seq = 0;
  };

  void push(std::uint32_t lane, const ObsEvent& event);
  std::vector<Keyed> sorted_events() const;

  int num_procs_;
  int num_homes_;
  TraceRecorderConfig config_;
  std::vector<Ring> lanes_;  ///< procs first, then homes
};

}  // namespace dircc::obs
