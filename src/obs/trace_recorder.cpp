#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "common/ensure.hpp"
#include "common/json.hpp"

namespace dircc::obs {

const char* ev_type_name(EvType type) {
  switch (type) {
    case EvType::kStallLock: return "stall.lock";
    case EvType::kStallBarrier: return "stall.barrier";
    case EvType::kBarrierEpisode: return "barrier.episode";
    case EvType::kLockQueue: return "lock.queue";
    case EvType::kLockGrant: return "lock.grant";
    case EvType::kLockRetry: return "lock.retry";
    case EvType::kInvalFanout: return "inval.fanout";
    case EvType::kSparseVictim: return "sparse.victim";
    case EvType::kPtrOverflow: return "ptr.overflow";
    case EvType::kHop: return "msg.hop";
  }
  return "unknown";
}

EvClass ev_class_of(EvType type) {
  switch (type) {
    case EvType::kStallLock:
    case EvType::kStallBarrier:
      return EvClass::kStall;
    case EvType::kBarrierEpisode:
      return EvClass::kBarrier;
    case EvType::kLockQueue:
    case EvType::kLockGrant:
    case EvType::kLockRetry:
      return EvClass::kLock;
    case EvType::kInvalFanout:
      return EvClass::kInval;
    case EvType::kSparseVictim:
      return EvClass::kSparse;
    case EvType::kPtrOverflow:
      return EvClass::kOverflow;
    case EvType::kHop:
      return EvClass::kMsg;
  }
  return EvClass::kStall;
}

namespace {

/// The two argument names an event type carries, for self-describing
/// exports ("" = unused).
struct ArgNames {
  const char* a0;
  const char* a1;
};

ArgNames ev_arg_names(EvType type) {
  switch (type) {
    case EvType::kStallLock: return {"lock", ""};
    case EvType::kStallBarrier: return {"barrier", ""};
    case EvType::kBarrierEpisode: return {"barrier", "procs"};
    case EvType::kLockQueue: return {"lock", ""};
    case EvType::kLockGrant: return {"lock", "contended"};
    case EvType::kLockRetry: return {"lock", ""};
    case EvType::kInvalFanout: return {"block", "invals"};
    case EvType::kSparseVictim: return {"victim_key", "set"};
    case EvType::kPtrOverflow: return {"group_key", "node"};
    case EvType::kHop: return {"route", "kind"};
  }
  return {"a0", "a1"};
}

}  // namespace

TraceRecorder::TraceRecorder(int num_procs, int num_homes,
                             TraceRecorderConfig config)
    : num_procs_(num_procs), num_homes_(num_homes), config_(config) {
  ensure(num_procs >= 1 && num_homes >= 0, "recorder needs at least one lane");
  ensure(config_.ring_capacity >= 1, "ring capacity must be positive");
  lanes_.resize(static_cast<std::size_t>(num_procs + num_homes));
}

void TraceRecorder::push(std::uint32_t lane, const ObsEvent& event) {
  Ring& ring = lanes_[lane];
  if (ring.buffer.size() < config_.ring_capacity) {
    ring.buffer.push_back(event);
  } else {
    // Drop-oldest: overwrite the slot the next sequence number maps to.
    ring.buffer[ring.pushed % config_.ring_capacity] = event;
  }
  ++ring.pushed;
}

void TraceRecorder::record_proc(ProcId proc, const ObsEvent& event) {
  ensure(proc < static_cast<ProcId>(num_procs_), "recorder proc out of range");
  push(proc, event);
}

void TraceRecorder::record_home(NodeId home, const ObsEvent& event) {
  ensure(home < static_cast<NodeId>(num_homes_), "recorder home out of range");
  push(static_cast<std::uint32_t>(num_procs_) + home, event);
}

std::uint64_t TraceRecorder::recorded() const {
  std::uint64_t n = 0;
  for (const Ring& ring : lanes_) {
    n += ring.buffer.size();
  }
  return n;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const Ring& ring : lanes_) {
    n += ring.pushed - ring.buffer.size();
  }
  return n;
}

std::uint64_t TraceRecorder::dropped_proc(int proc) const {
  ensure(proc >= 0 && proc < num_procs_, "recorder proc out of range");
  const Ring& ring = lanes_[static_cast<std::size_t>(proc)];
  return ring.pushed - ring.buffer.size();
}

std::uint64_t TraceRecorder::dropped_home(int home) const {
  ensure(home >= 0 && home < num_homes_, "recorder home out of range");
  const Ring& ring = lanes_[static_cast<std::size_t>(num_procs_ + home)];
  return ring.pushed - ring.buffer.size();
}

std::vector<TraceRecorder::Keyed> TraceRecorder::sorted_events() const {
  std::vector<Keyed> out;
  out.reserve(static_cast<std::size_t>(recorded()));
  for (std::uint32_t lane = 0; lane < lanes_.size(); ++lane) {
    const Ring& ring = lanes_[lane];
    const std::uint64_t retained = ring.buffer.size();
    const std::uint64_t first_seq = ring.pushed - retained;
    for (std::uint64_t i = 0; i < retained; ++i) {
      const std::uint64_t seq = first_seq + i;
      out.push_back({ring.buffer[seq % config_.ring_capacity], lane, seq});
    }
  }
  // (ts, lane, seq) is a total order — lane+seq are unique — so the export
  // byte stream is fully determined by the recording.
  std::sort(out.begin(), out.end(), [](const Keyed& a, const Keyed& b) {
    if (a.event.ts != b.event.ts) return a.event.ts < b.event.ts;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  });
  return out;
}

void TraceRecorder::write_chrome_json(
    std::ostream& out, const std::function<void(JsonWriter&)>& extra) const {
  JsonWriter json(out);
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("otherData");
  json.begin_object();
  json.field("clock", "simulated cycles (1 cycle = 1us)");
  json.field("events_retained", recorded());
  json.field("events_dropped", dropped());
  // Per-lane drop counts, truncated lanes only — so a viewer of the raw
  // file (or a tool) can tell *which* timeline is incomplete.
  json.key("events_dropped_by_lane");
  json.begin_object();
  for (int p = 0; p < num_procs_; ++p) {
    const std::uint64_t lost = dropped_proc(p);
    if (lost > 0) {
      json.field("proc" + std::to_string(p), lost);
    }
  }
  for (int h = 0; h < num_homes_; ++h) {
    const std::uint64_t lost = dropped_home(h);
    if (lost > 0) {
      json.field("home" + std::to_string(h), lost);
    }
  }
  json.end_object();
  json.end_object();
  json.key("traceEvents");
  json.begin_array();

  // Metadata: name the two processes and every lane. A lane that lost
  // events to ring overflow says so in its own name, which is where the
  // trace viewer shows it.
  const auto meta = [&json](const char* what, std::uint64_t pid,
                            std::int64_t tid, const std::string& name) {
    json.begin_object();
    json.field("name", what);
    json.field("ph", "M");
    json.field("pid", pid);
    if (tid >= 0) {
      json.field("tid", static_cast<std::uint64_t>(tid));
    }
    json.key("args").begin_object().field("name", name).end_object();
    json.end_object();
  };
  const auto lane_name = [](const char* prefix, int index,
                            std::uint64_t lost) {
    std::string name = prefix + std::to_string(index);
    if (lost > 0) {
      name += " (dropped " + std::to_string(lost) + ")";
    }
    return name;
  };
  meta("process_name", 0, -1, "processors");
  for (int p = 0; p < num_procs_; ++p) {
    meta("thread_name", 0, p, lane_name("proc ", p, dropped_proc(p)));
  }
  if (num_homes_ > 0) {
    meta("process_name", 1, -1, "home directories");
    for (int h = 0; h < num_homes_; ++h) {
      meta("thread_name", 1, h, lane_name("home ", h, dropped_home(h)));
    }
  }
  if (extra) {
    extra(json);
  }

  for (const Keyed& keyed : sorted_events()) {
    const ObsEvent& ev = keyed.event;
    const bool is_home = keyed.lane >= static_cast<std::uint32_t>(num_procs_);
    const std::uint64_t tid =
        is_home ? keyed.lane - static_cast<std::uint32_t>(num_procs_)
                : keyed.lane;
    json.begin_object();
    json.field("name", ev_type_name(ev.type));
    json.field("cat", "sim");
    json.field("ph", ev.dur > 0 ? "X" : "i");
    json.field("ts", ev.ts);
    if (ev.dur > 0) {
      json.field("dur", ev.dur);
    } else {
      json.field("s", "t");  // instant scoped to its thread lane
    }
    json.field("pid", std::uint64_t{is_home ? 1u : 0u});
    json.field("tid", tid);
    const ArgNames names = ev_arg_names(ev.type);
    json.key("args");
    json.begin_object();
    if (names.a0[0] != '\0') {
      json.field(names.a0, ev.a0);
    }
    if (names.a1[0] != '\0') {
      json.field(names.a1, ev.a1);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const Keyed& keyed : sorted_events()) {
    const ObsEvent& ev = keyed.event;
    const bool is_home = keyed.lane >= static_cast<std::uint32_t>(num_procs_);
    const std::uint64_t index =
        is_home ? keyed.lane - static_cast<std::uint32_t>(num_procs_)
                : keyed.lane;
    JsonWriter json(out);
    json.begin_object();
    json.field("ts", ev.ts);
    json.field("dur", ev.dur);
    json.field("lane",
               (is_home ? "home" : "proc") + std::to_string(index));
    json.field("type", ev_type_name(ev.type));
    const ArgNames names = ev_arg_names(ev.type);
    if (names.a0[0] != '\0') {
      json.field(names.a0, ev.a0);
    }
    if (names.a1[0] != '\0') {
      json.field(names.a1, ev.a1);
    }
    json.end_object();
    out << '\n';
  }
}

}  // namespace dircc::obs
