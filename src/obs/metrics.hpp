// MetricsRegistry: named counters, gauges and histograms with snapshot/diff
// and deterministic JSON export.
//
// The registry replaces ad-hoc stat plumbing between the simulator and its
// sinks: a stats struct registers every field once (see sim/run_metrics) and
// each sink — the JSONL records, the --metrics export, a future dashboard —
// iterates the registry instead of naming fields by hand, so a new counter
// appears everywhere for free. Metrics are stored name-sorted, so iteration
// (and with it every export) is byte-deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "common/stats.hpp"

namespace dircc {
class JsonWriter;
}

namespace dircc::obs {

/// A point-in-time copy of the scalar metrics (histograms are summarized by
/// their event/total counters at registration time, not snapshotted).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
};

/// `after - before` for every counter (names absent from `before` count
/// from zero); gauges take their `after` value. Names only in `before`
/// are dropped — a diff describes what the interval produced.
MetricsSnapshot diff(const MetricsSnapshot& before,
                     const MetricsSnapshot& after);

class MetricsRegistry {
 public:
  /// Increments (creating at zero) the named counter.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Sets the named counter to an absolute value.
  void set(const std::string& name, std::uint64_t value);

  /// Sets the named gauge (a point-in-time double, e.g. a mean or a ratio).
  void set_gauge(const std::string& name, double value);

  /// Returns the named histogram, creating an empty one on first use.
  Histogram& histogram(const std::string& name);

  /// Returns the named bucketed histogram, creating it with the given
  /// bucket upper edges on first use. A later call for the same name must
  /// pass identical edges (or an empty vector to mean "whatever was
  /// configured") — bucket boundaries are part of the metric's identity.
  BucketedHistogram& bucketed(const std::string& name,
                              const std::vector<std::uint64_t>& edges);

  /// Counter value; 0 when absent (or registered as a different kind).
  std::uint64_t counter(const std::string& name) const;

  /// Gauge value; 0.0 when absent (or registered as a different kind).
  double gauge(const std::string& name) const;

  /// Histogram lookup without creation; nullptr when absent.
  const Histogram* find_histogram(const std::string& name) const;

  /// Bucketed-histogram lookup without creation; nullptr when absent.
  const BucketedHistogram* find_bucketed(const std::string& name) const;

  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }

  MetricsSnapshot snapshot() const;

  /// Writes the registry as one standalone JSON object, metrics as members
  /// in name order. Histograms render as
  /// {"events":N,"total":N,"mean":x,"max":N,"bins":[...]}; bucketed
  /// histograms render "edges" and "counts" arrays instead of "bins".
  void write_json(std::ostream& out) const;

  /// Emits every metric as a field into an already-open JSON object (the
  /// harness sink appends registry fields to each cell record this way).
  void emit_fields(JsonWriter& json) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kBucketed };
  struct Metric {
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;
    double value = 0.0;
    std::unique_ptr<Histogram> hist;
    std::unique_ptr<BucketedHistogram> bucketed;
  };

  Metric& slot(const std::string& name, Kind kind);

  // Name-sorted so iteration order (and JSON output) is deterministic.
  std::map<std::string, Metric> metrics_;
};

}  // namespace dircc::obs
