// Transaction-latency attribution: where the cycles of a coherence
// transaction actually go.
//
// The queued latency backend (src/protocol/latency_backend) computes
// per-link and per-home contention while walking a transaction's hop DAG,
// then historically discarded everything except the final latency scalar.
// The Collector here implements the backend's AttributionSink contract and
// keeps the detail:
//
//   * critical-path decomposition — per committed transaction, the dep
//     chain ending at the last-finishing hop is walked backwards and each
//     hop's (queue + service) cycles are attributed to a PathCat
//     (request / forward / invalidation / ack / data / writeback);
//   * per-directed-link utilization and per-home occupancy/wait time
//     series, windowed over simulated cycles with bounded memory;
//   * latency histograms per transaction class (bus, 1/2/3-cluster
//     read/write) over configurable bucket edges;
//   * the invalidation fan-out distribution.
//
// Everything is keyed to simulated Cycle time, so a collector's contents —
// and every export derived from them — are identical across sweep thread
// counts. Under the analytic backend no per-hop timing exists; the
// collector still sees every commit and records class histograms and
// fan-outs, while link/home series simply stay empty.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "protocol/latency_backend.hpp"

namespace dircc::obs {
class MetricsRegistry;
}

namespace dircc::obs::attrib {

/// Critical-path category of a hop (the report's latency breakdown axis).
enum class PathCat : std::uint8_t {
  kRequest,       ///< requester -> home
  kForward,       ///< home -> owner (forwards, victim fetches)
  kInvalidation,  ///< invalidation fan-out of any cause
  kAck,           ///< acks back to requester or home
  kData,          ///< the data/ownership reply
  kWriteback,     ///< writebacks and replacement hints
};
inline constexpr int kNumPathCats = 6;

const char* path_cat_name(PathCat cat);
PathCat hop_category(HopKind kind);

/// Latency-histogram class of a transaction: bus-served, or a directory
/// transaction keyed by distinct clusters touched and read vs. write.
enum class TxnClass : std::uint8_t {
  kBus,
  kDir1Read,
  kDir1Write,
  kDir2Read,
  kDir2Write,
  kDir3Read,
  kDir3Write,
};
inline constexpr int kNumTxnClasses = 7;

const char* txn_class_name(TxnClass cls);
TxnClass classify_txn(const Transaction& txn, const TransactionRoute& route);

/// Busy-cycle time series over fixed-count windows of simulated time.
/// Memory is bounded: when an interval lands beyond the last window the
/// window width doubles (folding neighbouring pairs), so a series is
/// always `max_windows` buckets wide no matter how long the run. Widths
/// are the configured initial width times a power of two, which is what
/// makes two series (or two collectors) mergeable: coarsen both to the
/// wider width, then add counts.
class WindowedUsage {
 public:
  void configure(Cycle window, std::size_t max_windows);

  /// Accounts the half-open busy interval [from, until).
  void add(Cycle from, Cycle until);

  Cycle window() const { return window_; }
  const std::vector<Cycle>& busy() const { return busy_; }

  /// Doubles the window width (folding pairs) until it reaches `width`,
  /// which must be the current width times a power of two.
  void coarsen_to(Cycle width);

  /// Folds another series (same initial configuration) into this one.
  void merge(const WindowedUsage& other);

 private:
  void coarsen();

  Cycle window_ = 0;
  std::size_t max_windows_ = 0;
  std::vector<Cycle> busy_;
};

/// Scalar totals for one link or one home controller.
struct ResourceStats {
  Cycle busy = 0;           ///< cycles the resource was occupied
  Cycle wait = 0;           ///< cycles occupants spent queued behind it
  std::uint64_t msgs = 0;   ///< occupancy intervals (messages served)
};

struct CollectorConfig {
  /// Initial window width for the utilization time series.
  Cycle window_cycles = 1024;
  /// Windows retained per resource; widths double once time outgrows them.
  std::size_t max_windows = 256;
  /// Upper bucket edges for the per-class latency histograms; empty means
  /// pow2_edges(8, 1 << 20) — fine near the analytic costs, wide enough
  /// for queueing tails.
  std::vector<std::uint64_t> latency_edges;
};

/// The default latency bucket edges (what an empty config resolves to).
std::vector<std::uint64_t> default_latency_edges();

class Collector : public AttributionSink {
 public:
  explicit Collector(CollectorConfig config = {});

  // AttributionSink
  void bind(const Topology& mesh) override;
  void on_hop(const Transaction& txn, const HopTiming& timing) override;
  void on_link(LinkId link, Cycle wait, Cycle busy_from,
               Cycle busy_until) override;
  void on_home(NodeId home, Cycle wait, Cycle busy_from,
               Cycle busy_until) override;
  void on_commit(const Transaction& txn, const TransactionRoute& route,
                 Cycle now, Cycle latency) override;

  /// Folds another collector (same mesh, same configuration) into this
  /// one — how a sweep aggregates its cells. Cells all start at cycle 0,
  /// so series merge positionally.
  void merge(const Collector& other);

  /// Coarsens every utilization series to one common window width (the
  /// widest any series reached). Idempotent; exports call it first.
  void normalize_windows();

  // --- accessors ---------------------------------------------------------
  bool bound() const { return bound_; }
  int mesh_width() const { return width_; }
  int mesh_height() const { return height_; }
  int num_links() const { return static_cast<int>(link_stats_.size()); }
  int num_homes() const { return static_cast<int>(home_stats_.size()); }
  /// Last simulated cycle touched by any commit or occupancy interval —
  /// the denominator for whole-run utilization fractions.
  Cycle span() const { return span_; }
  std::uint64_t transactions() const { return txns_; }

  const std::vector<ResourceStats>& link_stats() const { return link_stats_; }
  const std::vector<ResourceStats>& home_stats() const { return home_stats_; }
  const std::vector<WindowedUsage>& link_usage() const { return link_usage_; }
  const std::vector<WindowedUsage>& home_usage() const { return home_usage_; }
  const std::vector<WindowedUsage>& home_wait() const { return home_wait_; }
  const std::string& link_label(int link) const { return link_names_[link]; }
  int home_x(int home) const { return home_x_[home]; }
  int home_y(int home) const { return home_y_[home]; }

  Cycle crit_queue_cycles() const { return crit_queue_; }
  Cycle crit_service_cycles() const { return crit_service_; }
  /// Cycles where the analytic floor exceeded the walked completion
  /// (latency = max(analytic, walked); the residual is attributed here).
  Cycle crit_floor_cycles() const { return crit_floor_; }
  const std::array<Cycle, kNumPathCats>& crit_by_category() const {
    return crit_cat_;
  }

  const std::array<BucketedHistogram, kNumTxnClasses>& class_latency() const {
    return class_latency_;
  }
  const std::array<std::uint64_t, kNumTxnClasses>& class_count() const {
    return class_count_;
  }
  const Histogram& fanout() const { return fanout_; }

  const CollectorConfig& config() const { return config_; }

  /// Registers aggregate counters and histograms under "attrib.*".
  void register_metrics(MetricsRegistry& out) const;

 private:
  CollectorConfig config_;
  bool bound_ = false;
  int width_ = 0;
  int height_ = 0;

  std::vector<ResourceStats> link_stats_;
  std::vector<ResourceStats> home_stats_;
  std::vector<WindowedUsage> link_usage_;
  std::vector<WindowedUsage> home_usage_;
  std::vector<WindowedUsage> home_wait_;
  std::vector<std::string> link_names_;
  std::vector<int> home_x_;
  std::vector<int> home_y_;

  std::vector<HopTiming> pending_;  ///< hop timings of the txn in flight

  std::uint64_t txns_ = 0;
  Cycle span_ = 0;
  Cycle crit_queue_ = 0;
  Cycle crit_service_ = 0;
  Cycle crit_floor_ = 0;
  std::array<Cycle, kNumPathCats> crit_cat_{};

  std::array<BucketedHistogram, kNumTxnClasses> class_latency_;
  std::array<std::uint64_t, kNumTxnClasses> class_count_{};
  Histogram fanout_;
};

}  // namespace dircc::obs::attrib
