#include "obs/attrib/collector.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "obs/metrics.hpp"

namespace dircc::obs::attrib {

const char* path_cat_name(PathCat cat) {
  switch (cat) {
    case PathCat::kRequest:
      return "request";
    case PathCat::kForward:
      return "forward";
    case PathCat::kInvalidation:
      return "invalidation";
    case PathCat::kAck:
      return "ack";
    case PathCat::kData:
      return "data";
    case PathCat::kWriteback:
      return "writeback";
  }
  return "?";
}

PathCat hop_category(HopKind kind) {
  switch (kind) {
    case HopKind::kRequest:
    case HopKind::kChipRequest:
      return PathCat::kRequest;
    case HopKind::kForward:
    case HopKind::kVictimFetch:
    case HopKind::kChipForward:
      return PathCat::kForward;
    case HopKind::kInval:
    case HopKind::kDisplacementInval:
    case HopKind::kReclaimInval:
    case HopKind::kChipInval:
      return PathCat::kInvalidation;
    case HopKind::kAck:
    case HopKind::kReclaimAck:
    case HopKind::kTransferAck:
    case HopKind::kChipAck:
      return PathCat::kAck;
    case HopKind::kReply:
    case HopKind::kChipReply:
      return PathCat::kData;
    case HopKind::kSharingWriteback:
    case HopKind::kVictimWriteback:
    case HopKind::kEvictionWriteback:
    case HopKind::kReplacementHint:
    case HopKind::kChipWriteback:
      return PathCat::kWriteback;
  }
  return PathCat::kRequest;
}

const char* txn_class_name(TxnClass cls) {
  switch (cls) {
    case TxnClass::kBus:
      return "bus";
    case TxnClass::kDir1Read:
      return "dir1_read";
    case TxnClass::kDir1Write:
      return "dir1_write";
    case TxnClass::kDir2Read:
      return "dir2_read";
    case TxnClass::kDir2Write:
      return "dir2_write";
    case TxnClass::kDir3Read:
      return "dir3_read";
    case TxnClass::kDir3Write:
      return "dir3_write";
  }
  return "?";
}

TxnClass classify_txn(const Transaction& txn, const TransactionRoute& route) {
  if (txn.kind != TxnKind::kDirectory) {
    return TxnClass::kBus;
  }
  if (route.distinct_clusters <= 1) {
    return txn.is_write ? TxnClass::kDir1Write : TxnClass::kDir1Read;
  }
  if (route.distinct_clusters == 2) {
    return txn.is_write ? TxnClass::kDir2Write : TxnClass::kDir2Read;
  }
  return txn.is_write ? TxnClass::kDir3Write : TxnClass::kDir3Read;
}

// --- WindowedUsage --------------------------------------------------------

void WindowedUsage::configure(Cycle window, std::size_t max_windows) {
  ensure(window > 0 && max_windows > 0, "windowed usage needs a window");
  window_ = window;
  max_windows_ = max_windows;
  busy_.clear();
}

void WindowedUsage::coarsen() {
  window_ *= 2;
  const std::size_t folded = (busy_.size() + 1) / 2;
  for (std::size_t i = 0; i < folded; ++i) {
    const Cycle lo = busy_[2 * i];
    const Cycle hi = 2 * i + 1 < busy_.size() ? busy_[2 * i + 1] : 0;
    busy_[i] = lo + hi;
  }
  busy_.resize(folded);
}

void WindowedUsage::coarsen_to(Cycle width) {
  ensure(window_ > 0, "windowed usage used before configure");
  while (window_ < width) {
    coarsen();
  }
  ensure(window_ == width, "window widths diverged (not a pow2 multiple)");
}

void WindowedUsage::add(Cycle from, Cycle until) {
  ensure(window_ > 0, "windowed usage used before configure");
  if (until <= from) {
    return;
  }
  while (until > window_ * static_cast<Cycle>(max_windows_)) {
    coarsen();
  }
  const std::size_t first = static_cast<std::size_t>(from / window_);
  const std::size_t last = static_cast<std::size_t>((until - 1) / window_);
  if (busy_.size() <= last) {
    busy_.resize(last + 1, 0);
  }
  for (std::size_t w = first; w <= last; ++w) {
    const Cycle lo = std::max(from, static_cast<Cycle>(w) * window_);
    const Cycle hi = std::min(until, static_cast<Cycle>(w + 1) * window_);
    busy_[w] += hi - lo;
  }
}

void WindowedUsage::merge(const WindowedUsage& other) {
  ensure(window_ > 0 && other.window_ > 0,
         "windowed usage merged before configure");
  coarsen_to(std::max(window_, other.window_));
  const Cycle ratio = window_ / other.window_;
  if (busy_.size() < (other.busy_.size() + ratio - 1) / ratio) {
    busy_.resize((other.busy_.size() + ratio - 1) / ratio, 0);
  }
  for (std::size_t j = 0; j < other.busy_.size(); ++j) {
    busy_[j / ratio] += other.busy_[j];
  }
}

// --- Collector ------------------------------------------------------------

std::vector<std::uint64_t> default_latency_edges() {
  return pow2_edges(8, 1u << 20);
}

Collector::Collector(CollectorConfig config) : config_(std::move(config)) {
  if (config_.latency_edges.empty()) {
    config_.latency_edges = default_latency_edges();
  }
  for (auto& hist : class_latency_) {
    hist.set_edges(config_.latency_edges);
  }
}

void Collector::bind(const Topology& mesh) {
  if (bound_) {
    // Rebinding to an identically shaped mesh is a no-op (a collector can
    // outlive the system that fed it; a sweep may bind once per cell).
    ensure(width_ == mesh.width() && height_ == mesh.height(),
           "attribution collector rebound to a different mesh");
    return;
  }
  bound_ = true;
  width_ = mesh.width();
  height_ = mesh.height();
  const int links = mesh.num_links();
  const int nodes = mesh.num_nodes();
  link_stats_.assign(static_cast<std::size_t>(links), {});
  home_stats_.assign(static_cast<std::size_t>(nodes), {});
  link_usage_.assign(static_cast<std::size_t>(links), {});
  home_usage_.assign(static_cast<std::size_t>(nodes), {});
  home_wait_.assign(static_cast<std::size_t>(nodes), {});
  for (auto& usage : link_usage_) {
    usage.configure(config_.window_cycles, config_.max_windows);
  }
  for (auto& usage : home_usage_) {
    usage.configure(config_.window_cycles, config_.max_windows);
  }
  for (auto& usage : home_wait_) {
    usage.configure(config_.window_cycles, config_.max_windows);
  }
  link_names_.resize(static_cast<std::size_t>(links));
  for (int link = 0; link < links; ++link) {
    link_names_[static_cast<std::size_t>(link)] = mesh.link_name(link);
  }
  home_x_.resize(static_cast<std::size_t>(nodes));
  home_y_.resize(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    home_x_[static_cast<std::size_t>(node)] =
        mesh.node_x(static_cast<NodeId>(node));
    home_y_[static_cast<std::size_t>(node)] =
        mesh.node_y(static_cast<NodeId>(node));
  }
}

void Collector::on_hop(const Transaction& /*txn*/, const HopTiming& timing) {
  pending_.push_back(timing);
}

void Collector::on_link(LinkId link, Cycle wait, Cycle busy_from,
                        Cycle busy_until) {
  ensure(bound_, "attribution collector fed before bind");
  ResourceStats& stats = link_stats_[static_cast<std::size_t>(link)];
  stats.busy += busy_until - busy_from;
  stats.wait += wait;
  stats.msgs += 1;
  link_usage_[static_cast<std::size_t>(link)].add(busy_from, busy_until);
  if (busy_until > span_) {
    span_ = busy_until;
  }
}

void Collector::on_home(NodeId home, Cycle wait, Cycle busy_from,
                        Cycle busy_until) {
  ensure(bound_, "attribution collector fed before bind");
  ResourceStats& stats = home_stats_[home];
  stats.busy += busy_until - busy_from;
  stats.wait += wait;
  stats.msgs += 1;
  home_usage_[home].add(busy_from, busy_until);
  if (wait > 0) {
    home_wait_[home].add(busy_from - wait, busy_from);
  }
  if (busy_until > span_) {
    span_ = busy_until;
  }
}

void Collector::on_commit(const Transaction& txn,
                          const TransactionRoute& route, Cycle now,
                          Cycle latency) {
  ++txns_;
  const TxnClass cls = classify_txn(txn, route);
  class_latency_[static_cast<std::size_t>(cls)].add(latency);
  class_count_[static_cast<std::size_t>(cls)] += 1;
  for (const Fanout& fanout : txn.fanouts) {
    fanout_.add(static_cast<std::uint64_t>(fanout.network_invalidations));
  }
  const Cycle end = now + latency;
  if (end > span_) {
    span_ = end;
  }
  if (pending_.empty()) {
    return;  // analytic backend, or a bus-served access: no hop detail
  }
  ensure(pending_.size() == txn.hops.size(),
         "hop timings out of step with the transaction IR");
  // The walked completion is the last-finishing hop; its dep chain is the
  // critical path, and done[i] = start + queue + service telescopes so the
  // chain's (queue + service) sum equals completion - now exactly.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    if (pending_[i].done > pending_[best].done) {
      best = i;
    }
  }
  const Cycle walked = pending_[best].done - now;
  crit_floor_ += latency > walked ? latency - walked : 0;
  int idx = static_cast<int>(best);
  while (idx >= 0) {
    const HopTiming& timing = pending_[static_cast<std::size_t>(idx)];
    const PathCat cat = hop_category(txn.hops[static_cast<std::size_t>(idx)].kind);
    crit_cat_[static_cast<std::size_t>(cat)] += timing.queue + timing.service;
    crit_queue_ += timing.queue;
    crit_service_ += timing.service;
    idx = txn.hops[static_cast<std::size_t>(idx)].dep;
  }
  pending_.clear();
}

void Collector::normalize_windows() {
  Cycle widest = config_.window_cycles;
  for (const auto& usage : link_usage_) {
    widest = std::max(widest, usage.window());
  }
  for (const auto& usage : home_usage_) {
    widest = std::max(widest, usage.window());
  }
  for (const auto& usage : home_wait_) {
    widest = std::max(widest, usage.window());
  }
  for (auto& usage : link_usage_) {
    usage.coarsen_to(widest);
  }
  for (auto& usage : home_usage_) {
    usage.coarsen_to(widest);
  }
  for (auto& usage : home_wait_) {
    usage.coarsen_to(widest);
  }
}

void Collector::merge(const Collector& other) {
  if (!other.bound_) {
    // The other collector never saw a system; only its commit-side
    // aggregates can be nonzero.
    ensure(other.txns_ == 0, "unbound collector holds transactions");
    return;
  }
  if (!bound_) {
    ensure(txns_ == 0, "unbound collector holds transactions");
    *this = other;
    return;
  }
  ensure(width_ == other.width_ && height_ == other.height_,
         "collectors merge only over identical meshes");
  for (std::size_t i = 0; i < link_stats_.size(); ++i) {
    link_stats_[i].busy += other.link_stats_[i].busy;
    link_stats_[i].wait += other.link_stats_[i].wait;
    link_stats_[i].msgs += other.link_stats_[i].msgs;
    link_usage_[i].merge(other.link_usage_[i]);
  }
  for (std::size_t i = 0; i < home_stats_.size(); ++i) {
    home_stats_[i].busy += other.home_stats_[i].busy;
    home_stats_[i].wait += other.home_stats_[i].wait;
    home_stats_[i].msgs += other.home_stats_[i].msgs;
    home_usage_[i].merge(other.home_usage_[i]);
    home_wait_[i].merge(other.home_wait_[i]);
  }
  txns_ += other.txns_;
  span_ = std::max(span_, other.span_);
  crit_queue_ += other.crit_queue_;
  crit_service_ += other.crit_service_;
  crit_floor_ += other.crit_floor_;
  for (std::size_t i = 0; i < crit_cat_.size(); ++i) {
    crit_cat_[i] += other.crit_cat_[i];
  }
  for (std::size_t i = 0; i < class_latency_.size(); ++i) {
    class_latency_[i].merge(other.class_latency_[i]);
    class_count_[i] += other.class_count_[i];
  }
  fanout_.merge(other.fanout_);
}

void Collector::register_metrics(MetricsRegistry& out) const {
  out.add("attrib.txns", txns_);
  out.add("attrib.crit.queue_cycles", crit_queue_);
  out.add("attrib.crit.service_cycles", crit_service_);
  out.add("attrib.crit.floor_cycles", crit_floor_);
  for (int cat = 0; cat < kNumPathCats; ++cat) {
    out.add(std::string("attrib.crit.") +
                path_cat_name(static_cast<PathCat>(cat)) + "_cycles",
            crit_cat_[static_cast<std::size_t>(cat)]);
  }
  Cycle link_busy = 0;
  Cycle link_wait = 0;
  std::uint64_t link_msgs = 0;
  for (const ResourceStats& stats : link_stats_) {
    link_busy += stats.busy;
    link_wait += stats.wait;
    link_msgs += stats.msgs;
  }
  out.add("attrib.link.busy_cycles", link_busy);
  out.add("attrib.link.wait_cycles", link_wait);
  out.add("attrib.link.msgs", link_msgs);
  Cycle home_busy = 0;
  Cycle home_wait = 0;
  std::uint64_t home_msgs = 0;
  for (const ResourceStats& stats : home_stats_) {
    home_busy += stats.busy;
    home_wait += stats.wait;
    home_msgs += stats.msgs;
  }
  out.add("attrib.home.busy_cycles", home_busy);
  out.add("attrib.home.wait_cycles", home_wait);
  out.add("attrib.home.msgs", home_msgs);
  for (int cls = 0; cls < kNumTxnClasses; ++cls) {
    const BucketedHistogram& hist = class_latency_[static_cast<std::size_t>(cls)];
    out.bucketed(std::string("attrib.latency.") +
                     txn_class_name(static_cast<TxnClass>(cls)),
                 hist.edges())
        .merge(hist);
  }
  out.histogram("attrib.fanout").merge(fanout_);
}

}  // namespace dircc::obs::attrib
