// Exports of an attribution Collector: schema-versioned JSON/CSV dumps,
// Chrome-trace counter tracks, and the ranked hotspot report consumed by
// bench/hotspot_report.
//
// Every export normalizes the collector's utilization windows first (so
// all series share one window width) and renders in a fixed order, making
// the bytes deterministic — and, because the collector only ever sees
// simulated Cycle time, identical across sweep thread counts.
#pragma once

#include <iosfwd>

#include "obs/attrib/collector.hpp"

namespace dircc {
class JsonWriter;
}

namespace dircc::obs::attrib {

/// Schema identifier/version stamped into the JSON exports.
inline constexpr const char* kAttribSchema = "dircc-attrib";
inline constexpr const char* kHotspotSchema = "dircc-hotspot";
inline constexpr int kAttribVersion = 1;
inline constexpr int kHotspotVersion = 1;

/// Full dump: mesh geometry, critical-path decomposition, per-link and
/// per-home totals plus windowed utilization series, per-class latency
/// histograms and the fan-out distribution.
void write_attrib_json(Collector& collector, std::ostream& out);

/// Flat per-resource table: one row per directed link and per home with
/// busy/wait/message totals and whole-run utilization.
/// Columns: kind,id,name,x0,y0,x1,y1,busy_cycles,wait_cycles,msgs,util
void write_attrib_csv(Collector& collector, std::ostream& out);

/// Ranked contention report: the top `top_k` busiest links (with mesh
/// coordinates) and homes, the queueing-vs-service split of the critical
/// path, per-category cycles, per-class latency summaries and the fan-out
/// distribution.
void write_hotspot_json(Collector& collector, int top_k, std::ostream& out);

/// Appends Chrome trace-event *counter* tracks ("ph":"C") summarizing the
/// windowed series: mean/max link busy-fraction per window (pid 0) and
/// mean/max home busy-fraction per window (pid 1). Meant for the `extra`
/// hook of TraceRecorder::write_chrome_json, so the counters render next
/// to the recorded spans.
void emit_chrome_counters(Collector& collector, JsonWriter& json);

}  // namespace dircc::obs::attrib
