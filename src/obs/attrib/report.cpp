#include "obs/attrib/report.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <vector>

#include "common/json.hpp"

namespace dircc::obs::attrib {

namespace {

double util_fraction(Cycle busy, Cycle span) {
  if (span == 0) {
    return 0.0;
  }
  return static_cast<double>(busy) / static_cast<double>(span);
}

void emit_bucketed(JsonWriter& json, const BucketedHistogram& hist) {
  json.begin_object();
  json.field("events", hist.events());
  json.field("total", hist.total());
  json.field("mean", hist.mean());
  json.field("max", hist.max_value());
  json.key("edges");
  json.begin_array();
  for (const std::uint64_t edge : hist.edges()) {
    json.value(edge);
  }
  json.end_array();
  json.key("counts");
  json.begin_array();
  for (const std::uint64_t count : hist.counts()) {
    json.value(count);
  }
  json.end_array();
  json.end_object();
}

void emit_critical_path(JsonWriter& json, const Collector& c) {
  json.key("critical_path");
  json.begin_object();
  json.field("queue_cycles", c.crit_queue_cycles());
  json.field("service_cycles", c.crit_service_cycles());
  json.field("floor_cycles", c.crit_floor_cycles());
  json.key("by_category");
  json.begin_object();
  for (int cat = 0; cat < kNumPathCats; ++cat) {
    json.field(path_cat_name(static_cast<PathCat>(cat)),
               c.crit_by_category()[static_cast<std::size_t>(cat)]);
  }
  json.end_object();
  json.end_object();
}

void emit_latency_classes(JsonWriter& json, const Collector& c) {
  json.key("latency");
  json.begin_object();
  for (int cls = 0; cls < kNumTxnClasses; ++cls) {
    json.key(txn_class_name(static_cast<TxnClass>(cls)));
    emit_bucketed(json, c.class_latency()[static_cast<std::size_t>(cls)]);
  }
  json.end_object();
}

void emit_fanout(JsonWriter& json, const Collector& c) {
  json.key("fanout");
  json.begin_object();
  json.field("events", c.fanout().events());
  json.field("total", c.fanout().total());
  json.field("mean", c.fanout().mean());
  json.field("max", c.fanout().max_value());
  json.key("bins");
  json.begin_array();
  for (const std::uint64_t bin : c.fanout().bins()) {
    json.value(bin);
  }
  json.end_array();
  json.end_object();
}

/// Link/home indices ordered busiest-first; ties break on the lower id so
/// the ranking is total and deterministic.
std::vector<int> ranked_indices(const std::vector<ResourceStats>& stats) {
  std::vector<int> order(stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&stats](int a, int b) {
    const ResourceStats& sa = stats[static_cast<std::size_t>(a)];
    const ResourceStats& sb = stats[static_cast<std::size_t>(b)];
    if (sa.busy + sa.wait != sb.busy + sb.wait) {
      return sa.busy + sa.wait > sb.busy + sb.wait;
    }
    return a < b;
  });
  return order;
}

}  // namespace

void write_attrib_json(Collector& c, std::ostream& out) {
  c.normalize_windows();
  const Cycle window =
      c.num_links() > 0 ? c.link_usage()[0].window() : c.config().window_cycles;
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", kAttribSchema);
  json.field("version", static_cast<std::uint64_t>(kAttribVersion));
  json.key("mesh");
  json.begin_object();
  json.field("width", static_cast<std::int64_t>(c.mesh_width()));
  json.field("height", static_cast<std::int64_t>(c.mesh_height()));
  json.end_object();
  json.field("span_cycles", c.span());
  json.field("transactions", c.transactions());
  json.field("window_cycles", window);
  emit_critical_path(json, c);
  json.key("links");
  json.begin_array();
  for (int link = 0; link < c.num_links(); ++link) {
    const ResourceStats& stats = c.link_stats()[static_cast<std::size_t>(link)];
    json.begin_object();
    json.field("id", static_cast<std::int64_t>(link));
    json.field("name", c.link_label(link));
    json.field("busy_cycles", stats.busy);
    json.field("wait_cycles", stats.wait);
    json.field("msgs", stats.msgs);
    json.field("util", util_fraction(stats.busy, c.span()));
    json.key("busy_windows");
    json.begin_array();
    for (const Cycle busy : c.link_usage()[static_cast<std::size_t>(link)].busy()) {
      json.value(busy);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("homes");
  json.begin_array();
  for (int home = 0; home < c.num_homes(); ++home) {
    const ResourceStats& stats = c.home_stats()[static_cast<std::size_t>(home)];
    json.begin_object();
    json.field("id", static_cast<std::int64_t>(home));
    json.field("x", static_cast<std::int64_t>(c.home_x(home)));
    json.field("y", static_cast<std::int64_t>(c.home_y(home)));
    json.field("busy_cycles", stats.busy);
    json.field("wait_cycles", stats.wait);
    json.field("msgs", stats.msgs);
    json.field("util", util_fraction(stats.busy, c.span()));
    json.key("busy_windows");
    json.begin_array();
    for (const Cycle busy : c.home_usage()[static_cast<std::size_t>(home)].busy()) {
      json.value(busy);
    }
    json.end_array();
    json.key("wait_windows");
    json.begin_array();
    for (const Cycle wait : c.home_wait()[static_cast<std::size_t>(home)].busy()) {
      json.value(wait);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  emit_latency_classes(json, c);
  emit_fanout(json, c);
  json.end_object();
  out << "\n";
}

void write_attrib_csv(Collector& c, std::ostream& out) {
  c.normalize_windows();
  out << "kind,id,name,busy_cycles,wait_cycles,msgs,util\n";
  for (int link = 0; link < c.num_links(); ++link) {
    const ResourceStats& stats = c.link_stats()[static_cast<std::size_t>(link)];
    out << "link," << link << "," << c.link_label(link) << "," << stats.busy
        << "," << stats.wait << "," << stats.msgs << ","
        << json_number(util_fraction(stats.busy, c.span())) << "\n";
  }
  for (int home = 0; home < c.num_homes(); ++home) {
    const ResourceStats& stats = c.home_stats()[static_cast<std::size_t>(home)];
    out << "home," << home << ",(" << c.home_x(home) << "," << c.home_y(home)
        << ")," << stats.busy << "," << stats.wait << "," << stats.msgs << ","
        << json_number(util_fraction(stats.busy, c.span())) << "\n";
  }
}

void write_hotspot_json(Collector& c, int top_k, std::ostream& out) {
  c.normalize_windows();
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", kHotspotSchema);
  json.field("version", static_cast<std::uint64_t>(kHotspotVersion));
  json.key("mesh");
  json.begin_object();
  json.field("width", static_cast<std::int64_t>(c.mesh_width()));
  json.field("height", static_cast<std::int64_t>(c.mesh_height()));
  json.end_object();
  json.field("span_cycles", c.span());
  json.field("transactions", c.transactions());
  const Cycle crit_total =
      c.crit_queue_cycles() + c.crit_service_cycles() + c.crit_floor_cycles();
  json.key("latency_split");
  json.begin_object();
  json.field("queue_cycles", c.crit_queue_cycles());
  json.field("service_cycles", c.crit_service_cycles());
  json.field("floor_cycles", c.crit_floor_cycles());
  json.field("queue_fraction",
             util_fraction(c.crit_queue_cycles(), crit_total));
  json.end_object();
  json.key("by_category");
  json.begin_object();
  for (int cat = 0; cat < kNumPathCats; ++cat) {
    json.field(path_cat_name(static_cast<PathCat>(cat)),
               c.crit_by_category()[static_cast<std::size_t>(cat)]);
  }
  json.end_object();
  const std::vector<int> links = ranked_indices(c.link_stats());
  json.key("top_links");
  json.begin_array();
  for (std::size_t rank = 0;
       rank < links.size() && rank < static_cast<std::size_t>(top_k); ++rank) {
    const int link = links[rank];
    const ResourceStats& stats = c.link_stats()[static_cast<std::size_t>(link)];
    if (stats.busy + stats.wait == 0) {
      break;  // the remainder of the ranking is idle resources
    }
    json.begin_object();
    json.field("rank", static_cast<std::uint64_t>(rank + 1));
    json.field("id", static_cast<std::int64_t>(link));
    json.field("name", c.link_label(link));
    json.field("busy_cycles", stats.busy);
    json.field("wait_cycles", stats.wait);
    json.field("msgs", stats.msgs);
    json.field("util", util_fraction(stats.busy, c.span()));
    json.end_object();
  }
  json.end_array();
  const std::vector<int> homes = ranked_indices(c.home_stats());
  json.key("top_homes");
  json.begin_array();
  for (std::size_t rank = 0;
       rank < homes.size() && rank < static_cast<std::size_t>(top_k); ++rank) {
    const int home = homes[rank];
    const ResourceStats& stats = c.home_stats()[static_cast<std::size_t>(home)];
    if (stats.busy + stats.wait == 0) {
      break;
    }
    json.begin_object();
    json.field("rank", static_cast<std::uint64_t>(rank + 1));
    json.field("id", static_cast<std::int64_t>(home));
    json.field("x", static_cast<std::int64_t>(c.home_x(home)));
    json.field("y", static_cast<std::int64_t>(c.home_y(home)));
    json.field("busy_cycles", stats.busy);
    json.field("wait_cycles", stats.wait);
    json.field("msgs", stats.msgs);
    json.field("util", util_fraction(stats.busy, c.span()));
    json.end_object();
  }
  json.end_array();
  emit_latency_classes(json, c);
  emit_fanout(json, c);
  json.end_object();
  out << "\n";
}

void emit_chrome_counters(Collector& c, JsonWriter& json) {
  c.normalize_windows();
  const auto emit_series = [&json](const std::vector<WindowedUsage>& series,
                                   const char* name, std::int64_t pid) {
    if (series.empty()) {
      return;
    }
    const Cycle window = series[0].window();
    std::size_t windows = 0;
    for (const WindowedUsage& usage : series) {
      windows = std::max(windows, usage.busy().size());
    }
    for (std::size_t w = 0; w < windows; ++w) {
      double sum = 0.0;
      double peak = 0.0;
      for (const WindowedUsage& usage : series) {
        const double frac =
            w < usage.busy().size()
                ? static_cast<double>(usage.busy()[w]) /
                      static_cast<double>(window)
                : 0.0;
        sum += frac;
        peak = std::max(peak, frac);
      }
      json.begin_object();
      json.field("name", name);
      json.field("ph", "C");
      json.field("pid", pid);
      json.field("tid", static_cast<std::int64_t>(0));
      json.field("ts", static_cast<std::uint64_t>(w) * window);
      json.key("args");
      json.begin_object();
      json.field("mean", sum / static_cast<double>(series.size()));
      json.field("max", peak);
      json.end_object();
      json.end_object();
    }
  };
  emit_series(c.link_usage(), "attrib: link busy", 0);
  emit_series(c.home_usage(), "attrib: home busy", 1);
}

}  // namespace dircc::obs::attrib
