#include "obs/metrics.hpp"

#include <ostream>

#include "common/ensure.hpp"
#include "common/json.hpp"

namespace dircc::obs {

MetricsSnapshot diff(const MetricsSnapshot& before,
                     const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    ensure(value >= base, "metrics diff: a counter went backwards");
    out.counters.emplace(name, value - base);
  }
  out.gauges = after.gauges;
  return out;
}

MetricsRegistry::Metric& MetricsRegistry::slot(const std::string& name,
                                               Kind kind) {
  Metric& metric = metrics_[name];
  if (metric.kind != kind) {
    ensure(metric.count == 0 && metric.value == 0.0 &&
               metric.hist == nullptr && metric.bucketed == nullptr,
           "metric re-registered under a different kind");
    metric.kind = kind;
  }
  return metric;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  slot(name, Kind::kCounter).count += delta;
}

void MetricsRegistry::set(const std::string& name, std::uint64_t value) {
  slot(name, Kind::kCounter).count = value;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  slot(name, Kind::kGauge).value = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Metric& metric = slot(name, Kind::kHistogram);
  if (metric.hist == nullptr) {
    metric.hist = std::make_unique<Histogram>();
  }
  return *metric.hist;
}

BucketedHistogram& MetricsRegistry::bucketed(
    const std::string& name, const std::vector<std::uint64_t>& edges) {
  Metric& metric = slot(name, Kind::kBucketed);
  if (metric.bucketed == nullptr) {
    metric.bucketed = std::make_unique<BucketedHistogram>(edges);
  } else if (!edges.empty()) {
    ensure(metric.bucketed->edges() == edges,
           "bucketed metric re-registered with different edges");
  }
  return *metric.bucketed;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kCounter
             ? it->second.count
             : 0;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kGauge
             ? it->second.value
             : 0.0;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kHistogram
             ? it->second.hist.get()
             : nullptr;
}

const BucketedHistogram* MetricsRegistry::find_bucketed(
    const std::string& name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kBucketed
             ? it->second.bucketed.get()
             : nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter:
        snap.counters.emplace(name, metric.count);
        break;
      case Kind::kGauge:
        snap.gauges.emplace(name, metric.value);
        break;
      case Kind::kHistogram:
        // Histograms contribute their scalar summary so diffs stay cheap.
        snap.counters.emplace(name + ".events", metric.hist->events());
        snap.counters.emplace(name + ".total", metric.hist->total());
        break;
      case Kind::kBucketed:
        snap.counters.emplace(name + ".events", metric.bucketed->events());
        snap.counters.emplace(name + ".total", metric.bucketed->total());
        break;
    }
  }
  return snap;
}

void MetricsRegistry::emit_fields(JsonWriter& json) const {
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter:
        json.field(name, metric.count);
        break;
      case Kind::kGauge:
        json.field(name, metric.value);
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.hist;
        json.key(name);
        json.begin_object();
        json.field("events", h.events());
        json.field("total", h.total());
        json.field("mean", h.mean());
        json.field("max", h.max_value());
        json.key("bins");
        json.begin_array();
        for (const std::uint64_t bin : h.bins()) {
          json.value(bin);
        }
        json.end_array();
        json.end_object();
        break;
      }
      case Kind::kBucketed: {
        const BucketedHistogram& h = *metric.bucketed;
        json.key(name);
        json.begin_object();
        json.field("events", h.events());
        json.field("total", h.total());
        json.field("mean", h.mean());
        json.field("max", h.max_value());
        json.key("edges");
        json.begin_array();
        for (const std::uint64_t edge : h.edges()) {
          json.value(edge);
        }
        json.end_array();
        json.key("counts");
        json.begin_array();
        for (const std::uint64_t count : h.counts()) {
          json.value(count);
        }
        json.end_array();
        json.end_object();
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_object();
  emit_fields(json);
  json.end_object();
}

}  // namespace dircc::obs
