#include "harness/sink.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "sim/run_metrics.hpp"

namespace dircc::harness {

void write_cell_json(std::ostream& out, const CellResult& cell,
                     const SinkOptions& options) {
  JsonWriter json(out);
  json.begin_object();
  json.field("cell", cell.key);
  for (const auto& [key, value] : cell.fields) {
    json.field(key, value);
  }
  // Every counter the run produced, by way of the metrics registry: a stat
  // registered in sim/run_metrics.cpp appears here with no sink change.
  obs::MetricsRegistry registry;
  register_metrics(registry, cell.result);
  registry.emit_fields(json);
  if (options.include_timing) {
    json.field("wall_ms", cell.wall_ms);
    json.field("trace_build_ms", cell.trace_build_ms);
    json.field("sim_ms", cell.sim_ms);
  }
  json.end_object();
}

void write_results_jsonl(std::ostream& out, std::vector<CellResult> results,
                         const SinkOptions& options) {
  std::stable_sort(results.begin(), results.end(),
                   [](const CellResult& a, const CellResult& b) {
                     return a.key < b.key;
                   });
  for (const CellResult& cell : results) {
    write_cell_json(out, cell, options);
    out << '\n';
  }
}

}  // namespace dircc::harness
