#include "harness/sink.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace dircc::harness {

void write_cell_json(std::ostream& out, const CellResult& cell,
                     const SinkOptions& options) {
  const RunResult& r = cell.result;
  const MessageCounters total = r.total_messages();
  JsonWriter json(out);
  json.begin_object();
  json.field("cell", cell.key);
  for (const auto& [key, value] : cell.fields) {
    json.field(key, value);
  }
  json.field("exec_cycles", r.exec_cycles);
  json.field("msgs_total", total.total());
  json.field("msgs_requests_wb", total.requests_with_writebacks());
  json.field("msgs_replies", total.get(MsgClass::kReply));
  json.field("msgs_inv_ack", total.inv_plus_ack());
  json.field("accesses", r.protocol.accesses);
  json.field("cache_hits", r.protocol.cache_hits);
  json.field("read_transactions", r.protocol.read_transactions);
  json.field("write_transactions", r.protocol.write_transactions);
  json.field("ownership_transfers", r.protocol.ownership_transfers);
  json.field("extraneous_invals", r.protocol.extraneous_invalidations);
  json.field("inval_events", r.protocol.inval_distribution.events());
  json.field("inval_total", r.protocol.inval_distribution.total());
  json.field("inval_mean", r.protocol.inval_distribution.mean());
  json.field("sharing_writebacks", r.protocol.sharing_writebacks);
  json.field("dirty_eviction_writebacks", r.protocol.dirty_eviction_writebacks);
  json.field("sparse_replacements", r.protocol.sparse_replacements);
  json.field("sparse_repl_invals", r.protocol.sparse_replacement_invals);
  json.field("replacement_hints", r.protocol.replacement_hints_sent);
  json.field("barrier_episodes", r.sync.barrier_episodes);
  json.field("lock_acquires", r.sync.lock_acquires);
  json.field("lock_contended", r.sync.lock_contended);
  json.field("lock_retries", r.sync.lock_retries);
  json.field("buffered_writes", r.sync.buffered_writes);
  json.field("buffer_stalls", r.sync.buffer_stalls);
  json.field("fence_wait_cycles", r.sync.fence_wait_cycles);
  json.field("cache_read_hits", r.cache.read_hits);
  json.field("cache_read_misses", r.cache.read_misses);
  json.field("cache_write_hits", r.cache.write_hits);
  json.field("cache_write_upgrades", r.cache.write_upgrades);
  json.field("cache_write_misses", r.cache.write_misses);
  if (options.include_timing) {
    json.field("wall_ms", cell.wall_ms);
  }
  json.end_object();
}

void write_results_jsonl(std::ostream& out, std::vector<CellResult> results,
                         const SinkOptions& options) {
  std::stable_sort(results.begin(), results.end(),
                   [](const CellResult& a, const CellResult& b) {
                     return a.key < b.key;
                   });
  for (const CellResult& cell : results) {
    write_cell_json(out, cell, options);
    out << '\n';
  }
}

}  // namespace dircc::harness
