// Thread-pooled sweep runner for simulation grids.
//
// The paper's figures are grids of independent simulations (app trace x
// machine configuration x engine configuration). Each grid cell owns its
// CoherenceSystem and Engine, so cells share no mutable state and can run
// on any number of threads; the only shared object is the immutable trace
// cache. Results land in cell-definition order regardless of which thread
// finishes first, and every source of randomness is seeded from the grid
// spec alone — a sweep is bit-identical across thread counts and runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/trace_cache.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"

namespace dircc::harness {

/// One independent simulation in a sweep grid.
struct SweepCell {
  /// Stable unique identity: the JSON sort key and the seed derivation
  /// input. Convention: "<grid>/dim1=a/dim2=b".
  std::string key;
  /// Label dimensions emitted verbatim into the cell's JSON record
  /// (e.g. {"app","LU"}, {"scheme","Dir3CV2"}).
  std::vector<std::pair<std::string, std::string>> fields;
  TraceSpec trace;
  SystemConfig system;
  EngineConfig engine;
};

/// A finished cell: its identity plus everything the run produced.
struct CellResult {
  std::string key;
  std::vector<std::pair<std::string, std::string>> fields;
  RunResult result;
  double wall_ms = 0.0;  ///< this cell's wall-clock, excluded from identity
};

/// Deterministically derives a per-cell seed from the sweep's base seed and
/// the cell key (FNV-1a over the key, splitmix64 finalizer). Depends only
/// on the grid spec — never on thread count or completion order.
std::uint64_t cell_seed(std::uint64_t base_seed, const std::string& key);

/// Runs grid cells concurrently on a fixed-size thread pool.
class SweepRunner {
 public:
  /// `threads` <= 0 selects the hardware concurrency.
  explicit SweepRunner(int threads = 0);

  /// Executes every cell and returns results in cell-definition order.
  /// Cell keys must be unique (checked).
  std::vector<CellResult> run(const std::vector<SweepCell>& cells);

  int threads() const { return threads_; }
  TraceCache& trace_cache() { return cache_; }

 private:
  int threads_;
  TraceCache cache_;
};

}  // namespace dircc::harness
