// Thread-pooled sweep runner for simulation grids.
//
// The paper's figures are grids of independent simulations (app trace x
// machine configuration x engine configuration). Each grid cell owns its
// CoherenceSystem and Engine, so cells share no mutable state and can run
// on any number of threads; the only shared object is the immutable trace
// cache. Results land in cell-definition order regardless of which thread
// finishes first, and every source of randomness is seeded from the grid
// spec alone — a sweep is bit-identical across thread counts and runs.
//
// Observability: the runner can attach a per-cell obs::TraceRecorder
// (simulated-time timelines, equally thread-count-invariant), splits each
// cell's wall-clock into its trace-build and simulate phases, and gathers
// sweep-wide telemetry (per-thread utilization, per-cell timing stats,
// live progress/ETA reporting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant_checker.hpp"
#include "common/stats.hpp"
#include "harness/trace_cache.hpp"
#include "obs/attrib/collector.hpp"
#include "obs/trace_recorder.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"

namespace dircc::harness {

/// One independent simulation in a sweep grid.
struct SweepCell {
  /// Stable unique identity: the JSON sort key and the seed derivation
  /// input. Convention: "<grid>/dim1=a/dim2=b".
  std::string key;
  /// Label dimensions emitted verbatim into the cell's JSON record
  /// (e.g. {"app","LU"}, {"scheme","Dir3CV2"}).
  std::vector<std::pair<std::string, std::string>> fields;
  TraceSpec trace;
  SystemConfig system;
  EngineConfig engine;
};

/// A finished cell: its identity plus everything the run produced.
struct CellResult {
  std::string key;
  std::vector<std::pair<std::string, std::string>> fields;
  RunResult result;
  double wall_ms = 0.0;        ///< whole cell wall-clock (build + simulate)
  double trace_build_ms = 0.0; ///< trace generation / cache-lookup phase
  double sim_ms = 0.0;         ///< system construction + engine run phase
  /// Per-cell event timeline; null unless SweepOptions::record_traces.
  std::shared_ptr<obs::TraceRecorder> trace;
  /// Per-cell latency attribution; null unless SweepOptions::attrib.
  std::shared_ptr<obs::attrib::Collector> attrib;
  /// Per-cell invariant-oracle report; null unless SweepOptions::check.
  std::shared_ptr<const check::CheckReport> check;
};

/// Per-run knobs for a sweep (all off by default — the plain run() keeps
/// its original behavior).
struct SweepOptions {
  /// Attach an obs::TraceRecorder to every cell (CellResult::trace).
  bool record_traces = false;
  obs::TraceRecorderConfig trace_config;
  /// Report live progress (cells done, ETA, pool utilization) while the
  /// sweep runs. Written to `progress_out` (default std::cerr); carriage-
  /// return updates, one final newline. Never part of result identity.
  bool progress = false;
  std::ostream* progress_out = nullptr;
  /// Attach a latency-attribution collector to every cell
  /// (CellResult::attrib). Per-hop timing detail requires the queued
  /// backend; under the analytic backend the collector still classifies
  /// transactions and fan-outs. No-op when obs is compiled out
  /// (DIRCC_OBS=0).
  bool attrib = false;
  obs::attrib::CollectorConfig attrib_config;
  /// Attach an invariant checker to every cell (CellResult::check). The
  /// checker may halt a failing cell early; other cells are unaffected.
  /// No-op when checking is compiled out (DIRCC_CHECK=0).
  bool check = false;
  check::CheckConfig check_config;
};

/// What a sweep cost, measured while it ran. Timing only — never part of
/// the deterministic result identity.
struct SweepTelemetry {
  double wall_ms = 0.0;       ///< whole sweep, including pool start/join
  int threads_used = 0;       ///< actual pool size for this run
  std::uint64_t cells_run = 0;
  OnlineStats cell_ms;        ///< per-cell total wall-clock
  OnlineStats build_ms;       ///< per-cell trace-build phase
  OnlineStats sim_ms;         ///< per-cell simulate phase
  std::vector<double> thread_busy_ms;  ///< busy time per pool worker
  /// Mean fraction of the sweep's wall-clock the workers spent simulating.
  double utilization() const;
};

/// Deterministically derives a per-cell seed from the sweep's base seed and
/// the cell key (FNV-1a over the key, splitmix64 finalizer). Depends only
/// on the grid spec — never on thread count or completion order.
std::uint64_t cell_seed(std::uint64_t base_seed, const std::string& key);

/// Runs grid cells concurrently on a fixed-size thread pool.
class SweepRunner {
 public:
  /// `threads` <= 0 selects the hardware concurrency.
  explicit SweepRunner(int threads = 0);

  /// Executes every cell and returns results in cell-definition order.
  /// Cell keys must be unique (checked).
  std::vector<CellResult> run(const std::vector<SweepCell>& cells);
  std::vector<CellResult> run(const std::vector<SweepCell>& cells,
                              const SweepOptions& options);

  /// Telemetry of the most recent run() (empty before the first run).
  const SweepTelemetry& telemetry() const { return telemetry_; }

  int threads() const { return threads_; }
  TraceCache& trace_cache() { return cache_; }

 private:
  int threads_;
  TraceCache cache_;
  SweepTelemetry telemetry_;
};

}  // namespace dircc::harness
