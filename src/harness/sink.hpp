// Structured results sink for sweep runs.
//
// Emits one machine-readable JSON record per grid cell — its identity key,
// the label dimensions, every RunResult counter (sourced through the
// obs::MetricsRegistry, so newly registered counters appear automatically),
// and (optionally) the cell's wall-clock split into trace-build and
// simulate phases — as JSON Lines, sorted by cell key. With timing
// omitted, the bytes depend only on the grid spec and the simulation
// results, so diffing a 2-thread sweep against a 1-thread sweep is the
// determinism check.
#pragma once

#include <iosfwd>
#include <vector>

#include "harness/sweep.hpp"

namespace dircc::harness {

struct SinkOptions {
  /// Include per-cell wall-clock ("wall_ms"). Leave off when the output
  /// feeds a byte-identity comparison.
  bool include_timing = true;
};

/// Writes one cell's record as a single-line JSON object (no newline).
void write_cell_json(std::ostream& out, const CellResult& cell,
                     const SinkOptions& options = {});

/// Writes all records as JSON Lines, stably sorted by cell key.
void write_results_jsonl(std::ostream& out, std::vector<CellResult> results,
                         const SinkOptions& options = {});

}  // namespace dircc::harness
