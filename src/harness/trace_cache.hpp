// Shared immutable trace cache for sweep grids.
//
// Every figure in the paper is a grid of independent simulations over the
// same four application traces; regenerating an identical ProgramTrace per
// grid cell dominated the serial harnesses' runtime. The cache builds each
// distinct trace exactly once — keyed by generator name + parameters — and
// hands out shared `const` references, safe to read concurrently from any
// number of sweep workers.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "trace/datacenter.hpp"
#include "trace/generators.hpp"

namespace dircc::harness {

/// A deferred trace: a canonical cache key (generator name + every
/// parameter that affects the output) plus the builder that produces it.
/// Two specs with equal keys must build identical traces.
struct TraceSpec {
  std::string key;
  std::function<ProgramTrace()> build;
};

/// Spec for one of the four registry applications at a given scale.
TraceSpec app_trace(AppKind app, int procs, int block_size,
                    std::uint64_t seed, double scale = 1.0);

/// Specs for explicitly parameterized generators (the sparse figures use
/// non-default problem sizes).
TraceSpec lu_trace(const LuConfig& config);
TraceSpec dwf_trace(const DwfConfig& config);
TraceSpec mp3d_trace(const Mp3dConfig& config);
TraceSpec locus_trace(const LocusConfig& config);

/// Spec for a datacenter workload (trace/datacenter.hpp) at a given client
/// count. Builds the materialized form — identical to draining the
/// streaming source, so a sweep over cached traces and a streaming run see
/// the same event streams.
TraceSpec datacenter_trace(DatacenterKind kind, int procs, int block_size,
                           std::uint64_t clients, std::uint64_t seed,
                           double scale = 1.0);

/// Thread-safe build-once cache. The first caller for a key builds the
/// trace (outside the cache lock, so distinct traces generate in
/// parallel); everyone else blocks on that build and shares the result.
class TraceCache {
 public:
  std::shared_ptr<const ProgramTrace> get(const TraceSpec& spec);

  /// Distinct traces built (or being built) so far.
  std::size_t size() const;

 private:
  using TraceFuture = std::shared_future<std::shared_ptr<const ProgramTrace>>;

  mutable std::mutex mu_;
  std::unordered_map<std::string, TraceFuture> traces_;
};

}  // namespace dircc::harness
