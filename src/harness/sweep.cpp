#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/ensure.hpp"
#include "sim/sharded_engine.hpp"

namespace dircc::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t base_seed, const std::string& key) {
  // FNV-1a over the key bytes, then a splitmix64 finalizer mixing in the
  // base seed. Fully specified (unlike std::hash) so the derivation is
  // stable across platforms and runs.
  std::uint64_t hash = 14695981039346656037ull;
  for (const char ch : key) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  std::uint64_t z = hash + base_seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  // The simulator treats seeds as opaque; avoid 0 only to keep weak PRNG
  // states out of the picture entirely.
  return z == 0 ? 1 : z;
}

double SweepTelemetry::utilization() const {
  if (wall_ms <= 0.0 || thread_busy_ms.empty()) {
    return 0.0;
  }
  double busy = 0.0;
  for (const double t : thread_busy_ms) {
    busy += t;
  }
  return busy / (wall_ms * static_cast<double>(thread_busy_ms.size()));
}

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads_ <= 0) {
    threads_ = 1;
  }
}

std::vector<CellResult> SweepRunner::run(const std::vector<SweepCell>& cells) {
  return run(cells, SweepOptions{});
}

std::vector<CellResult> SweepRunner::run(const std::vector<SweepCell>& cells,
                                         const SweepOptions& options) {
  std::unordered_set<std::string> keys;
  for (const SweepCell& cell : cells) {
    ensure(keys.insert(cell.key).second, "sweep cell keys must be unique");
  }

  int pool = std::min<int>(threads_, static_cast<int>(cells.size()));
  // Compose the two parallelism levels without oversubscribing: each cell
  // may itself run engine_threads threads (sharded engine), so the pool is
  // capped at host_cores / max(engine_threads) whenever any cell runs
  // sharded. Cell results never depend on the pool size, so the cap is a
  // pure scheduling decision (docs/PARALLELISM.md).
  int engine_threads = 1;
  for (const SweepCell& cell : cells) {
    engine_threads = std::max(engine_threads, cell.engine.engine_threads);
  }
  if (engine_threads > 1 && pool > 1) {
    int host = static_cast<int>(std::thread::hardware_concurrency());
    if (host <= 0) {
      host = threads_;
    }
    pool = std::clamp(host / engine_threads, 1, pool);
  }
  telemetry_ = SweepTelemetry{};
  telemetry_.threads_used = std::max(pool, 1);
  telemetry_.cells_run = cells.size();
  telemetry_.thread_busy_ms.assign(
      static_cast<std::size_t>(std::max(pool, 1)), 0.0);

  std::vector<CellResult> results(cells.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Busy nanoseconds per worker, readable by the progress reporter while
  // the workers run.
  std::vector<std::atomic<std::uint64_t>> busy_ns(
      static_cast<std::size_t>(std::max(pool, 1)));
  std::mutex telemetry_mu;
  // First exception thrown by any cell (trace build, system construction
  // or engine run). Workers drain the remaining indices once set — an
  // exception escaping a thread body would std::terminate the process —
  // and run() rethrows it after every thread has joined.
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<bool> failed{false};
  const auto sweep_start = Clock::now();

  auto worker = [&](int worker_index) {
    // Worker-local accumulators; merged count-weighted into the sweep
    // telemetry at worker exit (the OnlineStats::merge satellite).
    OnlineStats local_cell_ms;
    OnlineStats local_build_ms;
    OnlineStats local_sim_ms;
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= cells.size()) {
        break;
      }
      if (failed.load(std::memory_order_acquire)) {
        // Drain without simulating: the sweep's result is already an
        // exception, so finish fast but let every worker exit its loop.
        done.fetch_add(1, std::memory_order_release);
        continue;
      }
      const SweepCell& cell = cells[index];
      try {
        const auto start = Clock::now();
        const auto trace = cache_.get(cell.trace);
        const auto built = Clock::now();
        // Each cell owns its full machine: no state crosses cells, so the
        // simulation is oblivious to which thread runs it and when.
        CoherenceSystem system(cell.system);
        std::shared_ptr<obs::TraceRecorder> recorder;
        if (options.record_traces) {
          recorder = std::make_shared<obs::TraceRecorder>(
              cell.system.num_procs, cell.system.num_clusters(),
              options.trace_config);
        }
        std::shared_ptr<obs::attrib::Collector> attrib;
        if (options.attrib && obs::compiled()) {
          attrib =
              std::make_shared<obs::attrib::Collector>(options.attrib_config);
          system.attach_attribution(attrib.get());
        }
        std::unique_ptr<check::InvariantChecker> checker;
        if (options.check && check::compiled()) {
          checker = std::make_unique<check::InvariantChecker>(
              system, options.check_config);
        }
        ShardedEngine engine(system, *trace, cell.engine, recorder.get(),
                             checker.get());
        CellResult& out = results[index];
        out.result = engine.run();
        out.attrib = std::move(attrib);
        if (checker != nullptr) {
          out.check = std::make_shared<const check::CheckReport>(
              checker->finish(engine.halted_by_checker()));
        }
        const auto stop = Clock::now();
        out.key = cell.key;
        out.fields = cell.fields;
        out.trace = std::move(recorder);
        out.wall_ms = ms_between(start, stop);
        out.trace_build_ms = ms_between(start, built);
        out.sim_ms = ms_between(built, stop);
        local_cell_ms.add(out.wall_ms);
        local_build_ms.add(out.trace_build_ms);
        local_sim_ms.add(out.sim_ms);
        busy_ns[static_cast<std::size_t>(worker_index)].fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                     start)
                    .count()),
            std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_release);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
        failed.store(true, std::memory_order_release);
        done.fetch_add(1, std::memory_order_release);
      }
    }
    std::lock_guard<std::mutex> lock(telemetry_mu);
    telemetry_.cell_ms.merge(local_cell_ms);
    telemetry_.build_ms.merge(local_build_ms);
    telemetry_.sim_ms.merge(local_sim_ms);
  };

  // Progress reporter: a low-frequency monitor thread, stopped via a
  // condition variable so the sweep never waits out a poll interval.
  std::mutex progress_mu;
  std::condition_variable progress_cv;
  bool finished = false;
  std::thread reporter;
  if (options.progress) {
    std::ostream* out =
        options.progress_out != nullptr ? options.progress_out : &std::cerr;
    reporter = std::thread([&, out, pool] {
      const auto fmt_line = [&](bool final_line) {
        const std::size_t n = done.load(std::memory_order_acquire);
        const double elapsed = ms_between(sweep_start, Clock::now());
        double busy = 0.0;
        for (const auto& b : busy_ns) {
          busy += static_cast<double>(b.load(std::memory_order_relaxed));
        }
        const double util =
            elapsed > 0.0
                ? busy / 1e6 / (elapsed * static_cast<double>(pool))
                : 0.0;
        // ETA from mean cell cost so far, spread over the pool.
        double eta_s = -1.0;
        if (n > 0 && n < cells.size()) {
          const double mean_ms = busy / 1e6 / static_cast<double>(n);
          eta_s = mean_ms * static_cast<double>(cells.size() - n) /
                  static_cast<double>(pool) / 1000.0;
        }
        char line[160];
        if (eta_s >= 0.0) {
          std::snprintf(line, sizeof line,
                        "\r[sweep] %zu/%zu cells | elapsed %.1fs | "
                        "eta %.1fs | util %3.0f%%  ",
                        n, cells.size(), elapsed / 1000.0, eta_s,
                        100.0 * util);
        } else {
          std::snprintf(line, sizeof line,
                        "\r[sweep] %zu/%zu cells | elapsed %.1fs | "
                        "util %3.0f%%  ",
                        n, cells.size(), elapsed / 1000.0, 100.0 * util);
        }
        (*out) << line;
        if (final_line) {
          (*out) << '\n';
        }
        out->flush();
      };
      std::unique_lock<std::mutex> lock(progress_mu);
      while (!finished) {
        fmt_line(false);
        progress_cv.wait_for(lock, std::chrono::milliseconds(200),
                             [&] { return finished; });
      }
      fmt_line(true);
    });
  }

  if (pool <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  if (reporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(progress_mu);
      finished = true;
    }
    progress_cv.notify_all();
    reporter.join();
  }

  telemetry_.wall_ms = ms_between(sweep_start, Clock::now());
  for (std::size_t t = 0; t < busy_ns.size(); ++t) {
    telemetry_.thread_busy_ms[t] =
        static_cast<double>(busy_ns[t].load(std::memory_order_relaxed)) / 1e6;
  }
  // Rethrown only here, with the pool joined and the reporter stopped: the
  // caller sees the first cell's failure, not a terminated process.
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace dircc::harness
