#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/ensure.hpp"

namespace dircc::harness {

std::uint64_t cell_seed(std::uint64_t base_seed, const std::string& key) {
  // FNV-1a over the key bytes, then a splitmix64 finalizer mixing in the
  // base seed. Fully specified (unlike std::hash) so the derivation is
  // stable across platforms and runs.
  std::uint64_t hash = 14695981039346656037ull;
  for (const char ch : key) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  std::uint64_t z = hash + base_seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  // The simulator treats seeds as opaque; avoid 0 only to keep weak PRNG
  // states out of the picture entirely.
  return z == 0 ? 1 : z;
}

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads_ <= 0) {
    threads_ = 1;
  }
}

std::vector<CellResult> SweepRunner::run(const std::vector<SweepCell>& cells) {
  std::unordered_set<std::string> keys;
  for (const SweepCell& cell : cells) {
    ensure(keys.insert(cell.key).second, "sweep cell keys must be unique");
  }

  std::vector<CellResult> results(cells.size());
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= cells.size()) {
        return;
      }
      const SweepCell& cell = cells[index];
      const auto trace = cache_.get(cell.trace);
      const auto start = std::chrono::steady_clock::now();
      // Each cell owns its full machine: no state crosses cells, so the
      // simulation is oblivious to which thread runs it and when.
      CoherenceSystem system(cell.system);
      Engine engine(system, *trace, cell.engine);
      CellResult& out = results[index];
      out.result = engine.run();
      const auto stop = std::chrono::steady_clock::now();
      out.key = cell.key;
      out.fields = cell.fields;
      out.wall_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
    }
  };

  const int pool = std::min<int>(threads_, static_cast<int>(cells.size()));
  if (pool <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  return results;
}

}  // namespace dircc::harness
