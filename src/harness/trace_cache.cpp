#include "harness/trace_cache.hpp"

#include <limits>
#include <sstream>

#include "common/ensure.hpp"

namespace dircc::harness {
namespace {

std::string scale_token(double scale) {
  // Canonical, locale-free rendering so equal scales key identically.
  // max_digits10 makes the rendering injective over doubles; the default
  // 6-significant-digit precision folded distinct values (e.g. 0.5 and
  // 0.5000001) onto one cache key, silently serving the wrong trace.
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << scale;
  return out.str();
}

}  // namespace

TraceSpec app_trace(AppKind app, int procs, int block_size,
                    std::uint64_t seed, double scale) {
  std::ostringstream key;
  key << "app:" << app_name(app) << "(procs=" << procs
      << ",block=" << block_size << ",seed=" << seed
      << ",scale=" << scale_token(scale) << ")";
  return {key.str(), [app, procs, block_size, seed, scale] {
            return generate_app(app, procs, block_size, seed, scale);
          }};
}

TraceSpec lu_trace(const LuConfig& config) {
  std::ostringstream key;
  key << "lu(procs=" << config.procs << ",block=" << config.block_size
      << ",n=" << config.n << ",seed=" << config.seed << ")";
  return {key.str(), [config] { return generate_lu(config); }};
}

TraceSpec dwf_trace(const DwfConfig& config) {
  std::ostringstream key;
  key << "dwf(procs=" << config.procs << ",block=" << config.block_size
      << ",rows=" << config.pattern_rows << ",len=" << config.seq_length
      << ",seqs=" << config.num_sequences << ",seed=" << config.seed << ")";
  return {key.str(), [config] { return generate_dwf(config); }};
}

TraceSpec mp3d_trace(const Mp3dConfig& config) {
  std::ostringstream key;
  key << "mp3d(procs=" << config.procs << ",block=" << config.block_size
      << ",particles=" << config.particles << ",cells=" << config.cells_per_axis
      << ",steps=" << config.steps
      << ",collide=" << scale_token(config.collision_prob)
      << ",seed=" << config.seed << ")";
  return {key.str(), [config] { return generate_mp3d(config); }};
}

TraceSpec locus_trace(const LocusConfig& config) {
  std::ostringstream key;
  key << "locus(procs=" << config.procs << ",block=" << config.block_size
      << ",w=" << config.grid_w << ",h=" << config.grid_h
      << ",regions=" << config.regions << ",wires=" << config.wires
      << ",cross=" << scale_token(config.cross_region_prob)
      << ",global=" << scale_token(config.global_update_prob)
      << ",seed=" << config.seed << ")";
  return {key.str(), [config] { return generate_locusroute(config); }};
}

TraceSpec datacenter_trace(DatacenterKind kind, int procs, int block_size,
                           std::uint64_t clients, std::uint64_t seed,
                           double scale) {
  std::ostringstream key;
  key << "dc:" << datacenter_name(kind) << "(procs=" << procs
      << ",block=" << block_size << ",clients=" << clients
      << ",seed=" << seed << ",scale=" << scale_token(scale) << ")";
  return {key.str(), [kind, procs, block_size, clients, seed, scale] {
            return generate_datacenter(kind, procs, block_size, clients,
                                       seed, scale);
          }};
}

std::shared_ptr<const ProgramTrace> TraceCache::get(const TraceSpec& spec) {
  ensure(static_cast<bool>(spec.build), "TraceSpec has no builder");
  std::promise<std::shared_ptr<const ProgramTrace>> promise;
  TraceFuture future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(spec.key);
    if (it == traces_.end()) {
      future = promise.get_future().share();
      traces_.emplace(spec.key, future);
      builder = true;
    } else {
      future = it->second;
    }
  }
  if (builder) {
    // Built outside the lock: distinct traces generate concurrently, and
    // only callers that need *this* trace wait on it.
    try {
      promise.set_value(std::make_shared<const ProgramTrace>(spec.build()));
    } catch (...) {
      // A throwing builder must not leave a valueless promise behind:
      // every waiter would see a broken_promise future_error (and the
      // poisoned entry would fail all future gets for this key). Publish
      // the real exception to the waiters and drop the entry so a later
      // get() can retry the build.
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      traces_.erase(spec.key);
    }
  }
  return future.get();
}

std::size_t TraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

}  // namespace dircc::harness
