#include "sim/report.hpp"

#include <ostream>

#include "common/ensure.hpp"
#include "common/json.hpp"

namespace dircc {

RunReport::RunReport(std::string label, const RunResult& result) {
  add_field("label", std::move(label));
  add_field("exec_cycles", result.exec_cycles);
  const MessageCounters total = result.total_messages();
  add_field("msgs_total", total.total());
  add_field("msgs_requests_wb", total.requests_with_writebacks());
  add_field("msgs_replies", total.get(MsgClass::kReply));
  add_field("msgs_inv_ack", total.inv_plus_ack());
  add_field("inval_events", result.protocol.inval_distribution.events());
  add_field("inval_mean", result.protocol.inval_distribution.mean());
  add_field("extraneous_invals", result.protocol.extraneous_invalidations);
  add_field("ownership_transfers", result.protocol.ownership_transfers);
  add_field("sparse_replacements", result.protocol.sparse_replacements);
  add_field("sparse_repl_invals", result.protocol.sparse_replacement_invals);
  add_field("replacement_hints", result.protocol.replacement_hints_sent);
  add_field("cache_read_hits", result.cache.read_hits);
  add_field("cache_read_misses", result.cache.read_misses);
  add_field("lock_acquires", result.sync.lock_acquires);
  add_field("lock_retries", result.sync.lock_retries);
  add_field("barriers", result.sync.barrier_episodes);
  add_field("buffered_writes", result.sync.buffered_writes);
}

void RunReport::add_field(std::string key, std::string value) {
  fields_.push_back({std::move(key), json_escape(value), true});
}

void RunReport::add_field(std::string key, std::uint64_t value) {
  fields_.push_back({std::move(key), std::to_string(value), false});
}

void RunReport::add_field(std::string key, double value) {
  fields_.push_back({std::move(key), json_number(value), false});
}

void RunReport::write_json(std::ostream& out) const {
  out << '{';
  bool first = true;
  for (const Field& field : fields_) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << '"' << json_escape(field.key) << "\": ";
    if (field.quoted) {
      out << '"' << field.rendered << '"';
    } else {
      out << field.rendered;
    }
  }
  out << '}';
}

std::vector<std::string> RunReport::csv_header() const {
  std::vector<std::string> header;
  header.reserve(fields_.size());
  for (const Field& field : fields_) {
    header.push_back(field.key);
  }
  return header;
}

std::vector<std::string> RunReport::csv_row() const {
  std::vector<std::string> row;
  row.reserve(fields_.size());
  for (const Field& field : fields_) {
    row.push_back(field.rendered);
  }
  return row;
}

void write_json_array(std::ostream& out, const std::vector<RunReport>& runs) {
  out << "[\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "  ";
    runs[i].write_json(out);
    if (i + 1 < runs.size()) {
      out << ',';
    }
    out << '\n';
  }
  out << "]\n";
}

void write_csv(std::ostream& out, const std::vector<RunReport>& runs) {
  if (runs.empty()) {
    return;
  }
  const auto header = runs.front().csv_header();
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << header[c] << (c + 1 < header.size() ? "," : "\n");
  }
  for (const RunReport& run : runs) {
    const auto row = run.csv_row();
    ensure(row.size() == header.size(),
           "CSV reports must share one field shape");
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace dircc
