// Event-driven multiprocessor simulation engine.
//
// Replays a ProgramTrace against a CoherenceSystem the way the paper's
// Tango-coupled simulator does (Section 5): each processor advances through
// its reference stream, every access's latency feeds back into that
// processor's clock, and processors interleave in global simulated-time
// order — so contention and sharing interleavings are timing-accurate.
//
// Synchronization is modeled natively:
//  * Barriers — a processor arriving at a barrier blocks until every
//    participating processor (one with a non-empty stream) has arrived;
//    all resume after a fixed release latency.
//  * Locks — queue-based locks as in DASH. By default a release grants the
//    lock to exactly one waiter. With `region_grant_locks`, the engine
//    models the coarse-vector lock-grant of Section 7: the directory only
//    knows the *region* of queued clusters, so a release wakes every waiter
//    in the head waiter's region and all but one retry.
#pragma once

#include "check/api.hpp"
#include "network/message.hpp"
#include "obs/trace_recorder.hpp"
#include "protocol/system.hpp"
#include "sim/ready_tree.hpp"
#include "trace/event.hpp"
#include "trace/event_source.hpp"

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace dircc {

/// Engine knobs (latency costs are in processor cycles).
struct EngineConfig {
  Cycle issue_cost = 1;    ///< per-event pipeline cost
  Cycle barrier_cost = 60; ///< last-arrival to release
  Cycle lock_cost = 60;    ///< uncontended acquire round trip
  Cycle unlock_cost = 23;  ///< release (fire and forget)
  Cycle grant_cost = 60;   ///< release to granted-waiter resumption
  bool region_grant_locks = false;  ///< Section 7 coarse-vector grant
  int lock_region_size = 2;         ///< clusters per lock-grant region
  bool count_sync_messages = true;
  /// DASH-style release consistency: writes retire into a write buffer and
  /// the processor continues after `write_buffer_cost` cycles instead of
  /// stalling for the ownership reply and acknowledgements. Buffered
  /// writes drain in order; a full buffer stalls the issuer, and lock
  /// releases and barriers fence (wait for the buffer to drain). Off by
  /// default: the processor stalls for every write's full latency, which
  /// is the conservative model the headline figures use.
  bool release_consistency = false;
  int write_buffer_depth = 4;
  Cycle write_buffer_cost = 2;  ///< issue-side cost of a buffered write
  /// Sharded-engine execution knobs (docs/PARALLELISM.md). These control
  /// how the host runs the simulation, never what it simulates: every
  /// RunResult field is byte-identical for any value of either knob
  /// (enforced by tests/test_sharded_engine.cpp and the CI shard-smoke
  /// job). 1 = the serial engine, N >= 2 = N-1 shard fetch workers plus
  /// the commit thread.
  int engine_threads = 1;
  int shard_queue_capacity = 512;  ///< per-processor SPSC ring, in events
};

/// Synchronization-side statistics.
struct SyncStats {
  MessageCounters messages;
  std::uint64_t barrier_episodes = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;  ///< acquires that had to queue
  std::uint64_t lock_retries = 0;    ///< region-grant wakeups that lost
  /// Every write that retired into the write buffer (all RC-mode writes,
  /// including the ones that first stalled on a full buffer).
  std::uint64_t buffered_writes = 0;
  std::uint64_t buffer_stalls = 0;   ///< subset that found the buffer full
  Cycle fence_wait_cycles = 0;       ///< release/barrier drain waits
};

/// Everything a simulation run produces.
struct RunResult {
  Cycle exec_cycles = 0;  ///< time at which the last processor finished
  ProtocolStats protocol;
  SyncStats sync;
  CacheStats cache;

  /// Data+coherence messages (protocol) plus synchronization messages.
  MessageCounters total_messages() const {
    MessageCounters total = protocol.messages;
    total += sync.messages;
    return total;
  }
};

/// Drives one trace through one memory system (directory-based or
/// linked-list). Single-shot: construct, run().
class Engine {
 public:
  /// `recorder` (optional) receives stall/lock/barrier timeline events from
  /// the engine and is forwarded to the memory system for protocol-level
  /// events. `checker` (optional) is notified after every shared-data
  /// access and may halt the run (src/check invariant oracle). The caller
  /// keeps ownership of both; they must outlive run().
  ///
  /// This form wraps `trace` in a MaterializedSource internally, so every
  /// pre-streaming call site behaves exactly as before.
  Engine(MemorySystem& system, const ProgramTrace& trace,
         EngineConfig config = {}, obs::TraceRecorder* recorder = nullptr,
         check::AccessObserver* checker = nullptr);

  /// Streaming form: pulls events from `source` on demand (one-event
  /// lookahead per processor beyond the event in flight), so memory stays
  /// O(source buffers) regardless of how many events the run replays. The
  /// caller keeps ownership of `source`; it must outlive run().
  Engine(MemorySystem& system, EventSource& source, EngineConfig config = {},
         obs::TraceRecorder* recorder = nullptr,
         check::AccessObserver* checker = nullptr);

  RunResult run();

  /// True when the attached checker stopped the run before the trace
  /// drained (the RunResult then covers only the simulated prefix).
  bool halted_by_checker() const { return halted_; }

 private:
  /// Shared delegate of the two public forms: exactly one of `owned` /
  /// `source` is non-null.
  Engine(MemorySystem& system, std::unique_ptr<MaterializedSource> owned,
         EngineConfig config, obs::TraceRecorder* recorder,
         check::AccessObserver* checker, EventSource* source = nullptr);

  struct LockState {
    bool held = false;
    ProcId holder = kNoProc;
    std::deque<ProcId> waiters;
  };
  struct BarrierState {
    int arrived = 0;
    Cycle first_arrival = 0;  ///< episode start for the timeline recorder
    Cycle latest_arrival = 0;
    std::vector<ProcId> waiters;
  };

  void schedule(ProcId proc, Cycle when);
  /// Resumes a processor that was blocked on a lock or barrier.
  void wake(ProcId proc, Cycle when);
  /// Pulls `proc`'s next event into its lookahead slot.
  void pull(ProcId proc) {
    has_pending_[proc] = source_->next(proc, pending_[proc]) ? 1 : 0;
  }
  void sync_msg(MsgClass cls, std::uint64_t n = 1);
  void handle_unlock(Addr addr, LockState& lock, Cycle now);
  /// Waits for the processor's buffered writes to drain (fence semantics).
  Cycle drained(ProcId proc, Cycle now);

  /// True when `cls` events should be recorded. Constant-folds to false
  /// when instrumentation is compiled out (DIRCC_OBS=0).
  bool obs_on(obs::EvClass cls) const {
    return obs::compiled() && recorder_ != nullptr && recorder_->wants(cls);
  }
  /// Marks `proc` blocked at `now` for a stall span of `kind`.
  void obs_block(ProcId proc, Cycle now, obs::EvType kind, Addr addr);

  /// Block number for a byte address. The divisor is fixed per run, and in
  /// every machine we model it is a power of two, so the per-access division
  /// reduces to a shift.
  BlockAddr block_of(Addr addr) const {
    return block_shift_ >= 0 ? addr >> block_shift_
                             : addr / static_cast<Addr>(block_size_);
  }

  MemorySystem& system_;
  /// Set only by the ProgramTrace constructor (the materializing adapter);
  /// `source_` then points at it.
  std::unique_ptr<MaterializedSource> owned_source_;
  EventSource* source_;
  EngineConfig config_;

  // One pending event per processor, popped in (time, proc) order.
  ReadyTree ready_;
  int block_size_ = 1;
  int block_shift_ = 0;  ///< log2(block size), or -1 when not a power of two
  /// Per-processor one-event lookahead: the next unconsumed event (valid
  /// while the matching has_pending_ byte is nonzero).
  std::vector<TraceEvent> pending_;
  std::vector<char> has_pending_;
  std::vector<Cycle> finish_time_;
  /// Completion times of in-flight buffered writes, oldest first.
  std::vector<std::deque<Cycle>> write_buffer_;
  std::unordered_map<Addr, LockState> locks_;
  std::unordered_map<Addr, BarrierState> barriers_;
  SyncStats sync_;
  obs::TraceRecorder* recorder_ = nullptr;
  check::AccessObserver* checker_ = nullptr;
  bool halted_ = false;
  /// Pending stall spans, indexed by processor (valid while blocked).
  struct PendingStall {
    Cycle since = 0;
    Addr addr = 0;
    obs::EvType kind = obs::EvType::kStallLock;
    bool active = false;
  };
  std::vector<PendingStall> stall_;
  int finished_ = 0;
  int blocked_ = 0;
  /// Processors with a non-empty stream; barriers wait for exactly these.
  int participants_ = 0;
};

}  // namespace dircc
