// Bounded single-producer/single-consumer ring for cross-thread event
// hand-off inside the sharded engine (see docs/PARALLELISM.md).
//
// Each simulated processor owns exactly one queue: its shard's fetch worker
// is the only producer and the commit thread is the only consumer, so the
// ring needs no locks — one acquire/release pair per side. The capacity is
// the shard's lookahead window: a producer that runs a full window ahead of
// the commit frontier blocks (conservative horizon), which bounds memory at
// O(procs x capacity) and keeps every shard within one epoch of the
// committed simulation time.
//
// FIFO and loss-freedom are load-bearing: the commit plane replays each
// processor's stream in exactly the order the producer pushed it, which is
// what makes the sharded engine byte-identical to the serial one
// (tests/test_sharded_engine.cpp holds the contract).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ensure.hpp"

namespace dircc {

template <typename T>
class SpscQueue {
 public:
  /// The queue holds at most `capacity` items — exactly the requested
  /// bound, not a rounded one. The backing ring is still sized to the next
  /// power of two (index masking instead of modulo), but the occupancy
  /// check uses the requested capacity, so `--shard-queue-capacity 5`
  /// means a lookahead window of 5, not 8.
  explicit SpscQueue(std::size_t capacity) : limit_(capacity) {
    ensure(capacity >= 1, "spsc queue needs a positive capacity");
    std::size_t cap = 1;
    while (cap < capacity) {
      cap *= 2;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return limit_; }

  /// Producer side. Returns false when the queue is full (the producer is a
  /// full lookahead window ahead; retry after the consumer drains).
  bool try_push(const T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= limit_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= limit_) {
        return false;
      }
    }
    slots_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is currently empty (which
  /// does not mean the stream ended — see close()).
  bool try_pop(T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    item = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: marks the stream complete. Items already queued remain
  /// poppable (the epoch-drain contract: close loses nothing).
  void close() { closed_.store(true, std::memory_order_release); }

  /// Consumer: true when the producer closed the stream AND the ring has
  /// been drained — the definitive end-of-stream signal.
  bool exhausted() {
    if (!closed_.load(std::memory_order_acquire)) {
      return false;
    }
    // Re-check emptiness after observing the close so items pushed before
    // close() are never skipped.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    tail_cache_ = tail_.load(std::memory_order_acquire);
    return head == tail_cache_;
  }

  /// Items currently in flight (approximate under concurrency; exact when
  /// one side is quiescent — used by telemetry and tests only).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

 private:
  // Head/tail on separate cache lines so the producer and consumer do not
  // false-share; each side keeps a stale copy of the other's index and only
  // refreshes it when the fast path would block.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t head_cache_ = 0;  // producer-local
  alignas(64) std::size_t tail_cache_ = 0;  // consumer-local
  std::atomic<bool> closed_{false};
  /// Documented occupancy bound (the requested capacity); distinct from
  /// the ring's power-of-two index mask below.
  std::size_t limit_ = 0;
  std::size_t mask_ = 0;
  std::vector<T> slots_;
};

}  // namespace dircc
