#include "sim/shard_plan.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dircc {

ShardPlan::ShardPlan(int num_procs, int procs_per_cluster,
                     int requested_shards) {
  ensure(num_procs >= 1, "shard plan needs at least one processor");
  ensure(procs_per_cluster >= 1 && num_procs % procs_per_cluster == 0,
         "shard plan needs whole clusters");
  num_clusters_ = num_procs / procs_per_cluster;
  num_shards_ = std::clamp(requested_shards, 1, num_clusters_);

  const MeshTopology mesh(num_clusters_);
  shard_of_node_.resize(static_cast<std::size_t>(num_clusters_));
  for (NodeId node = 0; node < num_clusters_; ++node) {
    shard_of_node_[static_cast<std::size_t>(node)] =
        mesh.region_of(node, num_shards_);
  }

  shard_of_proc_.resize(static_cast<std::size_t>(num_procs));
  procs_of_.resize(static_cast<std::size_t>(num_shards_));
  for (ProcId proc = 0; proc < num_procs; ++proc) {
    const auto cluster = static_cast<NodeId>(proc / procs_per_cluster);
    const int shard = shard_of_node_[static_cast<std::size_t>(cluster)];
    shard_of_proc_[static_cast<std::size_t>(proc)] = shard;
    procs_of_[static_cast<std::size_t>(shard)].push_back(proc);
  }
  for (const std::vector<ProcId>& procs : procs_of_) {
    ensure(!procs.empty(), "shard plan produced an empty shard");
  }
}

MeshTopology::RegionRange ShardPlan::nodes_of(int shard) const {
  ensure(shard >= 0 && shard < num_shards_, "shard index out of range");
  const MeshTopology mesh(num_clusters_);
  return mesh.region_range(shard, num_shards_);
}

}  // namespace dircc
