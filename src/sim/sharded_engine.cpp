#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ensure.hpp"
#include "sim/shard_plan.hpp"
#include "sim/spsc_queue.hpp"

namespace dircc {

namespace {

/// Events a worker forwards per processor before moving on. Large enough to
/// amortize the round-robin sweep, small enough that no stream starves.
constexpr int kFetchBurst = 32;

/// Commit-side view of the rings: an EventSource whose per-processor
/// streams are the SPSC queues. next() blocks (spin-then-yield) until the
/// processor's worker has pushed an event or closed the stream, so the
/// serial engine on top of it never observes anything but a complete,
/// in-order stream — exactly what the real source would have produced.
class ShardQueueSource final : public EventSource {
 public:
  ShardQueueSource(EventSource& real,
                   std::vector<std::unique_ptr<SpscQueue<TraceEvent>>>& rings)
      : real_(real), rings_(rings), popped_(rings.size(), 0) {}

  const std::string& app_name() const override { return real_.app_name(); }
  int num_procs() const override { return real_.num_procs(); }
  int block_size() const override { return real_.block_size(); }

  bool next(ProcId proc, TraceEvent& ev) override {
    SpscQueue<TraceEvent>& ring = *rings_[static_cast<std::size_t>(proc)];
    for (;;) {
      if (ring.try_pop(ev)) {
        ++popped_[static_cast<std::size_t>(proc)];
        return true;
      }
      if (ring.exhausted()) {
        return false;
      }
      ++empty_waits_;
      // Yield instead of spinning: on an undersubscribed host the producer
      // needs this core to make the progress we are waiting for.
      std::this_thread::yield();
    }
  }

  std::uint64_t events_pulled() const override {
    std::uint64_t total = 0;
    for (std::uint64_t popped : popped_) {
      total += popped;
    }
    return total;
  }

  std::uint64_t empty_waits() const { return empty_waits_; }

 private:
  EventSource& real_;
  std::vector<std::unique_ptr<SpscQueue<TraceEvent>>>& rings_;
  std::vector<std::uint64_t> popped_;  // commit-thread-only
  std::uint64_t empty_waits_ = 0;
};

}  // namespace

/// The fetch plane: the shard cut, one ring per processor, one worker
/// thread per shard, and the failure/stop machinery shared between them.
struct ShardedEngine::Pipeline {
  Pipeline(EventSource& source, ShardPlan cut, int ring_capacity)
      : real(source), plan(std::move(cut)) {
    rings.reserve(static_cast<std::size_t>(plan.num_procs()));
    for (int proc = 0; proc < plan.num_procs(); ++proc) {
      rings.push_back(std::make_unique<SpscQueue<TraceEvent>>(
          static_cast<std::size_t>(ring_capacity)));
    }
    adapter = std::make_unique<ShardQueueSource>(real, rings);
  }

  void start() {
    workers.reserve(static_cast<std::size_t>(plan.num_shards()));
    for (int shard = 0; shard < plan.num_shards(); ++shard) {
      workers.emplace_back([this, shard] { fetch_loop(shard); });
    }
  }

  /// Pull loop of one shard: round-robins the shard's processors, bursting
  /// events from the real source into their rings. A full ring is skipped,
  /// never blocked on, so the worker always keeps its other streams moving
  /// and always observes `stop` promptly.
  void fetch_loop(int shard) {
    struct Slot {
      TraceEvent ev{};
      bool holding = false;  ///< ev pulled but not yet pushed (ring full)
      bool done = false;
    };
    const std::vector<ProcId>& procs = plan.procs_of(shard);
    std::vector<Slot> slots(procs.size());
    std::size_t active = procs.size();
    std::uint64_t local_forwarded = 0;
    std::uint64_t local_full_waits = 0;
    try {
      while (active > 0 && !stop.load(std::memory_order_relaxed)) {
        bool progressed = false;
        for (std::size_t i = 0; i < procs.size(); ++i) {
          Slot& slot = slots[i];
          if (slot.done) {
            continue;
          }
          SpscQueue<TraceEvent>& ring =
              *rings[static_cast<std::size_t>(procs[i])];
          for (int burst = 0; burst < kFetchBurst; ++burst) {
            if (!slot.holding) {
              if (!real.next(procs[i], slot.ev)) {
                slot.done = true;
                ring.close();
                --active;
                progressed = true;
                break;
              }
              slot.holding = true;
            }
            if (!ring.try_push(slot.ev)) {
              ++local_full_waits;  // a full lookahead window ahead: move on
              break;
            }
            slot.holding = false;
            ++local_forwarded;
            progressed = true;
          }
        }
        if (!progressed) {
          std::this_thread::yield();
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> guard(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
      stop.store(true, std::memory_order_relaxed);
    }
    // Whatever ended the loop (drain, stop, failure): close every stream
    // this worker owns so the commit thread can never wait forever. After
    // a stop the result is discarded or already complete, so truncation is
    // harmless.
    for (std::size_t i = 0; i < procs.size(); ++i) {
      if (!slots[i].done) {
        rings[static_cast<std::size_t>(procs[i])]->close();
      }
    }
    events_forwarded.fetch_add(local_forwarded, std::memory_order_relaxed);
    full_waits.fetch_add(local_full_waits, std::memory_order_relaxed);
  }

  void stop_and_join() {
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
  }

  EventSource& real;
  ShardPlan plan;
  std::vector<std::unique_ptr<SpscQueue<TraceEvent>>> rings;
  std::unique_ptr<ShardQueueSource> adapter;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> events_forwarded{0};
  std::atomic<std::uint64_t> full_waits{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

ShardedEngine::ShardedEngine(MemorySystem& system, const ProgramTrace& trace,
                             EngineConfig config,
                             obs::TraceRecorder* recorder,
                             check::AccessObserver* checker)
    : system_(system),
      owned_source_(std::make_unique<MaterializedSource>(trace)),
      source_(owned_source_.get()),
      config_(config),
      recorder_(recorder),
      checker_(checker) {}

ShardedEngine::ShardedEngine(MemorySystem& system, EventSource& source,
                             EngineConfig config,
                             obs::TraceRecorder* recorder,
                             check::AccessObserver* checker)
    : system_(system),
      source_(&source),
      config_(config),
      recorder_(recorder),
      checker_(checker) {}

ShardedEngine::~ShardedEngine() {
  if (pipeline_) {
    pipeline_->stop_and_join();
  }
}

RunResult ShardedEngine::run() {
  ensure(!ran_, "ShardedEngine is single-shot: construct, run() once");
  ran_ = true;

  if (config_.engine_threads <= 1) {
    // The serial engine *is* the 1-thread sharded engine: no threads, no
    // rings, no adapter — and trivially byte-identical.
    Engine engine(system_, *source_, config_, recorder_, checker_);
    const RunResult result = engine.run();
    halted_ = engine.halted_by_checker();
    return result;
  }

  const int procs = source_->num_procs();
  ensure(procs >= 1, "sharded engine needs at least one processor");
  const int clusters = static_cast<int>(system_.cluster_of(
                           static_cast<ProcId>(procs - 1))) +
                       1;
  // Shards own whole clusters; a machine whose processors do not divide
  // evenly into clusters degenerates to per-processor shards.
  const int procs_per_cluster =
      (clusters >= 1 && procs % clusters == 0) ? procs / clusters : 1;
  ShardPlan plan(procs, procs_per_cluster, config_.engine_threads - 1);

  const int capacity = std::max(1, config_.shard_queue_capacity);
  pipeline_ = std::make_unique<Pipeline>(*source_, std::move(plan), capacity);
  telemetry_.shards = pipeline_->plan.num_shards();
  telemetry_.fetch_threads = pipeline_->plan.num_shards();
  pipeline_->start();

  RunResult result;
  std::exception_ptr commit_error;
  try {
    Engine engine(system_, *pipeline_->adapter, config_, recorder_, checker_);
    result = engine.run();
    halted_ = engine.halted_by_checker();
  } catch (...) {
    commit_error = std::current_exception();
  }
  pipeline_->stop_and_join();

  telemetry_.events_forwarded =
      pipeline_->events_forwarded.load(std::memory_order_relaxed);
  telemetry_.producer_full_waits =
      pipeline_->full_waits.load(std::memory_order_relaxed);
  telemetry_.consumer_empty_waits = pipeline_->adapter->empty_waits();

  // A worker failure is the root cause even when the commit plane also
  // threw (its queues were closed out from under it).
  if (pipeline_->error) {
    std::rethrow_exception(pipeline_->error);
  }
  if (commit_error) {
    std::rethrow_exception(commit_error);
  }
  return result;
}

}  // namespace dircc
