#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "common/ensure.hpp"

namespace dircc {

Engine::Engine(MemorySystem& system, const ProgramTrace& trace,
               EngineConfig config, obs::TraceRecorder* recorder,
               check::AccessObserver* checker)
    : Engine(system, std::make_unique<MaterializedSource>(trace), config,
             recorder, checker) {}

Engine::Engine(MemorySystem& system, EventSource& source, EngineConfig config,
               obs::TraceRecorder* recorder, check::AccessObserver* checker)
    : Engine(system, nullptr, config, recorder, checker, &source) {}

Engine::Engine(MemorySystem& system, std::unique_ptr<MaterializedSource> owned,
               EngineConfig config, obs::TraceRecorder* recorder,
               check::AccessObserver* checker, EventSource* source)
    : system_(system),
      owned_source_(std::move(owned)),
      source_(source != nullptr ? source : owned_source_.get()),
      config_(config),
      recorder_(recorder),
      checker_(checker) {
  ensure(source_ != nullptr, "engine needs an event source");
  ensure(source_->num_procs() == system.num_procs(),
         "trace and system disagree on the processor count");
  ensure(source_->block_size() == system.block_size(),
         "trace and system disagree on the block size");
  const auto procs = static_cast<std::size_t>(source_->num_procs());
  block_size_ = system.block_size();
  block_shift_ = (block_size_ & (block_size_ - 1)) == 0
                     ? std::countr_zero(static_cast<unsigned>(block_size_))
                     : -1;
  ready_.init(procs);
  pending_.assign(procs, {});
  has_pending_.assign(procs, 0);
  finish_time_.assign(procs, 0);
  write_buffer_.assign(procs, {});
  if (obs::compiled() && recorder_ != nullptr) {
    stall_.assign(procs, {});
    system_.attach_recorder(recorder_);
  }
}

void Engine::obs_block(ProcId proc, Cycle now, obs::EvType kind, Addr addr) {
  if (!obs_on(obs::EvClass::kStall)) {
    return;
  }
  PendingStall& stall = stall_[proc];
  stall.since = now;
  stall.addr = addr;
  stall.kind = kind;
  stall.active = true;
}

Cycle Engine::drained(ProcId proc, Cycle now) {
  auto& buffer = write_buffer_[proc];
  if (buffer.empty()) {
    return now;
  }
  Cycle done = now;
  for (const Cycle completion : buffer) {
    done = std::max(done, completion);
  }
  buffer.clear();
  if (done > now) {
    sync_.fence_wait_cycles += done - now;
  }
  return done;
}

void Engine::schedule(ProcId proc, Cycle when) {
  ready_.set(proc, ReadyTree::encode(when, proc));
}

void Engine::wake(ProcId proc, Cycle when) {
  --blocked_;
  if (obs_on(obs::EvClass::kStall) && stall_[proc].active) {
    PendingStall& stall = stall_[proc];
    stall.active = false;
    recorder_->record_proc(
        proc, {stall.since, when - stall.since, stall.addr, 0, stall.kind});
  }
  if (has_pending_[proc]) {
    schedule(proc, when);
  } else {
    finish_time_[proc] = std::max(when, drained(proc, when));
    ++finished_;
  }
}

void Engine::sync_msg(MsgClass cls, std::uint64_t n) {
  if (config_.count_sync_messages) {
    sync_.messages.add(cls, n);
  }
}

void Engine::handle_unlock(Addr addr, LockState& lock, Cycle now) {
  sync_msg(MsgClass::kRequest);  // release notification to the lock home
  if (lock.waiters.empty()) {
    lock.held = false;
    lock.holder = kNoProc;
    return;
  }
  const bool obs_lock = obs_on(obs::EvClass::kLock);
  if (!config_.region_grant_locks) {
    // Precise grant: hand the lock to the head waiter.
    const ProcId next = lock.waiters.front();
    lock.waiters.pop_front();
    lock.holder = next;
    sync_msg(MsgClass::kReply);  // grant
    if (obs_lock) {
      recorder_->record_proc(next, {now + config_.grant_cost, 0, addr, 1,
                                    obs::EvType::kLockGrant});
    }
    wake(next, now + config_.grant_cost);
    ++sync_.lock_acquires;
    return;
  }
  // Coarse-vector grant (Section 7): the directory only knows the region of
  // the head waiter, so every queued processor in that region is woken; one
  // wins, the rest re-queue after a wasted round trip.
  const ProcId head = lock.waiters.front();
  const int region_size = std::max(1, config_.lock_region_size);
  const int head_region = system_.cluster_of(head) / region_size;
  lock.waiters.pop_front();
  lock.holder = head;
  sync_msg(MsgClass::kReply);  // wakeup that wins the lock
  if (obs_lock) {
    recorder_->record_proc(head, {now + config_.grant_cost, 0, addr, 1,
                                  obs::EvType::kLockGrant});
  }
  wake(head, now + config_.grant_cost);
  ++sync_.lock_acquires;
  for (const ProcId waiter : lock.waiters) {
    if (system_.cluster_of(waiter) / region_size == head_region) {
      // Woken, retried, lost: one wakeup reply plus one failed re-acquire.
      sync_msg(MsgClass::kReply);
      sync_msg(MsgClass::kRequest);
      ++sync_.lock_retries;
      if (obs_lock) {
        recorder_->record_proc(waiter, {now + config_.grant_cost, 0, addr, 0,
                                        obs::EvType::kLockRetry});
      }
    }
  }
}

RunResult Engine::run() {
  const int procs = source_->num_procs();
  // Prime every processor's one-event lookahead. A processor whose source
  // yields nothing finishes at t=0 and never participates in barriers —
  // exactly the empty-stream semantics of the materialized path.
  for (int p = 0; p < procs; ++p) {
    const auto proc = static_cast<ProcId>(p);
    pull(proc);
    if (!has_pending_[proc]) {
      ++finished_;
    } else {
      ++participants_;
      schedule(proc, 0);
    }
  }

  while (true) {
    const std::uint64_t head = ready_.min();
    if (head == ReadyTree::kIdle) {
      break;  // every processor is finished or blocked
    }
    const Cycle now = ReadyTree::when_of(head);
    const ProcId proc = ReadyTree::proc_of(head);

    ensure(has_pending_[proc], "processor scheduled past its trace");
    // Copy out the in-flight event, then refill the lookahead slot — the
    // only place the engine touches the source, so a streaming producer
    // sees exactly one pull per consumed event per processor.
    const TraceEvent ev = pending_[proc];
    pull(proc);
    Cycle resume = now + config_.issue_cost;
    bool runnable = true;

    switch (ev.kind) {
      case TraceEvent::Kind::kRead: {
        const BlockAddr block = block_of(ev.addr);
        resume += system_.access(proc, block, false, now);
        if (check::compiled() && checker_ != nullptr) {
          checker_->on_access(proc, block, false, now);
        }
        break;
      }
      case TraceEvent::Kind::kWrite: {
        const BlockAddr block = block_of(ev.addr);
        const Cycle lat = system_.access(proc, block, true, now);
        if (check::compiled() && checker_ != nullptr) {
          checker_->on_access(proc, block, true, now);
        }
        if (!config_.release_consistency) {
          resume += lat;
          break;
        }
        // Release consistency: the write retires into the buffer and the
        // processor moves on; the transactions drain concurrently in the
        // background (the RAC tracks each one's outstanding acks).
        auto& buffer = write_buffer_[proc];
        std::erase_if(buffer,
                      [now](Cycle completion) { return completion <= now; });
        Cycle start = now;
        if (static_cast<int>(buffer.size()) >= config_.write_buffer_depth) {
          // Buffer full: wait until the earliest outstanding write lands.
          // The stalled write still retires into the buffer, so it counts
          // as buffered too — `buffered_writes` is every RC write and
          // `buffer_stalls` the subset that found the buffer full.
          ++sync_.buffer_stalls;
          auto earliest = std::min_element(buffer.begin(), buffer.end());
          start = *earliest;
          buffer.erase(earliest);
          resume = start + config_.issue_cost;
        }
        ++sync_.buffered_writes;
        buffer.push_back(start + lat);
        resume += config_.write_buffer_cost;
        break;
      }
      case TraceEvent::Kind::kThink:
        resume += ev.arg;
        break;
      case TraceEvent::Kind::kLock: {
        LockState& lock = locks_[ev.addr];
        sync_msg(MsgClass::kRequest);
        if (!lock.held) {
          lock.held = true;
          lock.holder = proc;
          sync_msg(MsgClass::kReply);
          resume += config_.lock_cost;
          ++sync_.lock_acquires;
          if (obs_on(obs::EvClass::kLock)) {
            recorder_->record_proc(
                proc, {now, 0, ev.addr, 0, obs::EvType::kLockGrant});
          }
        } else {
          ++sync_.lock_contended;
          lock.waiters.push_back(proc);
          runnable = false;  // resumed by a future unlock
          ++blocked_;
          if (obs_on(obs::EvClass::kLock)) {
            recorder_->record_proc(
                proc, {now, 0, ev.addr, 0, obs::EvType::kLockQueue});
          }
          obs_block(proc, now, obs::EvType::kStallLock, ev.addr);
        }
        break;
      }
      case TraceEvent::Kind::kUnlock: {
        auto it = locks_.find(ev.addr);
        ensure(it != locks_.end() && it->second.held &&
                   it->second.holder == proc,
               "unlock of a lock not held by this processor");
        // A release fences: buffered writes must be globally performed
        // before the lock is handed on.
        const Cycle eff = drained(proc, now);
        handle_unlock(ev.addr, it->second, eff);
        resume = eff + config_.issue_cost + config_.unlock_cost;
        break;
      }
      case TraceEvent::Kind::kBarrier: {
        BarrierState& barrier = barriers_[ev.addr];
        sync_msg(MsgClass::kRequest);  // arrival
        const Cycle eff = drained(proc, now);  // barriers fence too
        if (barrier.arrived == 0) {
          barrier.first_arrival = eff;
        }
        barrier.latest_arrival = std::max(barrier.latest_arrival, eff);
        barrier.waiters.push_back(proc);
        // Only processors with a reference stream ever reach a barrier; a
        // processor with an empty stream finishes at t=0 and must not be
        // waited for, or the episode deadlocks.
        if (++barrier.arrived < participants_) {
          runnable = false;
          ++blocked_;
          obs_block(proc, eff, obs::EvType::kStallBarrier, ev.addr);
        } else {
          // Last arrival: release everyone (including this processor).
          const Cycle release = barrier.latest_arrival + config_.barrier_cost;
          sync_msg(MsgClass::kReply,
                   static_cast<std::uint64_t>(barrier.waiters.size()));
          if (obs_on(obs::EvClass::kBarrier)) {
            // The episode spans first arrival → release, recorded on the
            // releasing (last-arriving) processor's lane.
            recorder_->record_proc(
                proc, {barrier.first_arrival, release - barrier.first_arrival,
                       ev.addr, barrier.waiters.size(),
                       obs::EvType::kBarrierEpisode});
          }
          for (const ProcId waiter : barrier.waiters) {
            if (waiter != proc) {
              wake(waiter, release);
            }
          }
          ++sync_.barrier_episodes;
          barriers_.erase(ev.addr);
          resume = release;
        }
        break;
      }
    }

    if (runnable) {
      if (has_pending_[proc]) {
        schedule(proc, resume);  // overwrites this processor's slot
      } else {
        // The last buffered writes must land before the processor is done.
        finish_time_[proc] = std::max(resume, drained(proc, resume));
        ++finished_;
        ready_.clear(proc);
      }
    } else {
      ready_.clear(proc);  // blocked; a future unlock/release wakes it
    }

    // An attached checker halts the run at the first violation: the state
    // is already incoherent, and simulating on would only let the
    // corruption cascade into protocol-internal aborts.
    if (check::compiled() && checker_ != nullptr &&
        checker_->halt_requested()) {
      halted_ = true;
      break;
    }
  }

  // A blocked processor at drain time means a malformed trace (mismatched
  // barriers or an unlock that never comes) — unless the checker stopped
  // the run early, in which case in-flight processors are expected.
  ensure(halted_ || (finished_ == procs && blocked_ == 0),
         "simulation deadlock: trace synchronization is malformed");

  RunResult result;
  result.exec_cycles =
      *std::max_element(finish_time_.begin(), finish_time_.end());
  result.protocol = system_.stats();
  result.sync = sync_;
  result.cache = system_.aggregate_cache_stats();
  return result;
}

}  // namespace dircc
