// Home-sharded parallel simulation engine (docs/PARALLELISM.md).
//
// Partitions the simulated machine along the home-node / mesh-region axis
// (ShardPlan): each shard's fetch worker owns the reference streams of the
// processors co-located with a contiguous band of home directories and runs
// its own pull loop over them, pushing decoded events into bounded
// per-processor SPSC rings. The commit plane is the unmodified serial
// Engine, replaying from those rings through a queue-backed EventSource in
// exact global (time, proc) order.
//
// Determinism contract: the sharded engine is byte-identical to the serial
// engine for every RunResult field at every thread count. The contract is
// structural, not incidental — fetch workers only move events (per-
// processor order is preserved by the FIFO rings, and per-processor streams
// are independent by the EventSource contract), while every protocol state
// transition still happens on the commit thread in serial order. The ring
// capacity is the conservative lookahead window: a producer that runs a
// full window ahead of the commit frontier waits, which bounds memory and
// keeps shards within one epoch of committed time. Thread count and window
// size are therefore pure execution knobs (EngineConfig::engine_threads,
// EngineConfig::shard_queue_capacity); tests/test_sharded_engine.cpp and
// the CI shard-smoke job hold the contract.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.hpp"

namespace dircc {

/// Host-side execution telemetry of one sharded run. Never part of
/// RunResult: these numbers depend on thread scheduling and are only for
/// tuning (docs/PARALLELISM.md) and tests.
struct ShardTelemetry {
  int shards = 0;         ///< shards in the plan (0 = serial delegation)
  int fetch_threads = 0;  ///< worker threads actually spawned
  std::uint64_t events_forwarded = 0;  ///< events moved through the rings
  std::uint64_t producer_full_waits = 0;  ///< pushes that found a ring full
  std::uint64_t consumer_empty_waits = 0;  ///< pops that found a ring empty
};

/// Drop-in parallel replacement for Engine: same constructors, same run(),
/// same results — byte for byte. With config.engine_threads <= 1 it *is*
/// the serial engine (zero-overhead delegation, no threads, no queues).
/// With N >= 2 it spawns min(N-1, clusters) shard fetch workers and commits
/// on the calling thread. Single-shot: construct, run().
class ShardedEngine {
 public:
  /// Materialized form, mirroring Engine(system, trace, ...): wraps `trace`
  /// in a MaterializedSource. `recorder` and `checker` are forwarded to the
  /// commit-plane engine and only ever called from the commit thread.
  ShardedEngine(MemorySystem& system, const ProgramTrace& trace,
                EngineConfig config = {},
                obs::TraceRecorder* recorder = nullptr,
                check::AccessObserver* checker = nullptr);

  /// Streaming form, mirroring Engine(system, source, ...). Fetch workers
  /// pull *different* processors' streams concurrently, which the
  /// EventSource threading contract permits; the caller keeps ownership of
  /// `source` and must not touch it until run() returns.
  ShardedEngine(MemorySystem& system, EventSource& source,
                EngineConfig config = {},
                obs::TraceRecorder* recorder = nullptr,
                check::AccessObserver* checker = nullptr);

  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Runs the simulation to completion and returns the result. If a fetch
  /// worker fails, all threads are stopped and the worker's exception is
  /// rethrown here (a commit-plane exception is rethrown only when no
  /// worker failed first).
  RunResult run();

  /// True when the attached checker stopped the run early (mirrors
  /// Engine::halted_by_checker; valid after run()).
  bool halted_by_checker() const { return halted_; }

  /// Shards used by the last run (0 when it delegated to the serial
  /// engine). Valid after run().
  int shards_used() const { return telemetry_.shards; }

  const ShardTelemetry& telemetry() const { return telemetry_; }

 private:
  struct Pipeline;  // fetch plane: plan, rings, workers (sharded_engine.cpp)

  MemorySystem& system_;
  /// Set only by the ProgramTrace constructor; `source_` then points at it.
  std::unique_ptr<MaterializedSource> owned_source_;
  EventSource* source_;
  EngineConfig config_;
  obs::TraceRecorder* recorder_;
  check::AccessObserver* checker_;
  std::unique_ptr<Pipeline> pipeline_;
  ShardTelemetry telemetry_;
  bool halted_ = false;
  bool ran_ = false;
};

}  // namespace dircc
