// Bridges the simulator's stats structs into the obs::MetricsRegistry.
//
// Each stats struct registers every one of its fields here, once, under a
// stable name. Every sink that iterates the registry — the harness JSONL
// records, the --metrics export — then picks up new counters automatically:
// add a field to a stats struct, register it in the matching function in
// run_metrics.cpp, and it appears in every output format with no further
// plumbing.
#pragma once

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace dircc {

/// Registers the five message-class counters plus derived totals under
/// `prefix` ("msgs_total", "msgs_requests_wb", "msgs_replies",
/// "msgs_inv_ack" when prefix == "msgs").
void register_metrics(obs::MetricsRegistry& registry,
                      const MessageCounters& messages,
                      const std::string& prefix);

/// Registers every CacheStats field ("cache_*").
void register_metrics(obs::MetricsRegistry& registry, const CacheStats& cache);

/// Registers every SyncStats field (the engine's synchronization side).
void register_metrics(obs::MetricsRegistry& registry, const SyncStats& sync);

/// Registers every ProtocolStats field, including the invalidation
/// distribution as a histogram metric ("inval_distribution") and its
/// scalar summaries ("inval_events", "inval_total", "inval_mean").
void register_metrics(obs::MetricsRegistry& registry,
                      const ProtocolStats& protocol);

/// Registers the complete RunResult: exec_cycles, the combined
/// protocol+sync message totals, and the three stats structs above.
void register_metrics(obs::MetricsRegistry& registry, const RunResult& result);

}  // namespace dircc
