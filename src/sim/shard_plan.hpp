// Shard partitioner for the sharded engine (docs/PARALLELISM.md).
//
// Cuts the simulated machine into per-worker shards along the home-node /
// mesh-region axis: the cluster grid is divided into contiguous row-major
// mesh bands (MeshTopology::region_range), every cluster's processors
// follow their cluster, and each shard therefore owns a physically adjacent
// set of home directories together with the processors co-located with
// them. Today the fetch plane uses the processor side of the cut (each
// worker owns its shard's reference streams); the home side is the stable
// axis the commit plane will parallelize along, and cross-shard traffic
// classification (shard_of_node on a message's endpoints) already falls out
// of the same cut.
//
// The plan is a pure function of (num_procs, procs_per_cluster,
// requested_shards): it never depends on thread scheduling, so everything
// derived from it is deterministic.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "network/mesh.hpp"

namespace dircc {

class ShardPlan {
 public:
  /// Builds the cut. `requested_shards` is clamped to [1, num_clusters]: a
  /// shard must own at least one whole cluster (the intra-cluster bus makes
  /// a cluster the smallest unit that can be owned by one worker).
  ShardPlan(int num_procs, int procs_per_cluster, int requested_shards);

  int num_shards() const { return num_shards_; }
  int num_procs() const { return static_cast<int>(shard_of_proc_.size()); }

  int shard_of_proc(ProcId proc) const {
    return shard_of_proc_[static_cast<std::size_t>(proc)];
  }
  /// Shard owning home node (cluster) `node` — also the shard that would
  /// execute a directory transaction homed there under commit-plane
  /// sharding, and the classifier for cross-shard message accounting.
  int shard_of_node(NodeId node) const {
    return shard_of_node_[static_cast<std::size_t>(node)];
  }

  /// Processors owned by `shard`, ascending. Never empty.
  const std::vector<ProcId>& procs_of(int shard) const {
    return procs_of_[static_cast<std::size_t>(shard)];
  }

  /// Cluster-id interval [first, last) owned by `shard` (a contiguous
  /// row-major band of the cluster mesh).
  MeshTopology::RegionRange nodes_of(int shard) const;

 private:
  int num_shards_;
  int num_clusters_;
  std::vector<int> shard_of_proc_;
  std::vector<int> shard_of_node_;
  std::vector<std::vector<ProcId>> procs_of_;
};

}  // namespace dircc
