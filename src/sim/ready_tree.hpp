// Next-event selection for the simulation engine.
//
// Each processor has at most one pending event (it executes its reference
// stream sequentially), so the engine's scheduling problem is "min over P
// slots", not a general priority queue. ReadyTree keeps one slot per
// processor in an implicit tournament tree: reading the next event is O(1)
// at the root and rescheduling a processor updates one leaf-to-root path —
// no sift-down data movement like the binary heap of (time, proc) pairs it
// replaces, and single-word comparisons throughout.
//
// Determinism: a slot stores (when << 16) | proc, so unsigned comparison
// orders events by time with processor id as the tie-break — exactly the
// pop order of the old heap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace dircc {

class ReadyTree {
 public:
  /// Slot value of a processor with no pending event. Compares after every
  /// real event, so an all-idle tree reports it as the minimum.
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  /// Sizes the tree for `procs` slots, all idle.
  void init(std::size_t procs) {
    ensure(procs <= 65536, "ready tree encodes processor ids in 16 bits");
    cap_ = 1;
    while (cap_ < procs) {
      cap_ *= 2;
    }
    nodes_.assign(2 * cap_, kIdle);
  }

  static std::uint64_t encode(Cycle when, ProcId proc) {
    ensure(when < (Cycle{1} << 47),
           "simulated time overflows the ready-tree encoding");
    return (when << 16) | proc;
  }
  static Cycle when_of(std::uint64_t slot) { return slot >> 16; }
  static ProcId proc_of(std::uint64_t slot) {
    return static_cast<ProcId>(slot & 0xffff);
  }

  /// Smallest live slot, or kIdle when every processor is idle.
  std::uint64_t min() const { return nodes_[1]; }

  void set(ProcId proc, std::uint64_t slot) {
    std::size_t i = cap_ + proc;
    nodes_[i] = slot;
    while (i > 1) {
      i >>= 1;
      const std::uint64_t left = nodes_[2 * i];
      const std::uint64_t right = nodes_[2 * i + 1];
      nodes_[i] = left < right ? left : right;
    }
  }

  void clear(ProcId proc) { set(proc, kIdle); }

 private:
  std::size_t cap_ = 1;
  std::vector<std::uint64_t> nodes_ = std::vector<std::uint64_t>(2, kIdle);
};

}  // namespace dircc
