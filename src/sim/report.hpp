// Machine-readable run reports.
//
// Serializes a RunResult (plus the configuration that produced it) as JSON
// or appends one CSV row per run, so experiment sweeps can be plotted
// without scraping the human-oriented tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace dircc {

/// A flat key/value view of one run: label plus every metric worth
/// plotting. Values are rendered as JSON numbers (cycle counts and message
/// counts are integers; means are doubles).
class RunReport {
 public:
  RunReport(std::string label, const RunResult& result);

  /// Adds a custom dimension (e.g. "scheme" -> "Dir3CV2").
  void add_field(std::string key, std::string value);
  void add_field(std::string key, std::uint64_t value);
  void add_field(std::string key, double value);

  /// Writes `{"label": ..., "exec_cycles": ..., ...}`.
  void write_json(std::ostream& out) const;

  /// Column names in CSV order.
  std::vector<std::string> csv_header() const;
  /// One CSV row matching csv_header().
  std::vector<std::string> csv_row() const;

 private:
  struct Field {
    std::string key;
    std::string rendered;  ///< JSON-compatible rendering
    bool quoted;
  };
  std::vector<Field> fields_;
};

/// Writes a JSON array of reports.
void write_json_array(std::ostream& out, const std::vector<RunReport>& runs);

/// Writes a CSV table (header from the first report; all reports must
/// share one shape).
void write_csv(std::ostream& out, const std::vector<RunReport>& runs);

}  // namespace dircc
