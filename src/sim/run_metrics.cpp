#include "sim/run_metrics.hpp"

namespace dircc {

void register_metrics(obs::MetricsRegistry& registry,
                      const MessageCounters& messages,
                      const std::string& prefix) {
  registry.set(prefix + "_total", messages.total());
  registry.set(prefix + "_requests_wb", messages.requests_with_writebacks());
  registry.set(prefix + "_replies", messages.get(MsgClass::kReply));
  registry.set(prefix + "_inv_ack", messages.inv_plus_ack());
}

void register_metrics(obs::MetricsRegistry& registry,
                      const CacheStats& cache) {
  registry.set("cache_read_hits", cache.read_hits);
  registry.set("cache_read_misses", cache.read_misses);
  registry.set("cache_write_hits", cache.write_hits);
  registry.set("cache_write_upgrades", cache.write_upgrades);
  registry.set("cache_write_misses", cache.write_misses);
  registry.set("cache_evictions_clean", cache.evictions_clean);
  registry.set("cache_evictions_dirty", cache.evictions_dirty);
  registry.set("cache_invals_received", cache.invalidations_received);
  registry.set("cache_invals_empty", cache.invalidations_empty);
}

void register_metrics(obs::MetricsRegistry& registry, const SyncStats& sync) {
  registry.set("barrier_episodes", sync.barrier_episodes);
  registry.set("lock_acquires", sync.lock_acquires);
  registry.set("lock_contended", sync.lock_contended);
  registry.set("lock_retries", sync.lock_retries);
  registry.set("buffered_writes", sync.buffered_writes);
  registry.set("buffer_stalls", sync.buffer_stalls);
  registry.set("fence_wait_cycles", sync.fence_wait_cycles);
}

void register_metrics(obs::MetricsRegistry& registry,
                      const ProtocolStats& protocol) {
  registry.set("accesses", protocol.accesses);
  registry.set("cache_hits", protocol.cache_hits);
  registry.set("read_transactions", protocol.read_transactions);
  registry.set("write_transactions", protocol.write_transactions);
  registry.set("ownership_transfers", protocol.ownership_transfers);
  registry.set("extraneous_invals", protocol.extraneous_invalidations);
  registry.set("nb_read_displacements", protocol.nb_read_displacements);
  registry.set("sharing_writebacks", protocol.sharing_writebacks);
  registry.set("dirty_eviction_writebacks",
               protocol.dirty_eviction_writebacks);
  registry.set("sparse_replacements", protocol.sparse_replacements);
  registry.set("sparse_repl_invals", protocol.sparse_replacement_invals);
  registry.set("replacement_hints", protocol.replacement_hints_sent);
  registry.set("local_transactions", protocol.local_transactions);
  registry.set("remote2_transactions", protocol.remote2_transactions);
  registry.set("remote3_transactions", protocol.remote3_transactions);
  registry.set("contention_wait_cycles", protocol.contention_wait_cycles);
  registry.set("link_wait_cycles", protocol.link_wait_cycles);
  registry.set("home_wait_cycles", protocol.home_wait_cycles);
  registry.set("inval_events", protocol.inval_distribution.events());
  registry.set("inval_total", protocol.inval_distribution.total());
  registry.set_gauge("inval_mean", protocol.inval_distribution.mean());
  registry.histogram("inval_distribution")
      .merge(protocol.inval_distribution);
  if (protocol.chips > 1) {
    // Two-level hierarchy only: registering these conditionally keeps flat
    // runs' metric sets (and JSONL rows) exactly as before.
    registry.set("hier_chips", static_cast<std::uint64_t>(protocol.chips));
    registry.set("hier_chip_local_transactions",
                 protocol.chip_local_transactions);
    register_metrics(registry, protocol.chip_messages, "hier_chip_msgs");
  }
}

void register_metrics(obs::MetricsRegistry& registry,
                      const RunResult& result) {
  registry.set("exec_cycles", result.exec_cycles);
  register_metrics(registry, result.total_messages(), "msgs");
  register_metrics(registry, result.protocol);
  register_metrics(registry, result.sync);
  register_metrics(registry, result.cache);
}

}  // namespace dircc
