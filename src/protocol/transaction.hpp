// Transaction IR: the message-level record of one coherence transaction.
//
// The protocol body (CoherenceSystem::access_internal) no longer talks to
// the message counters, the trace recorder or the latency model directly.
// Instead it *describes* each transaction as an ordered DAG of `Hop`
// records — one per coherence message, including intra-cluster ones — and
// every consumer derives its view from that single description:
//
//   * MessageCounters      <- fold() over the network hops (src != dst)
//   * latency              <- a LatencyBackend walking the hops/fan-outs
//   * TraceRecorder        <- per-hop spans + deferred protocol events
//   * DIRCC_CHECK faults   <- message-loss faults keyed to hop kinds
//
// A Hop's `dep` is the index of the hop that causally precedes it (-1 for
// the initial request), so backends can replay the transaction's message
// schedule; `fanout` ties invalidation/ack hops to the Fanout episode that
// produced them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "network/message.hpp"

namespace dircc {
namespace check {
enum class FaultKind : std::uint8_t;
}  // namespace check

/// What a coherence message carries — finer-grained than MsgClass so the
/// consumers can tell (say) a sparse-victim flush from an eviction
/// writeback, which count identically but cost differently.
enum class HopKind : std::uint8_t {
  kRequest,            ///< requester -> home
  kForward,            ///< home -> dirty owner (forwarded request)
  kReply,              ///< home/owner -> requester: data and/or ownership
  kInval,              ///< home -> sharer (write-caused fan-out)
  kDisplacementInval,  ///< home -> displaced cluster (Dir_iNB overflow)
  kReclaimInval,       ///< home -> sharer of a sparse victim entry
  kAck,                ///< invalidated cluster -> requester
  kReclaimAck,         ///< invalidated cluster -> home RAC
  kTransferAck,        ///< old owner -> home (ownership transfer confirm)
  kSharingWriteback,   ///< owner -> home (demotion to Shared)
  kVictimFetch,        ///< home -> dirty owner of a sparse victim
  kVictimWriteback,    ///< dirty owner -> home (sparse victim flush)
  kEvictionWriteback,  ///< cache -> home (dirty line displaced by a fill)
  kReplacementHint,    ///< cache -> home (shared line displaced, hints on)
  // Chip-boundary messages of the two-level hierarchical organization
  // (docs/HIERARCHY.md). Each one is a gateway-to-gateway message crossing
  // the inter-chip network; flat (chips=1) machines never emit them.
  kChipRequest,        ///< requester gateway -> home gateway
  kChipForward,        ///< home gateway -> owner-chip gateway
  kChipReply,          ///< serving gateway -> requester gateway
  kChipInval,          ///< home gateway -> sharer-chip gateway
  kChipAck,            ///< invalidated chip gateway -> collection point
  kChipWriteback,      ///< owner-chip gateway -> home gateway
};

inline constexpr int kNumHopKinds = 20;

const char* hop_kind_name(HopKind kind);

/// The traffic class a hop is accounted under (the paper's Section 5
/// message taxonomy).
MsgClass hop_msg_class(HopKind kind);

/// True for the gateway-to-gateway hop kinds that cross the chip boundary
/// on a hierarchical machine (stats and latency consumers account them as
/// inter-chip traffic).
bool hop_crosses_chips(HopKind kind);

/// The message-loss fault (src/check) that a hop of this kind is exposed
/// to, or FaultKind::kNone. Directory-state faults (forget-sharer) are not
/// message losses and stay keyed to their directory call sites.
check::FaultKind hop_fault_site(HopKind kind);

/// One coherence message. `src == dst` hops are real protocol work served
/// by the cluster bus: they never count as network traffic, but latency
/// backends still see them (e.g. a sparse victim fetched from the home's
/// own cluster still pays the memory round trip).
struct Hop {
  HopKind kind = HopKind::kRequest;
  NodeId src = 0;
  NodeId dst = 0;
  std::int16_t dep = -1;     ///< index of the causally preceding hop
  std::int16_t fanout = -1;  ///< owning Fanout episode, -1 if none
};

/// Why a burst of invalidations was sent.
enum class FanoutCause : std::uint8_t {
  kWriteShared,          ///< write to a Shared block (Fig. 4 write invals)
  kPointerDisplacement,  ///< Dir_iNB pointer eviction (read-caused invals)
  kSparseReclaim,        ///< sparse victim entry being scrubbed
};

const char* fanout_cause_name(FanoutCause cause);

/// One invalidation episode: the set of inval/ack hop pairs sent for one
/// cause, plus the network totals the latency/stats consumers need.
struct Fanout {
  FanoutCause cause = FanoutCause::kWriteShared;
  std::int16_t dep = -1;         ///< hop the fan-out causally follows
  int network_invalidations = 0; ///< invals that crossed the mesh
  int network_acks = 0;          ///< acks that crossed the mesh
};

/// A protocol-layer trace event whose emission is deferred until the
/// transaction commits (so the IR stays the single source of truth while
/// the recorded order matches the protocol's internal order).
struct ObsNote {
  std::uint8_t type = 0;  ///< obs::EvType, widened to avoid the include
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};

/// How an access was resolved.
enum class TxnKind : std::uint8_t {
  kNone,       ///< no transaction in flight (cache hit)
  kLocal,      ///< served by the intra-cluster bus (snoop)
  kDirectory,  ///< full directory transaction at the home
};

/// The IR for one access. Built by the protocol body, consumed at commit.
struct Transaction {
  TxnKind kind = TxnKind::kNone;
  bool is_write = false;
  /// The transaction pays an extra invalidation round before completing
  /// (the requester waits for acks). Set explicitly by the protocol: a
  /// 3-party forward does NOT wait on displacement invals it triggered.
  bool ack_round = false;
  NodeId requester = kNoNode;
  NodeId home = kNoNode;
  NodeId owner = kNoNode;  ///< dirty owner of a 3-party transaction
  BlockAddr block = 0;
  std::vector<Hop> hops;
  std::vector<Fanout> fanouts;
  std::vector<ObsNote> notes;

  void reset() {
    kind = TxnKind::kNone;
    is_write = false;
    ack_round = false;
    requester = home = owner = kNoNode;
    block = 0;
    hops.clear();
    fanouts.clear();
    notes.clear();
  }

  bool active() const { return kind != TxnKind::kNone; }

  /// Appends a hop and returns its index (usable as a later hop's `dep`).
  int add_hop(HopKind hop_kind, NodeId src, NodeId dst, int dep = -1,
              int fanout = -1) {
    hops.push_back({hop_kind, src, dst, static_cast<std::int16_t>(dep),
                    static_cast<std::int16_t>(fanout)});
    return static_cast<int>(hops.size()) - 1;
  }

  /// Opens a fan-out episode; inval/ack hops tagged with the returned
  /// index bump its network totals automatically.
  int open_fanout(FanoutCause cause, int dep) {
    fanouts.push_back({cause, static_cast<std::int16_t>(dep), 0, 0});
    return static_cast<int>(fanouts.size()) - 1;
  }

  void note(std::uint8_t type, std::uint64_t a0, std::uint64_t a1) {
    notes.push_back({type, a0, a1});
  }

  /// Network messages (src != dst hops).
  int network_messages() const {
    int n = 0;
    for (const Hop& hop : hops) {
      n += hop.src != hop.dst ? 1 : 0;
    }
    return n;
  }

  /// Folds the network hops into per-class message counters.
  void fold(MessageCounters& counters) const {
    for (const Hop& hop : hops) {
      if (hop.src != hop.dst) {
        counters.add(hop_msg_class(hop.kind));
      }
    }
  }
};

/// Serializes a transaction for golden-shape tests and debugging:
/// one header line, then one line per hop in emission order.
std::string format_transaction(const Transaction& txn);

}  // namespace dircc
