// CoherenceSystem: the DASH-style directory-based invalidation protocol.
//
// This is the machine model of Section 2 of the paper: processors grouped
// into clusters, memory (and the corresponding directory slice) interleaved
// across clusters at block granularity, a snoopy bus inside each cluster and
// point-to-point coherence messages between clusters.
//
// The system is driven one memory access at a time. Each access runs the
// complete coherence transaction atomically against the architectural state
// (caches, directories, memory versions), counts every inter-cluster message
// it generates, and returns the access latency in processor cycles. The
// event-driven simulator (src/sim) interleaves per-processor access streams
// by timestamp on top of this.
//
// Protocol summary (Section 2):
//  * Read miss, block clean/shared at home  -> 2-cluster transaction.
//  * Read miss, block dirty in a third cluster -> request forwarded to the
//    owner, which replies to the requester and sends a sharing writeback to
//    the home (3-cluster transaction).
//  * Write (miss or upgrade) -> home sends invalidations to every cluster
//    the directory entry names, returns an ownership reply carrying the
//    invalidation count; each invalidated cluster acks the requester; the
//    write completes when all acks arrive.
//  * Sparse-directory entry replacement -> every copy tracked by the victim
//    entry is invalidated (acks collected by the home's Remote Access Cache)
//    before the entry is reused; a dirty victim is first written back.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "common/flat_map.hpp"
#include "check/api.hpp"
#include "common/stats.hpp"
#include "directory/format.hpp"
#include "directory/level.hpp"
#include "directory/store.hpp"
#include "network/latency.hpp"
#include "network/message.hpp"
#include "network/topology.hpp"
#include "obs/trace_recorder.hpp"
#include "protocol/latency_backend.hpp"
#include "protocol/memory_system.hpp"
#include "protocol/transaction.hpp"

namespace dircc {

/// Two-level hierarchical directory organization (docs/HIERARCHY.md).
///
/// With `chips > 1` the machine's clusters are partitioned into `chips`
/// contiguous bands. Each chip runs an *intra-chip* directory (one store
/// per chip, sharer sets over that chip's local clusters) and the homes run
/// an *inter-chip* directory (one store slice per home cluster, sharer sets
/// over chips). Each level independently picks any src/directory scheme and
/// sparse/dense store organization. Cluster 0 of each chip is its gateway:
/// every message crossing the chip boundary is a gateway-to-gateway hop of
/// one of the kChip* kinds.
///
/// `chips == 1` (the default) is the flat machine: every other field of
/// this struct is ignored and the protocol takes the original single-level
/// code path, byte-identical to the pre-hierarchy simulator.
struct HierarchyConfig {
  int chips = 1;
  /// Inter-chip level at the homes; `inter.num_nodes` must equal `chips`.
  SchemeConfig inter = SchemeConfig::full(1);
  StoreConfig inter_store;  ///< sparse_entries is per home cluster
  /// Intra-chip level, one store per chip; `intra.num_nodes` must equal
  /// `num_clusters / chips`.
  SchemeConfig intra = SchemeConfig::full(1);
  StoreConfig intra_store;  ///< sparse_entries is per chip
};

/// Full machine configuration.
struct SystemConfig {
  int num_procs = 32;
  int procs_per_cluster = 1;
  std::uint64_t cache_lines_per_proc = 1024;  ///< lines, not bytes
  int cache_assoc = 4;
  /// Optional write-through first-level cache in front of the coherence
  /// point (the DASH primary/secondary split of Section 5). 0 disables it;
  /// when enabled, reads hitting the L1 cost `latency.cache_hit`, L2 hits
  /// cost `latency.l2_hit`, and inclusion is maintained (invalidations and
  /// L2 evictions also kill the L1 copy).
  std::uint64_t l1_lines_per_proc = 0;
  int l1_assoc = 4;
  int block_size = 16;  ///< bytes; used for Addr -> BlockAddr conversion
  SchemeConfig scheme = SchemeConfig::full(32);
  StoreConfig store;  ///< sparse_entries is interpreted *per home cluster*
  /// Consecutive home-local blocks tracked by one directory entry
  /// (Section 7: "make multiple memory blocks share one wide entry").
  /// The group shares one sharer field — the union of each member's
  /// sharers — while each block keeps its own state and dirty owner.
  /// 1 (the default) is the paper's per-block organization.
  int blocks_per_group = 1;
  LatencyModel latency;
  bool validate = true;  ///< run value-coherence checks on every access
  /// Send a replacement hint to the home when a *shared* line is displaced,
  /// so precise directory representations can drop the stale sharer (and a
  /// sparse directory can free entries whose last copy is gone). Costs one
  /// network message per hint; off in the paper's baseline protocol
  /// (Section 7 discusses the trade-off space).
  bool replacement_hints = false;
  /// Model home-directory occupancy: each directory transaction holds the
  /// home's controller for `latency.dir_occupancy` cycles plus
  /// `latency.per_invalidation` per message it emits; concurrent requests
  /// to a busy home queue behind it. Off by default — the paper's
  /// simulator (one processor per cluster, underutilized buses) is also
  /// contention-free, and Section 6.2 notes real machines would amplify
  /// the message-count differences; this switch quantifies that remark.
  bool model_contention = false;
  /// Latency backend interpreting each access's Transaction IR. The
  /// default analytic backend reproduces the paper's closed-form numbers
  /// byte-for-byte; the queued backend adds mesh-link and home-controller
  /// FIFO occupancy (knobs in `queued`).
  BackendKind backend = BackendKind::kAnalytic;
  QueuedLatencyConfig queued;
  /// Seeded protocol mutation for checker validation (src/check). Inert
  /// (kNone) in all normal runs; every fault site compiles away at
  /// DIRCC_CHECK=0.
  check::FaultSpec fault;
  std::uint64_t seed = 1;
  /// Two-level chip hierarchy; `hierarchy.chips == 1` keeps the flat
  /// machine (and the flat code path) exactly as before.
  HierarchyConfig hierarchy;

  int num_clusters() const { return num_procs / procs_per_cluster; }
};

/// Everything the benchmarks report.
struct ProtocolStats {
  MessageCounters messages;
  Histogram inval_distribution;  ///< network invalidations per write event
  std::uint64_t accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t read_transactions = 0;
  std::uint64_t write_transactions = 0;
  std::uint64_t ownership_transfers = 0;      ///< writes to dirty blocks
  std::uint64_t extraneous_invalidations = 0; ///< target held no copy
  std::uint64_t nb_read_displacements = 0;    ///< Dir_iNB pointer evictions
  std::uint64_t sharing_writebacks = 0;
  std::uint64_t dirty_eviction_writebacks = 0;
  std::uint64_t sparse_replacements = 0;
  std::uint64_t sparse_replacement_invals = 0;
  std::uint64_t replacement_hints_sent = 0;
  std::uint64_t local_transactions = 0;
  std::uint64_t remote2_transactions = 0;
  std::uint64_t remote3_transactions = 0;
  Cycle contention_wait_cycles = 0;  ///< queueing at busy home directories
  Cycle link_wait_cycles = 0;  ///< queued backend: mesh-channel FIFO waits
  Cycle home_wait_cycles = 0;  ///< queued backend: home-controller FIFO waits
  // --- two-level hierarchy (all zero on a flat machine) ---
  int chips = 1;  ///< config.hierarchy.chips, echoed for reporting
  /// Messages that crossed the chip boundary (kChip* hops); a subset of
  /// `messages`, broken out per class — the paper's traffic question asked
  /// one level up: how much escapes the chip?
  MessageCounters chip_messages;
  /// Directory transactions served entirely by the requester's own chip
  /// (on-chip provider or on-chip ownership transfer; zero chip crossings).
  std::uint64_t chip_local_transactions = 0;
};

/// The simulated machine.
class CoherenceSystem final : public MemorySystem {
 public:
  explicit CoherenceSystem(const SystemConfig& config);

  /// Performs one shared-data access by processor `proc` to `block` and
  /// returns its latency. All protocol side effects (invalidations,
  /// writebacks, sparse replacements) happen synchronously. With
  /// `model_contention`, `now` feeds the home-directory occupancy queue.
  Cycle access(ProcId proc, BlockAddr block, bool is_write,
               Cycle now) override;
  using MemorySystem::access;

  const SystemConfig& config() const { return config_; }
  const ProtocolStats& stats() const override { return stats_; }
  /// Sharer format of the home-side level (the flat directory, or the
  /// inter-chip level of a hierarchical machine).
  const SharerFormat& format() const { return home_level_->format(); }

  // --- two-level hierarchy (docs/HIERARCHY.md) ---
  bool hierarchical() const { return clusters_per_chip_ != num_clusters_; }
  int chips() const { return config_.hierarchy.chips; }
  int clusters_per_chip() const { return clusters_per_chip_; }
  /// Chip that cluster `c` belongs to (clusters are banded contiguously).
  int chip_of_cluster(NodeId c) const { return c / clusters_per_chip_; }
  /// Local cluster index of `c` within its chip.
  int chip_local_of(NodeId c) const { return c % clusters_per_chip_; }
  /// Gateway cluster of chip `q` (its local cluster 0).
  NodeId gateway_of(int q) const {
    return static_cast<NodeId>(q * clusters_per_chip_);
  }
  /// Intra-chip sharer format (hierarchical machines only).
  const SharerFormat& intra_format() const { return intra_level_->format(); }
  const DirectoryStore& intra_directory(int chip) const {
    return intra_level_->store(chip);
  }
  /// Intra-chip entry for `block` at `chip`, or nullptr (LRU-neutral).
  const DirEntry* peek_intra_entry(int chip, BlockAddr block) const;

  int num_procs() const override { return config_.num_procs; }
  int block_size() const override { return config_.block_size; }
  // The four address helpers below run on every access. Cluster counts,
  // cluster sizes and group sizes are powers of two in every machine we
  // model, so each division/modulo has a shift/mask fast path; the general
  // arithmetic stays as the fallback.
  NodeId cluster_of(ProcId proc) const override {
    return static_cast<NodeId>(ppc_shift_ >= 0
                                   ? proc >> ppc_shift_
                                   : proc / config_.procs_per_cluster);
  }
  NodeId home_of(BlockAddr block) const {
    return static_cast<NodeId>(
        cluster_shift_ >= 0 ? block & cluster_mask_
                            : block % static_cast<BlockAddr>(num_clusters_));
  }
  /// Home-local block number: which of this home's blocks `block` is.
  BlockAddr local_of(BlockAddr block) const {
    return cluster_shift_ >= 0
               ? block >> cluster_shift_
               : block / static_cast<BlockAddr>(num_clusters_);
  }

  /// Directory tracking unit for `block`: the group's base block address.
  BlockAddr group_key(BlockAddr block) const {
    if (config_.blocks_per_group == 1) {
      return block;
    }
    const auto clusters = static_cast<BlockAddr>(num_clusters_);
    const BlockAddr local = local_of(block);
    const auto group = static_cast<BlockAddr>(config_.blocks_per_group);
    const BlockAddr in_group =
        group_shift_ >= 0 ? local & (group - 1) : local % group;
    return (local - in_group) * clusters + home_of(block);
  }
  /// Position of `block` within its tracking group.
  int sub_of(BlockAddr block) const {
    const BlockAddr local = local_of(block);
    const auto group = static_cast<BlockAddr>(config_.blocks_per_group);
    return static_cast<int>(group_shift_ >= 0 ? local & (group - 1)
                                              : local % group);
  }
  /// Block address of group member `sub` given the group's base key.
  BlockAddr block_at(BlockAddr key, int sub) const {
    return key + static_cast<BlockAddr>(sub) *
                     static_cast<BlockAddr>(num_clusters_);
  }

  // --- introspection for tests and invariant checks ---
  const Cache& cache(ProcId proc) const { return caches_[proc]; }
  bool two_level() const { return !l1_.empty(); }
  /// First-level cache (two-level configurations only).
  const Cache& l1_cache(ProcId proc) const { return l1_[proc]; }
  const DirectoryStore& directory(NodeId home) const {
    return home_level_->store(home);
  }
  /// Directory entry for `block`, or nullptr (does not disturb LRU state).
  const DirEntry* peek_entry(BlockAddr block) const;
  /// Latest committed version of `block` (0 if never written).
  std::uint32_t latest_version(BlockAddr block) const;
  /// Version last written back to main memory for `block` (0 if never).
  std::uint32_t memory_version_of(BlockAddr block) const {
    return memory_version(block);
  }
  /// Seeded-fault firings so far (0 unless `config.fault` is set).
  std::uint64_t faults_injected() const { return faults_injected_; }
  /// Corrupting opportunities the configured fault has seen so far. The
  /// pair (opportunities, injected) is the full state of the seeded-fault
  /// automaton — the model checker (src/check/model) folds it into its
  /// canonical state encoding so exploration with a fault armed stays a
  /// sound reachability analysis.
  std::uint64_t fault_opportunities() const { return fault_opportunities_; }

  /// IR of the most recently committed transaction (empty — TxnKind::kNone
  /// — when the last access was a cache hit). Tests and tools inspect this
  /// to assert exact hop sequences.
  const Transaction& last_transaction() const { return txn_; }
  /// The latency backend interpreting the IR ("analytic" or "queued").
  const LatencyBackend& backend() const { return *backend_; }

  // --- mutable access for oracle unit tests ONLY (tests/test_check.cpp
  // corrupts live state through these to prove the checker notices) ---
  Cache& cache_for_test(ProcId proc) { return caches_[proc]; }
  DirectoryStore& directory_for_test(NodeId home) {
    return home_level_->store(home);
  }
  DirectoryStore& intra_directory_for_test(int chip) {
    return intra_level_->store(chip);
  }

  /// Aggregated per-cache statistics.
  CacheStats aggregate_cache_stats() const override;

  /// Wires the timeline recorder into the protocol and every home
  /// directory store (invalidation fan-out, overflow transitions, sparse
  /// victimizations). Event timestamps use the `now` each access carries.
  void attach_recorder(obs::TraceRecorder* recorder) override;

  /// Wires a latency-attribution sink into the latency backend (per-hop
  /// timing under the queued backend) and the commit path (per-transaction
  /// classification under any backend). The sink is bound to this system's
  /// mesh on attach. Compiled out at DIRCC_OBS=0.
  void attach_attribution(AttributionSink* sink) override;

 private:
  /// Recording gate; constant-folds to false when DIRCC_OBS=0.
  bool obs_on(obs::EvClass cls) const {
    return obs::compiled() && recorder_ != nullptr && recorder_->wants(cls);
  }
  struct TargetOutcome {
    int network_invalidations = 0;
    int network_acks = 0;
    /// Index of the last hop recorded (chip fan-outs chain the chip-level
    /// ack after the local acks); -1 when nothing was recorded.
    int last_hop = -1;
  };

  // Invalidates one processor's copy in both cache levels (inclusion).
  Cache::InvalidateResult invalidate_line(std::size_t proc, BlockAddr block);

  // Fills the first-level cache after a read (no-op when single-level).
  void fill_l1(ProcId proc, BlockAddr block, std::uint32_t version);

  // Invalidates every copy of `block` held inside cluster `target` (bus
  // broadcast within the cluster). Returns true when at least one cache
  // held a copy.
  bool invalidate_cluster(NodeId target, BlockAddr block);

  // Sends invalidations for `targets`, acks routed to `ack_sink`, recording
  // one `inval_kind`/`ack_kind` hop pair per target under a new Fanout of
  // `cause` depending on hop `dep`. Returns network totals.
  TargetOutcome send_invalidations(const std::vector<NodeId>& targets,
                                   NodeId home, NodeId ack_sink,
                                   BlockAddr block, HopKind inval_kind,
                                   HopKind ack_kind, FanoutCause cause,
                                   int dep);

  // Reclaims a displaced sparse-directory entry (Section 4.2 / Section 7:
  // the RAC collects the acks), recording the reclamation's hops as part
  // of the transaction that forced it (causally after hop `dep`).
  void reclaim_victim(NodeId home, const VictimEntry& victim, int dep);

  // Handles a dirty line displaced from `proc`'s cache by a fill.
  void handle_eviction(ProcId proc, const EvictedLine& evicted);

  // Installs `block` into `proc`'s cache and processes any displaced line.
  void fill_cache(ProcId proc, BlockAddr block, LineState state,
                  std::uint32_t version);

  // Kills stale copies in the writer's own cluster (bus invalidation).
  void scrub_cluster_siblings(ProcId writer, BlockAddr block);

  // Intra-cluster snoop service for a miss; returns true when satisfied
  // locally without a directory transaction (the in-flight transaction is
  // then TxnKind::kLocal).
  bool snoop_service(ProcId proc, BlockAddr block, bool is_write);

  // Resets the group's shared sharer field unless another sub-block still
  // relies on it.
  void reset_union_if_sole(DirEntry& entry, int sub);

  // Adds `node` to the entry's sharer field, handling a Dir_iNB pointer
  // displacement: the displaced cluster is invalidated for every Shared
  // sub-block the field covers (grouped entries share one field, so a
  // displacement can be triggered by any member). Displacement hops depend
  // on `dep`. Returns the number of network invalidations sent (0 when
  // nothing was displaced).
  int add_sharer_handling_displacement(DirEntry& entry, BlockAddr key,
                                       NodeId node, NodeId home, int dep);

  // Commits the in-flight transaction: folds its hops into the message
  // counters, classifies it (local/2-cluster/3-cluster), flushes deferred
  // trace events and asks the latency backend for its cost.
  Cycle commit(Cycle now);

  // Emits the transaction's deferred protocol events and per-hop spans.
  void flush_obs();

  // The contention-free protocol body (all side effects and base latency).
  Cycle access_internal(ProcId proc, BlockAddr block, bool is_write,
                        Cycle now);

  // --- two-level hierarchy (docs/HIERARCHY.md) ---

  // Records the message path from cluster `a` to cluster `b`: one
  // `local_kind` hop when both are on the same chip, or a three-hop
  // gateway chain (local to a's gateway, `chip_kind` gateway-to-gateway,
  // local to b) when they are not. Returns the index of the final hop.
  int hier_path(HopKind local_kind, HopKind chip_kind, NodeId a, NodeId b,
                int dep, int fanout = -1);

  // Intra-chip entry lookup/alloc for `chip`, reclaiming any displaced
  // victim entry (local invalidations; a dirty victim is written back to
  // its home across the chip boundary).
  DirEntry* intra_find_or_alloc(int chip, BlockAddr block, int dep);
  void reclaim_intra_victim(int chip, const VictimEntry& victim, int dep);

  // Reclaims a displaced *inter-chip* sparse entry at `home`: every chip
  // the victim entry names is invalidated chip-wide (and its intra entry
  // released) before the entry is reused.
  void reclaim_inter_victim(NodeId home, const VictimEntry& victim, int dep);

  // Adds local cluster `lc` to chip `chip`'s intra entry, invalidating a
  // Dir_iNB-displaced local cluster. Returns network invalidations sent.
  int intra_add_sharer(int chip, DirEntry& entry, BlockAddr block, NodeId lc,
                       int dep);

  // Adds chip `q` to the home's inter entry (kForgetChipSharer fault
  // site); a displaced chip is invalidated chip-wide. Returns network
  // invalidations sent.
  int inter_add_chip(DirEntry& entry, BlockAddr block, int q, NodeId home,
                     int dep);

  // Invalidates every copy of `block` on chip `q` through its intra entry:
  // one `inval_kind` hop per local sharer cluster (acks to `ack_sink`),
  // then releases the intra entry. All hops join fanout `fo` after `dep`.
  TargetOutcome invalidate_chip(int q, BlockAddr block, NodeId ack_sink,
                                HopKind inval_kind, HopKind ack_kind, int dep,
                                int fo);

  // The hierarchical directory transaction (chips > 1 only): chip-level
  // service attempt, then the inter-chip protocol at the home.
  Cycle access_hier(ProcId proc, BlockAddr block, bool is_write, Cycle now);

  std::uint32_t memory_version(BlockAddr block) const;
  void set_memory_version(BlockAddr block, std::uint32_t version);
  std::uint32_t bump_latest(BlockAddr block);
  void check_version(BlockAddr block, std::uint32_t observed) const;

  // True when the configured seeded fault fires at this opportunity. Call
  // it exactly once per *corrupting* opportunity of `kind` (the caller
  // pre-checks that skipping the action would actually corrupt state).
  // Constant-folds to false at DIRCC_CHECK=0.
  bool fault_fires(check::FaultKind kind);

  // Message-loss fault hook, keyed to the hop kind being recorded: true
  // when the message of this hop is "lost in the network" (the hop is
  // still recorded and counted — the loss is silent). Constant-folds to
  // false at DIRCC_CHECK=0.
  bool fault_drops_hop(HopKind kind, NodeId target, BlockAddr block);

  // True when any cache inside cluster `target` holds `block` (read-only
  // probe used to decide whether a fault opportunity is corrupting).
  bool cluster_holds_copy(NodeId target, BlockAddr block) const;

  SystemConfig config_;
  int num_clusters_;
  // Shift/mask fast paths for the per-access address helpers (-1 shift
  // means "not a power of two, use the general arithmetic").
  BlockAddr cluster_mask_ = 0;
  int cluster_shift_ = -1;
  int ppc_shift_ = -1;
  int group_shift_ = -1;
  /// Clusters per chip; equals num_clusters_ on a flat machine.
  int clusters_per_chip_ = 0;
  /// Home-side directory level: the flat directory (chips == 1) or the
  /// inter-chip level (sharer sets over chips), one store per home cluster.
  std::unique_ptr<DirectoryLevel> home_level_;
  /// Intra-chip level, one store per chip; null on a flat machine.
  std::unique_ptr<DirectoryLevel> intra_level_;
  std::vector<Cache> caches_;
  std::vector<Cache> l1_;
  /// Flat mesh (chips == 1) or two-tier hierarchy (per-chip meshes plus an
  /// inter-chip mesh); must precede backend_ (construction order).
  std::unique_ptr<Topology> topo_;
  // Version tables, consulted on every access (check_version on reads,
  // bump_latest on writes): flat tables, not node-based maps.
  FlatMap<std::uint32_t> latest_;
  FlatMap<std::uint32_t> memory_;
  std::vector<Cycle> home_busy_until_;
  ProtocolStats stats_;
  /// IR of the access in flight (reused across accesses; see commit()).
  Transaction txn_;
  std::unique_ptr<LatencyBackend> backend_;
  std::vector<NodeId> target_scratch_;
  /// Chip-granularity target scratch (inter-chip fan-outs nest a per-chip
  /// local fan-out that reuses target_scratch_).
  std::vector<NodeId> chip_scratch_;
  obs::TraceRecorder* recorder_ = nullptr;
  AttributionSink* attrib_ = nullptr;
  /// Issue time of the access in flight; timestamps protocol-side events.
  Cycle obs_now_ = 0;
  /// Corrupting opportunities seen for the configured fault kind.
  std::uint64_t fault_opportunities_ = 0;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace dircc
