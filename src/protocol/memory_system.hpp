// MemorySystem: the contract between the event-driven engine and a
// simulated memory hierarchy.
//
// Two implementations exist: CoherenceSystem (the memory-based directory
// protocols the paper evaluates) and SciSystem (the cache-based
// linked-list directory class of Section 3.3, built as a comparison
// baseline). Both consume one access at a time and account messages into
// the same ProtocolStats, so every harness can run either.
#pragma once

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "network/message.hpp"

namespace dircc {

namespace obs {
class TraceRecorder;
}

class AttributionSink;  // defined in protocol/latency_backend.hpp

struct ProtocolStats;  // defined in protocol/system.hpp

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Performs one shared-data access issued at absolute time `now` and
  /// returns its latency in cycles. `now` only matters to systems that
  /// model resource contention (directory/bus occupancy); the default of 0
  /// keeps contention-free use sites simple.
  virtual Cycle access(ProcId proc, BlockAddr block, bool is_write,
                       Cycle now) = 0;

  /// Contention-free convenience overload.
  Cycle access(ProcId proc, BlockAddr block, bool is_write) {
    return access(proc, block, is_write, 0);
  }

  virtual int num_procs() const = 0;
  virtual int block_size() const = 0;
  virtual NodeId cluster_of(ProcId proc) const = 0;

  virtual const ProtocolStats& stats() const = 0;
  virtual CacheStats aggregate_cache_stats() const = 0;

  /// Attaches a per-run event recorder (src/obs). Systems that do not emit
  /// events ignore it; nullptr detaches. The engine forwards its recorder
  /// here so one wiring point covers the whole machine.
  virtual void attach_recorder(obs::TraceRecorder* /*recorder*/) {}

  /// Attaches a latency-attribution sink (src/obs/attrib). Systems without
  /// a latency backend ignore it; nullptr detaches. Like the recorder,
  /// attribution is pure observation: latencies and stats are identical
  /// with or without a sink attached.
  virtual void attach_attribution(AttributionSink* /*sink*/) {}

  /// Byte-address convenience used by the engine.
  Cycle access_addr(ProcId proc, Addr addr, bool is_write, Cycle now = 0) {
    return access(proc, addr / static_cast<Addr>(block_size()), is_write,
                  now);
  }
};

}  // namespace dircc
