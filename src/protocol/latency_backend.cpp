#include "protocol/latency_backend.hpp"

#include "network/route.hpp"
#include "obs/trace_recorder.hpp"
#include "protocol/system.hpp"

namespace dircc {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAnalytic:
      return "analytic";
    case BackendKind::kQueued:
      return "queued";
  }
  return "?";
}

Cycle AnalyticBackend::transaction_latency(const Transaction& txn,
                                           Cycle /*now*/,
                                           ProtocolStats& /*stats*/,
                                           const TransactionRoute& route) {
  if (txn.kind == TxnKind::kLocal) {
    return latency_.local_access;
  }
  Cycle total = latency_.transaction(route.distinct_clusters, route.total_hops);
  if (txn.ack_round) {
    total += latency_.invalidation_round;
  }
  for (const Fanout& fanout : txn.fanouts) {
    // Write-caused fan-outs stall the writer until every ack is in;
    // reclaim fan-outs keep the home busy streaming out invalidations.
    // Dir_iNB pointer displacements are fire-and-forget: the read reply
    // does not wait on them.
    if (fanout.cause != FanoutCause::kPointerDisplacement) {
      total += latency_.per_invalidation *
               static_cast<Cycle>(fanout.network_invalidations);
    }
  }
  for (const Hop& hop : txn.hops) {
    // Each dirty sparse victim costs a full remote round trip to pull the
    // data home — even when the owner is the home cluster itself (the
    // memory access still happens; only the mesh crossing is free).
    if (hop.kind == HopKind::kVictimWriteback) {
      total += latency_.remote_2cluster;
    }
    // Chip-boundary messages of a hierarchical machine each pay the
    // inter-chip crossing premium on top of the flat transaction cost.
    if (hop.src != hop.dst && hop_crosses_chips(hop.kind)) {
      total += latency_.chip_crossing;
    }
  }
  return total;
}

QueuedBackend::QueuedBackend(const Topology& mesh,
                             const LatencyModel& latency,
                             const QueuedLatencyConfig& config)
    : analytic_(mesh, latency),
      mesh_(mesh),
      queued_(config),
      link_free_(static_cast<std::size_t>(mesh.num_links()), 0),
      home_free_(static_cast<std::size_t>(mesh.num_nodes()), 0) {
  // Scratch reused across transactions: done_ holds one slot per hop and
  // links_ one route's worth of channels; size both once so the DAG walk
  // never allocates in steady state.
  done_.reserve(2 * static_cast<std::size_t>(mesh.num_nodes()) + 8);
  links_.reserve(static_cast<std::size_t>(mesh.diameter()) + 1);
}

namespace {

/// Messages a home directory controller *emits*: forwarded requests,
/// invalidation bursts and sparse-victim fetches all leave through the
/// controller's outbound port and serialize there.
bool home_emission(const Hop& hop, NodeId home) {
  switch (hop.kind) {
    case HopKind::kForward:
    case HopKind::kInval:
    case HopKind::kDisplacementInval:
    case HopKind::kReclaimInval:
    case HopKind::kVictimFetch:
      return true;
    case HopKind::kReply:
      return hop.src == home;  // owner replies come from a cache instead
    // Gateway controllers serialize their outbound chip-boundary traffic
    // the same way a home serializes forwards and invalidation bursts.
    case HopKind::kChipForward:
    case HopKind::kChipInval:
      return true;
    default:
      return false;
  }
}

/// Messages a home directory controller *absorbs*: requests, writebacks
/// and home-bound acks each occupy the controller on arrival.
bool home_ingest(const Hop& hop) {
  switch (hop.kind) {
    case HopKind::kRequest:
    case HopKind::kSharingWriteback:
    case HopKind::kVictimWriteback:
    case HopKind::kEvictionWriteback:
    case HopKind::kReplacementHint:
    case HopKind::kTransferAck:
    case HopKind::kReclaimAck:
    // Inbound chip-boundary traffic occupies the receiving gateway
    // controller on arrival.
    case HopKind::kChipRequest:
    case HopKind::kChipWriteback:
    case HopKind::kChipAck:
      return true;
    default:
      return false;
  }
}

}  // namespace

Cycle QueuedBackend::transaction_latency(const Transaction& txn, Cycle now,
                                         ProtocolStats& stats,
                                         const TransactionRoute& route) {
  const Cycle analytic = analytic_.transaction_latency(txn, now, stats, route);
  if (txn.kind != TxnKind::kDirectory) {
    return analytic;  // bus-served accesses never touch mesh or home FIFOs
  }
  // Timing emission is pure observation: `emit` never changes t, busy or
  // stats, so the walk (and with it every latency) is byte-identical with
  // the sink absent or the obs layer compiled out.
  const bool emit = obs::compiled() && sink_ != nullptr;
  done_.assign(txn.hops.size(), now);
  Cycle completion = now;
  for (std::size_t i = 0; i < txn.hops.size(); ++i) {
    const Hop& hop = txn.hops[i];
    Cycle t = hop.dep >= 0 ? done_[static_cast<std::size_t>(hop.dep)] : now;
    const Cycle start = t;
    Cycle queue = 0;
    if (home_emission(hop, txn.home)) {
      Cycle& busy = home_free_[hop.src];
      Cycle wait = 0;
      if (busy > t) {
        wait = busy - t;
        stats.home_wait_cycles += wait;
        queue += wait;
        t = busy;
      }
      t += queued_.home_service;
      busy = t;
      if (emit) {
        sink_->on_home(hop.src, wait, t - queued_.home_service, t);
      }
    }
    if (hop.src != hop.dst) {
      links_.clear();
      mesh_.route_links(hop.src, hop.dst, &links_);
      for (LinkId link : links_) {
        Cycle& busy = link_free_[static_cast<std::size_t>(link)];
        Cycle wait = 0;
        if (busy > t) {
          wait = busy - t;
          stats.link_wait_cycles += wait;
          queue += wait;
          t = busy;
        }
        busy = t + queued_.link_service;
        t += queued_.link_transit;
        if (emit) {
          sink_->on_link(link, wait, busy - queued_.link_service, busy);
        }
      }
    }
    if (home_ingest(hop)) {
      Cycle& busy = home_free_[hop.dst];
      Cycle wait = 0;
      if (busy > t) {
        wait = busy - t;
        stats.home_wait_cycles += wait;
        queue += wait;
        t = busy;
      }
      t += queued_.home_service;
      busy = t;
      if (emit) {
        sink_->on_home(hop.dst, wait, t - queued_.home_service, t);
      }
    }
    done_[i] = t;
    if (emit) {
      HopTiming timing;
      timing.hop = static_cast<int>(i);
      timing.start = start;
      timing.queue = queue;
      timing.service = t - start - queue;
      timing.done = t;
      sink_->on_hop(txn, timing);
    }
    if (t > completion) {
      completion = t;
    }
  }
  const Cycle walked = completion - now;
  return walked > analytic ? walked : analytic;
}

std::unique_ptr<LatencyBackend> make_backend(
    BackendKind kind, const Topology& mesh, const LatencyModel& latency,
    const QueuedLatencyConfig& queued) {
  if (kind == BackendKind::kQueued) {
    return std::make_unique<QueuedBackend>(mesh, latency, queued);
  }
  return std::make_unique<AnalyticBackend>(mesh, latency);
}

}  // namespace dircc
