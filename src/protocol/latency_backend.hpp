// Latency backends: pluggable interpreters of the Transaction IR.
//
// The protocol builds a Transaction (src/protocol/transaction.hpp); a
// backend turns it into cycles. Two implementations:
//
//  * AnalyticBackend — the paper's closed-form model (Section 5 DASH
//    calibration): a flat cost per 1/2/3-cluster transaction plus fixed
//    increments for invalidation rounds, fan-out width and sparse-victim
//    flushes. Stateless, contention-free, and byte-identical to the
//    pre-IR inlined arithmetic. The default.
//
//  * QueuedBackend — layers FIFO occupancy on top: every message crossing
//    the mesh occupies each directed link it is XY-routed over, and every
//    message a home directory controller emits or absorbs occupies that
//    controller. Hops walk the IR's causal DAG, so contended fan-outs
//    serialize. The result never undercuts the analytic estimate
//    (latency = max(analytic, queued completion)), which makes latency
//    monotonically non-decreasing in fan-out width and sparse pressure.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "network/latency.hpp"
#include "network/topology.hpp"
#include "network/route.hpp"
#include "protocol/transaction.hpp"

namespace dircc {

struct ProtocolStats;

/// Per-hop timing detail a contention-modelling backend can emit alongside
/// the scalar latency. All fields are simulated Cycles, so attribution built
/// from them is thread-count invariant. The identity
/// `done == start + queue + service` holds by construction, which is what
/// lets a critical-path walk over hop timings reconstruct the walked
/// completion exactly (see obs/attrib).
struct HopTiming {
  int hop = 0;        ///< index into Transaction::hops
  Cycle start = 0;    ///< dependency completion (issue time for roots)
  Cycle queue = 0;    ///< cycles spent waiting on busy links/homes
  Cycle service = 0;  ///< link transit plus home service on this hop
  Cycle done = 0;     ///< start + queue + service
};

/// Observer a backend feeds per-resource timing into while walking one
/// transaction. Callbacks fire in walk order, between the backend's entry
/// to transaction_latency and its return; the link/home callbacks describe
/// occupancy intervals (`busy_from..busy_until`) plus the wait the occupant
/// suffered, and on_hop summarizes each hop once its walk completes.
/// Emission sites are gated `obs::compiled() && sink != nullptr`, so the
/// default build pays nothing.
class BackendTimingSink {
 public:
  virtual ~BackendTimingSink() = default;
  virtual void on_hop(const Transaction& txn, const HopTiming& timing) = 0;
  virtual void on_link(LinkId link, Cycle wait, Cycle busy_from,
                       Cycle busy_until) = 0;
  virtual void on_home(NodeId home, Cycle wait, Cycle busy_from,
                       Cycle busy_until) = 0;
};

/// A BackendTimingSink that also sees every committed transaction (with its
/// final latency) — the contract obs/attrib's Collector implements. Declared
/// here, next to the backend it observes, so the protocol layer can hold a
/// pointer without depending on the attribution implementation.
class AttributionSink : public BackendTimingSink {
 public:
  /// Called once before use with the topology the system routes over, so
  /// the sink can size per-link/per-home state and name links by
  /// coordinates.
  virtual void bind(const Topology& mesh) = 0;

  /// Called by the committer after the backend priced the transaction.
  /// Fires for every transaction (bus-served included), even under the
  /// analytic backend where no per-hop timing precedes it.
  virtual void on_commit(const Transaction& txn, const TransactionRoute& route,
                         Cycle now, Cycle latency) = 0;
};

/// Which latency backend a CoherenceSystem uses.
enum class BackendKind : std::uint8_t {
  kAnalytic,  ///< closed-form model (default; reproduces the paper tables)
  kQueued,    ///< mesh-link + home-controller FIFO occupancy
};

const char* backend_kind_name(BackendKind kind);

/// Turns a committed Transaction into an access latency. `now` is the
/// access's issue time (Cycle); stateful backends key their queues off it.
/// `route` is the transaction's critical-path route, already computed by
/// the committer (which needs it for its own bookkeeping) so backends do
/// not re-derive it; only directory transactions consult it.
class LatencyBackend {
 public:
  virtual ~LatencyBackend() = default;
  virtual const char* name() const = 0;
  virtual Cycle transaction_latency(const Transaction& txn, Cycle now,
                                    ProtocolStats& stats,
                                    const TransactionRoute& route) = 0;

  /// Installs (or clears, with nullptr) a per-hop timing observer. Backends
  /// without contention detail — the analytic model prices whole
  /// transactions, not hops — ignore it, which is the default.
  virtual void set_timing_sink(BackendTimingSink* /*sink*/) {}
};

/// The paper's closed-form hop-latency math, folded over the IR.
class AnalyticBackend : public LatencyBackend {
 public:
  AnalyticBackend(const Topology& mesh, const LatencyModel& latency)
      : mesh_(mesh), latency_(latency) {}

  const char* name() const override { return "analytic"; }
  Cycle transaction_latency(const Transaction& txn, Cycle now,
                            ProtocolStats& stats,
                            const TransactionRoute& route) override;

 private:
  const Topology& mesh_;
  const LatencyModel& latency_;
};

/// FIFO-occupancy backend: per-directed-link and per-home-controller
/// queues, walked over the IR's causal hop DAG.
class QueuedBackend : public LatencyBackend {
 public:
  QueuedBackend(const Topology& mesh, const LatencyModel& latency,
                const QueuedLatencyConfig& config);

  const char* name() const override { return "queued"; }
  Cycle transaction_latency(const Transaction& txn, Cycle now,
                            ProtocolStats& stats,
                            const TransactionRoute& route) override;
  void set_timing_sink(BackendTimingSink* sink) override { sink_ = sink; }

 private:
  AnalyticBackend analytic_;
  const Topology& mesh_;
  QueuedLatencyConfig queued_;
  BackendTimingSink* sink_ = nullptr;  ///< optional per-hop timing observer
  std::vector<Cycle> link_free_;  ///< per directed link: busy until
  std::vector<Cycle> home_free_;  ///< per home controller: busy until
  std::vector<Cycle> done_;       ///< per hop, scratch for the DAG walk
  std::vector<LinkId> links_;     ///< route scratch
};

std::unique_ptr<LatencyBackend> make_backend(BackendKind kind,
                                             const Topology& mesh,
                                             const LatencyModel& latency,
                                             const QueuedLatencyConfig& queued);

}  // namespace dircc
