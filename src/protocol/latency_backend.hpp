// Latency backends: pluggable interpreters of the Transaction IR.
//
// The protocol builds a Transaction (src/protocol/transaction.hpp); a
// backend turns it into cycles. Two implementations:
//
//  * AnalyticBackend — the paper's closed-form model (Section 5 DASH
//    calibration): a flat cost per 1/2/3-cluster transaction plus fixed
//    increments for invalidation rounds, fan-out width and sparse-victim
//    flushes. Stateless, contention-free, and byte-identical to the
//    pre-IR inlined arithmetic. The default.
//
//  * QueuedBackend — layers FIFO occupancy on top: every message crossing
//    the mesh occupies each directed link it is XY-routed over, and every
//    message a home directory controller emits or absorbs occupies that
//    controller. Hops walk the IR's causal DAG, so contended fan-outs
//    serialize. The result never undercuts the analytic estimate
//    (latency = max(analytic, queued completion)), which makes latency
//    monotonically non-decreasing in fan-out width and sparse pressure.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "network/latency.hpp"
#include "network/mesh.hpp"
#include "network/route.hpp"
#include "protocol/transaction.hpp"

namespace dircc {

struct ProtocolStats;

/// Which latency backend a CoherenceSystem uses.
enum class BackendKind : std::uint8_t {
  kAnalytic,  ///< closed-form model (default; reproduces the paper tables)
  kQueued,    ///< mesh-link + home-controller FIFO occupancy
};

const char* backend_kind_name(BackendKind kind);

/// Turns a committed Transaction into an access latency. `now` is the
/// access's issue time (Cycle); stateful backends key their queues off it.
/// `route` is the transaction's critical-path route, already computed by
/// the committer (which needs it for its own bookkeeping) so backends do
/// not re-derive it; only directory transactions consult it.
class LatencyBackend {
 public:
  virtual ~LatencyBackend() = default;
  virtual const char* name() const = 0;
  virtual Cycle transaction_latency(const Transaction& txn, Cycle now,
                                    ProtocolStats& stats,
                                    const TransactionRoute& route) = 0;
};

/// The paper's closed-form hop-latency math, folded over the IR.
class AnalyticBackend : public LatencyBackend {
 public:
  AnalyticBackend(const MeshTopology& mesh, const LatencyModel& latency)
      : mesh_(mesh), latency_(latency) {}

  const char* name() const override { return "analytic"; }
  Cycle transaction_latency(const Transaction& txn, Cycle now,
                            ProtocolStats& stats,
                            const TransactionRoute& route) override;

 private:
  const MeshTopology& mesh_;
  const LatencyModel& latency_;
};

/// FIFO-occupancy backend: per-directed-link and per-home-controller
/// queues, walked over the IR's causal hop DAG.
class QueuedBackend : public LatencyBackend {
 public:
  QueuedBackend(const MeshTopology& mesh, const LatencyModel& latency,
                const QueuedLatencyConfig& config);

  const char* name() const override { return "queued"; }
  Cycle transaction_latency(const Transaction& txn, Cycle now,
                            ProtocolStats& stats,
                            const TransactionRoute& route) override;

 private:
  AnalyticBackend analytic_;
  const MeshTopology& mesh_;
  QueuedLatencyConfig queued_;
  std::vector<Cycle> link_free_;  ///< per directed link: busy until
  std::vector<Cycle> home_free_;  ///< per home controller: busy until
  std::vector<Cycle> done_;       ///< per hop, scratch for the DAG walk
  std::vector<LinkId> links_;     ///< route scratch
};

std::unique_ptr<LatencyBackend> make_backend(BackendKind kind,
                                             const MeshTopology& mesh,
                                             const LatencyModel& latency,
                                             const QueuedLatencyConfig& queued);

}  // namespace dircc
