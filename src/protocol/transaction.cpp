#include "protocol/transaction.hpp"

#include <sstream>

#include "check/api.hpp"

namespace dircc {

const char* hop_kind_name(HopKind kind) {
  switch (kind) {
    case HopKind::kRequest:
      return "request";
    case HopKind::kForward:
      return "forward";
    case HopKind::kReply:
      return "reply";
    case HopKind::kInval:
      return "inval";
    case HopKind::kDisplacementInval:
      return "displacement-inval";
    case HopKind::kReclaimInval:
      return "reclaim-inval";
    case HopKind::kAck:
      return "ack";
    case HopKind::kReclaimAck:
      return "reclaim-ack";
    case HopKind::kTransferAck:
      return "transfer-ack";
    case HopKind::kSharingWriteback:
      return "sharing-wb";
    case HopKind::kVictimFetch:
      return "victim-fetch";
    case HopKind::kVictimWriteback:
      return "victim-wb";
    case HopKind::kEvictionWriteback:
      return "eviction-wb";
    case HopKind::kReplacementHint:
      return "replacement-hint";
    case HopKind::kChipRequest:
      return "chip-request";
    case HopKind::kChipForward:
      return "chip-forward";
    case HopKind::kChipReply:
      return "chip-reply";
    case HopKind::kChipInval:
      return "chip-inval";
    case HopKind::kChipAck:
      return "chip-ack";
    case HopKind::kChipWriteback:
      return "chip-wb";
  }
  return "?";
}

bool hop_crosses_chips(HopKind kind) {
  switch (kind) {
    case HopKind::kChipRequest:
    case HopKind::kChipForward:
    case HopKind::kChipReply:
    case HopKind::kChipInval:
    case HopKind::kChipAck:
    case HopKind::kChipWriteback:
      return true;
    default:
      return false;
  }
}

MsgClass hop_msg_class(HopKind kind) {
  switch (kind) {
    case HopKind::kRequest:
    case HopKind::kForward:
    case HopKind::kVictimFetch:
    case HopKind::kReplacementHint:
      return MsgClass::kRequest;
    case HopKind::kReply:
      return MsgClass::kReply;
    case HopKind::kInval:
    case HopKind::kDisplacementInval:
    case HopKind::kReclaimInval:
      return MsgClass::kInvalidation;
    case HopKind::kAck:
    case HopKind::kReclaimAck:
    case HopKind::kTransferAck:
      return MsgClass::kAck;
    case HopKind::kSharingWriteback:
    case HopKind::kVictimWriteback:
    case HopKind::kEvictionWriteback:
      return MsgClass::kWriteback;
    case HopKind::kChipRequest:
    case HopKind::kChipForward:
      return MsgClass::kRequest;
    case HopKind::kChipReply:
      return MsgClass::kReply;
    case HopKind::kChipInval:
      return MsgClass::kInvalidation;
    case HopKind::kChipAck:
      return MsgClass::kAck;
    case HopKind::kChipWriteback:
      return MsgClass::kWriteback;
  }
  return MsgClass::kRequest;
}

check::FaultKind hop_fault_site(HopKind kind) {
  switch (kind) {
    // Dir_iNB displacement invalidations are generated and consumed inside
    // the home's sharer-field update, so they are not exposed to the
    // message-loss fault (matching the pre-IR fault sites exactly —
    // opportunity counting is part of the deterministic replay contract).
    case HopKind::kInval:
    case HopKind::kReclaimInval:
      return check::FaultKind::kSkipInvalidation;
    case HopKind::kVictimWriteback:
      return check::FaultKind::kDropVictimWriteback;
    default:
      return check::FaultKind::kNone;
  }
}

const char* fanout_cause_name(FanoutCause cause) {
  switch (cause) {
    case FanoutCause::kWriteShared:
      return "write-shared";
    case FanoutCause::kPointerDisplacement:
      return "ptr-displacement";
    case FanoutCause::kSparseReclaim:
      return "sparse-reclaim";
  }
  return "?";
}

namespace {
const char* txn_kind_name(TxnKind kind) {
  switch (kind) {
    case TxnKind::kNone:
      return "none";
    case TxnKind::kLocal:
      return "local";
    case TxnKind::kDirectory:
      return "directory";
  }
  return "?";
}
}  // namespace

std::string format_transaction(const Transaction& txn) {
  std::ostringstream out;
  out << txn_kind_name(txn.kind) << ' ' << (txn.is_write ? "write" : "read")
      << " c=" << txn.requester << " h=" << txn.home;
  if (txn.owner != kNoNode) {
    out << " o=" << txn.owner;
  }
  if (txn.ack_round) {
    out << " ack-round";
  }
  out << '\n';
  for (std::size_t i = 0; i < txn.hops.size(); ++i) {
    const Hop& hop = txn.hops[i];
    out << "  " << i << ": " << hop_kind_name(hop.kind) << ' ' << hop.src
        << "->" << hop.dst;
    if (hop.src == hop.dst) {
      out << " (bus)";
    }
    if (hop.dep >= 0) {
      out << " dep=" << hop.dep;
    }
    if (hop.fanout >= 0) {
      out << " fanout=" << hop.fanout << '('
          << fanout_cause_name(txn.fanouts[static_cast<std::size_t>(
                 hop.fanout)].cause) << ')';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace dircc
