#include "protocol/system.hpp"

#include <bit>

#include "common/ensure.hpp"
#include "network/route.hpp"

namespace dircc {

CoherenceSystem::CoherenceSystem(const SystemConfig& config)
    : config_(config),
      num_clusters_(config.num_clusters()),
      format_(make_format(config.scheme)),
      mesh_(config.num_clusters()),
      backend_(make_backend(config.backend, mesh_, config_.latency,
                            config_.queued)) {
  ensure(config.num_procs >= 1, "need at least one processor");
  ensure(config.procs_per_cluster >= 1 &&
             config.num_procs % config.procs_per_cluster == 0,
         "processor count must be a multiple of the cluster size");
  ensure(config.scheme.num_nodes == num_clusters_,
         "scheme node count must equal the cluster count");
  ensure(is_pow2(static_cast<std::uint64_t>(config.block_size)),
         "block size must be a power of two");
  ensure(config.blocks_per_group >= 1 &&
             config.blocks_per_group <= kMaxGroupBlocks,
         "blocks_per_group outside supported range");
  if (is_pow2(static_cast<std::uint64_t>(num_clusters_))) {
    cluster_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(num_clusters_));
    cluster_mask_ = static_cast<BlockAddr>(num_clusters_) - 1;
  }
  if (is_pow2(static_cast<std::uint64_t>(config.procs_per_cluster))) {
    ppc_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(config.procs_per_cluster));
  }
  if (is_pow2(static_cast<std::uint64_t>(config.blocks_per_group))) {
    group_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(config.blocks_per_group));
  }
  caches_.reserve(static_cast<std::size_t>(config.num_procs));
  for (int p = 0; p < config.num_procs; ++p) {
    caches_.emplace_back(config.cache_lines_per_proc, config.cache_assoc);
  }
  if (config.l1_lines_per_proc > 0) {
    ensure(config.l1_lines_per_proc <= config.cache_lines_per_proc,
           "the first-level cache cannot exceed the coherence cache");
    l1_.reserve(static_cast<std::size_t>(config.num_procs));
    for (int p = 0; p < config.num_procs; ++p) {
      l1_.emplace_back(config.l1_lines_per_proc, config.l1_assoc);
    }
  }
  directories_.reserve(static_cast<std::size_t>(num_clusters_));
  for (int h = 0; h < num_clusters_; ++h) {
    StoreConfig store = config.store;
    store.seed = config.seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(h);
    // Memory is block-interleaved across clusters, so this home's blocks
    // are every num_clusters-th one (and tracking keys every group-th of
    // those); index its sparse sets by the home-local tracking number.
    store.index_divisor = static_cast<std::uint64_t>(num_clusters_) *
                          static_cast<std::uint64_t>(config.blocks_per_group);
    directories_.push_back(make_store(store));
  }
  // The transaction IR and the invalidation-target scratch are reused
  // across accesses; size them for a full-machine fan-out up front so the
  // steady-state access path never allocates.
  const auto clusters = static_cast<std::size_t>(num_clusters_);
  txn_.hops.reserve(2 * clusters + 8);
  txn_.fanouts.reserve(4);
  txn_.notes.reserve(8);
  target_scratch_.reserve(clusters);
}

// ---------------------------------------------------------------------------
// Version tracking (value-coherence instrumentation)
// ---------------------------------------------------------------------------

std::uint32_t CoherenceSystem::memory_version(BlockAddr block) const {
  const std::uint32_t* version = memory_.find(block);
  return version == nullptr ? 0 : *version;
}

void CoherenceSystem::set_memory_version(BlockAddr block,
                                         std::uint32_t version) {
  bool inserted = false;
  *memory_.try_emplace(block, inserted) = version;
}

std::uint32_t CoherenceSystem::bump_latest(BlockAddr block) {
  bool inserted = false;
  return ++*latest_.try_emplace(block, inserted);
}

std::uint32_t CoherenceSystem::latest_version(BlockAddr block) const {
  const std::uint32_t* version = latest_.find(block);
  return version == nullptr ? 0 : *version;
}

void CoherenceSystem::check_version(BlockAddr block,
                                    std::uint32_t observed) const {
  if (config_.validate) {
    ensure(observed == latest_version(block),
           "coherence violation: a read observed a stale version");
  }
}

// ---------------------------------------------------------------------------
// Seeded-fault machinery (src/check validation)
// ---------------------------------------------------------------------------

bool CoherenceSystem::fault_fires(check::FaultKind kind) {
  if (!check::compiled() || config_.fault.kind != kind) {
    return false;
  }
  ++fault_opportunities_;
  if (faults_injected_ > 0 || fault_opportunities_ != config_.fault.trigger) {
    return false;
  }
  ++faults_injected_;
  return true;
}

bool CoherenceSystem::cluster_holds_copy(NodeId target, BlockAddr block) const {
  const int first = target * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (caches_[static_cast<std::size_t>(q)].probe(block) !=
        LineState::kInvalid) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Observability wiring
// ---------------------------------------------------------------------------

void CoherenceSystem::attach_recorder(obs::TraceRecorder* recorder) {
  if (!obs::compiled()) {
    return;
  }
  recorder_ = recorder;
  for (int h = 0; h < num_clusters_; ++h) {
    directories_[static_cast<std::size_t>(h)]->attach_obs(
        recorder, static_cast<NodeId>(h));
  }
}

void CoherenceSystem::attach_attribution(AttributionSink* sink) {
  if (!obs::compiled()) {
    return;
  }
  attrib_ = sink;
  backend_->set_timing_sink(sink);
  if (sink != nullptr) {
    sink->bind(mesh_);
  }
}

// ---------------------------------------------------------------------------
// Seeded-fault hook for message hops
// ---------------------------------------------------------------------------

bool CoherenceSystem::fault_drops_hop(HopKind kind, NodeId target,
                                      BlockAddr block) {
  if (!check::compiled()) {
    return false;
  }
  const check::FaultKind site = hop_fault_site(kind);
  if (site == check::FaultKind::kNone || config_.fault.kind != site) {
    return false;
  }
  // Skipping an invalidation only corrupts when the target actually holds
  // a copy; a dropped victim writeback always corrupts (the caller has
  // already found the dirty copy).
  if (site == check::FaultKind::kSkipInvalidation &&
      !cluster_holds_copy(target, block)) {
    return false;
  }
  return fault_fires(site);
}

// ---------------------------------------------------------------------------
// Invalidation machinery
// ---------------------------------------------------------------------------

Cache::InvalidateResult CoherenceSystem::invalidate_line(std::size_t proc,
                                                         BlockAddr block) {
  if (!l1_.empty()) {
    l1_[proc].invalidate(block);  // inclusion: the L1 copy dies too
  }
  return caches_[proc].invalidate(block);
}

void CoherenceSystem::fill_l1(ProcId proc, BlockAddr block,
                              std::uint32_t version) {
  if (l1_.empty()) {
    return;
  }
  // The L1 is a write-through subset of the L2: displaced lines drop
  // silently and carry nothing back.
  std::optional<EvictedLine> displaced;
  if (l1_[proc].probe(block) == LineState::kInvalid) {
    l1_[proc].fill(block, LineState::kShared, version, displaced);
  } else {
    l1_[proc].refresh(block, version);
  }
}

bool CoherenceSystem::invalidate_cluster(NodeId target, BlockAddr block) {
  bool any_copy = false;
  const int first = target * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    const auto result = invalidate_line(static_cast<std::size_t>(q), block);
    any_copy = any_copy || result.had_copy;
  }
  return any_copy;
}

CoherenceSystem::TargetOutcome CoherenceSystem::send_invalidations(
    const std::vector<NodeId>& targets, NodeId home, NodeId ack_sink,
    BlockAddr block, HopKind inval_kind, HopKind ack_kind, FanoutCause cause,
    int dep) {
  TargetOutcome outcome;
  const int fo = txn_.open_fanout(cause, dep);
  for (NodeId t : targets) {
    bool had_copy;
    if (fault_drops_hop(inval_kind, t, block)) {
      // Seeded fault: the invalidation message is "lost in the network".
      // The hop and its ack are still recorded below (they were sent; the
      // loss is silent), but the target keeps its copy.
      had_copy = true;
    } else {
      had_copy = invalidate_cluster(t, block);
    }
    if (!had_copy) {
      ++stats_.extraneous_invalidations;
    }
    // The home invalidates its own cluster over the bus (a src == dst hop,
    // free on the network); every other target costs one invalidation
    // message and one acknowledgement back to the sink.
    const int iv = txn_.add_hop(inval_kind, home, t, dep, fo);
    if (t != home) {
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
      ++outcome.network_invalidations;
    }
    if (t != ack_sink) {
      txn_.add_hop(ack_kind, t, ack_sink, iv, fo);
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
      ++outcome.network_acks;
    }
  }
  if (outcome.network_invalidations > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), block,
              static_cast<std::uint64_t>(outcome.network_invalidations));
  }
  return outcome;
}

void CoherenceSystem::reclaim_victim(NodeId home, const VictimEntry& victim,
                                     int dep) {
  ++stats_.sparse_replacements;
  bool collected = false;
  for (int sub = 0; sub < config_.blocks_per_group; ++sub) {
    const BlockAddr block = block_at(victim.block, sub);
    switch (victim.entry.state_of(sub)) {
      case DirState::kUncached:
        break;
      case DirState::kShared: {
        if (!collected) {
          target_scratch_.clear();
          format_->collect_targets(victim.entry.sharers, kNoNode,
                                   target_scratch_);
          collected = true;
        }
        // Acks for replacement invalidations return to the home's RAC. The
        // fan-out keeps the home busy streaming out invalidations before
        // it can service the displacing request (the analytic backend
        // charges per_invalidation per network invalidation).
        const auto outcome = send_invalidations(
            target_scratch_, home, home, block, HopKind::kReclaimInval,
            HopKind::kReclaimAck, FanoutCause::kSparseReclaim, dep);
        stats_.sparse_replacement_invals +=
            static_cast<std::uint64_t>(outcome.network_invalidations);
        break;
      }
      case DirState::kDirty: {
        // Pull the dirty copy back to memory, then kill it. The fetch and
        // the flush are a full remote round trip even when the owner is
        // the home cluster itself (the memory access still happens; only
        // the mesh crossing is free).
        const NodeId owner = victim.entry.owner_of(sub);
        const int fetch = txn_.add_hop(HopKind::kVictimFetch, home, owner,
                                       dep);
        bool found_dirty = false;
        const int first = owner * config_.procs_per_cluster;
        for (int q = first; q < first + config_.procs_per_cluster; ++q) {
          auto result = invalidate_line(static_cast<std::size_t>(q), block);
          if (result.had_copy) {
            found_dirty = true;
            // Seeded fault: the victim's writeback data never reaches
            // memory — the copy dies but memory keeps the stale version
            // (every dirty victim has versions ahead of memory, so this
            // opportunity always corrupts).
            if (!fault_drops_hop(HopKind::kVictimWriteback, owner, block)) {
              set_memory_version(block, result.version);
            }
          }
        }
        ensure(found_dirty, "dirty sparse victim had no cached copy");
        txn_.add_hop(HopKind::kVictimWriteback, owner, home, fetch);
        ++stats_.sparse_replacement_invals;
        break;
      }
    }
  }
}

void CoherenceSystem::reset_union_if_sole(DirEntry& entry, int sub) {
  if (!entry.any_in_state(DirState::kShared, config_.blocks_per_group, sub)) {
    entry.sharers.reset();
  }
}

int CoherenceSystem::add_sharer_handling_displacement(DirEntry& entry,
                                                      BlockAddr key,
                                                      NodeId node,
                                                      NodeId home, int dep) {
  if (check::compiled() &&
      config_.fault.kind == check::FaultKind::kForgetSharer &&
      !format_->maybe_sharer(entry.sharers, node) &&
      fault_fires(check::FaultKind::kForgetSharer)) {
    // Seeded fault: the directory drops the sharer bit/pointer for `node`
    // (only fired when the representation does not already cover it, so the
    // drop is guaranteed to leave an untracked copy). A directory-state
    // fault, not a message loss — it stays keyed to this site, not a hop.
    return 0;
  }
  const bool was_precise = !entry.sharers.overflowed;
  const NodeId displaced = format_->add_sharer(entry.sharers, node);
  if (was_precise && entry.sharers.overflowed) {
    // The entry left precise pointer mode (broadcast bit, composite
    // pointer, or coarse-vector reinterpretation, depending on scheme).
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kPtrOverflow), key,
              node);
  }
  if (displaced == kNoNode || displaced == node) {
    return 0;
  }
  // Dir_iNB pointer overflow: invalidate the displaced cluster so no block
  // is cached in more places than there are pointers. These are the
  // read-caused invalidations of Fig. 4. The shared field covers every
  // Shared sub-block of a grouped entry, so all of them must go.
  ++stats_.nb_read_displacements;
  const int fo = txn_.open_fanout(FanoutCause::kPointerDisplacement, dep);
  int net_invals = 0;
  for (int s = 0; s < config_.blocks_per_group; ++s) {
    if (entry.state_of(s) != DirState::kShared) {
      continue;
    }
    const bool had_copy = invalidate_cluster(displaced, block_at(key, s));
    if (!had_copy) {
      ++stats_.extraneous_invalidations;
    }
    const int iv =
        txn_.add_hop(HopKind::kDisplacementInval, home, displaced, dep, fo);
    if (displaced != home) {
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
      ++net_invals;
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
    }
    txn_.add_hop(HopKind::kAck, displaced, home, iv, fo);
  }
  stats_.inval_distribution.add(static_cast<std::uint64_t>(net_invals));
  if (net_invals > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), key,
              static_cast<std::uint64_t>(net_invals));
  }
  return net_invals;
}

// ---------------------------------------------------------------------------
// Cache fills, evictions, sibling scrubbing
// ---------------------------------------------------------------------------

void CoherenceSystem::handle_eviction(ProcId proc, const EvictedLine& evicted) {
  if (!l1_.empty()) {
    l1_[proc].invalidate(evicted.block);  // maintain inclusion
  }
  if (!evicted.dirty) {
    // By default shared lines are replaced silently; the directory keeps a
    // stale sharer pointer, which is safe (superset) and matches the
    // hardware. With replacement hints on, the home is told so it can
    // prune the sharer — valuable for sparse directories, whose stale
    // entries otherwise pin capacity.
    if (!config_.replacement_hints) {
      return;
    }
    const NodeId c = cluster_of(proc);
    const BlockAddr key = group_key(evicted.block);
    // At cluster granularity the hint is only valid once no cache in this
    // cluster holds *any* block the shared sharer field covers.
    const int first = c * config_.procs_per_cluster;
    for (int q = first; q < first + config_.procs_per_cluster; ++q) {
      for (int sub = 0; sub < config_.blocks_per_group; ++sub) {
        if (caches_[static_cast<std::size_t>(q)].probe(block_at(key, sub)) !=
            LineState::kInvalid) {
          return;
        }
      }
    }
    const NodeId h = home_of(evicted.block);
    ++stats_.replacement_hints_sent;
    txn_.add_hop(HopKind::kReplacementHint, c, h);
    DirEntry* entry = directories_[h]->find(key);
    if (entry != nullptr &&
        entry->state_of(sub_of(evicted.block)) == DirState::kShared) {
      format_->remove_sharer(entry->sharers, c);
      if (format_->known_empty(entry->sharers) &&
          !entry->any_in_state(DirState::kDirty, config_.blocks_per_group,
                               -1)) {
        entry->reset();
        directories_[h]->release(key);
      }
    }
    return;
  }
  ++stats_.dirty_eviction_writebacks;
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(evicted.block);
  const BlockAddr key = group_key(evicted.block);
  const int sub = sub_of(evicted.block);
  txn_.add_hop(HopKind::kEvictionWriteback, c, h);
  set_memory_version(evicted.block, evicted.version);
  DirEntry* entry = directories_[h]->find(key);
  ensure(entry != nullptr, "writeback found no directory entry");
  ensure(entry->state_of(sub) == DirState::kDirty &&
             entry->owner_of(sub) == c,
         "writeback from a non-owner");
  entry->state_of(sub) = DirState::kUncached;
  entry->owner_of(sub) = kNoNode;
  if (entry->all_uncached(config_.blocks_per_group)) {
    entry->reset();
    directories_[h]->release(key);
  }
}

void CoherenceSystem::fill_cache(ProcId proc, BlockAddr block, LineState state,
                                 std::uint32_t version) {
  std::optional<EvictedLine> evicted;
  caches_[proc].fill(block, state, version, evicted);
  if (evicted) {
    handle_eviction(proc, *evicted);
  }
}

void CoherenceSystem::scrub_cluster_siblings(ProcId writer, BlockAddr block) {
  const NodeId c = cluster_of(writer);
  const int first = c * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (q != static_cast<int>(writer)) {
      invalidate_line(static_cast<std::size_t>(q), block);
    }
  }
}

// ---------------------------------------------------------------------------
// Intra-cluster snooping
// ---------------------------------------------------------------------------

bool CoherenceSystem::snoop_service(ProcId proc, BlockAddr block,
                                    bool is_write) {
  if (config_.procs_per_cluster == 1) {
    return false;
  }
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(block);
  const int first = c * config_.procs_per_cluster;
  ProcId holder = kNoProc;
  LineState holder_state = LineState::kInvalid;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (q == static_cast<int>(proc)) {
      continue;
    }
    const LineState st = caches_[static_cast<std::size_t>(q)].probe(block);
    if (st == LineState::kModified) {
      holder = static_cast<ProcId>(q);
      holder_state = st;
      break;
    }
    if (st == LineState::kShared && holder == kNoProc) {
      holder = static_cast<ProcId>(q);
      holder_state = st;
    }
  }
  if (holder == kNoProc) {
    return false;
  }
  if (!is_write) {
    if (holder_state == LineState::kModified) {
      // A dirty sibling supplies the data; a sharing writeback updates the
      // home memory and demotes the directory entry to Shared so a later
      // remote read is not forwarded to a cluster with no dirty copy.
      const std::uint32_t version = caches_[holder].downgrade(block);
      ++stats_.sharing_writebacks;
      const int wb = txn_.add_hop(HopKind::kSharingWriteback, c, h);
      set_memory_version(block, version);
      DirEntry* entry = directories_[h]->find(group_key(block));
      const int sub = sub_of(block);
      ensure(entry != nullptr && entry->state_of(sub) == DirState::kDirty &&
                 entry->owner_of(sub) == c,
             "sibling dirty copy without a matching directory entry");
      entry->owner_of(sub) = kNoNode;
      reset_union_if_sole(*entry, sub);
      entry->state_of(sub) = DirState::kShared;
      add_sharer_handling_displacement(*entry, group_key(block), c, h, wb);
      fill_cache(proc, block, LineState::kShared, version);
      fill_l1(proc, block, version);
      check_version(block, version);
    } else {
      fill_cache(proc, block, LineState::kShared,
                 caches_[holder].version_of(block));
      fill_l1(proc, block, caches_[holder].version_of(block));
      check_version(block, caches_[holder].version_of(block));
    }
    return true;
  }
  // Write: only a dirty sibling lets us skip the directory — ownership
  // stays within this cluster, so the directory entry is already correct.
  if (holder_state != LineState::kModified) {
    return false;
  }
  const auto result = invalidate_line(holder, block);
  ensure(result.had_copy && result.was_dirty, "snoop lost the dirty copy");
  const std::uint32_t version = bump_latest(block);
  scrub_cluster_siblings(proc, block);
  fill_cache(proc, block, LineState::kModified, version);
  if (!l1_.empty()) {
    l1_[proc].refresh(block, version);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Transaction commit: every consumer derives its view from the IR here
// ---------------------------------------------------------------------------

void CoherenceSystem::flush_obs() {
  if (!obs::compiled() || recorder_ == nullptr) {
    return;
  }
  // Deferred protocol events first (in the order the protocol queued
  // them), then the per-hop spans. Store-level events (sparse victim
  // selection) were recorded live and carry earlier sequence numbers, so
  // the exported order matches the protocol's internal order.
  for (const ObsNote& note : txn_.notes) {
    const auto type = static_cast<obs::EvType>(note.type);
    if (recorder_->wants(obs::ev_class_of(type))) {
      recorder_->record_home(txn_.home, {obs_now_, 0, note.a0, note.a1,
                                         type});
    }
  }
  if (recorder_->wants(obs::EvClass::kMsg)) {
    for (const Hop& hop : txn_.hops) {
      if (hop.src == hop.dst) {
        continue;  // bus work, not a network message
      }
      recorder_->record_home(
          txn_.home,
          {obs_now_, 0,
           static_cast<std::uint64_t>(hop.src) * 65536u + hop.dst,
           static_cast<std::uint64_t>(hop.kind), obs::EvType::kHop});
    }
  }
}

Cycle CoherenceSystem::commit(Cycle now) {
  ensure(txn_.active(), "commit without a transaction in flight");
  txn_.fold(stats_.messages);
  // Computed once here and handed to the backend, which needs the same
  // route for its latency math.
  TransactionRoute route;
  if (txn_.kind == TxnKind::kLocal) {
    ++stats_.local_transactions;
  } else {
    route = transaction_route(mesh_, txn_.requester, txn_.home, txn_.owner);
    if (route.distinct_clusters == 1) {
      ++stats_.local_transactions;
    } else if (route.distinct_clusters == 2) {
      ++stats_.remote2_transactions;
    } else {
      ++stats_.remote3_transactions;
    }
  }
  flush_obs();
  const Cycle latency = backend_->transaction_latency(txn_, now, stats_, route);
  if (obs::compiled() && attrib_ != nullptr) {
    attrib_->on_commit(txn_, route, now, latency);
  }
  return latency;
}

// ---------------------------------------------------------------------------
// The access path
// ---------------------------------------------------------------------------

Cycle CoherenceSystem::access(ProcId proc, BlockAddr block, bool is_write,
                              Cycle now) {
  if (obs::compiled() && recorder_ != nullptr) {
    obs_now_ = now;  // protocol-side events carry the access's issue time
  }
  if (!config_.model_contention) {
    return access_internal(proc, block, is_write, now);
  }
  // Legacy contention model (kept for comparison; the queued backend is
  // the message-level version): a directory transaction occupies the home
  // controller for a base time plus a share per message it emits; requests
  // arriving while it is busy queue behind it. Cache hits and
  // intra-cluster snoop service bypass the directory and never queue.
  const std::uint64_t txns_before =
      stats_.read_transactions + stats_.write_transactions;
  const std::uint64_t msgs_before = stats_.messages.total();
  const Cycle base = access_internal(proc, block, is_write, now);
  if (stats_.read_transactions + stats_.write_transactions == txns_before) {
    return base;
  }
  const std::uint64_t emitted = stats_.messages.total() - msgs_before;
  if (home_busy_until_.empty()) {
    home_busy_until_.assign(static_cast<std::size_t>(num_clusters_), 0);
  }
  Cycle& busy = home_busy_until_[home_of(block)];
  const Cycle start = now < busy ? busy : now;
  const Cycle wait = start - now;
  stats_.contention_wait_cycles += wait;
  busy = start + config_.latency.dir_occupancy +
         config_.latency.per_invalidation * static_cast<Cycle>(emitted);
  return wait + base;
}

Cycle CoherenceSystem::access_internal(ProcId proc, BlockAddr block,
                                       bool is_write, Cycle now) {
  ensure(proc < static_cast<ProcId>(config_.num_procs),
         "processor id out of range");
  ++stats_.accesses;
  txn_.reset();  // hits leave it empty (TxnKind::kNone)
  Cache& cache = caches_[proc];
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(block);

  if (!is_write) {
    if (!l1_.empty() && l1_[proc].read_lookup(block)) {
      ++stats_.cache_hits;
      check_version(block, l1_[proc].version_of(block));
      return config_.latency.cache_hit;
    }
    if (cache.read_lookup(block)) {
      ++stats_.cache_hits;
      check_version(block, cache.version_of(block));
      fill_l1(proc, block, cache.version_of(block));
      return l1_.empty() ? config_.latency.cache_hit
                         : config_.latency.l2_hit;
    }
  } else {
    switch (cache.write_lookup(block)) {
      case Cache::WriteLookup::kHitModified: {
        ++stats_.cache_hits;
        // Owner writes again: bump the version in place. No transaction
        // (the write-through L1, if any, is refreshed and the write pays
        // the L2 access it writes through to).
        const std::uint32_t version = bump_latest(block);
        cache.write_touch(block, version);
        if (!l1_.empty()) {
          l1_[proc].refresh(block, version);
          return config_.latency.l2_hit;
        }
        return config_.latency.cache_hit;
      }
      case Cache::WriteLookup::kHitShared:
      case Cache::WriteLookup::kMiss:
        break;
    }
  }

  // Miss (or upgrade): try the intra-cluster bus first. The transaction IR
  // starts here — bus-served accesses commit as TxnKind::kLocal (their
  // eviction/writeback/displacement hops still land in the IR).
  txn_.kind = TxnKind::kLocal;
  txn_.is_write = is_write;
  txn_.requester = c;
  txn_.home = h;
  txn_.block = block;
  if (cache.probe(block) == LineState::kInvalid &&
      snoop_service(proc, block, is_write)) {
    return commit(now);
  }

  // Directory transaction at the home cluster.
  txn_.kind = TxnKind::kDirectory;
  const int req = txn_.add_hop(HopKind::kRequest, c, h);
  const BlockAddr key = group_key(block);
  const int sub = sub_of(block);
  if (obs::compiled() && recorder_ != nullptr) {
    directories_[h]->obs_tick(obs_now_);  // timestamp store-level events
  }
  std::optional<VictimEntry> victim;
  DirEntry* entry = directories_[h]->find_or_alloc(key, victim);
  // Sparse-directory replacement work delays the transaction that forced it.
  if (victim) {
    reclaim_victim(h, *victim, req);
  }

  if (!is_write) {
    ++stats_.read_transactions;
    switch (entry->state_of(sub)) {
      case DirState::kUncached: {
        reset_union_if_sole(*entry, sub);
        entry->state_of(sub) = DirState::kShared;
        const int uncached_invals =
            add_sharer_handling_displacement(*entry, key, c, h, req);
        const std::uint32_t version = memory_version(block);
        txn_.add_hop(HopKind::kReply, h, c, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        // A displacement stalls the reply until the displaced copy's ack
        // is in (the entry must be precise before it grows a new sharer).
        txn_.ack_round = uncached_invals > 0;
        return commit(now);
      }
      case DirState::kShared: {
        const bool displaced_inval =
            add_sharer_handling_displacement(*entry, key, c, h, req) > 0;
        const std::uint32_t version = memory_version(block);
        txn_.add_hop(HopKind::kReply, h, c, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        txn_.ack_round = displaced_inval;
        return commit(now);
      }
      case DirState::kDirty: {
        const NodeId o = entry->owner_of(sub);
        ensure(o != c, "dirty-at-requester read miss must be snoop-served");
        // Forward to the owner; the owner replies to the requester and
        // sends a sharing writeback to the home.
        txn_.owner = o;
        const int fwd = txn_.add_hop(HopKind::kForward, h, o, req);
        std::uint32_t version = 0;
        bool found = false;
        const int first = o * config_.procs_per_cluster;
        for (int q = first; q < first + config_.procs_per_cluster; ++q) {
          if (caches_[static_cast<std::size_t>(q)].probe(block) ==
              LineState::kModified) {
            version = caches_[static_cast<std::size_t>(q)].downgrade(block);
            found = true;
            break;
          }
        }
        ensure(found, "directory owner held no dirty copy");
        ++stats_.sharing_writebacks;
        const int wb = txn_.add_hop(HopKind::kSharingWriteback, o, h, fwd);
        set_memory_version(block, version);
        txn_.add_hop(HopKind::kReply, o, c, fwd);
        entry->owner_of(sub) = kNoNode;
        reset_union_if_sole(*entry, sub);
        entry->state_of(sub) = DirState::kShared;
        // Displacements here are fire-and-forget: the 3-party reply does
        // not wait on them, so ack_round stays false.
        add_sharer_handling_displacement(*entry, key, o, h, wb);
        add_sharer_handling_displacement(*entry, key, c, h, wb);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        return commit(now);
      }
    }
    ensure(false, "unreachable read state");
  }

  // Write transaction.
  ++stats_.write_transactions;
  switch (entry->state_of(sub)) {
    case DirState::kUncached: {
      entry->state_of(sub) = DirState::kDirty;
      entry->owner_of(sub) = c;
      reset_union_if_sole(*entry, sub);
      txn_.add_hop(HopKind::kReply, h, c, req);
      stats_.inval_distribution.add(0);
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
    case DirState::kShared: {
      target_scratch_.clear();
      format_->collect_targets(entry->sharers, c, target_scratch_);
      const auto outcome = send_invalidations(
          target_scratch_, h, c, block, HopKind::kInval, HopKind::kAck,
          FanoutCause::kWriteShared, req);
      stats_.inval_distribution.add(
          static_cast<std::uint64_t>(outcome.network_invalidations));
      entry->state_of(sub) = DirState::kDirty;
      entry->owner_of(sub) = c;
      reset_union_if_sole(*entry, sub);
      txn_.add_hop(HopKind::kReply, h, c, req);  // ownership (+ data on miss)
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      if (cache.probe(block) == LineState::kShared) {
        cache.upgrade(block, version);
      } else {
        fill_cache(proc, block, LineState::kModified, version);
      }
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      // The write completes when every ack has arrived; wide target sets
      // keep the writer (and the directory) busy longer.
      txn_.ack_round = outcome.network_invalidations > 0;
      return commit(now);
    }
    case DirState::kDirty: {
      const NodeId o = entry->owner_of(sub);
      ensure(o != c, "dirty-at-requester write must be snoop-served");
      ++stats_.ownership_transfers;
      // Forward; the owner hands the (modified) data straight to the new
      // owner and confirms the transfer to the home. This is not an
      // invalidation event (Section 6.1).
      txn_.owner = o;
      const int fwd = txn_.add_hop(HopKind::kForward, h, o, req);
      const bool had = invalidate_cluster(o, block);
      ensure(had, "directory owner held no copy on transfer");
      txn_.add_hop(HopKind::kReply, o, c, fwd);
      txn_.add_hop(HopKind::kTransferAck, o, h, fwd);
      entry->owner_of(sub) = c;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
  }
  ensure(false, "unreachable write state");
  return 0;
}

const DirEntry* CoherenceSystem::peek_entry(BlockAddr block) const {
  // With grouped tracking the returned entry covers the whole group; use
  // state_of(sub_of(block)) for the per-block view.
  return directories_[home_of(block)]->peek(group_key(block));
}

CacheStats CoherenceSystem::aggregate_cache_stats() const {
  CacheStats total;
  for (const Cache& cache : caches_) {
    const CacheStats& s = cache.stats();
    total.read_hits += s.read_hits;
    total.read_misses += s.read_misses;
    total.write_hits += s.write_hits;
    total.write_upgrades += s.write_upgrades;
    total.write_misses += s.write_misses;
    total.evictions_clean += s.evictions_clean;
    total.evictions_dirty += s.evictions_dirty;
    total.invalidations_received += s.invalidations_received;
    total.invalidations_empty += s.invalidations_empty;
  }
  return total;
}

}  // namespace dircc
