#include "protocol/system.hpp"

#include <bit>

#include "common/ensure.hpp"
#include "network/hier.hpp"
#include "network/mesh.hpp"
#include "network/route.hpp"

namespace dircc {

namespace {
std::unique_ptr<Topology> make_topology(const SystemConfig& config) {
  const int clusters = config.num_clusters();
  if (config.hierarchy.chips <= 1) {
    return std::make_unique<MeshTopology>(clusters);
  }
  return std::make_unique<HierTopology>(config.hierarchy.chips,
                                        clusters / config.hierarchy.chips);
}
}  // namespace

CoherenceSystem::CoherenceSystem(const SystemConfig& config)
    : config_(config),
      num_clusters_(config.num_clusters()),
      clusters_per_chip_(config.hierarchy.chips > 1
                             ? num_clusters_ / config.hierarchy.chips
                             : num_clusters_),
      topo_(make_topology(config)),
      backend_(make_backend(config.backend, *topo_, config_.latency,
                            config_.queued)) {
  ensure(config.num_procs >= 1, "need at least one processor");
  ensure(config.procs_per_cluster >= 1 &&
             config.num_procs % config.procs_per_cluster == 0,
         "processor count must be a multiple of the cluster size");
  const int chips = config.hierarchy.chips;
  ensure(chips >= 1, "chip count must be at least 1");
  if (chips > 1) {
    ensure(num_clusters_ % chips == 0,
           "chip count must evenly divide the cluster count");
    ensure(config.hierarchy.inter.num_nodes == chips,
           "inter-chip scheme node count must equal the chip count");
    ensure(config.hierarchy.intra.num_nodes == clusters_per_chip_,
           "intra-chip scheme node count must equal clusters per chip");
    ensure(config.blocks_per_group == 1,
           "entry grouping is not supported on a hierarchical machine");
    ensure(!config.replacement_hints,
           "replacement hints are not supported on a hierarchical machine");
  } else {
    ensure(config.scheme.num_nodes == num_clusters_,
           "scheme node count must equal the cluster count");
  }
  ensure(is_pow2(static_cast<std::uint64_t>(config.block_size)),
         "block size must be a power of two");
  ensure(config.blocks_per_group >= 1 &&
             config.blocks_per_group <= kMaxGroupBlocks,
         "blocks_per_group outside supported range");
  if (is_pow2(static_cast<std::uint64_t>(num_clusters_))) {
    cluster_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(num_clusters_));
    cluster_mask_ = static_cast<BlockAddr>(num_clusters_) - 1;
  }
  if (is_pow2(static_cast<std::uint64_t>(config.procs_per_cluster))) {
    ppc_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(config.procs_per_cluster));
  }
  if (is_pow2(static_cast<std::uint64_t>(config.blocks_per_group))) {
    group_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(config.blocks_per_group));
  }
  caches_.reserve(static_cast<std::size_t>(config.num_procs));
  for (int p = 0; p < config.num_procs; ++p) {
    caches_.emplace_back(config.cache_lines_per_proc, config.cache_assoc);
  }
  if (config.l1_lines_per_proc > 0) {
    ensure(config.l1_lines_per_proc <= config.cache_lines_per_proc,
           "the first-level cache cannot exceed the coherence cache");
    l1_.reserve(static_cast<std::size_t>(config.num_procs));
    for (int p = 0; p < config.num_procs; ++p) {
      l1_.emplace_back(config.l1_lines_per_proc, config.l1_assoc);
    }
  }
  // Memory is block-interleaved across clusters, so each home's blocks are
  // every num_clusters-th one (and tracking keys every group-th of those);
  // its sparse sets index by the home-local tracking number.
  const std::uint64_t home_divisor =
      static_cast<std::uint64_t>(num_clusters_) *
      static_cast<std::uint64_t>(config.blocks_per_group);
  if (chips > 1) {
    home_level_ = std::make_unique<DirectoryLevel>(
        config.hierarchy.inter, config.hierarchy.inter_store, num_clusters_,
        config.seed, home_divisor);
    // The intra-chip level sees every block a chip caches (no home
    // interleaving), so its sparse sets index by the raw block number. A
    // distinct seed stream keeps its replacement RNG independent of the
    // homes'.
    intra_level_ = std::make_unique<DirectoryLevel>(
        config.hierarchy.intra, config.hierarchy.intra_store, chips,
        config.seed ^ 0x517cc1b727220a95ULL, 1);
  } else {
    home_level_ = std::make_unique<DirectoryLevel>(
        config.scheme, config.store, num_clusters_, config.seed, home_divisor);
  }
  stats_.chips = chips;
  // The transaction IR and the invalidation-target scratch are reused
  // across accesses; size them for a full-machine fan-out up front so the
  // steady-state access path never allocates.
  const auto clusters = static_cast<std::size_t>(num_clusters_);
  txn_.hops.reserve(4 * clusters + 8);
  txn_.fanouts.reserve(4);
  txn_.notes.reserve(8);
  target_scratch_.reserve(clusters);
  chip_scratch_.reserve(static_cast<std::size_t>(chips));
}

// ---------------------------------------------------------------------------
// Version tracking (value-coherence instrumentation)
// ---------------------------------------------------------------------------

std::uint32_t CoherenceSystem::memory_version(BlockAddr block) const {
  const std::uint32_t* version = memory_.find(block);
  return version == nullptr ? 0 : *version;
}

void CoherenceSystem::set_memory_version(BlockAddr block,
                                         std::uint32_t version) {
  bool inserted = false;
  *memory_.try_emplace(block, inserted) = version;
}

std::uint32_t CoherenceSystem::bump_latest(BlockAddr block) {
  bool inserted = false;
  return ++*latest_.try_emplace(block, inserted);
}

std::uint32_t CoherenceSystem::latest_version(BlockAddr block) const {
  const std::uint32_t* version = latest_.find(block);
  return version == nullptr ? 0 : *version;
}

void CoherenceSystem::check_version(BlockAddr block,
                                    std::uint32_t observed) const {
  if (config_.validate) {
    ensure(observed == latest_version(block),
           "coherence violation: a read observed a stale version");
  }
}

// ---------------------------------------------------------------------------
// Seeded-fault machinery (src/check validation)
// ---------------------------------------------------------------------------

bool CoherenceSystem::fault_fires(check::FaultKind kind) {
  if (!check::compiled() || config_.fault.kind != kind) {
    return false;
  }
  ++fault_opportunities_;
  if (faults_injected_ > 0 || fault_opportunities_ != config_.fault.trigger) {
    return false;
  }
  ++faults_injected_;
  return true;
}

bool CoherenceSystem::cluster_holds_copy(NodeId target, BlockAddr block) const {
  const int first = target * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (caches_[static_cast<std::size_t>(q)].probe(block) !=
        LineState::kInvalid) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Observability wiring
// ---------------------------------------------------------------------------

void CoherenceSystem::attach_recorder(obs::TraceRecorder* recorder) {
  if (!obs::compiled()) {
    return;
  }
  recorder_ = recorder;
  for (int h = 0; h < num_clusters_; ++h) {
    home_level_->store(h).attach_obs(recorder, static_cast<NodeId>(h));
  }
  if (intra_level_ != nullptr) {
    // Intra-chip store events are lane-tagged with the chip's gateway.
    for (int q = 0; q < intra_level_->num_stores(); ++q) {
      intra_level_->store(q).attach_obs(recorder, gateway_of(q));
    }
  }
}

void CoherenceSystem::attach_attribution(AttributionSink* sink) {
  if (!obs::compiled()) {
    return;
  }
  attrib_ = sink;
  backend_->set_timing_sink(sink);
  if (sink != nullptr) {
    sink->bind(*topo_);
  }
}

// ---------------------------------------------------------------------------
// Seeded-fault hook for message hops
// ---------------------------------------------------------------------------

bool CoherenceSystem::fault_drops_hop(HopKind kind, NodeId target,
                                      BlockAddr block) {
  if (!check::compiled()) {
    return false;
  }
  const check::FaultKind site = hop_fault_site(kind);
  if (site == check::FaultKind::kNone || config_.fault.kind != site) {
    return false;
  }
  // Skipping an invalidation only corrupts when the target actually holds
  // a copy; a dropped victim writeback always corrupts (the caller has
  // already found the dirty copy).
  if (site == check::FaultKind::kSkipInvalidation &&
      !cluster_holds_copy(target, block)) {
    return false;
  }
  return fault_fires(site);
}

// ---------------------------------------------------------------------------
// Invalidation machinery
// ---------------------------------------------------------------------------

Cache::InvalidateResult CoherenceSystem::invalidate_line(std::size_t proc,
                                                         BlockAddr block) {
  if (!l1_.empty()) {
    l1_[proc].invalidate(block);  // inclusion: the L1 copy dies too
  }
  return caches_[proc].invalidate(block);
}

void CoherenceSystem::fill_l1(ProcId proc, BlockAddr block,
                              std::uint32_t version) {
  if (l1_.empty()) {
    return;
  }
  // The L1 is a write-through subset of the L2: displaced lines drop
  // silently and carry nothing back.
  std::optional<EvictedLine> displaced;
  if (l1_[proc].probe(block) == LineState::kInvalid) {
    l1_[proc].fill(block, LineState::kShared, version, displaced);
  } else {
    l1_[proc].refresh(block, version);
  }
}

bool CoherenceSystem::invalidate_cluster(NodeId target, BlockAddr block) {
  bool any_copy = false;
  const int first = target * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    const auto result = invalidate_line(static_cast<std::size_t>(q), block);
    any_copy = any_copy || result.had_copy;
  }
  return any_copy;
}

CoherenceSystem::TargetOutcome CoherenceSystem::send_invalidations(
    const std::vector<NodeId>& targets, NodeId home, NodeId ack_sink,
    BlockAddr block, HopKind inval_kind, HopKind ack_kind, FanoutCause cause,
    int dep) {
  TargetOutcome outcome;
  const int fo = txn_.open_fanout(cause, dep);
  for (NodeId t : targets) {
    bool had_copy;
    if (fault_drops_hop(inval_kind, t, block)) {
      // Seeded fault: the invalidation message is "lost in the network".
      // The hop and its ack are still recorded below (they were sent; the
      // loss is silent), but the target keeps its copy.
      had_copy = true;
    } else {
      had_copy = invalidate_cluster(t, block);
    }
    if (!had_copy) {
      ++stats_.extraneous_invalidations;
    }
    // The home invalidates its own cluster over the bus (a src == dst hop,
    // free on the network); every other target costs one invalidation
    // message and one acknowledgement back to the sink.
    const int iv = txn_.add_hop(inval_kind, home, t, dep, fo);
    if (t != home) {
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
      ++outcome.network_invalidations;
    }
    if (t != ack_sink) {
      txn_.add_hop(ack_kind, t, ack_sink, iv, fo);
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
      ++outcome.network_acks;
    }
  }
  if (outcome.network_invalidations > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), block,
              static_cast<std::uint64_t>(outcome.network_invalidations));
  }
  return outcome;
}

void CoherenceSystem::reclaim_victim(NodeId home, const VictimEntry& victim,
                                     int dep) {
  ++stats_.sparse_replacements;
  bool collected = false;
  for (int sub = 0; sub < config_.blocks_per_group; ++sub) {
    const BlockAddr block = block_at(victim.block, sub);
    switch (victim.entry.state_of(sub)) {
      case DirState::kUncached:
        break;
      case DirState::kShared: {
        if (!collected) {
          target_scratch_.clear();
          home_level_->format().collect_targets(victim.entry.sharers, kNoNode,
                                   target_scratch_);
          collected = true;
        }
        // Acks for replacement invalidations return to the home's RAC. The
        // fan-out keeps the home busy streaming out invalidations before
        // it can service the displacing request (the analytic backend
        // charges per_invalidation per network invalidation).
        const auto outcome = send_invalidations(
            target_scratch_, home, home, block, HopKind::kReclaimInval,
            HopKind::kReclaimAck, FanoutCause::kSparseReclaim, dep);
        stats_.sparse_replacement_invals +=
            static_cast<std::uint64_t>(outcome.network_invalidations);
        break;
      }
      case DirState::kDirty: {
        // Pull the dirty copy back to memory, then kill it. The fetch and
        // the flush are a full remote round trip even when the owner is
        // the home cluster itself (the memory access still happens; only
        // the mesh crossing is free).
        const NodeId owner = victim.entry.owner_of(sub);
        const int fetch = txn_.add_hop(HopKind::kVictimFetch, home, owner,
                                       dep);
        bool found_dirty = false;
        const int first = owner * config_.procs_per_cluster;
        for (int q = first; q < first + config_.procs_per_cluster; ++q) {
          auto result = invalidate_line(static_cast<std::size_t>(q), block);
          if (result.had_copy) {
            found_dirty = true;
            // Seeded fault: the victim's writeback data never reaches
            // memory — the copy dies but memory keeps the stale version
            // (every dirty victim has versions ahead of memory, so this
            // opportunity always corrupts).
            if (!fault_drops_hop(HopKind::kVictimWriteback, owner, block)) {
              set_memory_version(block, result.version);
            }
          }
        }
        ensure(found_dirty, "dirty sparse victim had no cached copy");
        txn_.add_hop(HopKind::kVictimWriteback, owner, home, fetch);
        ++stats_.sparse_replacement_invals;
        break;
      }
    }
  }
}

void CoherenceSystem::reset_union_if_sole(DirEntry& entry, int sub) {
  if (!entry.any_in_state(DirState::kShared, config_.blocks_per_group, sub)) {
    entry.sharers.reset();
  }
}

int CoherenceSystem::add_sharer_handling_displacement(DirEntry& entry,
                                                      BlockAddr key,
                                                      NodeId node,
                                                      NodeId home, int dep) {
  if (check::compiled() &&
      config_.fault.kind == check::FaultKind::kForgetSharer &&
      !home_level_->format().maybe_sharer(entry.sharers, node) &&
      fault_fires(check::FaultKind::kForgetSharer)) {
    // Seeded fault: the directory drops the sharer bit/pointer for `node`
    // (only fired when the representation does not already cover it, so the
    // drop is guaranteed to leave an untracked copy). A directory-state
    // fault, not a message loss — it stays keyed to this site, not a hop.
    return 0;
  }
  const bool was_precise = !entry.sharers.overflowed;
  const NodeId displaced = home_level_->format().add_sharer(entry.sharers, node);
  if (was_precise && entry.sharers.overflowed) {
    // The entry left precise pointer mode (broadcast bit, composite
    // pointer, or coarse-vector reinterpretation, depending on scheme).
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kPtrOverflow), key,
              node);
  }
  if (displaced == kNoNode || displaced == node) {
    return 0;
  }
  // Dir_iNB pointer overflow: invalidate the displaced cluster so no block
  // is cached in more places than there are pointers. These are the
  // read-caused invalidations of Fig. 4. The shared field covers every
  // Shared sub-block of a grouped entry, so all of them must go.
  ++stats_.nb_read_displacements;
  const int fo = txn_.open_fanout(FanoutCause::kPointerDisplacement, dep);
  int net_invals = 0;
  for (int s = 0; s < config_.blocks_per_group; ++s) {
    if (entry.state_of(s) != DirState::kShared) {
      continue;
    }
    const bool had_copy = invalidate_cluster(displaced, block_at(key, s));
    if (!had_copy) {
      ++stats_.extraneous_invalidations;
    }
    const int iv =
        txn_.add_hop(HopKind::kDisplacementInval, home, displaced, dep, fo);
    if (displaced != home) {
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
      ++net_invals;
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
    }
    txn_.add_hop(HopKind::kAck, displaced, home, iv, fo);
  }
  stats_.inval_distribution.add(static_cast<std::uint64_t>(net_invals));
  if (net_invals > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), key,
              static_cast<std::uint64_t>(net_invals));
  }
  return net_invals;
}

// ---------------------------------------------------------------------------
// Cache fills, evictions, sibling scrubbing
// ---------------------------------------------------------------------------

void CoherenceSystem::handle_eviction(ProcId proc, const EvictedLine& evicted) {
  if (!l1_.empty()) {
    l1_[proc].invalidate(evicted.block);  // maintain inclusion
  }
  if (!evicted.dirty) {
    // By default shared lines are replaced silently; the directory keeps a
    // stale sharer pointer, which is safe (superset) and matches the
    // hardware. With replacement hints on, the home is told so it can
    // prune the sharer — valuable for sparse directories, whose stale
    // entries otherwise pin capacity.
    if (!config_.replacement_hints) {
      return;
    }
    const NodeId c = cluster_of(proc);
    const BlockAddr key = group_key(evicted.block);
    // At cluster granularity the hint is only valid once no cache in this
    // cluster holds *any* block the shared sharer field covers.
    const int first = c * config_.procs_per_cluster;
    for (int q = first; q < first + config_.procs_per_cluster; ++q) {
      for (int sub = 0; sub < config_.blocks_per_group; ++sub) {
        if (caches_[static_cast<std::size_t>(q)].probe(block_at(key, sub)) !=
            LineState::kInvalid) {
          return;
        }
      }
    }
    const NodeId h = home_of(evicted.block);
    ++stats_.replacement_hints_sent;
    txn_.add_hop(HopKind::kReplacementHint, c, h);
    DirEntry* entry = home_level_->store(h).find(key);
    if (entry != nullptr &&
        entry->state_of(sub_of(evicted.block)) == DirState::kShared) {
      home_level_->format().remove_sharer(entry->sharers, c);
      if (home_level_->format().known_empty(entry->sharers) &&
          !entry->any_in_state(DirState::kDirty, config_.blocks_per_group,
                               -1)) {
        entry->reset();
        home_level_->store(h).release(key);
      }
    }
    return;
  }
  ++stats_.dirty_eviction_writebacks;
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(evicted.block);
  if (hierarchical()) {
    // The dirty data travels home across the chip boundary and both
    // directory levels drop the block entirely (the sole copy is gone).
    hier_path(HopKind::kEvictionWriteback, HopKind::kChipWriteback, c, h, -1);
    set_memory_version(evicted.block, evicted.version);
    const int qc = chip_of_cluster(c);
    DirEntry* inter = home_level_->store(h).find(evicted.block);
    ensure(inter != nullptr && inter->state_of(0) == DirState::kDirty &&
               inter->owner_of(0) == static_cast<NodeId>(qc),
           "writeback from a non-owner chip");
    inter->reset();
    home_level_->store(h).release(evicted.block);
    DirEntry* intra = intra_level_->store(qc).find(evicted.block);
    ensure(intra != nullptr && intra->state_of(0) == DirState::kDirty &&
               intra->owner_of(0) == static_cast<NodeId>(chip_local_of(c)),
           "writeback from a non-owner cluster");
    intra->reset();
    intra_level_->store(qc).release(evicted.block);
    return;
  }
  const BlockAddr key = group_key(evicted.block);
  const int sub = sub_of(evicted.block);
  txn_.add_hop(HopKind::kEvictionWriteback, c, h);
  set_memory_version(evicted.block, evicted.version);
  DirEntry* entry = home_level_->store(h).find(key);
  ensure(entry != nullptr, "writeback found no directory entry");
  ensure(entry->state_of(sub) == DirState::kDirty &&
             entry->owner_of(sub) == c,
         "writeback from a non-owner");
  entry->state_of(sub) = DirState::kUncached;
  entry->owner_of(sub) = kNoNode;
  if (entry->all_uncached(config_.blocks_per_group)) {
    entry->reset();
    home_level_->store(h).release(key);
  }
}

void CoherenceSystem::fill_cache(ProcId proc, BlockAddr block, LineState state,
                                 std::uint32_t version) {
  std::optional<EvictedLine> evicted;
  caches_[proc].fill(block, state, version, evicted);
  if (evicted) {
    handle_eviction(proc, *evicted);
  }
}

void CoherenceSystem::scrub_cluster_siblings(ProcId writer, BlockAddr block) {
  const NodeId c = cluster_of(writer);
  const int first = c * config_.procs_per_cluster;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (q != static_cast<int>(writer)) {
      invalidate_line(static_cast<std::size_t>(q), block);
    }
  }
}

// ---------------------------------------------------------------------------
// Intra-cluster snooping
// ---------------------------------------------------------------------------

bool CoherenceSystem::snoop_service(ProcId proc, BlockAddr block,
                                    bool is_write) {
  if (config_.procs_per_cluster == 1) {
    return false;
  }
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(block);
  const int first = c * config_.procs_per_cluster;
  ProcId holder = kNoProc;
  LineState holder_state = LineState::kInvalid;
  for (int q = first; q < first + config_.procs_per_cluster; ++q) {
    if (q == static_cast<int>(proc)) {
      continue;
    }
    const LineState st = caches_[static_cast<std::size_t>(q)].probe(block);
    if (st == LineState::kModified) {
      holder = static_cast<ProcId>(q);
      holder_state = st;
      break;
    }
    if (st == LineState::kShared && holder == kNoProc) {
      holder = static_cast<ProcId>(q);
      holder_state = st;
    }
  }
  if (holder == kNoProc) {
    return false;
  }
  if (!is_write) {
    if (holder_state == LineState::kModified) {
      // A dirty sibling supplies the data; a sharing writeback updates the
      // home memory and demotes the directory entry to Shared so a later
      // remote read is not forwarded to a cluster with no dirty copy.
      const std::uint32_t version = caches_[holder].downgrade(block);
      ++stats_.sharing_writebacks;
      if (hierarchical()) {
        // Both levels demote with the writeback: the chip no longer owns
        // the block at the home, and the cluster no longer owns it on the
        // chip.
        const int wb = hier_path(HopKind::kSharingWriteback,
                                 HopKind::kChipWriteback, c, h, -1);
        set_memory_version(block, version);
        const int qc = chip_of_cluster(c);
        DirEntry* inter = home_level_->store(h).find(block);
        ensure(inter != nullptr && inter->state_of(0) == DirState::kDirty &&
                   inter->owner_of(0) == static_cast<NodeId>(qc),
               "sibling dirty copy without a matching inter-chip entry");
        inter->owner_of(0) = kNoNode;
        inter->sharers.reset();
        inter->state_of(0) = DirState::kShared;
        inter_add_chip(*inter, block, qc, h, wb);
        DirEntry* intra = intra_level_->store(qc).find(block);
        ensure(intra != nullptr && intra->state_of(0) == DirState::kDirty &&
                   intra->owner_of(0) ==
                       static_cast<NodeId>(chip_local_of(c)),
               "sibling dirty copy without a matching intra-chip entry");
        intra->owner_of(0) = kNoNode;
        intra->sharers.reset();
        intra->state_of(0) = DirState::kShared;
        intra_add_sharer(qc, *intra, block, chip_local_of(c), wb);
      } else {
        const int wb = txn_.add_hop(HopKind::kSharingWriteback, c, h);
        set_memory_version(block, version);
        DirEntry* entry = home_level_->store(h).find(group_key(block));
        const int sub = sub_of(block);
        ensure(entry != nullptr && entry->state_of(sub) == DirState::kDirty &&
                   entry->owner_of(sub) == c,
               "sibling dirty copy without a matching directory entry");
        entry->owner_of(sub) = kNoNode;
        reset_union_if_sole(*entry, sub);
        entry->state_of(sub) = DirState::kShared;
        add_sharer_handling_displacement(*entry, group_key(block), c, h, wb);
      }
      fill_cache(proc, block, LineState::kShared, version);
      fill_l1(proc, block, version);
      check_version(block, version);
    } else {
      fill_cache(proc, block, LineState::kShared,
                 caches_[holder].version_of(block));
      fill_l1(proc, block, caches_[holder].version_of(block));
      check_version(block, caches_[holder].version_of(block));
    }
    return true;
  }
  // Write: only a dirty sibling lets us skip the directory — ownership
  // stays within this cluster, so the directory entry is already correct.
  if (holder_state != LineState::kModified) {
    return false;
  }
  const auto result = invalidate_line(holder, block);
  ensure(result.had_copy && result.was_dirty, "snoop lost the dirty copy");
  const std::uint32_t version = bump_latest(block);
  scrub_cluster_siblings(proc, block);
  fill_cache(proc, block, LineState::kModified, version);
  if (!l1_.empty()) {
    l1_[proc].refresh(block, version);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Transaction commit: every consumer derives its view from the IR here
// ---------------------------------------------------------------------------

void CoherenceSystem::flush_obs() {
  if (!obs::compiled() || recorder_ == nullptr) {
    return;
  }
  // Deferred protocol events first (in the order the protocol queued
  // them), then the per-hop spans. Store-level events (sparse victim
  // selection) were recorded live and carry earlier sequence numbers, so
  // the exported order matches the protocol's internal order.
  for (const ObsNote& note : txn_.notes) {
    const auto type = static_cast<obs::EvType>(note.type);
    if (recorder_->wants(obs::ev_class_of(type))) {
      recorder_->record_home(txn_.home, {obs_now_, 0, note.a0, note.a1,
                                         type});
    }
  }
  if (recorder_->wants(obs::EvClass::kMsg)) {
    for (const Hop& hop : txn_.hops) {
      if (hop.src == hop.dst) {
        continue;  // bus work, not a network message
      }
      recorder_->record_home(
          txn_.home,
          {obs_now_, 0,
           static_cast<std::uint64_t>(hop.src) * 65536u + hop.dst,
           static_cast<std::uint64_t>(hop.kind), obs::EvType::kHop});
    }
  }
}

Cycle CoherenceSystem::commit(Cycle now) {
  ensure(txn_.active(), "commit without a transaction in flight");
  txn_.fold(stats_.messages);
  if (intra_level_ != nullptr) {
    for (const Hop& hop : txn_.hops) {
      if (hop.src != hop.dst && hop_crosses_chips(hop.kind)) {
        stats_.chip_messages.add(hop_msg_class(hop.kind));
      }
    }
  }
  // Computed once here and handed to the backend, which needs the same
  // route for its latency math.
  TransactionRoute route;
  if (txn_.kind == TxnKind::kLocal) {
    ++stats_.local_transactions;
  } else {
    route = transaction_route(*topo_, txn_.requester, txn_.home, txn_.owner);
    if (route.distinct_clusters == 1) {
      ++stats_.local_transactions;
    } else if (route.distinct_clusters == 2) {
      ++stats_.remote2_transactions;
    } else {
      ++stats_.remote3_transactions;
    }
  }
  flush_obs();
  const Cycle latency = backend_->transaction_latency(txn_, now, stats_, route);
  if (obs::compiled() && attrib_ != nullptr) {
    attrib_->on_commit(txn_, route, now, latency);
  }
  return latency;
}

// ---------------------------------------------------------------------------
// The access path
// ---------------------------------------------------------------------------

Cycle CoherenceSystem::access(ProcId proc, BlockAddr block, bool is_write,
                              Cycle now) {
  if (obs::compiled() && recorder_ != nullptr) {
    obs_now_ = now;  // protocol-side events carry the access's issue time
  }
  if (!config_.model_contention) {
    return access_internal(proc, block, is_write, now);
  }
  // Legacy contention model (kept for comparison; the queued backend is
  // the message-level version): a directory transaction occupies the home
  // controller for a base time plus a share per message it emits; requests
  // arriving while it is busy queue behind it. Cache hits and
  // intra-cluster snoop service bypass the directory and never queue.
  const std::uint64_t txns_before =
      stats_.read_transactions + stats_.write_transactions;
  const std::uint64_t msgs_before = stats_.messages.total();
  const Cycle base = access_internal(proc, block, is_write, now);
  if (stats_.read_transactions + stats_.write_transactions == txns_before) {
    return base;
  }
  const std::uint64_t emitted = stats_.messages.total() - msgs_before;
  if (home_busy_until_.empty()) {
    home_busy_until_.assign(static_cast<std::size_t>(num_clusters_), 0);
  }
  Cycle& busy = home_busy_until_[home_of(block)];
  const Cycle start = now < busy ? busy : now;
  const Cycle wait = start - now;
  stats_.contention_wait_cycles += wait;
  busy = start + config_.latency.dir_occupancy +
         config_.latency.per_invalidation * static_cast<Cycle>(emitted);
  return wait + base;
}

Cycle CoherenceSystem::access_internal(ProcId proc, BlockAddr block,
                                       bool is_write, Cycle now) {
  ensure(proc < static_cast<ProcId>(config_.num_procs),
         "processor id out of range");
  ++stats_.accesses;
  txn_.reset();  // hits leave it empty (TxnKind::kNone)
  Cache& cache = caches_[proc];
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(block);

  if (!is_write) {
    if (!l1_.empty() && l1_[proc].read_lookup(block)) {
      ++stats_.cache_hits;
      check_version(block, l1_[proc].version_of(block));
      return config_.latency.cache_hit;
    }
    if (cache.read_lookup(block)) {
      ++stats_.cache_hits;
      check_version(block, cache.version_of(block));
      fill_l1(proc, block, cache.version_of(block));
      return l1_.empty() ? config_.latency.cache_hit
                         : config_.latency.l2_hit;
    }
  } else {
    switch (cache.write_lookup(block)) {
      case Cache::WriteLookup::kHitModified: {
        ++stats_.cache_hits;
        // Owner writes again: bump the version in place. No transaction
        // (the write-through L1, if any, is refreshed and the write pays
        // the L2 access it writes through to).
        const std::uint32_t version = bump_latest(block);
        cache.write_touch(block, version);
        if (!l1_.empty()) {
          l1_[proc].refresh(block, version);
          return config_.latency.l2_hit;
        }
        return config_.latency.cache_hit;
      }
      case Cache::WriteLookup::kHitShared:
      case Cache::WriteLookup::kMiss:
        break;
    }
  }

  // Miss (or upgrade): try the intra-cluster bus first. The transaction IR
  // starts here — bus-served accesses commit as TxnKind::kLocal (their
  // eviction/writeback/displacement hops still land in the IR).
  txn_.kind = TxnKind::kLocal;
  txn_.is_write = is_write;
  txn_.requester = c;
  txn_.home = h;
  txn_.block = block;
  if (cache.probe(block) == LineState::kInvalid &&
      snoop_service(proc, block, is_write)) {
    return commit(now);
  }

  // Directory transaction — two-level machines take the hierarchical path
  // (chip-level service attempt, then the inter-chip protocol at the home).
  if (hierarchical()) {
    return access_hier(proc, block, is_write, now);
  }

  // Directory transaction at the home cluster.
  txn_.kind = TxnKind::kDirectory;
  const int req = txn_.add_hop(HopKind::kRequest, c, h);
  const BlockAddr key = group_key(block);
  const int sub = sub_of(block);
  if (obs::compiled() && recorder_ != nullptr) {
    home_level_->store(h).obs_tick(obs_now_);  // timestamp store-level events
  }
  std::optional<VictimEntry> victim;
  DirEntry* entry = home_level_->store(h).find_or_alloc(key, victim);
  // Sparse-directory replacement work delays the transaction that forced it.
  if (victim) {
    reclaim_victim(h, *victim, req);
  }

  if (!is_write) {
    ++stats_.read_transactions;
    switch (entry->state_of(sub)) {
      case DirState::kUncached: {
        reset_union_if_sole(*entry, sub);
        entry->state_of(sub) = DirState::kShared;
        const int uncached_invals =
            add_sharer_handling_displacement(*entry, key, c, h, req);
        const std::uint32_t version = memory_version(block);
        txn_.add_hop(HopKind::kReply, h, c, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        // A displacement stalls the reply until the displaced copy's ack
        // is in (the entry must be precise before it grows a new sharer).
        txn_.ack_round = uncached_invals > 0;
        return commit(now);
      }
      case DirState::kShared: {
        const bool displaced_inval =
            add_sharer_handling_displacement(*entry, key, c, h, req) > 0;
        const std::uint32_t version = memory_version(block);
        txn_.add_hop(HopKind::kReply, h, c, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        txn_.ack_round = displaced_inval;
        return commit(now);
      }
      case DirState::kDirty: {
        const NodeId o = entry->owner_of(sub);
        ensure(o != c, "dirty-at-requester read miss must be snoop-served");
        // Forward to the owner; the owner replies to the requester and
        // sends a sharing writeback to the home.
        txn_.owner = o;
        const int fwd = txn_.add_hop(HopKind::kForward, h, o, req);
        std::uint32_t version = 0;
        bool found = false;
        const int first = o * config_.procs_per_cluster;
        for (int q = first; q < first + config_.procs_per_cluster; ++q) {
          if (caches_[static_cast<std::size_t>(q)].probe(block) ==
              LineState::kModified) {
            version = caches_[static_cast<std::size_t>(q)].downgrade(block);
            found = true;
            break;
          }
        }
        ensure(found, "directory owner held no dirty copy");
        ++stats_.sharing_writebacks;
        const int wb = txn_.add_hop(HopKind::kSharingWriteback, o, h, fwd);
        set_memory_version(block, version);
        txn_.add_hop(HopKind::kReply, o, c, fwd);
        entry->owner_of(sub) = kNoNode;
        reset_union_if_sole(*entry, sub);
        entry->state_of(sub) = DirState::kShared;
        // Displacements here are fire-and-forget: the 3-party reply does
        // not wait on them, so ack_round stays false.
        add_sharer_handling_displacement(*entry, key, o, h, wb);
        add_sharer_handling_displacement(*entry, key, c, h, wb);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        return commit(now);
      }
    }
    ensure(false, "unreachable read state");
  }

  // Write transaction.
  ++stats_.write_transactions;
  switch (entry->state_of(sub)) {
    case DirState::kUncached: {
      entry->state_of(sub) = DirState::kDirty;
      entry->owner_of(sub) = c;
      reset_union_if_sole(*entry, sub);
      txn_.add_hop(HopKind::kReply, h, c, req);
      stats_.inval_distribution.add(0);
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
    case DirState::kShared: {
      target_scratch_.clear();
      home_level_->format().collect_targets(entry->sharers, c, target_scratch_);
      const auto outcome = send_invalidations(
          target_scratch_, h, c, block, HopKind::kInval, HopKind::kAck,
          FanoutCause::kWriteShared, req);
      stats_.inval_distribution.add(
          static_cast<std::uint64_t>(outcome.network_invalidations));
      entry->state_of(sub) = DirState::kDirty;
      entry->owner_of(sub) = c;
      reset_union_if_sole(*entry, sub);
      txn_.add_hop(HopKind::kReply, h, c, req);  // ownership (+ data on miss)
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      if (cache.probe(block) == LineState::kShared) {
        cache.upgrade(block, version);
      } else {
        fill_cache(proc, block, LineState::kModified, version);
      }
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      // The write completes when every ack has arrived; wide target sets
      // keep the writer (and the directory) busy longer.
      txn_.ack_round = outcome.network_invalidations > 0;
      return commit(now);
    }
    case DirState::kDirty: {
      const NodeId o = entry->owner_of(sub);
      ensure(o != c, "dirty-at-requester write must be snoop-served");
      ++stats_.ownership_transfers;
      // Forward; the owner hands the (modified) data straight to the new
      // owner and confirms the transfer to the home. This is not an
      // invalidation event (Section 6.1).
      txn_.owner = o;
      const int fwd = txn_.add_hop(HopKind::kForward, h, o, req);
      const bool had = invalidate_cluster(o, block);
      ensure(had, "directory owner held no copy on transfer");
      txn_.add_hop(HopKind::kReply, o, c, fwd);
      txn_.add_hop(HopKind::kTransferAck, o, h, fwd);
      entry->owner_of(sub) = c;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
  }
  ensure(false, "unreachable write state");
  return 0;
}

// ---------------------------------------------------------------------------
// Two-level hierarchy (docs/HIERARCHY.md): chip-boundary message paths,
// per-level entry maintenance and the hierarchical access body
// ---------------------------------------------------------------------------

int CoherenceSystem::hier_path(HopKind local_kind, HopKind chip_kind, NodeId a,
                               NodeId b, int dep, int fanout) {
  const int qa = chip_of_cluster(a);
  const int qb = chip_of_cluster(b);
  if (qa == qb) {
    return txn_.add_hop(local_kind, a, b, dep, fanout);
  }
  const NodeId ga = gateway_of(qa);
  const NodeId gb = gateway_of(qb);
  const int up = txn_.add_hop(local_kind, a, ga, dep, fanout);
  const int across = txn_.add_hop(chip_kind, ga, gb, up, fanout);
  return txn_.add_hop(local_kind, gb, b, across, fanout);
}

int CoherenceSystem::intra_add_sharer(int chip, DirEntry& entry,
                                      BlockAddr block, NodeId lc, int dep) {
  const NodeId gw = gateway_of(chip);
  const bool was_precise = !entry.sharers.overflowed;
  const NodeId displaced = intra_level_->format().add_sharer(entry.sharers, lc);
  if (was_precise && entry.sharers.overflowed) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kPtrOverflow), block,
              static_cast<std::uint64_t>(gw + lc));
  }
  if (displaced == kNoNode || displaced == lc) {
    return 0;
  }
  // Dir_iNB overflow at the intra-chip level: the displaced *local cluster*
  // is invalidated by its own chip directory; nothing leaves the chip (the
  // home's inter-chip entry still covers this chip through the requester).
  ++stats_.nb_read_displacements;
  const NodeId g = gw + displaced;
  const int fo = txn_.open_fanout(FanoutCause::kPointerDisplacement, dep);
  const bool had_copy = invalidate_cluster(g, block);
  if (!had_copy) {
    ++stats_.extraneous_invalidations;
  }
  const int iv = txn_.add_hop(HopKind::kDisplacementInval, gw, g, dep, fo);
  int net_invals = 0;
  if (g != gw) {
    ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
    ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
    ++net_invals;
  }
  txn_.add_hop(HopKind::kAck, g, gw, iv, fo);
  stats_.inval_distribution.add(static_cast<std::uint64_t>(net_invals));
  if (net_invals > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), block,
              static_cast<std::uint64_t>(net_invals));
  }
  return net_invals;
}

CoherenceSystem::TargetOutcome CoherenceSystem::invalidate_chip(
    int q, BlockAddr block, NodeId ack_sink, HopKind inval_kind,
    HopKind ack_kind, int dep, int fo) {
  TargetOutcome outcome;
  const NodeId gw = gateway_of(q);
  DirectoryStore& store = intra_level_->store(q);
  DirEntry* entry = store.find(block);
  if (entry == nullptr || entry->state_of(0) == DirState::kUncached) {
    // Stale chip-level sharer: every on-chip copy was already replaced (and
    // the intra entry reclaimed). The chip invalidation was extraneous.
    ++stats_.extraneous_invalidations;
    return outcome;
  }
  target_scratch_.clear();
  if (entry->state_of(0) == DirState::kDirty) {
    // Only reachable through corrupted state (seeded faults): kill the
    // owner's copy too so the fan-out still leaves the chip empty.
    target_scratch_.push_back(entry->owner_of(0));
  } else {
    intra_level_->format().collect_targets(entry->sharers, kNoNode,
                                           target_scratch_);
  }
  for (NodeId lt : target_scratch_) {
    const NodeId g = gw + lt;
    bool had_copy;
    if (fault_drops_hop(inval_kind, g, block)) {
      had_copy = true;  // lost in the network; the target keeps its copy
    } else {
      had_copy = invalidate_cluster(g, block);
    }
    if (!had_copy) {
      ++stats_.extraneous_invalidations;
    }
    const int iv = txn_.add_hop(inval_kind, gw, g, dep, fo);
    outcome.last_hop = iv;
    if (g != gw) {
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
      ++outcome.network_invalidations;
    }
    if (g != ack_sink) {
      outcome.last_hop = txn_.add_hop(ack_kind, g, ack_sink, iv, fo);
      ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
      ++outcome.network_acks;
    }
  }
  entry->reset();
  store.release(block);
  return outcome;
}

int CoherenceSystem::inter_add_chip(DirEntry& entry, BlockAddr block, int q,
                                    NodeId home, int dep) {
  if (check::compiled() &&
      config_.fault.kind == check::FaultKind::kForgetChipSharer &&
      !home_level_->format().maybe_sharer(entry.sharers,
                                          static_cast<NodeId>(q)) &&
      fault_fires(check::FaultKind::kForgetChipSharer)) {
    // Seeded fault: the inter-chip directory drops the chip pointer/bit
    // (only fired when the representation does not already cover the chip,
    // so the drop is guaranteed to leave untracked on-chip copies).
    return 0;
  }
  const bool was_precise = !entry.sharers.overflowed;
  const NodeId displaced =
      home_level_->format().add_sharer(entry.sharers, static_cast<NodeId>(q));
  if (was_precise && entry.sharers.overflowed) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kPtrOverflow), block,
              static_cast<std::uint64_t>(q));
  }
  if (displaced == kNoNode || displaced == static_cast<NodeId>(q)) {
    return 0;
  }
  // Dir_iNB overflow at the inter-chip level displaces a whole *chip*: the
  // displaced chip sheds every on-chip copy and its intra entry.
  ++stats_.nb_read_displacements;
  const int fo = txn_.open_fanout(FanoutCause::kPointerDisplacement, dep);
  const NodeId gd = gateway_of(static_cast<int>(displaced));
  int net_invals = 0;
  const int iv = hier_path(HopKind::kDisplacementInval, HopKind::kChipInval,
                           home, gd, dep, fo);
  if (gd != home) {
    ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
    ++net_invals;
  }
  const auto out =
      invalidate_chip(static_cast<int>(displaced), block, gd,
                      HopKind::kDisplacementInval, HopKind::kAck, iv, fo);
  net_invals += out.network_invalidations;
  hier_path(HopKind::kAck, HopKind::kChipAck, gd, home,
            out.last_hop >= 0 ? out.last_hop : iv, fo);
  if (gd != home) {
    ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
  }
  stats_.inval_distribution.add(static_cast<std::uint64_t>(net_invals));
  if (net_invals > 0) {
    txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), block,
              static_cast<std::uint64_t>(net_invals));
  }
  return net_invals;
}

DirEntry* CoherenceSystem::intra_find_or_alloc(int chip, BlockAddr block,
                                               int dep) {
  DirectoryStore& store = intra_level_->store(chip);
  if (obs::compiled() && recorder_ != nullptr) {
    store.obs_tick(obs_now_);
  }
  std::optional<VictimEntry> victim;
  DirEntry* entry = store.find_or_alloc(block, victim);
  if (victim) {
    reclaim_intra_victim(chip, *victim, dep);
  }
  return entry;
}

void CoherenceSystem::reclaim_intra_victim(int chip, const VictimEntry& victim,
                                           int dep) {
  ++stats_.sparse_replacements;
  const BlockAddr block = victim.block;
  const NodeId gw = gateway_of(chip);
  switch (victim.entry.state_of(0)) {
    case DirState::kUncached:
      break;
    case DirState::kShared: {
      // Local reclaim: every on-chip copy dies; the home's inter-chip entry
      // keeps a stale (superset-safe) chip sharer, exactly like a silent
      // cache replacement one level down.
      target_scratch_.clear();
      intra_level_->format().collect_targets(victim.entry.sharers, kNoNode,
                                             target_scratch_);
      const int fo = txn_.open_fanout(FanoutCause::kSparseReclaim, dep);
      for (NodeId lt : target_scratch_) {
        const NodeId g = gw + lt;
        bool had_copy;
        if (fault_drops_hop(HopKind::kReclaimInval, g, block)) {
          had_copy = true;
        } else {
          had_copy = invalidate_cluster(g, block);
        }
        if (!had_copy) {
          ++stats_.extraneous_invalidations;
        }
        const int iv = txn_.add_hop(HopKind::kReclaimInval, gw, g, dep, fo);
        if (g != gw) {
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
          ++stats_.sparse_replacement_invals;
          txn_.add_hop(HopKind::kReclaimAck, g, gw, iv, fo);
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
        }
      }
      break;
    }
    case DirState::kDirty: {
      // The sole dirty copy cannot drop silently: fetch it, flush it home
      // across the chip boundary and clear the inter-chip entry.
      const NodeId lo = victim.entry.owner_of(0);
      const NodeId g = gw + lo;
      const int fetch = txn_.add_hop(HopKind::kVictimFetch, gw, g, dep);
      bool found_dirty = false;
      const int first = g * config_.procs_per_cluster;
      for (int p = first; p < first + config_.procs_per_cluster; ++p) {
        auto result = invalidate_line(static_cast<std::size_t>(p), block);
        if (result.had_copy) {
          found_dirty = true;
          if (!fault_drops_hop(HopKind::kVictimWriteback, g, block)) {
            set_memory_version(block, result.version);
          }
        }
      }
      ensure(found_dirty, "dirty intra-chip victim had no cached copy");
      const int wb = txn_.add_hop(HopKind::kVictimWriteback, g, gw, fetch);
      const NodeId h = home_of(block);
      hier_path(HopKind::kVictimWriteback, HopKind::kChipWriteback, gw, h, wb);
      ++stats_.sparse_replacement_invals;
      DirEntry* inter = home_level_->store(h).find(block);
      ensure(inter != nullptr && inter->state_of(0) == DirState::kDirty &&
                 inter->owner_of(0) == static_cast<NodeId>(chip),
             "dirty intra-chip victim not owned at the home");
      inter->reset();
      home_level_->store(h).release(block);
      break;
    }
  }
}

void CoherenceSystem::reclaim_inter_victim(NodeId home,
                                           const VictimEntry& victim,
                                           int dep) {
  ++stats_.sparse_replacements;
  const BlockAddr block = victim.block;
  switch (victim.entry.state_of(0)) {
    case DirState::kUncached:
      break;
    case DirState::kShared: {
      // Every chip the victim entry names is invalidated chip-wide; acks
      // collect at the home's RAC before the entry is reused.
      chip_scratch_.clear();
      home_level_->format().collect_targets(victim.entry.sharers, kNoNode,
                                            chip_scratch_);
      const int fo = txn_.open_fanout(FanoutCause::kSparseReclaim, dep);
      int net_invals = 0;
      for (NodeId t : chip_scratch_) {
        const NodeId gt = gateway_of(static_cast<int>(t));
        const int iv = hier_path(HopKind::kReclaimInval, HopKind::kChipInval,
                                 home, gt, dep, fo);
        if (gt != home) {
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
          ++net_invals;
        }
        const auto out =
            invalidate_chip(static_cast<int>(t), block, gt,
                            HopKind::kReclaimInval, HopKind::kReclaimAck, iv,
                            fo);
        net_invals += out.network_invalidations;
        hier_path(HopKind::kReclaimAck, HopKind::kChipAck, gt, home,
                  out.last_hop >= 0 ? out.last_hop : iv, fo);
        if (gt != home) {
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
        }
      }
      stats_.sparse_replacement_invals +=
          static_cast<std::uint64_t>(net_invals);
      break;
    }
    case DirState::kDirty: {
      const int qo = static_cast<int>(victim.entry.owner_of(0));
      DirEntry* ointra = intra_level_->store(qo).find(block);
      ensure(ointra != nullptr && ointra->state_of(0) == DirState::kDirty,
             "dirty inter-chip victim without an intra-chip owner entry");
      const NodeId g = gateway_of(qo) + ointra->owner_of(0);
      const int fetch = hier_path(HopKind::kVictimFetch, HopKind::kChipForward,
                                  home, g, dep);
      bool found_dirty = false;
      const int first = g * config_.procs_per_cluster;
      for (int p = first; p < first + config_.procs_per_cluster; ++p) {
        auto result = invalidate_line(static_cast<std::size_t>(p), block);
        if (result.had_copy) {
          found_dirty = true;
          if (!fault_drops_hop(HopKind::kVictimWriteback, g, block)) {
            set_memory_version(block, result.version);
          }
        }
      }
      ensure(found_dirty, "dirty inter-chip victim had no cached copy");
      hier_path(HopKind::kVictimWriteback, HopKind::kChipWriteback, g, home,
                fetch);
      ++stats_.sparse_replacement_invals;
      ointra->reset();
      intra_level_->store(qo).release(block);
      break;
    }
  }
}

Cycle CoherenceSystem::access_hier(ProcId proc, BlockAddr block, bool is_write,
                                   Cycle now) {
  Cache& cache = caches_[proc];
  const NodeId c = cluster_of(proc);
  const NodeId h = home_of(block);
  const int qc = chip_of_cluster(c);
  const NodeId gq = gateway_of(qc);
  const NodeId lc = static_cast<NodeId>(chip_local_of(c));
  txn_.kind = TxnKind::kDirectory;

  // --- Chip-level service attempt: the requester's intra-chip directory
  // satisfies the access without leaving the chip when the chip already
  // holds the block in a compatible state.
  DirEntry* local_entry = intra_level_->store(qc).find(block);
  if (local_entry != nullptr) {
    const DirState lstate = local_entry->state_of(0);
    if (lstate == DirState::kDirty) {
      const NodeId lo = local_entry->owner_of(0);
      const NodeId og = gq + lo;
      ensure(og != c, "chip-dirty at the requester must be snoop-served");
      txn_.owner = og;
      if (!is_write) {
        // On-chip dirty read: the owner supplies the data and demotes; the
        // sharing writeback still travels to the home so memory and the
        // inter-chip entry demote with it.
        ++stats_.read_transactions;
        const int req = txn_.add_hop(HopKind::kRequest, c, gq);
        const int fwd = txn_.add_hop(HopKind::kForward, gq, og, req);
        std::uint32_t version = 0;
        bool found = false;
        const int first = og * config_.procs_per_cluster;
        for (int p = first; p < first + config_.procs_per_cluster; ++p) {
          if (caches_[static_cast<std::size_t>(p)].probe(block) ==
              LineState::kModified) {
            version = caches_[static_cast<std::size_t>(p)].downgrade(block);
            found = true;
            break;
          }
        }
        ensure(found, "intra-chip owner held no dirty copy");
        ++stats_.sharing_writebacks;
        const int wb = hier_path(HopKind::kSharingWriteback,
                                 HopKind::kChipWriteback, og, h, fwd);
        set_memory_version(block, version);
        txn_.add_hop(HopKind::kReply, og, c, fwd);
        DirEntry* inter = home_level_->store(h).find(block);
        ensure(inter != nullptr && inter->state_of(0) == DirState::kDirty &&
                   inter->owner_of(0) == static_cast<NodeId>(qc),
               "chip-dirty block not owned at the home");
        inter->owner_of(0) = kNoNode;
        inter->sharers.reset();
        inter->state_of(0) = DirState::kShared;
        inter_add_chip(*inter, block, qc, h, wb);
        local_entry->owner_of(0) = kNoNode;
        local_entry->sharers.reset();
        local_entry->state_of(0) = DirState::kShared;
        intra_add_sharer(qc, *local_entry, block, lo, wb);
        intra_add_sharer(qc, *local_entry, block, lc, wb);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        return commit(now);
      }
      // On-chip ownership transfer: the hierarchy's traffic win — the
      // write is a full 3-party transaction, yet zero messages leave the
      // chip (the inter-chip entry already names this chip as owner).
      ++stats_.write_transactions;
      ++stats_.ownership_transfers;
      ++stats_.chip_local_transactions;
      const int req = txn_.add_hop(HopKind::kRequest, c, gq);
      const int fwd = txn_.add_hop(HopKind::kForward, gq, og, req);
      const bool had = invalidate_cluster(og, block);
      ensure(had, "intra-chip owner held no copy on transfer");
      txn_.add_hop(HopKind::kReply, og, c, fwd);
      txn_.add_hop(HopKind::kTransferAck, og, gq, fwd);
      local_entry->owner_of(0) = lc;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      txn_.home = gq;  // served by the chip directory
      return commit(now);
    }
    if (lstate == DirState::kShared && !is_write) {
      // On-chip shared read: any local cluster with a live copy provides
      // the block — no home involvement, no inter-chip traffic.
      target_scratch_.clear();
      intra_level_->format().collect_targets(local_entry->sharers, kNoNode,
                                             target_scratch_);
      NodeId provider = kNoNode;
      std::uint32_t version = 0;
      for (NodeId lt : target_scratch_) {
        const NodeId g = gq + lt;
        const int first = g * config_.procs_per_cluster;
        for (int p = first; p < first + config_.procs_per_cluster; ++p) {
          if (caches_[static_cast<std::size_t>(p)].probe(block) !=
              LineState::kInvalid) {
            provider = g;
            version = caches_[static_cast<std::size_t>(p)].version_of(block);
            break;
          }
        }
        if (provider != kNoNode) {
          break;
        }
      }
      if (provider != kNoNode) {
        ++stats_.read_transactions;
        ++stats_.chip_local_transactions;
        txn_.owner = provider;
        const int req = txn_.add_hop(HopKind::kRequest, c, gq);
        const int fwd = txn_.add_hop(HopKind::kForward, gq, provider, req);
        txn_.add_hop(HopKind::kReply, provider, c, fwd);
        intra_add_sharer(qc, *local_entry, block, lc, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        txn_.home = gq;  // served by the chip directory
        return commit(now);
      }
      // Stale intra entry (every on-chip copy was silently replaced): fall
      // through to the home.
    }
  }

  // --- Inter-chip transaction at the home.
  const int req =
      hier_path(HopKind::kRequest, HopKind::kChipRequest, c, h, -1);
  if (obs::compiled() && recorder_ != nullptr) {
    home_level_->store(h).obs_tick(obs_now_);
  }
  std::optional<VictimEntry> victim;
  DirEntry* entry = home_level_->store(h).find_or_alloc(block, victim);
  if (victim) {
    reclaim_inter_victim(h, *victim, req);
  }

  if (!is_write) {
    ++stats_.read_transactions;
    switch (entry->state_of(0)) {
      case DirState::kUncached:
      case DirState::kShared: {
        if (entry->state_of(0) == DirState::kUncached) {
          entry->sharers.reset();
          entry->state_of(0) = DirState::kShared;
        }
        const int inter_invals = inter_add_chip(*entry, block, qc, h, req);
        const std::uint32_t version = memory_version(block);
        hier_path(HopKind::kReply, HopKind::kChipReply, h, c, req);
        DirEntry* intra = intra_find_or_alloc(qc, block, req);
        if (intra->state_of(0) == DirState::kUncached) {
          intra->sharers.reset();
          intra->state_of(0) = DirState::kShared;
        }
        const int intra_invals = intra_add_sharer(qc, *intra, block, lc, req);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        // A displacement at either level stalls the reply until the
        // displaced copy's ack is in.
        txn_.ack_round = inter_invals + intra_invals > 0;
        return commit(now);
      }
      case DirState::kDirty: {
        const int qo = static_cast<int>(entry->owner_of(0));
        ensure(qo != qc,
               "chip-dirty at the requester's chip must be served on chip");
        DirEntry* ointra = intra_level_->store(qo).find(block);
        ensure(ointra != nullptr && ointra->state_of(0) == DirState::kDirty,
               "owner chip lost its intra-chip dirty entry");
        const NodeId lo = ointra->owner_of(0);
        const NodeId og = gateway_of(qo) + lo;
        txn_.owner = og;
        const int fwd =
            hier_path(HopKind::kForward, HopKind::kChipForward, h, og, req);
        std::uint32_t version = 0;
        bool found = false;
        const int first = og * config_.procs_per_cluster;
        for (int p = first; p < first + config_.procs_per_cluster; ++p) {
          if (caches_[static_cast<std::size_t>(p)].probe(block) ==
              LineState::kModified) {
            version = caches_[static_cast<std::size_t>(p)].downgrade(block);
            found = true;
            break;
          }
        }
        ensure(found, "inter-chip owner held no dirty copy");
        ++stats_.sharing_writebacks;
        const int wb = hier_path(HopKind::kSharingWriteback,
                                 HopKind::kChipWriteback, og, h, fwd);
        set_memory_version(block, version);
        hier_path(HopKind::kReply, HopKind::kChipReply, og, c, fwd);
        // Both chips end up sharers at the home; the owner chip's intra
        // entry demotes with it. Displacements here are fire-and-forget.
        entry->owner_of(0) = kNoNode;
        entry->sharers.reset();
        entry->state_of(0) = DirState::kShared;
        inter_add_chip(*entry, block, qo, h, wb);
        inter_add_chip(*entry, block, qc, h, wb);
        ointra->owner_of(0) = kNoNode;
        ointra->sharers.reset();
        ointra->state_of(0) = DirState::kShared;
        intra_add_sharer(qo, *ointra, block, lo, wb);
        DirEntry* intra = intra_find_or_alloc(qc, block, wb);
        if (intra->state_of(0) == DirState::kUncached) {
          intra->sharers.reset();
          intra->state_of(0) = DirState::kShared;
        }
        intra_add_sharer(qc, *intra, block, lc, wb);
        fill_cache(proc, block, LineState::kShared, version);
        fill_l1(proc, block, version);
        check_version(block, version);
        return commit(now);
      }
    }
    ensure(false, "unreachable hierarchical read state");
  }

  // Write transaction at the home.
  ++stats_.write_transactions;
  switch (entry->state_of(0)) {
    case DirState::kUncached: {
      entry->sharers.reset();
      entry->state_of(0) = DirState::kDirty;
      entry->owner_of(0) = static_cast<NodeId>(qc);
      hier_path(HopKind::kReply, HopKind::kChipReply, h, c, req);
      stats_.inval_distribution.add(0);
      DirEntry* intra = intra_find_or_alloc(qc, block, req);
      intra->sharers.reset();
      intra->state_of(0) = DirState::kDirty;
      intra->owner_of(0) = lc;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
    case DirState::kShared: {
      // The home fans invalidations out at chip granularity: one path to
      // each sharer chip's gateway, a local fan-out on that chip, one ack
      // path back to the requester per chip. The requester's own chip
      // scrubs its extra sharers locally.
      chip_scratch_.clear();
      home_level_->format().collect_targets(entry->sharers,
                                            static_cast<NodeId>(qc),
                                            chip_scratch_);
      const int fo = txn_.open_fanout(FanoutCause::kWriteShared, req);
      int net_invals = 0;
      for (NodeId t : chip_scratch_) {
        const NodeId gt = gateway_of(static_cast<int>(t));
        const int iv =
            hier_path(HopKind::kInval, HopKind::kChipInval, h, gt, req, fo);
        if (gt != h) {
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_invalidations;
          ++net_invals;
        }
        const auto out = invalidate_chip(static_cast<int>(t), block, gt,
                                         HopKind::kInval, HopKind::kAck, iv,
                                         fo);
        net_invals += out.network_invalidations;
        hier_path(HopKind::kAck, HopKind::kChipAck, gt, c,
                  out.last_hop >= 0 ? out.last_hop : iv, fo);
        if (gt != c) {
          ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
        }
      }
      DirEntry* intra = intra_level_->store(qc).find(block);
      if (intra != nullptr && intra->state_of(0) == DirState::kShared) {
        target_scratch_.clear();
        intra_level_->format().collect_targets(intra->sharers, lc,
                                               target_scratch_);
        for (NodeId lt : target_scratch_) {
          const NodeId g = gq + lt;
          bool had_copy;
          if (fault_drops_hop(HopKind::kInval, g, block)) {
            had_copy = true;
          } else {
            had_copy = invalidate_cluster(g, block);
          }
          if (!had_copy) {
            ++stats_.extraneous_invalidations;
          }
          const int iv = txn_.add_hop(HopKind::kInval, gq, g, req, fo);
          if (g != gq) {
            ++txn_.fanouts[static_cast<std::size_t>(fo)]
                  .network_invalidations;
            ++net_invals;
          }
          if (g != c) {
            txn_.add_hop(HopKind::kAck, g, c, iv, fo);
            ++txn_.fanouts[static_cast<std::size_t>(fo)].network_acks;
          }
        }
      }
      stats_.inval_distribution.add(static_cast<std::uint64_t>(net_invals));
      if (net_invals > 0) {
        txn_.note(static_cast<std::uint8_t>(obs::EvType::kInvalFanout), block,
                  static_cast<std::uint64_t>(net_invals));
      }
      entry->sharers.reset();
      entry->state_of(0) = DirState::kDirty;
      entry->owner_of(0) = static_cast<NodeId>(qc);
      hier_path(HopKind::kReply, HopKind::kChipReply, h, c, req);
      if (intra == nullptr) {
        intra = intra_find_or_alloc(qc, block, req);
      }
      intra->sharers.reset();
      intra->state_of(0) = DirState::kDirty;
      intra->owner_of(0) = lc;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      if (cache.probe(block) == LineState::kShared) {
        cache.upgrade(block, version);
      } else {
        fill_cache(proc, block, LineState::kModified, version);
      }
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      txn_.ack_round = net_invals > 0;
      return commit(now);
    }
    case DirState::kDirty: {
      const int qo = static_cast<int>(entry->owner_of(0));
      ensure(qo != qc,
             "chip-dirty at the requester's chip must be served on chip");
      ++stats_.ownership_transfers;
      DirEntry* ointra = intra_level_->store(qo).find(block);
      ensure(ointra != nullptr && ointra->state_of(0) == DirState::kDirty,
             "owner chip lost its intra-chip dirty entry");
      const NodeId og = gateway_of(qo) + ointra->owner_of(0);
      txn_.owner = og;
      const int fwd =
          hier_path(HopKind::kForward, HopKind::kChipForward, h, og, req);
      const bool had = invalidate_cluster(og, block);
      ensure(had, "inter-chip owner held no copy on transfer");
      hier_path(HopKind::kReply, HopKind::kChipReply, og, c, fwd);
      hier_path(HopKind::kTransferAck, HopKind::kChipAck, og, h, fwd);
      entry->owner_of(0) = static_cast<NodeId>(qc);
      ointra->reset();
      intra_level_->store(qo).release(block);
      DirEntry* intra = intra_find_or_alloc(qc, block, fwd);
      intra->sharers.reset();
      intra->state_of(0) = DirState::kDirty;
      intra->owner_of(0) = lc;
      const std::uint32_t version = bump_latest(block);
      scrub_cluster_siblings(proc, block);
      fill_cache(proc, block, LineState::kModified, version);
      if (!l1_.empty()) {
        l1_[proc].refresh(block, version);
      }
      return commit(now);
    }
  }
  ensure(false, "unreachable hierarchical write state");
  return 0;
}

const DirEntry* CoherenceSystem::peek_intra_entry(int chip,
                                                  BlockAddr block) const {
  return intra_level_->store(chip).peek(block);
}

const DirEntry* CoherenceSystem::peek_entry(BlockAddr block) const {
  // With grouped tracking the returned entry covers the whole group; use
  // state_of(sub_of(block)) for the per-block view.
  return home_level_->store(home_of(block)).peek(group_key(block));
}

CacheStats CoherenceSystem::aggregate_cache_stats() const {
  CacheStats total;
  for (const Cache& cache : caches_) {
    const CacheStats& s = cache.stats();
    total.read_hits += s.read_hits;
    total.read_misses += s.read_misses;
    total.write_hits += s.write_hits;
    total.write_upgrades += s.write_upgrades;
    total.write_misses += s.write_misses;
    total.evictions_clean += s.evictions_clean;
    total.evictions_dirty += s.evictions_dirty;
    total.invalidations_received += s.invalidations_received;
    total.invalidations_empty += s.invalidations_empty;
  }
  return total;
}

}  // namespace dircc
