// Interconnect topology interface.
//
// The latency backends, route classifier and attribution collector only
// need distances, dimension-ordered link routes and report coordinates —
// not the concrete geometry. This interface lets the flat 2-D mesh
// (MeshTopology, the DASH cluster network) and the two-tier hierarchical
// organization (HierTopology: per-chip meshes joined by an inter-chip
// mesh) plug into the same machinery.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace dircc {

/// Directed channel identifier, dense in [0, num_links()). Used by the
/// queued latency backend to keep one FIFO per physical channel.
using LinkId = int;

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of clusters attached to the network.
  virtual int num_nodes() const = 0;

  /// Bounding grid of the layout (report/heatmap axes).
  virtual int width() const = 0;
  virtual int height() const = 0;

  /// Hop distance between two clusters along the deterministic route.
  virtual int hops(NodeId from, NodeId to) const = 0;

  /// Largest hop count between any node pair (network diameter).
  virtual int diameter() const = 0;

  /// Number of directed channels.
  virtual int num_links() const = 0;

  /// Appends the directed links crossed by the deterministic route from
  /// `from` to `to`. Appends nothing when from == to.
  virtual void route_links(NodeId from, NodeId to,
                           std::vector<LinkId>* out) const = 0;

  /// Layout coordinates of a node within the bounding grid.
  virtual int node_x(NodeId node) const = 0;
  virtual int node_y(NodeId node) const = 0;

  /// Human-readable link label.
  virtual std::string link_name(LinkId link) const = 0;
};

}  // namespace dircc
