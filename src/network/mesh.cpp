#include "network/mesh.hpp"

#include "common/ensure.hpp"
#include "network/message.hpp"

namespace dircc {

const char* msg_class_name(MsgClass cls) {
  switch (cls) {
    case MsgClass::kRequest:
      return "request";
    case MsgClass::kReply:
      return "reply";
    case MsgClass::kInvalidation:
      return "invalidation";
    case MsgClass::kAck:
      return "ack";
    case MsgClass::kWriteback:
      return "writeback";
  }
  return "?";
}

namespace {
int most_square_width(int num_nodes) {
  int width = 1;
  for (int w = 1; w * w <= num_nodes; ++w) {
    if (num_nodes % w == 0) {
      width = w;
    }
  }
  return num_nodes / width;  // the wider dimension
}
}  // namespace

MeshTopology::MeshTopology(int num_nodes)
    : width_(most_square_width(num_nodes)),
      height_(num_nodes / most_square_width(num_nodes)),
      num_nodes_(num_nodes) {
  ensure(num_nodes >= 1, "mesh needs at least one node");
  ensure(width_ * height_ == num_nodes, "mesh factorization failed");
  build_coords();
}

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height), num_nodes_(width * height) {
  ensure(width >= 1 && height >= 1, "mesh dimensions must be positive");
  build_coords();
}

void MeshTopology::build_coords() {
  ensure(width_ <= 65535 && height_ <= 65535,
         "mesh coordinates must fit 16 bits");
  x_.resize(static_cast<std::size_t>(num_nodes_));
  y_.resize(static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    x_[static_cast<std::size_t>(n)] = static_cast<std::uint16_t>(n % width_);
    y_[static_cast<std::size_t>(n)] = static_cast<std::uint16_t>(n / width_);
  }
}

int MeshTopology::num_links() const {
  const int horizontal = (width_ - 1) * height_;
  const int vertical = width_ * (height_ - 1);
  return 2 * horizontal + 2 * vertical;
}

void MeshTopology::route_links(NodeId from, NodeId to,
                               std::vector<LinkId>* out) const {
  ensure(from < num_nodes_ && to < num_nodes_, "mesh node out of range");
  const int horizontal = (width_ - 1) * height_;
  const int vertical = width_ * (height_ - 1);
  int x = x_[from];
  int y = y_[from];
  const int tx = x_[to];
  const int ty = y_[to];
  // X first. East link at column x of row y has id y*(width-1)+x; the
  // matching west link sits `horizontal` later.
  while (x < tx) {
    out->push_back(y * (width_ - 1) + x);
    ++x;
  }
  while (x > tx) {
    out->push_back(horizontal + y * (width_ - 1) + (x - 1));
    --x;
  }
  // Then Y. South link below row y at column x has id 2H + y*width + x; the
  // matching north link sits `vertical` later.
  while (y < ty) {
    out->push_back(2 * horizontal + y * width_ + x);
    ++y;
  }
  while (y > ty) {
    out->push_back(2 * horizontal + vertical + (y - 1) * width_ + x);
    --y;
  }
}

MeshTopology::RegionRange MeshTopology::region_range(int region,
                                                     int regions) const {
  ensure(regions >= 1, "mesh region cut needs at least one region");
  ensure(region >= 0 && region < regions, "mesh region out of range");
  const int base = num_nodes_ / regions;
  const int extra = num_nodes_ % regions;
  // Regions [0, extra) hold base+1 nodes, the rest base.
  const int first = region * base + (region < extra ? region : extra);
  const int size = base + (region < extra ? 1 : 0);
  RegionRange range;
  range.first = static_cast<NodeId>(first);
  range.last = static_cast<NodeId>(first + size);
  return range;
}

int MeshTopology::region_of(NodeId node, int regions) const {
  ensure(node < num_nodes_, "mesh node out of range");
  ensure(regions >= 1, "mesh region cut needs at least one region");
  const int base = num_nodes_ / regions;
  const int extra = num_nodes_ % regions;
  if (base == 0) {
    return static_cast<int>(node);  // more regions than nodes: one each
  }
  // First the wide bands (base+1 nodes), then the narrow ones.
  const int wide_span = extra * (base + 1);
  if (static_cast<int>(node) < wide_span) {
    return static_cast<int>(node) / (base + 1);
  }
  return extra + (static_cast<int>(node) - wide_span) / base;
}

MeshTopology::LinkEndpoints MeshTopology::link_endpoints(LinkId link) const {
  ensure(link >= 0 && link < num_links(), "mesh link out of range");
  const int horizontal = (width_ - 1) * height_;
  const int vertical = width_ * (height_ - 1);
  LinkEndpoints ep;
  if (link < horizontal) {
    // East: id = y*(width-1)+x routes (x,y) -> (x+1,y).
    ep.from_x = link % (width_ - 1);
    ep.from_y = link / (width_ - 1);
    ep.to_x = ep.from_x + 1;
    ep.to_y = ep.from_y;
  } else if (link < 2 * horizontal) {
    // West: id = H + y*(width-1)+(x-1) routes (x,y) -> (x-1,y).
    const int local = link - horizontal;
    ep.to_x = local % (width_ - 1);
    ep.to_y = local / (width_ - 1);
    ep.from_x = ep.to_x + 1;
    ep.from_y = ep.to_y;
  } else if (link < 2 * horizontal + vertical) {
    // South: id = 2H + y*width+x routes (x,y) -> (x,y+1).
    const int local = link - 2 * horizontal;
    ep.from_x = local % width_;
    ep.from_y = local / width_;
    ep.to_x = ep.from_x;
    ep.to_y = ep.from_y + 1;
  } else {
    // North: id = 2H + V + (y-1)*width+x routes (x,y) -> (x,y-1).
    const int local = link - 2 * horizontal - vertical;
    ep.to_x = local % width_;
    ep.to_y = local / width_;
    ep.from_x = ep.to_x;
    ep.from_y = ep.to_y + 1;
  }
  return ep;
}

std::string MeshTopology::link_name(LinkId link) const {
  const LinkEndpoints ep = link_endpoints(link);
  return "(" + std::to_string(ep.from_x) + "," + std::to_string(ep.from_y) +
         ")->(" + std::to_string(ep.to_x) + "," + std::to_string(ep.to_y) +
         ")";
}

}  // namespace dircc
