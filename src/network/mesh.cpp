#include "network/mesh.hpp"

#include "common/ensure.hpp"
#include "network/message.hpp"

namespace dircc {

const char* msg_class_name(MsgClass cls) {
  switch (cls) {
    case MsgClass::kRequest:
      return "request";
    case MsgClass::kReply:
      return "reply";
    case MsgClass::kInvalidation:
      return "invalidation";
    case MsgClass::kAck:
      return "ack";
    case MsgClass::kWriteback:
      return "writeback";
  }
  return "?";
}

namespace {
int most_square_width(int num_nodes) {
  int width = 1;
  for (int w = 1; w * w <= num_nodes; ++w) {
    if (num_nodes % w == 0) {
      width = w;
    }
  }
  return num_nodes / width;  // the wider dimension
}
}  // namespace

MeshTopology::MeshTopology(int num_nodes)
    : width_(most_square_width(num_nodes)),
      height_(num_nodes / most_square_width(num_nodes)),
      num_nodes_(num_nodes) {
  ensure(num_nodes >= 1, "mesh needs at least one node");
  ensure(width_ * height_ == num_nodes, "mesh factorization failed");
}

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height), num_nodes_(width * height) {
  ensure(width >= 1 && height >= 1, "mesh dimensions must be positive");
}

int MeshTopology::hops(NodeId from, NodeId to) const {
  ensure(from < num_nodes_ && to < num_nodes_, "mesh node out of range");
  const int fx = from % width_;
  const int fy = from / width_;
  const int tx = to % width_;
  const int ty = to / width_;
  const int dx = fx > tx ? fx - tx : tx - fx;
  const int dy = fy > ty ? fy - ty : ty - fy;
  return dx + dy;
}

}  // namespace dircc
