// Message taxonomy and traffic accounting.
//
// The simulator counts messages in the four classes the paper reports
// (Section 5): requests (including forwarded requests), replies,
// invalidations and acknowledgements — plus writebacks, which the paper
// folds into the request class when plotting. All counts are inter-cluster
// messages; intra-cluster bus transactions are free.
#pragma once

#include <cstdint>

namespace dircc {

enum class MsgClass : std::uint8_t {
  kRequest,       ///< cache -> directory (or forwarded directory -> owner)
  kReply,         ///< directory/owner -> cache: data and/or ownership
  kInvalidation,  ///< directory -> remote cluster
  kAck,           ///< remote cluster -> requester/RAC
  kWriteback,     ///< cache -> home memory (dirty displacement / sharing WB)
};

inline constexpr int kNumMsgClasses = 5;

const char* msg_class_name(MsgClass cls);

/// Per-class message counters.
struct MessageCounters {
  std::uint64_t counts[kNumMsgClasses] = {};

  void add(MsgClass cls, std::uint64_t n = 1) {
    counts[static_cast<int>(cls)] += n;
  }
  std::uint64_t get(MsgClass cls) const {
    return counts[static_cast<int>(cls)];
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts) {
      sum += c;
    }
    return sum;
  }
  /// The paper's plotted breakdown: requests include writebacks.
  std::uint64_t requests_with_writebacks() const {
    return get(MsgClass::kRequest) + get(MsgClass::kWriteback);
  }
  std::uint64_t inv_plus_ack() const {
    return get(MsgClass::kInvalidation) + get(MsgClass::kAck);
  }
  MessageCounters& operator+=(const MessageCounters& other) {
    for (int i = 0; i < kNumMsgClasses; ++i) {
      counts[i] += other.counts[i];
    }
    return *this;
  }
};

}  // namespace dircc
