#include "network/hier.hpp"

#include "common/ensure.hpp"

namespace dircc {

HierTopology::HierTopology(int chips, int clusters_per_chip)
    : chips_(chips),
      clusters_per_chip_(clusters_per_chip),
      num_nodes_(chips * clusters_per_chip),
      intra_mesh_(clusters_per_chip),
      chip_mesh_(chips),
      intra_links_(intra_mesh_.num_links()) {
  ensure(chips >= 1, "hier topology needs at least one chip");
  ensure(clusters_per_chip >= 1,
         "hier topology needs at least one cluster per chip");
}

int HierTopology::hops(NodeId from, NodeId to) const {
  const int qf = chip_of(from);
  const int qt = chip_of(to);
  const NodeId lf = static_cast<NodeId>(local_of(from));
  const NodeId lt = static_cast<NodeId>(local_of(to));
  if (qf == qt) {
    return intra_mesh_.hops(lf, lt);
  }
  return intra_mesh_.hops(lf, 0) +
         chip_mesh_.hops(static_cast<NodeId>(qf), static_cast<NodeId>(qt)) +
         intra_mesh_.hops(0, lt);
}

void HierTopology::route_links(NodeId from, NodeId to,
                               std::vector<LinkId>* out) const {
  ensure(from < num_nodes_ && to < num_nodes_, "hier node out of range");
  const int qf = chip_of(from);
  const int qt = chip_of(to);
  const NodeId lf = static_cast<NodeId>(local_of(from));
  const NodeId lt = static_cast<NodeId>(local_of(to));
  // Appends one tier's sub-route, then rebases the new link ids into the
  // concatenated id space.
  const auto append = [out](const MeshTopology& mesh, NodeId a, NodeId b,
                            int offset) {
    const std::size_t start = out->size();
    mesh.route_links(a, b, out);
    for (std::size_t i = start; i < out->size(); ++i) {
      (*out)[i] += offset;
    }
  };
  if (qf == qt) {
    append(intra_mesh_, lf, lt, qf * intra_links_);
    return;
  }
  append(intra_mesh_, lf, 0, qf * intra_links_);
  append(chip_mesh_, static_cast<NodeId>(qf), static_cast<NodeId>(qt),
         chips_ * intra_links_);
  append(intra_mesh_, 0, lt, qt * intra_links_);
}

int HierTopology::node_x(NodeId node) const {
  const int q = chip_of(node);
  const NodeId local = static_cast<NodeId>(local_of(node));
  return chip_mesh_.node_x(static_cast<NodeId>(q)) * intra_mesh_.width() +
         intra_mesh_.node_x(local);
}

int HierTopology::node_y(NodeId node) const {
  const int q = chip_of(node);
  const NodeId local = static_cast<NodeId>(local_of(node));
  return chip_mesh_.node_y(static_cast<NodeId>(q)) * intra_mesh_.height() +
         intra_mesh_.node_y(local);
}

std::string HierTopology::link_name(LinkId link) const {
  ensure(link >= 0 && link < num_links(), "hier link out of range");
  if (link < chips_ * intra_links_) {
    const int chip = link / intra_links_;
    const LinkId local = link % intra_links_;
    return "chip" + std::to_string(chip) + ":" + intra_mesh_.link_name(local);
  }
  return "xchip:" + chip_mesh_.link_name(link - chips_ * intra_links_);
}

}  // namespace dircc
