// Two-tier interconnect for the hierarchical (multi-chip) organization
// (docs/HIERARCHY.md): every chip carries its own 2-D mesh of clusters,
// and the chips themselves sit on a second 2-D mesh of inter-chip links.
//
// Global cluster ids are contiguous per chip — cluster n lives on chip
// n / clusters_per_chip at local position n % clusters_per_chip, matching
// the protocol layer's chip_of() mapping and the sharded engine's
// contiguous home bands. Cross-chip routes are gateway-to-gateway: the
// route runs from the source cluster to its chip's gateway (local node 0),
// across the chip mesh, then from the destination chip's gateway to the
// destination cluster. Link ids concatenate the per-chip intra-link
// spaces (chip q's links start at q * intra_links) followed by the
// inter-chip links, so the queued backend keeps one FIFO per physical
// channel across both tiers.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "network/mesh.hpp"
#include "network/topology.hpp"

namespace dircc {

class HierTopology final : public Topology {
 public:
  HierTopology(int chips, int clusters_per_chip);

  int num_nodes() const override { return num_nodes_; }
  int width() const override { return chip_mesh_.width() * intra_mesh_.width(); }
  int height() const override {
    return chip_mesh_.height() * intra_mesh_.height();
  }

  int chips() const { return chips_; }
  int clusters_per_chip() const { return clusters_per_chip_; }
  int chip_of(NodeId node) const {
    ensure(node < num_nodes_, "hier node out of range");
    return static_cast<int>(node) / clusters_per_chip_;
  }
  int local_of(NodeId node) const {
    ensure(node < num_nodes_, "hier node out of range");
    return static_cast<int>(node) % clusters_per_chip_;
  }
  /// Gateway cluster (local node 0) of a chip.
  NodeId gateway(int chip) const {
    ensure(chip >= 0 && chip < chips_, "hier chip out of range");
    return static_cast<NodeId>(chip * clusters_per_chip_);
  }

  int hops(NodeId from, NodeId to) const override;
  int diameter() const override {
    return 2 * intra_mesh_.diameter() + chip_mesh_.diameter();
  }

  int num_links() const override {
    return chips_ * intra_links_ + chip_mesh_.num_links();
  }
  void route_links(NodeId from, NodeId to,
                   std::vector<LinkId>* out) const override;

  int node_x(NodeId node) const override;
  int node_y(NodeId node) const override;

  std::string link_name(LinkId link) const override;

 private:
  int chips_;
  int clusters_per_chip_;
  int num_nodes_;
  MeshTopology intra_mesh_;  ///< one chip's cluster mesh (shared geometry)
  MeshTopology chip_mesh_;   ///< the inter-chip mesh
  int intra_links_;          ///< intra_mesh_.num_links(), cached
};

}  // namespace dircc
