// 2-D mesh interconnect topology (the DASH cluster network).
#pragma once

#include "common/types.hpp"

namespace dircc {

/// Clusters laid out row-major on a width x height grid; distances are
/// Manhattan hop counts (DASH used a pair of wormhole-routed 2-D meshes).
class MeshTopology {
 public:
  /// Builds the most-square mesh holding `num_nodes` clusters.
  explicit MeshTopology(int num_nodes);

  MeshTopology(int width, int height);

  int num_nodes() const { return num_nodes_; }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Manhattan distance between two clusters.
  int hops(NodeId from, NodeId to) const;

  /// Largest hop count on the mesh (network diameter).
  int diameter() const { return (width_ - 1) + (height_ - 1); }

 private:
  int width_;
  int height_;
  int num_nodes_;
};

}  // namespace dircc
