// 2-D mesh interconnect topology (the DASH cluster network).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"
#include "network/topology.hpp"

namespace dircc {

/// Clusters laid out row-major on a width x height grid; distances are
/// Manhattan hop counts (DASH used a pair of wormhole-routed 2-D meshes).
class MeshTopology final : public Topology {
 public:
  /// Builds the most-square mesh holding `num_nodes` clusters.
  explicit MeshTopology(int num_nodes);

  MeshTopology(int width, int height);

  int num_nodes() const override { return num_nodes_; }
  int width() const override { return width_; }
  int height() const override { return height_; }

  /// Manhattan distance between two clusters. Called several times per
  /// directory transaction, so coordinates come from tables built at
  /// construction instead of a divide/modulo per call.
  int hops(NodeId from, NodeId to) const override {
    ensure(from < num_nodes_ && to < num_nodes_, "mesh node out of range");
    const int dx = static_cast<int>(x_[from]) - static_cast<int>(x_[to]);
    const int dy = static_cast<int>(y_[from]) - static_cast<int>(y_[to]);
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
  }

  /// Largest hop count on the mesh (network diameter).
  int diameter() const override { return (width_ - 1) + (height_ - 1); }

  /// Number of directed channels: (width-1)*height east + the same west,
  /// plus width*(height-1) south + the same north.
  int num_links() const override;

  /// Appends the directed links crossed by an X-then-Y (dimension-ordered)
  /// route from `from` to `to`. Appends nothing when from == to.
  void route_links(NodeId from, NodeId to,
                   std::vector<LinkId>* out) const override;

  /// Grid coordinates of a node.
  int node_x(NodeId node) const override {
    ensure(node < num_nodes_, "mesh node out of range");
    return x_[static_cast<std::size_t>(node)];
  }
  int node_y(NodeId node) const override {
    ensure(node < num_nodes_, "mesh node out of range");
    return y_[static_cast<std::size_t>(node)];
  }

  /// Half-open node-id interval [first, last) of one mesh region.
  struct RegionRange {
    NodeId first = 0;
    NodeId last = 0;
  };

  /// Cuts the mesh into `regions` contiguous row-major bands of near-equal
  /// size (the first num_nodes % regions bands hold one extra node). Nodes
  /// are laid out row-major, so a band is a set of whole rows plus at most
  /// one partial row at each edge — the geometry the sharded engine
  /// partitions homes by (docs/PARALLELISM.md). `regions` above num_nodes
  /// clamps: every region past the node count is empty.
  RegionRange region_range(int region, int regions) const;

  /// Region index of `node` under the same cut. Inverse of region_range.
  int region_of(NodeId node, int regions) const;

  /// True when a (dimension-ordered) route from `from` to `to` leaves its
  /// origin band, i.e. the message is cross-region traffic under the cut.
  bool route_crosses_region(NodeId from, NodeId to, int regions) const {
    return region_of(from, regions) != region_of(to, regions);
  }

  /// One end of a directed link, as grid coordinates.
  struct LinkEndpoints {
    int from_x = 0;
    int from_y = 0;
    int to_x = 0;
    int to_y = 0;
  };

  /// Inverts the link-id encoding used by route_links(): returns the grid
  /// coordinates of the channel's source and destination routers.
  LinkEndpoints link_endpoints(LinkId link) const;

  /// Human-readable link label, "(x0,y0)->(x1,y1)".
  std::string link_name(LinkId link) const override;

 private:
  void build_coords();

  int width_;
  int height_;
  int num_nodes_;
  // Row-major node coordinates, indexed by NodeId.
  std::vector<std::uint16_t> x_;
  std::vector<std::uint16_t> y_;
};

}  // namespace dircc
