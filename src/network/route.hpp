// Named transaction routes over the mesh.
//
// A directory transaction touches one, two or three distinct clusters
// (requester, home, dirty owner); its critical path crosses the mesh either
// as a request/reply round trip (2-party) or as the request → forward →
// reply-and-writeback triangle (3-party). The hop arithmetic used to be
// inlined at the protocol's latency call sites; this header is the one
// shared definition, used both by the closed-form latency math and by the
// Transaction IR builder.
#pragma once

#include "common/types.hpp"
#include "network/topology.hpp"

namespace dircc {

/// Shape of one transaction's critical path through the mesh.
struct TransactionRoute {
  int distinct_clusters = 1;  ///< |{requester, home, owner}| (1, 2 or 3)
  int total_hops = 0;         ///< mesh hops on the critical path
};

/// Route of a transaction issued by cluster `c` to home `h`, optionally
/// forwarded to dirty owner `o` (`kNoNode` for a 2-party transaction).
/// 2-party: the c→h request plus the h→c reply. 3-party: the c→h request,
/// the h→o forward and the o→c reply (the o→h sharing writeback is off the
/// critical path but the paper's 3-cluster latency folds it in).
inline TransactionRoute transaction_route(const Topology& mesh, NodeId c,
                                          NodeId h, NodeId o = kNoNode) {
  TransactionRoute route;
  if (o == kNoNode) {
    if (c != h) {
      route.distinct_clusters = 2;
      route.total_hops = 2 * mesh.hops(c, h);
    }
    return route;
  }
  // Count distinct clusters among {c, h, o}.
  route.distinct_clusters = 1 + (h != c ? 1 : 0) + (o != c && o != h ? 1 : 0);
  route.total_hops = mesh.hops(c, h) + mesh.hops(h, o) + mesh.hops(o, c);
  return route;
}

}  // namespace dircc
