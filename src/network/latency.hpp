// Transaction latency model, calibrated to the DASH prototype numbers the
// paper quotes in Section 5: local bus accesses on the order of 23 processor
// cycles, remote accesses involving two clusters about 60 cycles, and remote
// accesses involving three clusters about 80 cycles.
//
// Latencies are per *transaction leg*; the protocol composes them. An
// optional per-hop term lets studies add mesh-distance sensitivity (off by
// default so the defaults reproduce the paper's flat figures).
#pragma once

#include "common/types.hpp"
#include "network/mesh.hpp"

namespace dircc {

struct LatencyModel {
  Cycle cache_hit = 1;        ///< hit in the first-level cache
  Cycle l2_hit = 8;           ///< hit in the secondary cache (two-level
                              ///< hierarchies only; single-level machines
                              ///< pay cache_hit)
  Cycle local_access = 23;    ///< miss satisfied within the local cluster
  Cycle remote_2cluster = 60; ///< miss involving two clusters (local+home)
  Cycle remote_3cluster = 80; ///< miss involving three clusters (dirty fwd)
  Cycle invalidation_round = 40;  ///< extra cycles until all acks arrive
  Cycle per_invalidation = 2; ///< directory occupancy per invalidation sent:
                              ///< a write completes only when every ack is
                              ///< in, so wide invalidation sets stall the
                              ///< writer longer
  Cycle per_hop = 0;          ///< optional mesh-distance increment per hop
  Cycle chip_crossing = 20;   ///< extra cycles per chip-boundary message on
                              ///< a hierarchical machine's critical path;
                              ///< flat machines never emit chip-boundary
                              ///< hops, so the default leaves them untouched
  Cycle dir_occupancy = 6;    ///< home-controller busy time per transaction
                              ///< (only used when contention is modeled)

  /// Latency of a transaction touching `distinct_clusters` (1, 2 or 3)
  /// with `total_hops` total mesh hops on its critical path.
  Cycle transaction(int distinct_clusters, int total_hops) const {
    Cycle base = local_access;
    if (distinct_clusters == 2) {
      base = remote_2cluster;
    } else if (distinct_clusters >= 3) {
      base = remote_3cluster;
    }
    return base + per_hop * static_cast<Cycle>(total_hops);
  }
};

/// Knobs of the queued latency backend, which layers mesh-link and
/// home-controller FIFO occupancy on top of the closed-form model. The
/// queued estimate never undercuts the analytic one (it is taken as a max),
/// so contention only ever adds latency.
struct QueuedLatencyConfig {
  Cycle link_service = 1;  ///< directed-channel occupancy per message
  Cycle link_transit = 1;  ///< propagation per link crossed
  Cycle home_service = 6;  ///< home-controller occupancy per message
                           ///< emitted or absorbed (matches dir_occupancy)
};

}  // namespace dircc
