#include "check/fuzz.hpp"

#include <sstream>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace dircc::check {

std::string fuzz_trace_key(const FuzzTraceConfig& c) {
  std::ostringstream key;
  key << "fuzz(procs=" << c.procs << ",block=" << c.block_size
      << ",rounds=" << c.rounds << ",units=" << c.units_per_round
      << ",hot=" << c.hot_blocks << ",pool=" << c.pool_blocks
      << ",locks=" << c.num_locks << ",plock=" << c.p_lock
      << ",pmigrate=" << c.p_migrate << ",pthink=" << c.p_think
      << ",phot=" << c.p_hot << ",pwrite=" << c.p_write << ",seed=" << c.seed
      << ")";
  return key.str();
}

ProgramTrace generate_fuzz_trace(const FuzzTraceConfig& c) {
  ensure(c.procs >= 1, "fuzz trace needs at least one processor");
  ensure(c.rounds >= 1 && c.units_per_round >= 1,
         "fuzz trace needs at least one round of at least one unit");
  ensure(c.hot_blocks >= 1 && c.pool_blocks >= 1,
         "fuzz trace needs hot and pool blocks");
  ensure(c.num_locks >= 1, "fuzz trace needs at least one lock");
  ensure(c.p_lock + c.p_migrate + c.p_think <= 1.0,
         "fuzz unit probabilities exceed 1");

  // Block-number layout: [hot | lock-guarded | scatter pool].
  const auto hot_base = BlockAddr{0};
  const auto lock_base = static_cast<BlockAddr>(c.hot_blocks);
  const BlockAddr pool_base =
      lock_base + static_cast<BlockAddr>(c.num_locks);
  const auto bs = static_cast<Addr>(c.block_size);

  ProgramTrace trace;
  trace.app_name = "fuzz";
  trace.block_size = c.block_size;
  trace.per_proc.resize(static_cast<std::size_t>(c.procs));

  for (int p = 0; p < c.procs; ++p) {
    // Per-processor deterministic stream: independent of generation order.
    Rng rng(c.seed + 0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(p) + 1));
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int round = 0; round < c.rounds; ++round) {
      for (int unit = 0; unit < c.units_per_round; ++unit) {
        const double roll = rng.uniform();
        if (roll < c.p_lock) {
          // Critical section: mutate the lock's guarded block under the
          // lock (plus an occasional extra read for sharing churn).
          const std::uint64_t lock = rng.below(
              static_cast<std::uint64_t>(c.num_locks));
          const Addr guarded = (lock_base + lock) * bs;
          stream.push_back(TraceEvent::lock(lock));
          stream.push_back(TraceEvent::read(guarded));
          stream.push_back(TraceEvent::write(guarded));
          if (rng.chance(0.5)) {
            stream.push_back(TraceEvent::read(guarded));
          }
          stream.push_back(TraceEvent::unlock(lock));
        } else if (roll < c.p_lock + c.p_migrate) {
          // Migratory pair: read-modify-write of a hot block, the classic
          // ownership-transfer pattern.
          const Addr addr =
              (hot_base + rng.below(static_cast<std::uint64_t>(
                              c.hot_blocks))) *
              bs;
          stream.push_back(TraceEvent::read(addr));
          stream.push_back(TraceEvent::write(addr));
        } else if (roll < c.p_lock + c.p_migrate + c.p_think) {
          stream.push_back(TraceEvent::think(
              static_cast<std::uint32_t>(rng.between(1, 32))));
        } else {
          // Plain access: hot (contention / false sharing via distinct
          // words of one block) or scatter pool (eviction and
          // sparse-directory pressure).
          BlockAddr block;
          if (rng.chance(c.p_hot)) {
            block = hot_base +
                    rng.below(static_cast<std::uint64_t>(c.hot_blocks));
          } else {
            block = pool_base +
                    rng.below(static_cast<std::uint64_t>(c.pool_blocks));
          }
          const Addr addr =
              block * bs +
              rng.below(static_cast<std::uint64_t>(c.block_size));
          if (rng.chance(c.p_write)) {
            stream.push_back(TraceEvent::write(addr));
          } else {
            stream.push_back(TraceEvent::read(addr));
          }
        }
      }
      stream.push_back(
          TraceEvent::barrier(static_cast<Addr>(round)));
    }
  }
  return trace;
}

}  // namespace dircc::check
