// Explicit-state breadth-first reachability explorer (docs/MODELCHECK.md).
//
// Enumerates every interleaving of guarded actions (guarded_action.hpp)
// from the initial state of a tiny machine, deduplicating states by their
// canonical encoding (state_codec.hpp). Every newly reached state is
// audited with the full InvariantChecker oracle (all violation kinds,
// including per-access load checks) plus the model's own obligations:
//
//  * deadlock freedom — for every (processor, block, op) exactly one guard
//    is enabled (0 = the protocol has no transition for a possible access;
//    > 1 = the guard partition itself is broken);
//  * path agreement — the transition access() actually took matches the
//    enabled guard (guarded_action.hpp cross_check), on fault-free steps.
//
// Exploration with a seeded fault armed stops at the first firing edge:
// the firing must be flagged by the oracle at that very access (the
// configuration guarantees every firing corrupts), and the path to it
// becomes the counterexample. Post-firing states are never expanded, so
// the searched space — the fault-free reachable set plus all firing edges
// — stays finite and the "exhausted" verdict is meaningful.
//
// Counterexamples are emitted as replayable ProgramTraces: per-processor
// streams padded with think events so the engine's global (time, proc)
// order reproduces the path's interleaving exactly. Each step k targets
// issue time (k+1) * 2^20; processor clocks are tracked exactly by
// replaying the path against a shadow system (latencies are issue-time-
// independent with contention modeling off), so the emitted trace replays
// the identical access sequence under `fuzz_coherence --replay`.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant_checker.hpp"
#include "check/model/guarded_action.hpp"
#include "check/model/model_config.hpp"
#include "trace/event.hpp"

namespace dircc::check::model {

/// Why an exploration stopped with a counterexample.
enum class FailureKind : std::uint8_t {
  kInvariant,    ///< the oracle flagged a violation at the final access
  kMissedFault,  ///< the seeded fault fired but the oracle stayed silent
  kDeadlock,     ///< a reached state has an access with no enabled guard
  kGuardOverlap, ///< a reached state enables more than one guard
  kCrossCheck,   ///< access() took a different path than the guard
};

const char* failure_kind_name(FailureKind kind);

/// A failing path: the action sequence from the initial state, the oracle
/// report of the failing replay, and the equivalent replayable trace
/// (2 events per step: one think pad, one access).
struct Counterexample {
  FailureKind kind = FailureKind::kInvariant;
  std::vector<ModelAction> path;
  std::string detail;        ///< violations / divergence description
  std::string final_state;   ///< format_state at the failing state
  CheckReport report;        ///< oracle report of the failing replay
  std::uint64_t faults_injected = 0;
  ProgramTrace trace;
};

struct ExploreResult {
  std::uint64_t states = 0;       ///< distinct states reached (incl. initial)
  std::uint64_t transitions = 0;  ///< edges taken
  int depth = 0;                  ///< longest shortest-path explored
  /// True when the frontier drained without hitting max_states/max_depth:
  /// the (fault-free) reachable space was covered completely.
  bool exhausted = false;
  bool hit_state_cap = false;
  bool hit_depth_cap = false;
  /// Edges on which the seeded fault fired (0 or 1: the first stops the
  /// exploration).
  std::uint64_t fault_firings = 0;
  /// Transitions per action kind, indexed by ActionKind — the exhaustive
  /// analogue of branch coverage over the protocol's transition relation.
  std::array<std::uint64_t, kNumActionKinds> kind_transitions{};
  std::optional<Counterexample> counterexample;

  bool all_kinds_covered() const {
    for (const std::uint64_t n : kind_transitions) {
      if (n == 0) {
        return false;
      }
    }
    return true;
  }
};

/// Runs the exploration for one configuration. `config` must pass
/// validate() (model_config.hpp).
ExploreResult explore(const ModelConfig& config);

/// Builds the replayable trace for an action path (exposed for tests; the
/// explorer calls it for every counterexample it emits).
ProgramTrace path_trace(const ModelConfig& config,
                        const std::vector<ModelAction>& path);

}  // namespace dircc::check::model
