#include "check/model/model_config.hpp"

#include <optional>
#include <sstream>

#include "common/ensure.hpp"

namespace dircc::check::model {

namespace {

/// Same scheme names (and parameter choices) as fuzz_coherence and the
/// hierarchy level flags: the paper's four schemes at three pointers and
/// coarse regions of two.
std::optional<SchemeConfig> scheme_by_name(const std::string& name,
                                           int nodes) {
  if (name == "full") {
    return SchemeConfig::full(nodes);
  }
  if (name == "cv") {
    return SchemeConfig::coarse(nodes, 3, 2);
  }
  if (name == "b") {
    return SchemeConfig::broadcast(nodes, 3);
  }
  if (name == "nb") {
    return SchemeConfig::no_broadcast(nodes, 3);
  }
  return std::nullopt;
}

const char* fuzz_fault_name(check::FaultKind kind) {
  switch (kind) {
    case check::FaultKind::kNone:
      return "none";
    case check::FaultKind::kForgetSharer:
      return "sharer";
    case check::FaultKind::kSkipInvalidation:
      return "inval";
    case check::FaultKind::kDropVictimWriteback:
      return "writeback";
    case check::FaultKind::kForgetChipSharer:
      return "chip-sharer";
  }
  return "?";
}

/// Inter-chip sparse entries per home on a two-chip machine. Sized to hold
/// every model block (max 4) so the inter store never victimizes — its
/// way-choice, recency stamps and RNG then provably cannot influence
/// behavior, which keeps the canonical encoding complete.
constexpr std::uint64_t kInterSparseEntries = 4;

}  // namespace

SystemConfig build_system(const ModelConfig& config) {
  const std::optional<SchemeConfig> scheme =
      scheme_by_name(config.scheme, config.procs);
  ensure(scheme.has_value(), "build_system on an unvalidated ModelConfig");
  SystemConfig system;
  system.num_procs = config.procs;
  system.procs_per_cluster = 1;
  system.cache_lines_per_proc = config.cache_lines;
  system.cache_assoc = 2;
  system.l1_lines_per_proc = 0;
  system.l1_assoc = 2;
  system.block_size = 16;
  system.scheme = *scheme;
  if (config.sparse && config.chips == 1) {
    system.store.sparse = true;
    system.store.sparse_entries = config.sparse_entries;
    // Direct-mapped: victim selection is determined by occupancy alone.
    system.store.sparse_assoc = 1;
    system.store.policy = ReplPolicy::kRandom;
  }
  // Fault cells corrupt state on purpose; the invariant oracle — not the
  // protocol's own [[noreturn]] spot check — must be the failure detector.
  system.validate = false;
  system.fault = config.fault;
  // The seed only feeds sparse-store victim randomization, and every model
  // configuration is constructed so no randomized choice ever happens
  // (direct-mapped flat stores, non-victimizing inter store) — so replays
  // under a different seed (fuzz_coherence derives its own) are identical.
  system.seed = 1990;
  if (config.chips == 2) {
    HierarchyConfig hierarchy;
    hierarchy.chips = 2;
    hierarchy.inter = *scheme_by_name(config.scheme, 2);
    hierarchy.intra = SchemeConfig::full(config.procs / 2);
    if (config.sparse) {
      hierarchy.inter_store.sparse = true;
      hierarchy.inter_store.sparse_entries = kInterSparseEntries;
    }
    system.hierarchy = hierarchy;
  }
  return system;
}

BlockAddr model_block(const ModelConfig& config, int index) {
  const auto i = static_cast<BlockAddr>(index);
  return config.layout == BlockLayout::kSameHome
             ? i * static_cast<BlockAddr>(config.procs)
             : i;
}

std::string cell_name(const ModelConfig& config) {
  std::ostringstream out;
  out << "scheme=" << config.scheme
      << "/store=" << (config.sparse ? "sparse" : "dense")
      << "/chips=" << config.chips;
  if (config.fault.kind != check::FaultKind::kNone) {
    out << "/fault=" << fuzz_fault_name(config.fault.kind);
  }
  return out.str();
}

std::string validate(const ModelConfig& config) {
  if (!scheme_by_name(config.scheme, config.procs).has_value()) {
    return "unknown scheme '" + config.scheme + "' (full, cv, b, nb)";
  }
  if (config.procs < 2 || config.procs > 8) {
    return "procs must be in [2, 8] (exhaustive exploration only scales to "
           "tiny machines)";
  }
  if (config.blocks < 1 || config.blocks > 4) {
    return "blocks must be in [1, 4]";
  }
  if (config.chips != 1 && config.chips != 2) {
    return "chips must be 1 (flat) or 2 (two-level hierarchy)";
  }
  if (config.chips == 2 && config.procs % 2 != 0) {
    return "chips=2 needs an even processor count";
  }
  if (config.cache_lines < 2 || config.cache_lines % 2 != 0) {
    return "cache-lines must be a positive multiple of the 2-way assoc";
  }
  // No cache evictions, ever: each set must have room for every model
  // block that maps to it, or LRU order would become hidden state the
  // encoding does not capture.
  const std::uint64_t sets = config.cache_lines / 2;
  for (std::uint64_t s = 0; s < sets; ++s) {
    int mapped = 0;
    for (int b = 0; b < config.blocks; ++b) {
      if (model_block(config, b) % sets == s) {
        ++mapped;
      }
    }
    if (mapped > 2) {
      return "cache set " + std::to_string(s) +
             " would hold " + std::to_string(mapped) +
             " model blocks (> assoc): evictions would add hidden LRU state";
    }
  }
  if (config.sparse && config.chips == 1 && config.sparse_entries < 1) {
    return "a flat sparse store needs at least one entry per home";
  }
  if (config.fault.kind != check::FaultKind::kNone &&
      config.fault.trigger < 1) {
    return "fault trigger must be >= 1";
  }
  return "";
}

std::string fault_feasible(const ModelConfig& config) {
  switch (config.fault.kind) {
    case check::FaultKind::kNone:
      return "";
    case check::FaultKind::kForgetSharer:
      // The only kForgetSharer site is the flat home directory's
      // add_sharer (src/protocol/system.cpp); the hierarchical machine's
      // inter level has its own fault kind.
      return config.chips == 1
                 ? ""
                 : "forget-sharer only has a site on the flat machine "
                   "(use chip-sharer with --chips 2)";
    case check::FaultKind::kSkipInvalidation:
      // Any write that invalidates another cluster's copy is a site; every
      // model configuration reaches one.
      return "";
    case check::FaultKind::kDropVictimWriteback:
      // Needs a flat sparse home small enough that a Dirty entry is
      // victimized: two blocks sharing one home with fewer entries than
      // blocks. The two-chip inter store is sized to never victimize.
      if (config.chips != 1 || !config.sparse) {
        return "drop-victim-writeback needs a flat sparse home directory";
      }
      if (config.layout != BlockLayout::kSameHome || config.blocks < 2) {
        return "drop-victim-writeback needs >= 2 same-home blocks "
               "(--blocks 2 --layout same-home) to force victimization";
      }
      if (config.sparse_entries >=
          static_cast<std::uint64_t>(config.blocks)) {
        return "drop-victim-writeback needs fewer sparse entries than "
               "same-home blocks";
      }
      return "";
    case check::FaultKind::kForgetChipSharer:
      return config.chips == 2
                 ? ""
                 : "forget-chip-sharer only has a site with --chips 2";
  }
  return "unknown fault kind";
}

std::string replay_command(const ModelConfig& config,
                           const std::string& trace_path) {
  std::ostringstream out;
  out << "fuzz_coherence --replay " << trace_path
      << " --schemes " << config.scheme
      << " --faults " << fuzz_fault_name(config.fault.kind)
      << " --fault-trigger " << config.fault.trigger
      << " --procs " << config.procs
      << " --cache-lines " << config.cache_lines
      << " --cache-assoc 2";
  if (config.sparse && config.chips == 1) {
    out << " --sparse-entries " << config.sparse_entries
        << " --sparse-assoc 1";
  } else {
    out << " --sparse-entries 0";
  }
  if (config.chips == 2) {
    out << " --chips 2 --inter-scheme " << config.scheme
        << " --intra-scheme full";
    if (config.sparse) {
      out << " --inter-sparse-entries " << kInterSparseEntries;
    }
  }
  return out.str();
}

}  // namespace dircc::check::model
