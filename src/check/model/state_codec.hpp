// Canonical encoding of one reached model state (docs/MODELCHECK.md).
//
// The explorer deduplicates states by this encoding, so it must capture
// every piece of architectural state that can influence future observable
// behavior (protocol control flow, invariant verdicts, fault firing) and
// nothing more:
//
//  * per (processor, model block): the cache line state and, when the line
//    is valid, the *staleness delta* of its version — min(latest - held, 3)
//    rather than the raw version. The protocol never branches on version
//    values and the invariant oracle only distinguishes delta == 0 from
//    delta > 0, and deltas only ever increment by one or reset to zero, so
//    the cap is a sound quotient: two states that differ only in deltas
//    >= 3 have identical futures (unbounded raw versions would make the
//    reachable space infinite);
//  * per model block: the memory staleness delta (same cap) and the full
//    home-level directory entry — state, owner, and the complete sharer
//    representation (raw EntryBits plus pointer count, rotor and overflow
//    flag), because imprecise schemes branch on exactly those;
//  * two-chip machines: every chip's intra-level entry for the block;
//  * the seeded-fault automaton (corrupting opportunities seen, capped at
//    the trigger, plus the injected flag) — future firing depends on it.
//
// Cache and store recency stamps, RNG state and allocation order are
// deliberately excluded: ModelConfig construction guarantees they can
// never influence behavior (no cache evictions, direct-mapped or
// non-victimizing sparse stores; see model_config.hpp).
#pragma once

#include <string>

#include "check/model/model_config.hpp"
#include "protocol/system.hpp"

namespace dircc::check::model {

/// Canonical byte string for the system's current state. Equal strings <=>
/// behaviorally equivalent states (under the quotient above).
std::string encode_state(const CoherenceSystem& system,
                         const ModelConfig& config);

/// Human-readable rendering of the same state, for counterexample reports.
std::string format_state(const CoherenceSystem& system,
                         const ModelConfig& config);

}  // namespace dircc::check::model
