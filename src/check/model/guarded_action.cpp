#include "check/model/guarded_action.hpp"

#include <sstream>

namespace dircc::check::model {

namespace {

/// Static guard table: line-state requirement x directory-state
/// requirement per action. kReadHit / the write hit and upgrade actions
/// are directory-independent (dir_any).
struct GuardRow {
  ActionKind kind;
  bool is_write;
  bool line_hit;    ///< true: line must be `line`; false: line must be I
  LineState line;   ///< meaningful when line_hit
  bool dir_any;
  DirState dir;     ///< meaningful when !dir_any
};

constexpr GuardRow kGuards[kNumActionKinds] = {
    {ActionKind::kReadHit, false, true, LineState::kShared, true,
     DirState::kUncached},
    {ActionKind::kReadMissUncached, false, false, LineState::kInvalid, false,
     DirState::kUncached},
    {ActionKind::kReadMissShared, false, false, LineState::kInvalid, false,
     DirState::kShared},
    {ActionKind::kReadMissDirty, false, false, LineState::kInvalid, false,
     DirState::kDirty},
    {ActionKind::kWriteHitModified, true, true, LineState::kModified, true,
     DirState::kUncached},
    {ActionKind::kWriteUpgrade, true, true, LineState::kShared, true,
     DirState::kUncached},
    {ActionKind::kWriteMissUncached, true, false, LineState::kInvalid, false,
     DirState::kUncached},
    {ActionKind::kWriteMissShared, true, false, LineState::kInvalid, false,
     DirState::kShared},
    {ActionKind::kWriteMissDirty, true, false, LineState::kInvalid, false,
     DirState::kDirty},
};

const GuardRow& row_of(ActionKind kind) {
  return kGuards[static_cast<std::size_t>(kind)];
}

}  // namespace

const char* action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kReadHit:
      return "read-hit";
    case ActionKind::kReadMissUncached:
      return "read-miss-uncached";
    case ActionKind::kReadMissShared:
      return "read-miss-shared";
    case ActionKind::kReadMissDirty:
      return "read-miss-dirty";
    case ActionKind::kWriteHitModified:
      return "write-hit-modified";
    case ActionKind::kWriteUpgrade:
      return "write-upgrade";
    case ActionKind::kWriteMissUncached:
      return "write-miss-uncached";
    case ActionKind::kWriteMissShared:
      return "write-miss-shared";
    case ActionKind::kWriteMissDirty:
      return "write-miss-dirty";
  }
  return "?";
}

DirState effective_dir_state(const CoherenceSystem& system, BlockAddr block) {
  const DirEntry* entry = system.peek_entry(system.group_key(block));
  return entry == nullptr ? DirState::kUncached
                          : entry->state_of(system.sub_of(block));
}

bool guard_enabled(const CoherenceSystem& system, ActionKind kind,
                   ProcId proc, BlockAddr block, bool is_write) {
  const GuardRow& row = row_of(kind);
  if (row.is_write != is_write) {
    return false;
  }
  const LineState line = system.cache(proc).probe(block);
  if (row.line_hit) {
    // kReadHit covers both hit states; the write hits distinguish S from M
    // (an upgrade is a different protocol path than a silent write).
    if (row.kind == ActionKind::kReadHit) {
      if (line == LineState::kInvalid) {
        return false;
      }
    } else if (line != row.line) {
      return false;
    }
  } else if (line != LineState::kInvalid) {
    return false;
  }
  return row.dir_any || effective_dir_state(system, block) == row.dir;
}

int count_enabled(const CoherenceSystem& system, ProcId proc,
                  BlockAddr block, bool is_write, ActionKind* enabled) {
  int count = 0;
  for (const GuardRow& row : kGuards) {
    if (guard_enabled(system, row.kind, proc, block, is_write)) {
      if (count == 0 && enabled != nullptr) {
        *enabled = row.kind;
      }
      ++count;
    }
  }
  return count;
}

StatSnapshot snapshot(const CoherenceSystem& system) {
  const ProtocolStats& stats = system.stats();
  return {stats.accesses,           stats.cache_hits,
          stats.read_transactions,  stats.write_transactions,
          stats.ownership_transfers, stats.sharing_writebacks};
}

std::string cross_check(const CoherenceSystem& system, ActionKind kind,
                        const StatSnapshot& before) {
  const StatSnapshot after = snapshot(system);
  std::ostringstream why;
  const auto expect = [&](const char* counter, std::uint64_t got,
                          std::uint64_t want) {
    if (got != want) {
      why << action_kind_name(kind) << ": " << counter << " moved by " << got
          << ", guard predicts " << want << "; ";
    }
  };
  expect("accesses", after.accesses - before.accesses, 1);

  const bool hit = kind == ActionKind::kReadHit ||
                   kind == ActionKind::kWriteHitModified;
  const bool read = !row_of(kind).is_write;
  expect("cache_hits", after.cache_hits - before.cache_hits, hit ? 1 : 0);
  expect("read_transactions",
         after.read_transactions - before.read_transactions,
         !hit && read ? 1 : 0);
  expect("write_transactions",
         after.write_transactions - before.write_transactions,
         !hit && !read ? 1 : 0);

  // The hierarchical paths account ownership transfers and sharing
  // writebacks per level, not per access class, so the per-path exactness
  // below only holds on the flat machine.
  if (!system.hierarchical()) {
    expect("ownership_transfers",
           after.ownership_transfers - before.ownership_transfers,
           kind == ActionKind::kWriteMissDirty ? 1 : 0);
    if (kind == ActionKind::kReadMissDirty &&
        after.sharing_writebacks == before.sharing_writebacks) {
      why << "read-miss-dirty: no sharing writeback reached the home; ";
    }
  }
  return why.str();
}

}  // namespace dircc::check::model
