#include "check/model/state_codec.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace dircc::check::model {

namespace {

/// Version deltas are capped here; see the header for the soundness
/// argument (deltas move by +1 or reset to 0, and nothing distinguishes
/// 3 from 33).
constexpr std::uint32_t kDeltaCap = 3;

std::uint8_t capped_delta(std::uint32_t latest, std::uint32_t held) {
  return static_cast<std::uint8_t>(std::min(latest - held, kDeltaCap));
}

void put8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put16(std::string& out, std::uint16_t v) {
  put8(out, static_cast<std::uint8_t>(v & 0xFF));
  put8(out, static_cast<std::uint8_t>(v >> 8));
}

void put32(std::string& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

/// Appends one directory entry (or its absence) to the encoding. The full
/// sharer representation goes in raw: imprecise schemes branch on pointer
/// slots, the rotor and the overflow flag, not just on the target set.
void encode_entry(std::string& out, const DirEntry* entry) {
  if (entry == nullptr) {
    put8(out, 0);
    return;
  }
  put8(out, 1);
  put8(out, static_cast<std::uint8_t>(entry->state));
  put16(out, entry->owner);
  put8(out, entry->sharers.ptr_count);
  put8(out, entry->sharers.rotor);
  put8(out, entry->sharers.overflowed ? 1 : 0);
  for (int pos = 0; pos < EntryBits::kBits; pos += 32) {
    put32(out, entry->sharers.bits.get_field(pos, 32));
  }
}

char line_char(LineState state) {
  switch (state) {
    case LineState::kInvalid:
      return 'I';
    case LineState::kShared:
      return 'S';
    case LineState::kModified:
      return 'M';
  }
  return '?';
}

char dir_char(DirState state) {
  switch (state) {
    case DirState::kUncached:
      return 'U';
    case DirState::kShared:
      return 'S';
    case DirState::kDirty:
      return 'D';
  }
  return '?';
}

void format_entry(std::ostream& out, const CoherenceSystem& system,
                  const SharerFormat& format, const DirEntry* entry) {
  if (entry == nullptr) {
    out << "-";
    return;
  }
  out << dir_char(entry->state);
  if (entry->state == DirState::kDirty) {
    out << " owner=" << entry->owner;
  }
  std::vector<NodeId> targets;
  format.collect_targets(entry->sharers, kNoNode, targets);
  out << " targets={";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    out << (i == 0 ? "" : ",") << targets[i];
  }
  out << "}";
  if (entry->sharers.overflowed) {
    out << " overflowed";
  }
  (void)system;
}

}  // namespace

std::string encode_state(const CoherenceSystem& system,
                         const ModelConfig& config) {
  std::string out;
  for (int b = 0; b < config.blocks; ++b) {
    const BlockAddr block = model_block(config, b);
    const std::uint32_t latest = system.latest_version(block);
    for (int p = 0; p < config.procs; ++p) {
      const Cache& cache = system.cache(static_cast<ProcId>(p));
      const LineState line = cache.probe(block);
      put8(out, static_cast<std::uint8_t>(line));
      put8(out, line == LineState::kInvalid
                    ? 0
                    : capped_delta(latest, cache.version_of(block)));
    }
    put8(out, capped_delta(latest, system.memory_version_of(block)));
    encode_entry(out, system.peek_entry(block));
    if (system.hierarchical()) {
      for (int chip = 0; chip < system.chips(); ++chip) {
        encode_entry(out, system.peek_intra_entry(chip, block));
      }
    }
  }
  // Seeded-fault automaton: (opportunities seen, injected). Opportunities
  // are capped at the trigger — once at or past it with the fault already
  // injected (or with kNone configured) further counting cannot change
  // behavior. Pre-fault states always carry opportunities < trigger.
  const std::uint64_t opportunities = std::min<std::uint64_t>(
      system.fault_opportunities(), system.config().fault.trigger);
  put16(out, static_cast<std::uint16_t>(opportunities));
  put8(out, system.faults_injected() > 0 ? 1 : 0);
  return out;
}

std::string format_state(const CoherenceSystem& system,
                         const ModelConfig& config) {
  std::ostringstream out;
  for (int b = 0; b < config.blocks; ++b) {
    const BlockAddr block = model_block(config, b);
    const std::uint32_t latest = system.latest_version(block);
    out << "block " << block << " (home " << system.home_of(block)
        << ", v" << latest << "):";
    for (int p = 0; p < config.procs; ++p) {
      const Cache& cache = system.cache(static_cast<ProcId>(p));
      const LineState line = cache.probe(block);
      out << " p" << p << ":" << line_char(line);
      if (line != LineState::kInvalid) {
        out << "v" << cache.version_of(block);
      }
    }
    out << " mem:v" << system.memory_version_of(block) << " dir:";
    format_entry(out, system, system.format(), system.peek_entry(block));
    if (system.hierarchical()) {
      for (int chip = 0; chip < system.chips(); ++chip) {
        out << " intra" << chip << ":";
        format_entry(out, system, system.intra_format(),
                     system.peek_intra_entry(chip, block));
      }
    }
    out << "\n";
  }
  if (system.config().fault.kind != check::FaultKind::kNone) {
    out << "fault: " << fault_kind_name(system.config().fault.kind)
        << " opportunities=" << system.fault_opportunities()
        << " injected=" << system.faults_injected() << "\n";
  }
  return out.str();
}

}  // namespace dircc::check::model
