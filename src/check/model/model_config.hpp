// Tiny-machine configurations for the exhaustive protocol model checker
// (docs/MODELCHECK.md).
//
// The explorer enumerates every interleaving of (processor x block x
// read/write) accesses, so configurations must be small AND free of hidden
// state the canonical encoding (state_codec.hpp) does not capture. The
// builder below pins the knobs that guarantee that:
//
//  * one processor per cluster — no intra-cluster snoop state;
//  * the cache holds every model block without conflict — no evictions,
//    so cache LRU order can never influence behavior;
//  * sparse stores are direct-mapped (one way per set) — victim selection
//    is determined by occupancy alone, so neither the store's RNG nor its
//    recency bookkeeping can influence behavior;
//  * contention modeling off — an access's outcome is independent of its
//    issue time, which is what makes "one atomic access" the transition
//    granularity.
//
// Everything else (scheme, dense/sparse store, one or two chips, block
// placement) is the grid bench/model_check sweeps.
#pragma once

#include <cstdint>
#include <string>

#include "check/api.hpp"
#include "protocol/system.hpp"

namespace dircc::check::model {

/// Where the model blocks live relative to their home directories.
enum class BlockLayout : std::uint8_t {
  /// Block i is BlockAddr i: homes are spread round-robin, so each home
  /// directory tracks at most one model block.
  kSpread,
  /// Block i is BlockAddr i * num_clusters: every block homes at cluster 0,
  /// so an undersized sparse directory there is forced to victimize.
  kSameHome,
};

struct ModelConfig {
  int procs = 2;    ///< processors, one per cluster (2..8)
  int blocks = 1;   ///< model blocks the actions range over (1..4)
  BlockLayout layout = BlockLayout::kSpread;
  std::string scheme = "full";  ///< full | cv | b | nb (the paper's four)
  bool sparse = false;          ///< sparse home directory store
  int chips = 1;                ///< 1 = flat, 2 = two-level hierarchy
  /// Sparse entries per home cluster on a flat machine (direct-mapped).
  /// 1 with two same-home blocks forces victimization on every alternation.
  std::uint64_t sparse_entries = 1;
  std::uint64_t cache_lines = 8;  ///< per processor, 2-way
  check::FaultSpec fault;         ///< seeded mutation to hunt (kNone = clean)
  // Exploration limits; generous for these state-space sizes.
  std::uint64_t max_states = 1u << 20;
  int max_depth = 64;
};

/// Builds the SystemConfig the explorer (and every emitted counterexample
/// replay) runs. Mirrors what `fuzz_coherence --replay` reconstructs from
/// its flags — see replay_command() — so counterexample traces are
/// replayable outside the checker.
SystemConfig build_system(const ModelConfig& config);

/// Block address of model block `index` under the configured layout.
BlockAddr model_block(const ModelConfig& config, int index);

/// Grid-cell identity, e.g. "scheme=cv/store=sparse/chips=1".
std::string cell_name(const ModelConfig& config);

/// Empty when the configuration satisfies the no-hidden-state restrictions
/// above; otherwise the reason it does not.
std::string validate(const ModelConfig& config);

/// Empty when the configured fault has at least one site reachable in this
/// configuration; otherwise why it can never fire (e.g. the chip-sharer
/// fault on a flat machine).
std::string fault_feasible(const ModelConfig& config);

/// The fuzz_coherence invocation that replays `trace_path` under this
/// configuration's machine.
std::string replay_command(const ModelConfig& config,
                           const std::string& trace_path);

}  // namespace dircc::check::model
