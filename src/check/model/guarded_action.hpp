// The protocol's transition relation in guarded-action form.
//
// Following the guarded-action modeling of cache coherence protocols
// (PAPERS.md), every transition the tiny-machine model can take is one of
// nine actions, each a pair {guard(state), apply(state)}:
//
//   guard  — a predicate over the *observable* architectural state (the
//            requester's cache line state x the effective home-directory
//            state of the block), evaluated read-only;
//   apply  — CoherenceSystem::access itself. The actions are extracted
//            against the same protocol code paths the simulator runs, not
//            re-implemented: the guard only names which path access() will
//            take, and the cross-check below verifies it actually did.
//
// The nine actions partition (line in {I,S,M}) x (dir in {U,S,D}) x
// (read | write): for every state and every (proc, block, op), exactly one
// guard is enabled. That totality IS the model's deadlock-freedom property
// — no access can ever reach a state where the protocol has no transition
// for it — and the explorer (explorer.hpp) re-verifies it at every reached
// state rather than trusting the construction.
#pragma once

#include <cstdint>
#include <string>

#include "protocol/system.hpp"

namespace dircc::check::model {

/// The nine protocol transitions of the guarded-action model.
enum class ActionKind : std::uint8_t {
  kReadHit,            ///< line S or M; no directory transaction
  kReadMissUncached,   ///< line I, home Uncached: memory supplies the copy
  kReadMissShared,     ///< line I, home Shared: memory supplies, sharer added
  kReadMissDirty,      ///< line I, home Dirty: forwarded to the owner,
                       ///< sharing writeback to the home
  kWriteHitModified,   ///< line M: silent version bump
  kWriteUpgrade,       ///< line S: invalidation fan-out, ownership granted
  kWriteMissUncached,  ///< line I, home Uncached
  kWriteMissShared,    ///< line I, home Shared: sharers invalidated
  kWriteMissDirty,     ///< line I, home Dirty: ownership transfer
};

inline constexpr int kNumActionKinds = 9;

const char* action_kind_name(ActionKind kind);

/// One step of the model: which processor accesses which model block, how.
struct ModelAction {
  ProcId proc = 0;
  int block_index = 0;
  bool is_write = false;
};

/// Effective home-directory state of `block`: the entry's state at the
/// home-side level (the flat directory, or the inter-chip level of a
/// hierarchical machine); an absent entry is Uncached.
DirState effective_dir_state(const CoherenceSystem& system, BlockAddr block);

/// True when `kind`'s guard is enabled for (proc, block, op) in the
/// system's current state. Read-only.
bool guard_enabled(const CoherenceSystem& system, ActionKind kind,
                   ProcId proc, BlockAddr block, bool is_write);

/// Number of enabled guards for (proc, block, op); `enabled` (optional)
/// receives the first enabled kind. Exactly 1 in every sound state — 0 is
/// a deadlock (the protocol has no transition for this access), > 1 a
/// guard-partition bug in the model itself.
int count_enabled(const CoherenceSystem& system, ProcId proc,
                  BlockAddr block, bool is_write, ActionKind* enabled);

/// Protocol counters an action's apply() must move in the predicted way.
struct StatSnapshot {
  std::uint64_t accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t read_transactions = 0;
  std::uint64_t write_transactions = 0;
  std::uint64_t ownership_transfers = 0;
  std::uint64_t sharing_writebacks = 0;
};

StatSnapshot snapshot(const CoherenceSystem& system);

/// Verifies that the access the system just performed took the path the
/// guard predicted: hit classes hit the cache and commit no transaction,
/// miss classes commit exactly one transaction of the right direction, and
/// (flat machines, where the counters are per-path exact) dirty-block
/// classes move the ownership-transfer / sharing-writeback counters.
/// Returns "" on agreement, else a description of the divergence. Only
/// meaningful for fault-free steps — a seeded fault deliberately diverts
/// the path.
std::string cross_check(const CoherenceSystem& system, ActionKind kind,
                        const StatSnapshot& before);

}  // namespace dircc::check::model
