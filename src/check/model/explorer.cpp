#include "check/model/explorer.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "check/model/state_codec.hpp"
#include "common/ensure.hpp"

namespace dircc::check::model {

namespace {

/// Issue-time spacing between consecutive path steps in an emitted
/// counterexample trace. Far above any single access latency, so step k's
/// access (issued at exactly (k+1) * kSlack) globally precedes step k+1's.
constexpr Cycle kSlack = Cycle{1} << 20;

/// One reached state: its BFS parent and the action that led here, enough
/// to reconstruct the path without storing systems (CoherenceSystem is not
/// copyable — expansion replays the path against a fresh instance).
struct StateNode {
  std::int32_t parent = -1;
  ModelAction action;
  std::int32_t depth = 0;
};

class Explorer {
 public:
  explicit Explorer(const ModelConfig& config) : config_(config) {
    ensure(validate(config).empty(), "explore() on an invalid ModelConfig");
    for (int p = 0; p < config_.procs; ++p) {
      for (int b = 0; b < config_.blocks; ++b) {
        actions_.push_back({static_cast<ProcId>(p), b, false});
        actions_.push_back({static_cast<ProcId>(p), b, true});
      }
    }
  }

  ExploreResult run() {
    // Root: the pristine machine.
    {
      const CoherenceSystem system(build_system(config_));
      const std::string root = encode_state(system, config_);
      index_.emplace(root, 0);
      nodes_.push_back({});
      ++result_.states;
      if (!audit_guards(system, {})) {
        return result_;
      }
      frontier_.push_back(0);
    }
    while (!frontier_.empty() && !result_.counterexample.has_value()) {
      const std::int32_t id = frontier_.front();
      frontier_.pop_front();
      if (nodes_[static_cast<std::size_t>(id)].depth >= config_.max_depth) {
        result_.hit_depth_cap = true;
        continue;
      }
      const std::vector<ModelAction> path = path_of(id);
      for (const ModelAction& action : actions_) {
        expand(id, path, action);
        if (result_.counterexample.has_value()) {
          break;
        }
      }
    }
    result_.exhausted = !result_.counterexample.has_value() &&
                        !result_.hit_state_cap && !result_.hit_depth_cap;
    return result_;
  }

 private:
  std::vector<ModelAction> path_of(std::int32_t id) const {
    std::vector<ModelAction> path;
    for (std::int32_t at = id; at > 0;
         at = nodes_[static_cast<std::size_t>(at)].parent) {
      path.push_back(nodes_[static_cast<std::size_t>(at)].action);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// Replays `path` against a fresh system with the oracle attached.
  /// Returns the step index the checker halted at, or -1 if it ran clean
  /// (prefix paths are known-clean, so -1 is the invariant case).
  void replay(const std::vector<ModelAction>& path, CoherenceSystem& system,
              InvariantChecker& checker) const {
    for (std::size_t k = 0; k < path.size(); ++k) {
      const ModelAction& a = path[k];
      const BlockAddr block = model_block(config_, a.block_index);
      const auto now = static_cast<Cycle>(k);
      system.access(a.proc, block, a.is_write, now);
      checker.on_access(a.proc, block, a.is_write, now);
      ensure(k + 1 == path.size() || !checker.halt_requested(),
             "model explorer enqueued a violating state");
    }
  }

  /// Takes one edge from the state `prefix` leads to. Classifies the
  /// access by its guard, applies it through the real protocol, audits,
  /// cross-checks, and enqueues the successor if it is new and fault-free.
  void expand(std::int32_t parent, const std::vector<ModelAction>& prefix,
              const ModelAction& action) {
    CoherenceSystem system(build_system(config_));
    InvariantChecker checker(system);
    replay(prefix, system, checker);

    const BlockAddr block = model_block(config_, action.block_index);
    ActionKind kind = ActionKind::kReadHit;
    const int enabled =
        count_enabled(system, action.proc, block, action.is_write, &kind);
    // Guard totality was audited when the predecessor state was first
    // reached, so `enabled` is exactly 1 here.
    ensure(enabled == 1, "guard partition changed between audits");
    const StatSnapshot before = snapshot(system);

    const auto now = static_cast<Cycle>(prefix.size());
    system.access(action.proc, block, action.is_write, now);
    checker.on_access(action.proc, block, action.is_write, now);

    ++result_.transitions;
    ++result_.kind_transitions[static_cast<std::size_t>(kind)];

    std::vector<ModelAction> path = prefix;
    path.push_back(action);

    const bool fired = system.faults_injected() > 0;
    const bool flagged = checker.report().failed();
    if (fired) {
      ++result_.fault_firings;
    }
    if (flagged) {
      // Invariant violation at this access: the counterexample (for a
      // clean configuration, a genuine protocol bug; with a fault armed,
      // the firing being caught).
      fail(FailureKind::kInvariant, path, system, checker,
           violation_text(checker.report()));
      return;
    }
    if (fired) {
      // The fault corrupted state this very access (every site pre-checks
      // that) yet the oracle stayed silent: an oracle gap.
      fail(FailureKind::kMissedFault, path, system, checker,
           "seeded fault fired at this access but the audit found no "
           "violation");
      return;
    }

    const std::string divergence = cross_check(system, kind, before);
    if (!divergence.empty()) {
      fail(FailureKind::kCrossCheck, path, system, checker, divergence);
      return;
    }

    const std::string encoded = encode_state(system, config_);
    const auto [it, inserted] =
        index_.emplace(encoded, static_cast<std::int32_t>(nodes_.size()));
    if (!inserted) {
      return;
    }
    StateNode node;
    node.parent = parent;
    node.action = action;
    node.depth = static_cast<std::int32_t>(path.size());
    nodes_.push_back(node);
    ++result_.states;
    result_.depth = std::max(result_.depth, static_cast<int>(node.depth));
    if (!audit_guards(system, path)) {
      return;
    }
    if (result_.states >= config_.max_states) {
      result_.hit_state_cap = true;
      return;
    }
    frontier_.push_back(it->second);
  }

  /// Deadlock-freedom audit of a newly reached state: every possible
  /// access must have exactly one enabled guard. Returns false (and sets
  /// the counterexample) on a violation.
  bool audit_guards(const CoherenceSystem& system,
                    const std::vector<ModelAction>& path) {
    for (const ModelAction& action : actions_) {
      const BlockAddr block = model_block(config_, action.block_index);
      const int enabled =
          count_enabled(system, action.proc, block, action.is_write, nullptr);
      if (enabled == 1) {
        continue;
      }
      std::ostringstream why;
      why << "proc " << action.proc << " " << (action.is_write ? "write"
                                                               : "read")
          << " of block " << block << " has " << enabled
          << " enabled guards";
      InvariantChecker scratch(system);
      fail(enabled == 0 ? FailureKind::kDeadlock : FailureKind::kGuardOverlap,
           path, system, scratch, why.str());
      return false;
    }
    return true;
  }

  static std::string violation_text(const CheckReport& report) {
    std::ostringstream out;
    for (const Violation& violation : report.violations) {
      out << violation_to_string(violation) << "\n";
    }
    if (report.violations_suppressed > 0) {
      out << "(+" << report.violations_suppressed << " suppressed)\n";
    }
    return out.str();
  }

  void fail(FailureKind kind, const std::vector<ModelAction>& path,
            const CoherenceSystem& system, InvariantChecker& checker,
            std::string detail) {
    Counterexample ce;
    ce.kind = kind;
    ce.path = path;
    ce.detail = std::move(detail);
    ce.final_state = format_state(system, config_);
    ce.report = checker.finish(checker.halt_requested());
    ce.faults_injected = system.faults_injected();
    ce.trace = path_trace(config_, path);
    result_.counterexample = std::move(ce);
  }

  const ModelConfig& config_;
  std::vector<ModelAction> actions_;  ///< fixed deterministic action order
  std::vector<StateNode> nodes_;
  std::unordered_map<std::string, std::int32_t> index_;
  std::deque<std::int32_t> frontier_;
  ExploreResult result_;
};

}  // namespace

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kInvariant:
      return "invariant-violation";
    case FailureKind::kMissedFault:
      return "missed-fault";
    case FailureKind::kDeadlock:
      return "deadlock";
    case FailureKind::kGuardOverlap:
      return "guard-overlap";
    case FailureKind::kCrossCheck:
      return "cross-check-divergence";
  }
  return "?";
}

ProgramTrace path_trace(const ModelConfig& config,
                        const std::vector<ModelAction>& path) {
  ProgramTrace trace;
  trace.app_name = "model_check";
  trace.block_size = 16;
  trace.per_proc.resize(static_cast<std::size_t>(config.procs));
  // Shadow replay: with contention modeling off, an access's latency does
  // not depend on its issue time, so replaying the path here yields the
  // exact per-processor clocks the engine will compute.
  CoherenceSystem shadow(build_system(config));
  std::vector<Cycle> clock(static_cast<std::size_t>(config.procs), 0);
  for (std::size_t k = 0; k < path.size(); ++k) {
    const ModelAction& a = path[k];
    const auto p = static_cast<std::size_t>(a.proc);
    const BlockAddr block = model_block(config, a.block_index);
    const Cycle target = static_cast<Cycle>(k + 1) * kSlack;
    ensure(clock[p] < target, "counterexample step windows overlap");
    // Pad so the access event pops at exactly `target`: the think event
    // pops at clock[p] and completes at clock[p] + 1 + arg.
    const Cycle pad = target - clock[p] - 1;
    ensure(pad <= Cycle{0xFFFFFFFF}, "think pad exceeds the event arg width");
    trace.per_proc[p].push_back(
        TraceEvent::think(static_cast<std::uint32_t>(pad)));
    const Addr addr = block * static_cast<Addr>(trace.block_size);
    trace.per_proc[p].push_back(a.is_write ? TraceEvent::write(addr)
                                           : TraceEvent::read(addr));
    const Cycle latency = shadow.access(a.proc, block, a.is_write, target);
    clock[p] = target + 1 + latency;
  }
  return trace;
}

ExploreResult explore(const ModelConfig& config) {
  Explorer explorer(config);
  return explorer.run();
}

}  // namespace dircc::check::model
