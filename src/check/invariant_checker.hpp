// InvariantChecker: the coherence oracle.
//
// Attached to an Engine as a check::AccessObserver, it maintains an
// independent sequential reference model of shared memory (a per-block
// write counter) and, at configurable cycle granularity, audits the entire
// architectural state of the CoherenceSystem — every cache line against
// every directory entry — for the protocol invariants:
//
//   SWMR        at most one Modified copy of a block exists, and never
//               alongside Shared copies (single-writer / multi-reader);
//   COVERAGE    every cached copy has a live directory entry whose sharer
//               representation covers the holding cluster (no stale sharer
//               the directory forgot; sparse entries cover every cached
//               block);
//   DIRTY       a directory entry in the Dirty state names an owner that
//               actually holds the Modified copy (dirty-bit ⇔ exactly one
//               M copy);
//   VERSION     every cached copy carries the latest committed version;
//               when no Modified copy exists, main memory does too (no
//               lost writeback);
//   LOADS       every read observes the reference model's current value;
//   INCLUSION   every first-level line is backed by a second-level line
//               with the same version (two-level configurations);
//   HIERARCHY   on a hierarchical machine (chips > 1) the inter-chip entry
//               at the home covers every chip with a copy or a live intra
//               entry, and a Modified copy is Dirty at both levels (no
//               chip clean while an on-chip cache is dirty).
//
// The checker is read-only over the system (const peeks, no LRU or stats
// perturbation) and halts the engine at the first violation by default, so
// a seeded fault is caught at the corrupting access — before the corruption
// cascades into the protocol's own [[noreturn]] ensure() aborts. Runs that
// exercise seeded faults must set SystemConfig::validate = false for the
// same reason.
//
// Everything is compile-time gated (DIRCC_CHECK, see check/api.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/api.hpp"
#include "common/types.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"

namespace dircc::check {

/// What went wrong. Each value maps to one invariant in docs/CHECKER.md.
enum class ViolationKind : std::uint8_t {
  kMultipleOwners,   ///< SWMR: two Modified copies of one block
  kSharedWhileDirty, ///< SWMR: Shared copy coexists with a Modified copy
  kForgottenSharer,  ///< COVERAGE: cached copy the sharer field misses
  kMissingEntry,     ///< COVERAGE: cached copy with no directory entry
  kOwnerMismatch,    ///< DIRTY: M copy but directory names another owner
  kDirtyNoCopy,      ///< DIRTY: directory says Dirty, owner has no M copy
  kStaleVersion,     ///< VERSION: cached copy behind the latest version
  kStaleMemory,      ///< VERSION: no M copy yet memory behind latest
  kStaleLoad,        ///< LOADS: a read observed a stale version
  kRefDivergence,    ///< LOADS: reference model and system disagree
  kL1Inclusion,      ///< INCLUSION: L1 line unbacked or version-skewed
  kChipUncovered,    ///< HIERARCHY: on-chip copy/intra entry the inter
                     ///< entry's chip sharer set misses
  kChipCleanDirty,   ///< HIERARCHY: Modified copy but chip-level state is
                     ///< clean (inter or intra entry not Dirty at the owner)
};

const char* violation_kind_name(ViolationKind kind);

/// One invariant failure, pinned to a block and the cycle of the audit (or
/// access) that exposed it.
struct Violation {
  ViolationKind kind = ViolationKind::kMultipleOwners;
  BlockAddr block = 0;
  ProcId proc = kNoProc;  ///< offending processor, when one is identifiable
  NodeId node = kNoNode;  ///< offending cluster, when one is identifiable
  Cycle cycle = 0;
  std::string detail;
};

std::string violation_to_string(const Violation& violation);

struct CheckConfig {
  /// Cycles between full-state audits; 0 audits after *every* access (the
  /// fuzzer default — a seeded fault is then caught at the corrupting
  /// access, before the protocol's own asserts can abort the process).
  Cycle audit_interval = 0;
  /// Violations retained in the report; further ones are only counted.
  std::uint32_t max_violations = 16;
  /// Stop the engine at the first violation (see Engine::halted_by_checker).
  bool halt_on_violation = true;
  /// Check every read against the reference model.
  bool check_loads = true;
};

/// Everything one checked run produced.
struct CheckReport {
  std::vector<Violation> violations;
  std::uint64_t accesses_observed = 0;
  std::uint64_t audits = 0;
  std::uint64_t faults_injected = 0;  ///< seeded-fault firings (system-side)
  std::uint64_t violations_suppressed = 0;  ///< beyond max_violations
  bool halted = false;  ///< the engine stopped before the trace drained

  bool failed() const {
    return !violations.empty() || violations_suppressed > 0;
  }
};

/// The oracle. One instance per run; attach to the Engine as its checker.
/// The system reference must outlive the checker.
class InvariantChecker final : public AccessObserver {
 public:
  explicit InvariantChecker(const CoherenceSystem& system,
                            CheckConfig config = {});

  void on_access(ProcId proc, BlockAddr block, bool is_write,
                 Cycle now) override;
  bool halt_requested() const override {
    return config_.halt_on_violation && total_violations() > 0;
  }

  /// Runs one last full audit (call after Engine::run) and finalizes the
  /// report's fault/halt bookkeeping.
  const CheckReport& finish(bool engine_halted);

  const CheckReport& report() const { return report_; }

  /// Full-state audit at time `now`; normally driven by on_access.
  void audit(Cycle now);

 private:
  struct BlockCopies {
    int modified = 0;
    int shared = 0;
    ProcId m_proc = kNoProc;  ///< holder of the (last seen) Modified copy
  };

  void add_violation(Violation violation);
  std::uint64_t total_violations() const {
    return static_cast<std::uint64_t>(report_.violations.size()) +
           report_.violations_suppressed;
  }
  void audit_caches(Cycle now);
  void audit_directories(Cycle now);
  void audit_memory(Cycle now);
  void audit_l1(Cycle now);
  /// Two-level machines only: every cached copy / live intra entry must be
  /// covered by both levels; a Modified copy must be Dirty at both levels.
  void audit_hierarchy(Cycle now);
  void check_hier_copy(const Violation& base, NodeId cluster, bool modified);

  const CoherenceSystem& system_;
  CheckConfig config_;
  CheckReport report_;
  /// Reference model: writes observed per block (must track the system's
  /// committed version exactly).
  std::unordered_map<BlockAddr, std::uint32_t> ref_version_;
  /// Scratch for audits: block -> copy census over all coherence caches.
  std::unordered_map<BlockAddr, BlockCopies> census_;
  Cycle next_audit_ = 0;
  Cycle last_now_ = 0;  ///< issue time of the last observed access
};

/// One-call convenience: build the system, attach a fresh checker, run the
/// trace, final-audit. `recorder` optionally captures the obs timeline of
/// the run (useful when dumping a minimized failure).
struct CheckedRun {
  RunResult result;
  CheckReport report;
};

CheckedRun run_checked(const SystemConfig& system_config,
                       const EngineConfig& engine_config,
                       const ProgramTrace& trace,
                       const CheckConfig& check_config = {},
                       obs::TraceRecorder* recorder = nullptr);

}  // namespace dircc::check
