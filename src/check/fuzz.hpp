// Adversarial synthetic trace generation for the coherence fuzzer.
//
// The four application generators (src/trace/generators.hpp) reproduce the
// paper's workloads; this generator instead *hunts protocol corners*: a few
// hot blocks hammered by every processor (contention, false sharing,
// pointer overflow in limited-pointer schemes), a large scatter pool sized
// against deliberately tiny caches (eviction pressure, sparse-directory
// victimization), lock-guarded critical sections and migratory read-write
// pairs (ownership transfer storms), and barrier-delimited rounds so lock
// bursts never straddle a barrier — a generated trace is always
// well-formed and deadlock-free by construction.
//
// Generation is deterministic per (config, seed): each processor derives
// its own Rng from the seed, so a trace is reproducible independently of
// anything else in the process.
#pragma once

#include <string>

#include "trace/event.hpp"

namespace dircc::check {

struct FuzzTraceConfig {
  int procs = 16;
  int block_size = 16;
  /// Barrier-delimited rounds; every processor ends each round at a
  /// barrier, so synchronization never crosses round boundaries.
  int rounds = 4;
  /// Work units per processor per round (a unit is one access, one
  /// critical section, one migratory pair, or one think).
  int units_per_round = 40;
  int hot_blocks = 4;     ///< heavily contended blocks
  int pool_blocks = 256;  ///< scatter pool (eviction / sparse pressure)
  int num_locks = 4;      ///< each guards its own block
  double p_lock = 0.10;    ///< unit is a lock-guarded critical section
  double p_migrate = 0.15; ///< unit is a read-then-write migratory pair
  double p_think = 0.05;   ///< unit is local computation
  double p_hot = 0.6;      ///< plain access targets a hot block
  double p_write = 0.4;    ///< plain access is a write
  std::uint64_t seed = 1;
};

/// Canonical cache key for a fuzz trace (TraceCache contract: every
/// parameter that affects the output appears in the key).
std::string fuzz_trace_key(const FuzzTraceConfig& config);

ProgramTrace generate_fuzz_trace(const FuzzTraceConfig& config);

}  // namespace dircc::check
