#include "check/minimize.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/ensure.hpp"

namespace dircc::check {
namespace {

/// One event position in the original trace.
struct Pos {
  int proc = 0;
  std::size_t index = 0;
};

/// A removable unit: event positions that must be kept or dropped together.
struct Unit {
  std::vector<Pos> positions;
};

/// Splits `trace` into sync-safe units (see the header comment).
std::vector<Unit> decompose(const ProgramTrace& trace) {
  std::vector<Unit> units;
  // Global barrier units: (barrier id, occurrence) -> positions.
  std::map<std::pair<Addr, int>, Unit> barrier_units;
  for (int p = 0; p < trace.num_procs(); ++p) {
    const auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    // Held locks awaiting their unlock: lock id -> position of the kLock.
    std::map<Addr, std::size_t> open_locks;
    std::map<Addr, int> barrier_count;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const TraceEvent& ev = stream[i];
      switch (ev.kind) {
        case TraceEvent::Kind::kRead:
        case TraceEvent::Kind::kWrite:
        case TraceEvent::Kind::kThink:
          units.push_back({{{p, i}}});
          break;
        case TraceEvent::Kind::kLock:
          open_locks[ev.addr] = i;
          break;
        case TraceEvent::Kind::kUnlock: {
          auto it = open_locks.find(ev.addr);
          ensure(it != open_locks.end(),
                 "minimizer: unlock without a matching lock");
          units.push_back({{{p, it->second}, {p, i}}});
          open_locks.erase(it);
          break;
        }
        case TraceEvent::Kind::kBarrier: {
          const int occurrence = barrier_count[ev.addr]++;
          barrier_units[{ev.addr, occurrence}].positions.push_back({p, i});
          break;
        }
      }
    }
    ensure(open_locks.empty(), "minimizer: lock without a matching unlock");
  }
  for (auto& [key, unit] : barrier_units) {
    units.push_back(std::move(unit));
  }
  return units;
}

/// Rebuilds a trace from the kept units, preserving per-stream order.
ProgramTrace rebuild(const ProgramTrace& original,
                     const std::vector<Unit>& units,
                     const std::vector<bool>& keep) {
  // keep_event[proc][index]
  std::vector<std::vector<bool>> keep_event;
  keep_event.reserve(original.per_proc.size());
  for (const auto& stream : original.per_proc) {
    keep_event.emplace_back(stream.size(), false);
  }
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (!keep[u]) {
      continue;
    }
    for (const Pos& pos : units[u].positions) {
      keep_event[static_cast<std::size_t>(pos.proc)][pos.index] = true;
    }
  }
  ProgramTrace reduced;
  reduced.app_name = original.app_name + "/min";
  reduced.block_size = original.block_size;
  reduced.per_proc.resize(original.per_proc.size());
  for (std::size_t p = 0; p < original.per_proc.size(); ++p) {
    for (std::size_t i = 0; i < original.per_proc[p].size(); ++i) {
      if (keep_event[p][i]) {
        reduced.per_proc[p].push_back(original.per_proc[p][i]);
      }
    }
  }
  return reduced;
}

}  // namespace

std::optional<MinimizeResult> minimize_failure(
    const ProgramTrace& trace, const SystemConfig& system_config,
    const EngineConfig& engine_config, const CheckConfig& check_config,
    const MinimizeOptions& options) {
  std::uint64_t probes = 0;
  const auto probe = [&](const ProgramTrace& candidate) {
    ++probes;
    return run_checked(system_config, engine_config, candidate, check_config)
        .report;
  };

  const CheckReport original = probe(trace);
  if (!original.failed()) {
    return std::nullopt;
  }
  const auto target_kind = original.violations.empty()
                               ? ViolationKind::kMultipleOwners
                               : original.violations.front().kind;
  const auto still_fails = [&](const CheckReport& report) {
    if (!report.failed()) {
      return false;
    }
    if (!options.match_first_kind) {
      return true;
    }
    return !report.violations.empty() &&
           report.violations.front().kind == target_kind;
  };

  const std::vector<Unit> units = decompose(trace);
  std::vector<bool> keep(units.size(), true);
  std::size_t live = units.size();

  // ddmin: drop chunks of live units; on success restart the pass, on a
  // full fruitless pass halve the chunk size, stop at chunk size 1.
  std::size_t chunk = (live + 1) / 2;
  CheckReport best_report = original;
  while (chunk >= 1 && probes < options.max_probes) {
    bool removed_any = false;
    // Indices of currently-live units, in order.
    std::vector<std::size_t> live_idx;
    live_idx.reserve(live);
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (keep[u]) {
        live_idx.push_back(u);
      }
    }
    for (std::size_t start = 0;
         start < live_idx.size() && probes < options.max_probes;
         start += chunk) {
      const std::size_t end = std::min(start + chunk, live_idx.size());
      if (end - start == live_idx.size()) {
        continue;  // never probe the empty trace
      }
      std::vector<bool> candidate = keep;
      for (std::size_t k = start; k < end; ++k) {
        candidate[live_idx[k]] = false;
      }
      const CheckReport report =
          probe(rebuild(trace, units, candidate));
      if (still_fails(report)) {
        keep = std::move(candidate);
        live -= end - start;
        best_report = report;
        removed_any = true;
      }
    }
    if (removed_any) {
      chunk = std::min(chunk, (live + 1) / 2);
      if (chunk == 0) {
        break;
      }
      continue;  // re-pass at the same granularity over the survivors
    }
    if (chunk == 1) {
      break;
    }
    chunk = (chunk + 1) / 2;
  }

  MinimizeResult result;
  result.trace = rebuild(trace, units, keep);
  result.report = best_report;
  result.original_events = trace.total_events();
  result.minimized_events = result.trace.total_events();
  result.probes = probes;
  return result;
}

}  // namespace dircc::check
