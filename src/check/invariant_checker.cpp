#include "check/invariant_checker.hpp"

#include <sstream>

namespace dircc::check {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMultipleOwners:
      return "multiple-owners";
    case ViolationKind::kSharedWhileDirty:
      return "shared-while-dirty";
    case ViolationKind::kForgottenSharer:
      return "forgotten-sharer";
    case ViolationKind::kMissingEntry:
      return "missing-entry";
    case ViolationKind::kOwnerMismatch:
      return "owner-mismatch";
    case ViolationKind::kDirtyNoCopy:
      return "dirty-no-copy";
    case ViolationKind::kStaleVersion:
      return "stale-version";
    case ViolationKind::kStaleMemory:
      return "stale-memory";
    case ViolationKind::kStaleLoad:
      return "stale-load";
    case ViolationKind::kRefDivergence:
      return "ref-divergence";
    case ViolationKind::kL1Inclusion:
      return "l1-inclusion";
    case ViolationKind::kChipUncovered:
      return "chip-uncovered";
    case ViolationKind::kChipCleanDirty:
      return "chip-clean-dirty";
  }
  return "?";
}

std::string violation_to_string(const Violation& violation) {
  std::ostringstream out;
  out << "cycle " << violation.cycle << ": "
      << violation_kind_name(violation.kind) << " block " << violation.block;
  if (violation.proc != kNoProc) {
    out << " proc " << violation.proc;
  }
  if (violation.node != kNoNode) {
    out << " cluster " << violation.node;
  }
  if (!violation.detail.empty()) {
    out << " — " << violation.detail;
  }
  return out.str();
}

InvariantChecker::InvariantChecker(const CoherenceSystem& system,
                                   CheckConfig config)
    : system_(system), config_(config) {}

void InvariantChecker::add_violation(Violation violation) {
  if (report_.violations.size() <
      static_cast<std::size_t>(config_.max_violations)) {
    report_.violations.push_back(std::move(violation));
  } else {
    ++report_.violations_suppressed;
  }
}

void InvariantChecker::on_access(ProcId proc, BlockAddr block, bool is_write,
                                 Cycle now) {
  ++report_.accesses_observed;
  if (is_write) {
    // Reference model: this write commits version ref; the system must
    // agree, or the engine and the protocol have lost a write somewhere.
    const std::uint32_t ref = ++ref_version_[block];
    if (ref != system_.latest_version(block)) {
      std::ostringstream detail;
      detail << "reference version " << ref << " vs system latest "
             << system_.latest_version(block);
      add_violation({ViolationKind::kRefDivergence, block, proc,
                     system_.cluster_of(proc), now, detail.str()});
    }
  } else if (config_.check_loads) {
    // After a read the processor's coherence cache must hold the block at
    // the reference model's current version.
    auto it = ref_version_.find(block);
    const std::uint32_t ref = it == ref_version_.end() ? 0 : it->second;
    const Cache& cache = system_.cache(proc);
    if (cache.probe(block) == LineState::kInvalid) {
      add_violation({ViolationKind::kStaleLoad, block, proc,
                     system_.cluster_of(proc), now,
                     "read completed without a cached copy"});
    } else if (cache.version_of(block) != ref) {
      std::ostringstream detail;
      detail << "read observed version " << cache.version_of(block)
             << ", reference memory holds " << ref;
      add_violation({ViolationKind::kStaleLoad, block, proc,
                     system_.cluster_of(proc), now, detail.str()});
    }
  }
  last_now_ = now;
  if (config_.audit_interval == 0 || now >= next_audit_) {
    audit(now);
    next_audit_ = now + config_.audit_interval;
  }
}

void InvariantChecker::audit(Cycle now) {
  ++report_.audits;
  census_.clear();
  audit_caches(now);
  audit_directories(now);
  audit_memory(now);
  if (system_.two_level()) {
    audit_l1(now);
  }
  if (system_.hierarchical()) {
    audit_hierarchy(now);
  }
}

void InvariantChecker::audit_caches(Cycle now) {
  const int procs = system_.num_procs();
  // Pass 1: copy census over every coherence (second-level) cache, with
  // per-line version and directory-coverage checks.
  for (int p = 0; p < procs; ++p) {
    const auto proc = static_cast<ProcId>(p);
    const NodeId cluster = system_.cluster_of(proc);
    system_.cache(proc).for_each_line([&](const Cache::LineView& line) {
      BlockCopies& copies = census_[line.block];
      if (line.state == LineState::kModified) {
        ++copies.modified;
        if (copies.modified > 1) {
          std::ostringstream detail;
          detail << "second Modified copy (first at proc " << copies.m_proc
                 << ")";
          add_violation({ViolationKind::kMultipleOwners, line.block, proc,
                         cluster, now, detail.str()});
        }
        copies.m_proc = proc;
      } else {
        ++copies.shared;
      }

      // VERSION: every cached copy must carry the latest committed version
      // (a write invalidates every other copy, so a survivor that lags is
      // a copy an invalidation never reached).
      const std::uint32_t latest = system_.latest_version(line.block);
      if (line.version != latest) {
        std::ostringstream detail;
        detail << "cached version " << line.version << " vs latest "
               << latest;
        add_violation({ViolationKind::kStaleVersion, line.block, proc,
                       cluster, now, detail.str()});
      }

      // COVERAGE + DIRTY (cache side): the directory must know about this
      // copy. A sparse directory that victimized the entry without
      // invalidating the copies shows up here as kMissingEntry.
      const DirEntry* entry = system_.peek_entry(line.block);
      if (entry == nullptr) {
        add_violation({ViolationKind::kMissingEntry, line.block, proc,
                       cluster, now,
                       "cached copy but no live directory entry"});
        return;
      }
      if (system_.hierarchical()) {
        // Chip-level bookkeeping: the home entry names chips, not clusters,
        // so the flat owner/sharer comparisons below do not apply.
        Violation base;
        base.block = line.block;
        base.proc = proc;
        base.node = cluster;
        base.cycle = now;
        check_hier_copy(base, cluster, line.state == LineState::kModified);
        return;
      }
      const int sub = system_.sub_of(line.block);
      const DirState dir_state = entry->state_of(sub);
      if (line.state == LineState::kModified) {
        if (dir_state != DirState::kDirty || entry->owner_of(sub) != cluster) {
          std::ostringstream detail;
          detail << "Modified copy but directory says "
                 << (dir_state == DirState::kDirty ? "Dirty owned by cluster "
                     : dir_state == DirState::kShared ? "Shared"
                                                      : "Uncached");
          if (dir_state == DirState::kDirty) {
            detail << entry->owner_of(sub);
          }
          add_violation({ViolationKind::kOwnerMismatch, line.block, proc,
                         cluster, now, detail.str()});
        }
      } else {
        if (dir_state != DirState::kShared) {
          std::ostringstream detail;
          detail << "Shared copy but directory entry is "
                 << (dir_state == DirState::kDirty ? "Dirty" : "Uncached");
          add_violation({ViolationKind::kForgottenSharer, line.block, proc,
                         cluster, now, detail.str()});
        } else if (!system_.format().maybe_sharer(entry->sharers, cluster)) {
          add_violation({ViolationKind::kForgottenSharer, line.block, proc,
                         cluster, now,
                         "sharer representation does not cover this "
                         "cluster's copy"});
        }
      }
    });
  }

  // Pass 2: cross-copy SWMR — Shared and Modified copies never coexist.
  for (const auto& [block, copies] : census_) {
    if (copies.modified > 0 && copies.shared > 0) {
      std::ostringstream detail;
      detail << copies.shared << " Shared cop"
             << (copies.shared == 1 ? "y" : "ies")
             << " alongside the Modified copy at proc " << copies.m_proc;
      add_violation({ViolationKind::kSharedWhileDirty, block, copies.m_proc,
                     system_.cluster_of(copies.m_proc), now, detail.str()});
    }
  }
}

void InvariantChecker::audit_directories(Cycle now) {
  const int clusters = system_.config().num_clusters();
  const int group = system_.config().blocks_per_group;
  for (int h = 0; h < clusters; ++h) {
    system_.directory(static_cast<NodeId>(h))
        .for_each_entry([&](BlockAddr key, const DirEntry& entry) {
          for (int sub = 0; sub < group; ++sub) {
            if (entry.state_of(sub) != DirState::kDirty) {
              continue;
            }
            // DIRTY (directory side): the named owner must actually hold
            // the Modified copy.
            const BlockAddr block = system_.block_at(key, sub);
            const NodeId owner = entry.owner_of(sub);
            auto it = census_.find(block);
            // A hierarchical home entry names the owning *chip*; the flat
            // directory names the owning cluster.
            const bool owner_has_m =
                it != census_.end() && it->second.modified > 0 &&
                (system_.hierarchical()
                     ? system_.chip_of_cluster(system_.cluster_of(
                           it->second.m_proc)) == owner
                     : system_.cluster_of(it->second.m_proc) == owner);
            if (!owner_has_m) {
              std::ostringstream detail;
              detail << "directory Dirty owned by cluster " << owner
                     << " but that cluster holds no Modified copy";
              add_violation({ViolationKind::kDirtyNoCopy, block, kNoProc,
                             owner, now, detail.str()});
            }
          }
        });
  }
}

void InvariantChecker::audit_memory(Cycle now) {
  // VERSION (memory side): while a Modified copy exists, memory may lag
  // (the owner holds the data); once no M copy exists, every writeback
  // path must have brought memory up to date. A dropped victim writeback
  // shows up here.
  for (const auto& [block, ref] : ref_version_) {
    auto it = census_.find(block);
    const bool has_m = it != census_.end() && it->second.modified > 0;
    if (has_m) {
      continue;
    }
    const std::uint32_t mem = system_.memory_version_of(block);
    const std::uint32_t latest = system_.latest_version(block);
    if (mem != latest) {
      std::ostringstream detail;
      detail << "no Modified copy but memory holds version " << mem
             << " vs latest " << latest;
      add_violation({ViolationKind::kStaleMemory, block, kNoProc, kNoNode,
                     now, detail.str()});
    }
  }
}

void InvariantChecker::audit_l1(Cycle now) {
  const int procs = system_.num_procs();
  for (int p = 0; p < procs; ++p) {
    const auto proc = static_cast<ProcId>(p);
    const Cache& l2 = system_.cache(proc);
    system_.l1_cache(proc).for_each_line([&](const Cache::LineView& line) {
      if (l2.probe(line.block) == LineState::kInvalid) {
        add_violation({ViolationKind::kL1Inclusion, line.block, proc,
                       system_.cluster_of(proc), now,
                       "L1 line with no backing L2 line (inclusion)"});
      } else if (l2.version_of(line.block) != line.version) {
        std::ostringstream detail;
        detail << "L1 version " << line.version << " vs L2 version "
               << l2.version_of(line.block);
        add_violation({ViolationKind::kL1Inclusion, line.block, proc,
                       system_.cluster_of(proc), now, detail.str()});
      }
    });
  }
}

void InvariantChecker::check_hier_copy(const Violation& base, NodeId cluster,
                                       bool modified) {
  // Both levels must account for this cached copy: the inter-chip entry at
  // the home for the holding chip, and that chip's intra entry for the
  // holding cluster. A Modified copy must be Dirty at both levels with the
  // right owner ("no chip clean while an on-chip cache is dirty").
  const int chip = system_.chip_of_cluster(cluster);
  const NodeId local = static_cast<NodeId>(system_.chip_local_of(cluster));
  const DirEntry* inter = system_.peek_entry(base.block);
  const DirEntry* intra = system_.peek_intra_entry(chip, base.block);
  if (modified) {
    if (inter == nullptr || inter->state_of(0) != DirState::kDirty ||
        inter->owner_of(0) != static_cast<NodeId>(chip)) {
      Violation v = base;
      v.kind = ViolationKind::kChipCleanDirty;
      v.detail = "Modified copy but inter-chip entry is not Dirty at chip " +
                 std::to_string(chip);
      add_violation(std::move(v));
    }
    if (intra == nullptr || intra->state_of(0) != DirState::kDirty ||
        intra->owner_of(0) != local) {
      Violation v = base;
      v.kind = ViolationKind::kChipCleanDirty;
      v.detail = "Modified copy but chip " + std::to_string(chip) +
                 "'s intra entry is not Dirty at local cluster " +
                 std::to_string(local);
      add_violation(std::move(v));
    }
    return;
  }
  if (inter == nullptr || inter->state_of(0) != DirState::kShared ||
      !system_.format().maybe_sharer(inter->sharers,
                                     static_cast<NodeId>(chip))) {
    Violation v = base;
    v.kind = ViolationKind::kChipUncovered;
    v.detail = "Shared copy but inter-chip entry does not cover chip " +
               std::to_string(chip);
    add_violation(std::move(v));
  }
  if (intra == nullptr || intra->state_of(0) != DirState::kShared ||
      !system_.intra_format().maybe_sharer(intra->sharers, local)) {
    Violation v = base;
    v.kind = ViolationKind::kChipUncovered;
    v.detail = "Shared copy but chip " + std::to_string(chip) +
               "'s intra entry does not cover local cluster " +
               std::to_string(local);
    add_violation(std::move(v));
  }
}

void InvariantChecker::audit_hierarchy(Cycle now) {
  // Level linkage from the directory side: every live intra entry must be
  // covered by the inter-chip entry at the home — the inter sharer set is a
  // superset of the union of the chips' intra sharer sets, and a Dirty
  // intra entry means the inter entry is Dirty at that chip. (The cache
  // side of the hierarchy is checked per line in audit_caches.)
  const int chips = system_.chips();
  for (int q = 0; q < chips; ++q) {
    system_.intra_directory(q).for_each_entry(
        [&](BlockAddr block, const DirEntry& intra) {
          const DirState intra_state = intra.state_of(0);
          if (intra_state == DirState::kUncached) {
            return;
          }
          const DirEntry* inter = system_.peek_entry(block);
          Violation v;
          v.block = block;
          v.cycle = now;
          v.node = system_.gateway_of(q);
          if (inter == nullptr) {
            v.kind = ViolationKind::kChipUncovered;
            v.detail = "live intra entry at chip " + std::to_string(q) +
                       " but no inter-chip entry at the home";
            add_violation(std::move(v));
            return;
          }
          if (intra_state == DirState::kDirty) {
            if (inter->state_of(0) != DirState::kDirty ||
                inter->owner_of(0) != static_cast<NodeId>(q)) {
              v.kind = ViolationKind::kChipCleanDirty;
              v.detail = "intra entry Dirty at chip " + std::to_string(q) +
                         " but inter-chip entry is not Dirty there";
              add_violation(std::move(v));
            }
            return;
          }
          if (inter->state_of(0) != DirState::kShared ||
              !system_.format().maybe_sharer(inter->sharers,
                                             static_cast<NodeId>(q))) {
            v.kind = ViolationKind::kChipUncovered;
            v.detail = "intra entry Shared at chip " + std::to_string(q) +
                       " but the inter-chip sharer set does not cover it";
            add_violation(std::move(v));
          }
        });
  }
}

const CheckReport& InvariantChecker::finish(bool engine_halted) {
  // When the run completed cleanly, sweep the final state once more (it
  // may have drifted since the last periodic audit). A halted run already
  // recorded its violation; re-auditing would just duplicate it.
  if (!halt_requested()) {
    audit(last_now_);
  }
  report_.halted = engine_halted;
  report_.faults_injected = system_.faults_injected();
  return report_;
}

CheckedRun run_checked(const SystemConfig& system_config,
                       const EngineConfig& engine_config,
                       const ProgramTrace& trace,
                       const CheckConfig& check_config,
                       obs::TraceRecorder* recorder) {
  CoherenceSystem system(system_config);
  InvariantChecker checker(system, check_config);
  Engine engine(system, trace, engine_config, recorder, &checker);
  CheckedRun out;
  out.result = engine.run();
  out.report = checker.finish(engine.halted_by_checker());
  return out;
}

}  // namespace dircc::check
