// Delta-debugging failure minimizer.
//
// Given a trace that fails the invariant oracle under some machine
// configuration, shrink it to a (locally) minimal event sequence that
// still fails. Removal operates on *sync-safe units*, so every candidate
// trace is well-formed by construction and can never deadlock the engine:
//
//   * a read/write/think event is a singleton unit;
//   * a lock and its matching unlock are one unit (removed together);
//   * the k-th occurrence of barrier id b is one global unit spanning all
//     processors (the engine releases a barrier when every participating
//     processor arrives, so occurrences must stay aligned across
//     processors — this assumes the SPMD barrier structure all of this
//     repo's generators produce: every non-empty stream meets the same
//     barrier-id sequence).
//
// Classic ddmin: try dropping complement chunks, rerun the checked
// simulation, keep any reduction that still fails (optionally with the
// same leading violation kind), halve the chunk size when stuck.
#pragma once

#include <cstdint>
#include <optional>

#include "check/invariant_checker.hpp"
#include "trace/event.hpp"

namespace dircc::check {

struct MinimizeOptions {
  /// Budget of checked simulations; minimization stops when exhausted.
  std::uint64_t max_probes = 2000;
  /// Require the reduced trace to fail with the same leading violation
  /// kind as the original failure (prevents shrinking into a different
  /// bug when several are reachable).
  bool match_first_kind = true;
};

struct MinimizeResult {
  ProgramTrace trace;      ///< the minimized failing trace
  CheckReport report;      ///< its failure report
  std::uint64_t original_events = 0;
  std::uint64_t minimized_events = 0;
  std::uint64_t probes = 0;  ///< checked simulations spent
};

/// Shrinks `trace` against (system_config, engine_config, check_config).
/// Returns nullopt when the original trace does not fail in the first
/// place. The configs are taken as-is — in particular the seeded
/// FaultSpec, whose opportunity counting is part of what the reduced
/// trace must still reproduce.
std::optional<MinimizeResult> minimize_failure(
    const ProgramTrace& trace, const SystemConfig& system_config,
    const EngineConfig& engine_config, const CheckConfig& check_config,
    const MinimizeOptions& options = {});

}  // namespace dircc::check
