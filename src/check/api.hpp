// Compile-time gate and engine-facing hooks of the coherence checking
// subsystem (src/check).
//
// This header is dependency-free on purpose: the protocol and the engine
// include it to reach the gate, the observer interface and the fault-
// injection spec without linking against dircc_check (which sits *above*
// them in the layering — the checker library needs CoherenceSystem and
// Engine, so the lower layers only see this thin interface).
//
// Like the observability layer (DIRCC_OBS), everything is gated on the
// DIRCC_CHECK compile definition: at -DDIRCC_CHECK=0 every hook site and
// every fault-injection branch in the simulator constant-folds away and
// the build is bit-identical to an unchecked one.
#pragma once

#include <cstdint>

#include "common/types.hpp"

#ifndef DIRCC_CHECK
#define DIRCC_CHECK 1
#endif

namespace dircc::check {

/// True when the checking subsystem is compiled in. Hook sites guard with
/// `if (check::compiled() && ...)`; at DIRCC_CHECK=0 the branch is dead.
constexpr bool compiled() { return DIRCC_CHECK != 0; }

/// What the engine tells an attached checker. Called after each shared-data
/// access (read or write) has fully completed against the memory system.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// `block` is the accessed cache block, `now` the access's issue time.
  virtual void on_access(ProcId proc, BlockAddr block, bool is_write,
                         Cycle now) = 0;

  /// When true, the engine stops issuing further events: the run has
  /// already failed and simulating on would only let the corruption
  /// cascade into protocol-internal aborts.
  virtual bool halt_requested() const = 0;
};

/// Deliberate protocol mutations, used to prove the invariant oracle
/// catches real coherence bugs (and by the fuzzer as seeded faults).
enum class FaultKind : std::uint8_t {
  kNone,
  /// The directory drops an add_sharer it was told about: a cluster caches
  /// a read-only copy the sharer field no longer covers (the classic
  /// "flipped sharer bit").
  kForgetSharer,
  /// One invalidation message is lost in the network: the target cluster
  /// keeps its copy while the writer proceeds to ownership.
  kSkipInvalidation,
  /// The writeback of a dirty sparse-directory victim is dropped: the copy
  /// is invalidated but memory keeps the stale version.
  kDropVictimWriteback,
  /// Two-level hierarchy only: the *inter-chip* directory drops an
  /// add-chip it was told about — a chip holds copies the home's chip
  /// sharer field no longer covers, so a later write never invalidates
  /// that chip.
  kForgetChipSharer,
};

constexpr const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kForgetSharer:
      return "forget-sharer";
    case FaultKind::kSkipInvalidation:
      return "skip-inval";
    case FaultKind::kDropVictimWriteback:
      return "drop-victim-writeback";
    case FaultKind::kForgetChipSharer:
      return "forget-chip-sharer";
  }
  return "?";
}

/// One seeded mutation. The fault fires exactly once, on the `trigger`-th
/// *corrupting* opportunity (occasions where the mutation would be
/// harmless — e.g. skipping an invalidation to a cluster that holds no
/// copy — are not counted), so a given (config, trace) pair fails
/// deterministically.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t trigger = 1;
};

}  // namespace dircc::check
