// A directory entry: the per-block coherence state kept at the home cluster.
//
// Entries can optionally track a *group* of consecutive home-local blocks
// (Section 7's "make multiple memory blocks share one wide entry"): the
// sharer field is shared by the whole group while each block keeps its own
// state and dirty owner. With the default group size of 1 the extra slots
// are unused and `state`/`owner` describe the single block.
#pragma once

#include <array>

#include "directory/format.hpp"

namespace dircc {

/// Block state as seen by the home directory.
enum class DirState : std::uint8_t {
  kUncached,  ///< no cache holds the block; memory is up to date
  kShared,    ///< >= 1 clusters hold read-only copies; memory up to date
  kDirty,     ///< exactly one cluster owns a modified copy; memory stale
};

/// Largest supported tracking-group size.
inline constexpr int kMaxGroupBlocks = 8;

/// One directory entry. For kShared the sharer set lives in `sharers`
/// (interpreted by the directory's SharerFormat); for kDirty the single
/// owner is stored precisely per block, since every scheme has room for at
/// least one exact pointer.
///
/// When an entry tracks a group, `sharers` is the *union* of the sharer
/// sets of every kShared block in the group — always a superset per block,
/// at the price of extraneous invalidations when one block is written.
struct DirEntry {
  DirState state = DirState::kUncached;  ///< state of group sub-block 0
  NodeId owner = kNoNode;                ///< owner of group sub-block 0
  SharerRepr sharers;
  /// Sub-blocks 1..kMaxGroupBlocks-1 (grouped entries only).
  std::array<DirState, kMaxGroupBlocks - 1> extra_state{};
  std::array<NodeId, kMaxGroupBlocks - 1> extra_owner{};

  DirState& state_of(int sub) {
    return sub == 0 ? state : extra_state[static_cast<std::size_t>(sub - 1)];
  }
  DirState state_of(int sub) const {
    return sub == 0 ? state : extra_state[static_cast<std::size_t>(sub - 1)];
  }
  NodeId& owner_of(int sub) {
    return sub == 0 ? owner : extra_owner[static_cast<std::size_t>(sub - 1)];
  }
  NodeId owner_of(int sub) const {
    return sub == 0 ? owner : extra_owner[static_cast<std::size_t>(sub - 1)];
  }

  /// True when any sub-block in [0, group_size) is in `wanted` state.
  bool any_in_state(DirState wanted, int group_size, int exclude_sub) const {
    for (int sub = 0; sub < group_size; ++sub) {
      if (sub != exclude_sub && state_of(sub) == wanted) {
        return true;
      }
    }
    return false;
  }

  /// True when every sub-block in [0, group_size) is kUncached.
  bool all_uncached(int group_size) const {
    for (int sub = 0; sub < group_size; ++sub) {
      if (state_of(sub) != DirState::kUncached) {
        return false;
      }
    }
    return true;
  }

  void reset() {
    state = DirState::kUncached;
    owner = kNoNode;
    sharers.reset();
    extra_state.fill(DirState::kUncached);
    extra_owner.fill(kNoNode);
  }
};

}  // namespace dircc
