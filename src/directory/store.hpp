// Directory entry storage (Section 4.2 of the paper).
//
// FullDirectoryStore models the conventional organization: one entry per
// main-memory block, never replaced. SparseDirectoryStore models the paper's
// proposal: a set-associative cache of entries with no backing store — when a
// set is full, a victim entry is reclaimed and the caller must invalidate
// every cached copy the victim tracked before reusing it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "directory/entry.hpp"
#include "obs/trace_recorder.hpp"

namespace dircc {

/// Replacement policies evaluated in Figure 14.
enum class ReplPolicy : std::uint8_t {
  kLru,     ///< least recently used (best, hardest to build)
  kRandom,  ///< random (cheapest, second best)
  kLra,     ///< least recently allocated (worst of the three)
};

const char* repl_policy_name(ReplPolicy policy);

/// An entry displaced from a sparse directory. The protocol must invalidate
/// all copies it tracks before the replacement is complete.
struct VictimEntry {
  BlockAddr block = 0;
  DirEntry entry;
};

/// Counters common to both store kinds.
struct StoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t allocations = 0;
  std::uint64_t replacements = 0;
};

/// Abstract directory storage for one home cluster's memory slice.
class DirectoryStore {
 public:
  virtual ~DirectoryStore() = default;

  /// Returns the live entry for `block`, or nullptr. Counts as an access
  /// for LRU recency.
  virtual DirEntry* find(BlockAddr block) = 0;

  /// Returns the entry for `block`, allocating one if absent. When the
  /// allocation displaces a victim, `victim` receives it; the returned
  /// entry is reset to kUncached in that case.
  virtual DirEntry* find_or_alloc(BlockAddr block,
                                  std::optional<VictimEntry>& victim) = 0;

  /// Frees the entry for `block` (it transitioned to kUncached).
  virtual void release(BlockAddr block) = 0;

  /// Read-only probe for external auditors (src/check): no stats, no LRU
  /// recency update. Returns nullptr when `block` has no live entry.
  virtual const DirEntry* peek(BlockAddr block) const = 0;

  /// Calls `fn(block, entry)` for every live entry, in unspecified order.
  /// Read-only: no stats, no recency update.
  virtual void for_each_entry(
      const std::function<void(BlockAddr, const DirEntry&)>& fn) const = 0;

  /// Entry capacity; 0 means unbounded (full directory).
  virtual std::uint64_t capacity_entries() const = 0;

  /// Live entries currently allocated.
  virtual std::uint64_t live_entries() const = 0;

  const StoreStats& stats() const { return stats_; }

  /// Attaches the run's timeline recorder; `home` names this store's lane.
  /// Store-level events (sparse victimizations) are stamped with the time
  /// last passed to obs_tick().
  void attach_obs(obs::TraceRecorder* recorder, NodeId home) {
    recorder_ = recorder;
    obs_home_ = home;
  }

  /// Sets the simulated time for subsequent store-level events. Called by
  /// the protocol before each directory transaction (stores have no clock
  /// of their own).
  void obs_tick(Cycle now) { obs_now_ = now; }

 protected:
  /// Recording gate; constant-folds to false when DIRCC_OBS=0.
  bool obs_on(obs::EvClass cls) const {
    return obs::compiled() && recorder_ != nullptr && recorder_->wants(cls);
  }

  StoreStats stats_;
  obs::TraceRecorder* recorder_ = nullptr;
  NodeId obs_home_ = 0;
  Cycle obs_now_ = 0;
};

/// One entry per memory block, allocated on demand, never displaced.
///
/// Entries live in an open-addressing flat table (common/flat_map.hpp):
/// the directory lookup is on the simulator's per-transaction hot path.
/// The pointer returned by find_or_alloc stays valid for the rest of the
/// access because the protocol performs at most one allocating directory
/// operation per access — find() and release() never move slots.
class FullDirectoryStore final : public DirectoryStore {
 public:
  DirEntry* find(BlockAddr block) override;
  DirEntry* find_or_alloc(BlockAddr block,
                          std::optional<VictimEntry>& victim) override;
  void release(BlockAddr block) override;
  const DirEntry* peek(BlockAddr block) const override;
  void for_each_entry(const std::function<void(BlockAddr, const DirEntry&)>&
                          fn) const override;
  std::uint64_t capacity_entries() const override { return 0; }
  std::uint64_t live_entries() const override { return entries_.size(); }

 private:
  FlatMap<DirEntry> entries_;
};

/// Set-associative directory cache without a backing store.
class SparseDirectoryStore final : public DirectoryStore {
 public:
  /// `num_entries` total entries, organized as `num_entries / associativity`
  /// sets. `num_entries` must be a positive multiple of `associativity`.
  ///
  /// `index_divisor` converts a global block number into this directory's
  /// local index space before set selection. Memory is interleaved across
  /// clusters at block granularity (home = block % clusters), so the blocks
  /// homed here are every `clusters`-th block; indexing sets by
  /// block/clusters — the home-local block number, exactly the address bits
  /// a real home directory would use — keeps them spread over all sets.
  /// With the default divisor of 1 the raw block number indexes directly.
  SparseDirectoryStore(std::uint64_t num_entries, int associativity,
                       ReplPolicy policy, std::uint64_t seed,
                       std::uint64_t index_divisor = 1);

  DirEntry* find(BlockAddr block) override;
  DirEntry* find_or_alloc(BlockAddr block,
                          std::optional<VictimEntry>& victim) override;
  void release(BlockAddr block) override;
  const DirEntry* peek(BlockAddr block) const override;
  void for_each_entry(const std::function<void(BlockAddr, const DirEntry&)>&
                          fn) const override;
  std::uint64_t capacity_entries() const override;
  std::uint64_t live_entries() const override { return live_; }

  int associativity() const { return assoc_; }
  ReplPolicy policy() const { return policy_; }

 private:
  struct Way {
    bool valid = false;
    BlockAddr block = 0;
    std::uint64_t last_use = 0;   ///< LRU stamp, updated on every access
    std::uint64_t alloc_time = 0; ///< LRA stamp, set only at allocation
    DirEntry entry;
  };

  /// Set index. Cluster counts and sparse set counts are powers of two in
  /// every modeled machine, so the hot path is shift + mask; the general
  /// divide/modulo stays as the fallback.
  std::uint64_t set_of(BlockAddr block) const {
    const std::uint64_t local = divisor_shift_ >= 0
                                    ? block >> divisor_shift_
                                    : block / index_divisor_;
    return pow2_sets_ ? (local & set_mask_) : (local % num_sets_);
  }
  Way* probe(BlockAddr block);
  int pick_victim(std::uint64_t set);

  std::uint64_t num_sets_;
  std::uint64_t index_divisor_;
  std::uint64_t set_mask_ = 0;
  int divisor_shift_ = -1;  ///< log2(index_divisor_), -1 when not pow2
  bool pow2_sets_ = false;
  int assoc_;
  ReplPolicy policy_;
  Rng rng_;
  std::uint64_t stamp_ = 0;
  std::uint64_t live_ = 0;
  std::vector<Way> ways_;  // num_sets_ * assoc_, set-major
};

/// Configuration + factory covering both store kinds, so the protocol layer
/// can be organized around one type.
struct StoreConfig {
  bool sparse = false;
  std::uint64_t sparse_entries = 0;  ///< per home cluster
  int sparse_assoc = 4;
  ReplPolicy policy = ReplPolicy::kRandom;
  std::uint64_t seed = 1;
  std::uint64_t index_divisor = 1;  ///< set by the protocol: cluster count
};

std::unique_ptr<DirectoryStore> make_store(const StoreConfig& config);

}  // namespace dircc
