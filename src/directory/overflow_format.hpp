// Dir_iOV — overflow-cache directory format (Section 7 extension).
//
// Each entry holds i exact pointers. On pointer overflow the sharer set
// moves into a shared pool of wide full-bit-vector entries; the per-block
// entry keeps only a handle (slot + generation). When the pool itself
// overflows, the least-recently-used wide entry is re-assigned and any
// block still holding a handle to it detects the generation mismatch and
// degrades to broadcast semantics — conservative, so superset safety is
// preserved.
//
// The pool is owned by the format instance, which models one machine-wide
// overflow cache. The simulation is single-threaded; pool bookkeeping uses
// mutable state behind the const SharerFormat interface.
#pragma once

#include <vector>

#include "directory/format.hpp"

namespace dircc {

class OverflowCacheFormat final : public SharerFormat {
 public:
  OverflowCacheFormat(int num_nodes, int num_pointers, int pool_entries);

  SchemeKind kind() const override { return SchemeKind::kOverflowCache; }
  std::string name() const override;
  int state_bits() const override;

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override;
  void remove_sharer(SharerRepr& repr, NodeId node) const override;
  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override;
  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override;
  bool known_empty(const SharerRepr& repr) const override;
  bool precise(const SharerRepr& repr) const override;

  /// Total bits of the shared wide-entry pool (for storage accounting).
  std::uint64_t pool_state_bits() const;

  /// Observability for tests and benches.
  int pool_entries() const { return static_cast<int>(pool_.size()); }
  std::uint64_t pool_allocations() const { return allocations_; }
  std::uint64_t pool_evictions() const { return evictions_; }
  std::uint64_t broadcast_degradations() const { return degradations_; }

 private:
  // Entry modes, stored in SharerRepr::rotor.
  static constexpr std::uint8_t kInline = 0;
  static constexpr std::uint8_t kWide = 1;
  static constexpr std::uint8_t kBroadcast = 2;

  struct WideEntry {
    EntryBits vector;
    std::uint32_t generation = 0;
    std::uint64_t last_use = 0;
    bool in_use = false;
  };

  int ptr_width() const;
  NodeId get_ptr(const SharerRepr& repr, int slot) const;
  void set_ptr(SharerRepr& repr, int slot, NodeId node) const;
  int find_ptr(const SharerRepr& repr, NodeId node) const;

  std::uint32_t handle_slot(const SharerRepr& repr) const {
    return repr.bits.get_field(0, 32);
  }
  std::uint32_t handle_generation(const SharerRepr& repr) const {
    return repr.bits.get_field(32, 32);
  }
  /// The wide entry a handle refers to, or nullptr if it was re-assigned.
  WideEntry* resolve(const SharerRepr& repr) const;
  /// Allocates a wide entry (evicting LRU if needed); writes the handle.
  WideEntry* allocate_wide(SharerRepr& repr) const;
  void degrade_to_broadcast(SharerRepr& repr) const;
  void collect_all(NodeId exclude, std::vector<NodeId>& out) const;

  int num_pointers_;
  mutable std::vector<WideEntry> pool_;
  mutable std::uint64_t stamp_ = 0;
  mutable std::uint64_t allocations_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable std::uint64_t degradations_ = 0;
};

}  // namespace dircc
