#include "directory/format.hpp"

#include "common/ensure.hpp"
#include "directory/overflow_format.hpp"

namespace dircc {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers for pointer-array representations.
//
// Pointers are stored as consecutive little-endian fields of width
// log2_ceil(num_nodes) at the base of the entry bits.
// ---------------------------------------------------------------------------

class PointerOps {
 public:
  PointerOps(int num_nodes, int num_pointers)
      : width_(log2_ceil(static_cast<std::uint64_t>(num_nodes))),
        count_(num_pointers) {}

  int width() const { return width_; }
  int count() const { return count_; }
  int bits() const { return width_ * count_; }

  NodeId get(const SharerRepr& repr, int slot) const {
    return static_cast<NodeId>(repr.bits.get_field(slot * width_, width_));
  }

  void set(SharerRepr& repr, int slot, NodeId node) const {
    repr.bits.set_field(slot * width_, width_, node);
  }

  /// Index of `node` among the in-use pointers, or -1.
  int find(const SharerRepr& repr, NodeId node) const {
    for (int slot = 0; slot < repr.ptr_count; ++slot) {
      if (get(repr, slot) == node) {
        return slot;
      }
    }
    return -1;
  }

  /// Removes the pointer at `slot` by moving the last pointer into it.
  void remove_at(SharerRepr& repr, int slot) const {
    const int last = repr.ptr_count - 1;
    if (slot != last) {
      set(repr, slot, get(repr, last));
    }
    set(repr, last, 0);
    --repr.ptr_count;
  }

  void collect(const SharerRepr& repr, NodeId exclude,
               std::vector<NodeId>& out) const {
    for (int slot = 0; slot < repr.ptr_count; ++slot) {
      const NodeId node = get(repr, slot);
      if (node != exclude) {
        out.push_back(node);
      }
    }
  }

 private:
  int width_;
  int count_;
};

// ---------------------------------------------------------------------------
// Dir_P — full bit vector.
// ---------------------------------------------------------------------------

class FullBitVectorFormat final : public SharerFormat {
 public:
  explicit FullBitVectorFormat(int num_nodes) : SharerFormat(num_nodes) {}

  SchemeKind kind() const override { return SchemeKind::kFullBitVector; }
  std::string name() const override {
    return "Dir" + std::to_string(num_nodes_);
  }
  int state_bits() const override { return num_nodes_; }

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override {
    repr.bits.set(node);
    return kNoNode;
  }

  void remove_sharer(SharerRepr& repr, NodeId node) const override {
    repr.bits.clear(node);
  }

  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override {
    for (int pos = repr.bits.find_next(0); pos >= 0;
         pos = repr.bits.find_next(pos + 1)) {
      if (static_cast<NodeId>(pos) != exclude) {
        out.push_back(static_cast<NodeId>(pos));
      }
    }
  }

  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override {
    return repr.bits.test(node);
  }

  bool known_empty(const SharerRepr& repr) const override {
    return repr.bits.none();
  }

  bool precise(const SharerRepr&) const override { return true; }
};

// ---------------------------------------------------------------------------
// Dir_iB — limited pointers with broadcast bit.
// ---------------------------------------------------------------------------

class LimitedBroadcastFormat final : public SharerFormat {
 public:
  LimitedBroadcastFormat(int num_nodes, int num_pointers)
      : SharerFormat(num_nodes), ptrs_(num_nodes, num_pointers) {}

  SchemeKind kind() const override { return SchemeKind::kLimitedBroadcast; }
  std::string name() const override {
    return "Dir" + std::to_string(ptrs_.count()) + "B";
  }
  int state_bits() const override { return ptrs_.bits() + 1; }

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed || ptrs_.find(repr, node) >= 0) {
      return kNoNode;
    }
    if (repr.ptr_count < ptrs_.count()) {
      ptrs_.set(repr, repr.ptr_count, node);
      ++repr.ptr_count;
      return kNoNode;
    }
    // Pointer overflow: set the broadcast bit. The pointers become moot.
    repr.overflowed = true;
    return kNoNode;
  }

  void remove_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed) {
      return;  // broadcast mode cannot shrink
    }
    const int slot = ptrs_.find(repr, node);
    if (slot >= 0) {
      ptrs_.remove_at(repr, slot);
    }
  }

  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override {
    if (!repr.overflowed) {
      ptrs_.collect(repr, exclude, out);
      return;
    }
    for (int node = 0; node < num_nodes_; ++node) {
      if (static_cast<NodeId>(node) != exclude) {
        out.push_back(static_cast<NodeId>(node));
      }
    }
  }

  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override {
    return repr.overflowed || ptrs_.find(repr, node) >= 0;
  }

  bool known_empty(const SharerRepr& repr) const override {
    return !repr.overflowed && repr.ptr_count == 0;
  }

  bool precise(const SharerRepr& repr) const override {
    return !repr.overflowed;
  }

 private:
  PointerOps ptrs_;
};

// ---------------------------------------------------------------------------
// Dir_iNB — limited pointers without broadcast: displace on overflow.
// ---------------------------------------------------------------------------

class LimitedNoBroadcastFormat final : public SharerFormat {
 public:
  LimitedNoBroadcastFormat(int num_nodes, int num_pointers)
      : SharerFormat(num_nodes), ptrs_(num_nodes, num_pointers) {}

  SchemeKind kind() const override { return SchemeKind::kLimitedNoBroadcast; }
  std::string name() const override {
    return "Dir" + std::to_string(ptrs_.count()) + "NB";
  }
  int state_bits() const override { return ptrs_.bits(); }

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override {
    if (ptrs_.find(repr, node) >= 0) {
      return kNoNode;
    }
    if (repr.ptr_count < ptrs_.count()) {
      ptrs_.set(repr, repr.ptr_count, node);
      ++repr.ptr_count;
      return kNoNode;
    }
    // No room and broadcast is disallowed: displace an existing sharer.
    // A rotating victim slot avoids pathologically displacing the same
    // cluster over and over.
    const int victim_slot = repr.rotor % ptrs_.count();
    repr.rotor = static_cast<std::uint8_t>(repr.rotor + 1);
    const NodeId displaced = ptrs_.get(repr, victim_slot);
    ptrs_.set(repr, victim_slot, node);
    return displaced;
  }

  void remove_sharer(SharerRepr& repr, NodeId node) const override {
    const int slot = ptrs_.find(repr, node);
    if (slot >= 0) {
      ptrs_.remove_at(repr, slot);
    }
  }

  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override {
    ptrs_.collect(repr, exclude, out);
  }

  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override {
    return ptrs_.find(repr, node) >= 0;
  }

  bool known_empty(const SharerRepr& repr) const override {
    return repr.ptr_count == 0;
  }

  bool precise(const SharerRepr&) const override { return true; }

 private:
  PointerOps ptrs_;
};

// ---------------------------------------------------------------------------
// Dir_iX — superset scheme: pointers collapse into one composite pointer.
//
// In composite mode the entry stores a value pattern V and a don't-care mask
// M: node n is a potential sharer iff (n ^ V) & ~M == 0. V lives in pointer
// slot 0's bit range, M in slot 1's — the scheme needs i >= 2.
// ---------------------------------------------------------------------------

class SupersetFormat final : public SharerFormat {
 public:
  SupersetFormat(int num_nodes, int num_pointers)
      : SharerFormat(num_nodes), ptrs_(num_nodes, num_pointers) {
    ensure(num_pointers >= 2, "Dir_iX needs at least two pointers");
  }

  SchemeKind kind() const override { return SchemeKind::kSuperset; }
  std::string name() const override {
    return "Dir" + std::to_string(ptrs_.count()) + "X";
  }
  int state_bits() const override { return ptrs_.bits() + 1; }

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed) {
      merge_composite(repr, node);
      return kNoNode;
    }
    if (ptrs_.find(repr, node) >= 0) {
      return kNoNode;
    }
    if (repr.ptr_count < ptrs_.count()) {
      ptrs_.set(repr, repr.ptr_count, node);
      ++repr.ptr_count;
      return kNoNode;
    }
    // Overflow: collapse every pointer plus the new node into V / M.
    std::uint32_t value = ptrs_.get(repr, 0);
    std::uint32_t mask = 0;
    for (int slot = 1; slot < repr.ptr_count; ++slot) {
      mask |= value ^ ptrs_.get(repr, slot);
    }
    mask |= value ^ node;
    repr.bits.reset();
    repr.overflowed = true;
    set_value(repr, value);
    set_mask(repr, mask);
    return kNoNode;
  }

  void remove_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed) {
      return;  // composite mode cannot shrink
    }
    const int slot = ptrs_.find(repr, node);
    if (slot >= 0) {
      ptrs_.remove_at(repr, slot);
    }
  }

  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override {
    if (!repr.overflowed) {
      ptrs_.collect(repr, exclude, out);
      return;
    }
    const std::uint32_t value = get_value(repr);
    const std::uint32_t mask = get_mask(repr);
    for (int node = 0; node < num_nodes_; ++node) {
      const auto candidate = static_cast<std::uint32_t>(node);
      if (((candidate ^ value) & ~mask) == 0 &&
          static_cast<NodeId>(node) != exclude) {
        out.push_back(static_cast<NodeId>(node));
      }
    }
  }

  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override {
    if (!repr.overflowed) {
      return ptrs_.find(repr, node) >= 0;
    }
    return ((static_cast<std::uint32_t>(node) ^ get_value(repr)) &
            ~get_mask(repr)) == 0;
  }

  bool known_empty(const SharerRepr& repr) const override {
    return !repr.overflowed && repr.ptr_count == 0;
  }

  bool precise(const SharerRepr& repr) const override {
    return !repr.overflowed;
  }

 private:
  void merge_composite(SharerRepr& repr, NodeId node) const {
    const std::uint32_t value = get_value(repr);
    std::uint32_t mask = get_mask(repr);
    mask |= value ^ static_cast<std::uint32_t>(node);
    set_mask(repr, mask);
  }

  std::uint32_t get_value(const SharerRepr& repr) const {
    return repr.bits.get_field(0, ptrs_.width());
  }
  void set_value(SharerRepr& repr, std::uint32_t value) const {
    repr.bits.set_field(0, ptrs_.width(), value);
  }
  std::uint32_t get_mask(const SharerRepr& repr) const {
    return repr.bits.get_field(ptrs_.width(), ptrs_.width());
  }
  void set_mask(SharerRepr& repr, std::uint32_t mask) const {
    repr.bits.set_field(ptrs_.width(), ptrs_.width(), mask);
  }

  PointerOps ptrs_;
};

// ---------------------------------------------------------------------------
// Dir_iCV_r — coarse vector (the paper's first proposal, Section 4.1).
// ---------------------------------------------------------------------------

class CoarseVectorFormat final : public SharerFormat {
 public:
  CoarseVectorFormat(int num_nodes, int num_pointers, int region_size)
      : SharerFormat(num_nodes),
        ptrs_(num_nodes, num_pointers),
        region_size_(region_size),
        num_regions_(static_cast<int>(
            ceil_div(static_cast<std::uint64_t>(num_nodes),
                     static_cast<std::uint64_t>(region_size)))) {
    ensure(region_size >= 1, "coarse vector region size must be >= 1");
    ensure(num_regions_ <= EntryBits::kBits,
           "coarse vector does not fit in the entry state word");
  }

  SchemeKind kind() const override { return SchemeKind::kCoarseVector; }
  std::string name() const override {
    return "Dir" + std::to_string(ptrs_.count()) + "CV" +
           std::to_string(region_size_);
  }
  int state_bits() const override {
    // Pointers and the coarse vector share the same memory; the entry needs
    // the larger of the two plus one mode bit.
    const int ptr_bits = ptrs_.bits();
    return (ptr_bits > num_regions_ ? ptr_bits : num_regions_) + 1;
  }

  NodeId add_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed) {
      repr.bits.set(region_of(node));
      return kNoNode;
    }
    if (ptrs_.find(repr, node) >= 0) {
      return kNoNode;
    }
    if (repr.ptr_count < ptrs_.count()) {
      ptrs_.set(repr, repr.ptr_count, node);
      ++repr.ptr_count;
      return kNoNode;
    }
    // Pointer overflow: reinterpret the entry as a coarse bit vector over
    // regions of region_size_ clusters, seeded from the existing pointers.
    NodeId pointees[kMaxNodes];
    const int count = repr.ptr_count;
    for (int slot = 0; slot < count; ++slot) {
      pointees[slot] = ptrs_.get(repr, slot);
    }
    repr.bits.reset();
    repr.overflowed = true;
    for (int slot = 0; slot < count; ++slot) {
      repr.bits.set(region_of(pointees[slot]));
    }
    repr.bits.set(region_of(node));
    return kNoNode;
  }

  void remove_sharer(SharerRepr& repr, NodeId node) const override {
    if (repr.overflowed) {
      return;  // a region bit may cover other sharers; stay conservative
    }
    const int slot = ptrs_.find(repr, node);
    if (slot >= 0) {
      ptrs_.remove_at(repr, slot);
    }
  }

  void collect_targets(const SharerRepr& repr, NodeId exclude,
                       std::vector<NodeId>& out) const override {
    if (!repr.overflowed) {
      ptrs_.collect(repr, exclude, out);
      return;
    }
    for (int region = repr.bits.find_next(0); region >= 0;
         region = repr.bits.find_next(region + 1)) {
      const int first = region * region_size_;
      const int last = first + region_size_ < num_nodes_
                           ? first + region_size_
                           : num_nodes_;
      for (int node = first; node < last; ++node) {
        if (static_cast<NodeId>(node) != exclude) {
          out.push_back(static_cast<NodeId>(node));
        }
      }
    }
  }

  bool maybe_sharer(const SharerRepr& repr, NodeId node) const override {
    if (!repr.overflowed) {
      return ptrs_.find(repr, node) >= 0;
    }
    return repr.bits.test(region_of(node));
  }

  bool known_empty(const SharerRepr& repr) const override {
    if (!repr.overflowed) {
      return repr.ptr_count == 0;
    }
    return repr.bits.none();
  }

  bool precise(const SharerRepr& repr) const override {
    return !repr.overflowed;
  }

  int region_size() const { return region_size_; }
  int num_regions() const { return num_regions_; }

 private:
  int region_of(NodeId node) const { return node / region_size_; }

  PointerOps ptrs_;
  int region_size_;
  int num_regions_;
};

}  // namespace

SharerFormat::SharerFormat(int num_nodes) : num_nodes_(num_nodes) {
  ensure(num_nodes >= 1 && num_nodes <= kMaxNodes,
         "node count outside supported range");
}

std::unique_ptr<SharerFormat> make_format(const SchemeConfig& config) {
  switch (config.kind) {
    case SchemeKind::kFullBitVector:
      return std::make_unique<FullBitVectorFormat>(config.num_nodes);
    case SchemeKind::kLimitedBroadcast:
      // Dir0B is legal: zero pointers means the first sharer already
      // overflows into broadcast mode — the directoryless baseline that
      // trades all storage for broadcast traffic.
      ensure(config.num_pointers >= 0, "Dir_iB cannot have negative pointers");
      return std::make_unique<LimitedBroadcastFormat>(config.num_nodes,
                                                      config.num_pointers);
    case SchemeKind::kLimitedNoBroadcast:
      ensure(config.num_pointers >= 1, "Dir_iNB needs at least one pointer");
      return std::make_unique<LimitedNoBroadcastFormat>(config.num_nodes,
                                                        config.num_pointers);
    case SchemeKind::kSuperset:
      return std::make_unique<SupersetFormat>(config.num_nodes,
                                              config.num_pointers);
    case SchemeKind::kCoarseVector:
      ensure(config.num_pointers >= 1, "Dir_iCV needs at least one pointer");
      return std::make_unique<CoarseVectorFormat>(
          config.num_nodes, config.num_pointers, config.region_size);
    case SchemeKind::kOverflowCache:
      return std::make_unique<OverflowCacheFormat>(
          config.num_nodes, config.num_pointers, config.pool_entries);
  }
  ensure(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace dircc
