#include "directory/store.hpp"

#include <bit>

#include "common/ensure.hpp"

namespace dircc {

const char* repl_policy_name(ReplPolicy policy) {
  switch (policy) {
    case ReplPolicy::kLru:
      return "LRU";
    case ReplPolicy::kRandom:
      return "Rand";
    case ReplPolicy::kLra:
      return "LRA";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FullDirectoryStore
// ---------------------------------------------------------------------------

DirEntry* FullDirectoryStore::find(BlockAddr block) {
  ++stats_.lookups;
  DirEntry* entry = entries_.find(block);
  if (entry == nullptr) {
    return nullptr;
  }
  ++stats_.hits;
  return entry;
}

DirEntry* FullDirectoryStore::find_or_alloc(
    BlockAddr block, std::optional<VictimEntry>& victim) {
  ++stats_.lookups;
  victim.reset();
  bool inserted = false;
  DirEntry* entry = entries_.try_emplace(block, inserted);
  if (inserted) {
    ++stats_.allocations;
  } else {
    ++stats_.hits;
  }
  return entry;
}

void FullDirectoryStore::release(BlockAddr block) {
  // Releasing probes the directory just like find(); count it so the
  // hit-rate denominators match across all probe paths.
  ++stats_.lookups;
  if (entries_.erase(block)) {
    ++stats_.hits;
  }
}

const DirEntry* FullDirectoryStore::peek(BlockAddr block) const {
  return entries_.find(block);
}

void FullDirectoryStore::for_each_entry(
    const std::function<void(BlockAddr, const DirEntry&)>& fn) const {
  entries_.for_each(fn);
}

// ---------------------------------------------------------------------------
// SparseDirectoryStore
// ---------------------------------------------------------------------------

SparseDirectoryStore::SparseDirectoryStore(std::uint64_t num_entries,
                                           int associativity,
                                           ReplPolicy policy,
                                           std::uint64_t seed,
                                           std::uint64_t index_divisor)
    : num_sets_(0),
      index_divisor_(index_divisor),
      assoc_(associativity),
      policy_(policy),
      rng_(seed) {
  ensure(associativity >= 1, "sparse directory associativity must be >= 1");
  ensure(index_divisor >= 1, "index divisor must be >= 1");
  ensure(num_entries >= static_cast<std::uint64_t>(associativity) &&
             num_entries % static_cast<std::uint64_t>(associativity) == 0,
         "sparse entry count must be a positive multiple of associativity");
  num_sets_ = num_entries / static_cast<std::uint64_t>(associativity);
  pow2_sets_ = (num_sets_ & (num_sets_ - 1)) == 0;
  set_mask_ = pow2_sets_ ? num_sets_ - 1 : 0;
  if ((index_divisor_ & (index_divisor_ - 1)) == 0) {
    divisor_shift_ = std::countr_zero(index_divisor_);
  }
  ways_.resize(num_entries);
}

SparseDirectoryStore::Way* SparseDirectoryStore::probe(BlockAddr block) {
  const std::uint64_t base = set_of(block) * static_cast<std::uint64_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::uint64_t>(w)];
    if (way.valid && way.block == block) {
      return &way;
    }
  }
  return nullptr;
}

DirEntry* SparseDirectoryStore::find(BlockAddr block) {
  ++stats_.lookups;
  Way* way = probe(block);
  if (way == nullptr) {
    return nullptr;
  }
  ++stats_.hits;
  way->last_use = ++stamp_;
  return &way->entry;
}

int SparseDirectoryStore::pick_victim(std::uint64_t set) {
  const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
  switch (policy_) {
    case ReplPolicy::kRandom:
      return static_cast<int>(rng_.below(static_cast<std::uint64_t>(assoc_)));
    case ReplPolicy::kLru: {
      int best = 0;
      for (int w = 1; w < assoc_; ++w) {
        if (ways_[base + static_cast<std::uint64_t>(w)].last_use <
            ways_[base + static_cast<std::uint64_t>(best)].last_use) {
          best = w;
        }
      }
      return best;
    }
    case ReplPolicy::kLra: {
      int best = 0;
      for (int w = 1; w < assoc_; ++w) {
        if (ways_[base + static_cast<std::uint64_t>(w)].alloc_time <
            ways_[base + static_cast<std::uint64_t>(best)].alloc_time) {
          best = w;
        }
      }
      return best;
    }
  }
  return 0;
}

DirEntry* SparseDirectoryStore::find_or_alloc(
    BlockAddr block, std::optional<VictimEntry>& victim) {
  victim.reset();
  ++stats_.lookups;
  if (Way* way = probe(block)) {
    ++stats_.hits;
    way->last_use = ++stamp_;
    return &way->entry;
  }
  ++stats_.allocations;
  const std::uint64_t set = set_of(block);
  const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
  // Prefer a free way.
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::uint64_t>(w)];
    if (!way.valid) {
      way.valid = true;
      way.block = block;
      way.last_use = ++stamp_;
      way.alloc_time = stamp_;
      way.entry.reset();
      ++live_;
      return &way.entry;
    }
  }
  // Set full: displace a victim. The caller invalidates its copies.
  ++stats_.replacements;
  Way& way = ways_[base + static_cast<std::uint64_t>(pick_victim(set))];
  victim = VictimEntry{way.block, way.entry};
  if (obs_on(obs::EvClass::kSparse)) {
    recorder_->record_home(obs_home_,
                           {obs_now_, 0, way.block, set,
                            obs::EvType::kSparseVictim});
  }
  way.block = block;
  way.last_use = ++stamp_;
  way.alloc_time = stamp_;
  way.entry.reset();
  return &way.entry;
}

void SparseDirectoryStore::release(BlockAddr block) {
  ++stats_.lookups;
  if (Way* way = probe(block)) {
    ++stats_.hits;
    way->valid = false;
    way->entry.reset();
    ensure(live_ > 0, "sparse live-entry underflow");
    --live_;
  }
}

const DirEntry* SparseDirectoryStore::peek(BlockAddr block) const {
  const std::uint64_t base = set_of(block) * static_cast<std::uint64_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + static_cast<std::uint64_t>(w)];
    if (way.valid && way.block == block) {
      return &way.entry;
    }
  }
  return nullptr;
}

void SparseDirectoryStore::for_each_entry(
    const std::function<void(BlockAddr, const DirEntry&)>& fn) const {
  for (const Way& way : ways_) {
    if (way.valid) {
      fn(way.block, way.entry);
    }
  }
}

std::uint64_t SparseDirectoryStore::capacity_entries() const {
  return num_sets_ * static_cast<std::uint64_t>(assoc_);
}

std::unique_ptr<DirectoryStore> make_store(const StoreConfig& config) {
  if (!config.sparse) {
    return std::make_unique<FullDirectoryStore>();
  }
  return std::make_unique<SparseDirectoryStore>(
      config.sparse_entries, config.sparse_assoc, config.policy, config.seed,
      config.index_divisor);
}

}  // namespace dircc
