#include "directory/level.hpp"

namespace dircc {

DirectoryLevel::DirectoryLevel(const SchemeConfig& scheme,
                               const StoreConfig& store, int num_stores,
                               std::uint64_t base_seed,
                               std::uint64_t index_divisor)
    : scheme_(scheme), format_(make_format(scheme)) {
  stores_.reserve(static_cast<std::size_t>(num_stores));
  for (int i = 0; i < num_stores; ++i) {
    StoreConfig per_store = store;
    per_store.seed = base_seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(i);
    per_store.index_divisor = index_divisor;
    stores_.push_back(make_store(per_store));
  }
}

}  // namespace dircc
