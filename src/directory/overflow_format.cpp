#include "directory/overflow_format.hpp"

#include "common/ensure.hpp"

namespace dircc {

OverflowCacheFormat::OverflowCacheFormat(int num_nodes, int num_pointers,
                                         int pool_entries)
    : SharerFormat(num_nodes), num_pointers_(num_pointers) {
  ensure(num_pointers >= 1, "Dir_iOV needs at least one inline pointer");
  ensure(pool_entries >= 1, "overflow pool needs at least one entry");
  // The handle (32-bit slot + 32-bit generation) reuses the entry bits; it
  // must fit regardless of the inline pointer budget.
  pool_.resize(static_cast<std::size_t>(pool_entries));
}

std::string OverflowCacheFormat::name() const {
  return "Dir" + std::to_string(num_pointers_) + "OV";
}

int OverflowCacheFormat::state_bits() const {
  // Inline pointers plus two mode bits; the handle fits in the pointer
  // space of any realistic configuration (a hardware design would size the
  // slot index to log2(pool), far below our modeling-convenience 64 bits).
  const int ptr_bits = num_pointers_ * ptr_width();
  const int handle_bits =
      log2_ceil(static_cast<std::uint64_t>(pool_.size())) + 8;
  return (ptr_bits > handle_bits ? ptr_bits : handle_bits) + 2;
}

std::uint64_t OverflowCacheFormat::pool_state_bits() const {
  return static_cast<std::uint64_t>(pool_.size()) *
         static_cast<std::uint64_t>(num_nodes_);
}

int OverflowCacheFormat::ptr_width() const {
  return log2_ceil(static_cast<std::uint64_t>(num_nodes_));
}

NodeId OverflowCacheFormat::get_ptr(const SharerRepr& repr, int slot) const {
  return static_cast<NodeId>(
      repr.bits.get_field(slot * ptr_width(), ptr_width()));
}

void OverflowCacheFormat::set_ptr(SharerRepr& repr, int slot,
                                  NodeId node) const {
  repr.bits.set_field(slot * ptr_width(), ptr_width(), node);
}

int OverflowCacheFormat::find_ptr(const SharerRepr& repr, NodeId node) const {
  for (int slot = 0; slot < repr.ptr_count; ++slot) {
    if (get_ptr(repr, slot) == node) {
      return slot;
    }
  }
  return -1;
}

OverflowCacheFormat::WideEntry* OverflowCacheFormat::resolve(
    const SharerRepr& repr) const {
  WideEntry& entry = pool_[handle_slot(repr)];
  if (!entry.in_use || entry.generation != handle_generation(repr)) {
    return nullptr;  // the pool re-assigned this slot
  }
  entry.last_use = ++stamp_;
  return &entry;
}

OverflowCacheFormat::WideEntry* OverflowCacheFormat::allocate_wide(
    SharerRepr& repr) const {
  ++allocations_;
  std::size_t victim = 0;
  bool found_free = false;
  for (std::size_t slot = 0; slot < pool_.size(); ++slot) {
    if (!pool_[slot].in_use) {
      victim = slot;
      found_free = true;
      break;
    }
    if (pool_[slot].last_use < pool_[victim].last_use) {
      victim = slot;
    }
  }
  WideEntry& entry = pool_[victim];
  if (!found_free) {
    // Whatever block held this wide entry will see the generation bump and
    // degrade to broadcast on its next directory operation.
    ++evictions_;
  }
  entry.in_use = true;
  ++entry.generation;
  entry.vector.reset();
  entry.last_use = ++stamp_;
  repr.bits.reset();
  repr.bits.set_field(0, 32, static_cast<std::uint32_t>(victim));
  repr.bits.set_field(32, 32, entry.generation);
  repr.rotor = kWide;
  repr.overflowed = true;
  return &entry;
}

void OverflowCacheFormat::degrade_to_broadcast(SharerRepr& repr) const {
  ++degradations_;
  repr.bits.reset();
  repr.rotor = kBroadcast;
  repr.overflowed = true;
}

void OverflowCacheFormat::collect_all(NodeId exclude,
                                      std::vector<NodeId>& out) const {
  for (int node = 0; node < num_nodes_; ++node) {
    if (static_cast<NodeId>(node) != exclude) {
      out.push_back(static_cast<NodeId>(node));
    }
  }
}

NodeId OverflowCacheFormat::add_sharer(SharerRepr& repr, NodeId node) const {
  switch (repr.rotor) {
    case kInline: {
      if (find_ptr(repr, node) >= 0) {
        return kNoNode;
      }
      if (repr.ptr_count < num_pointers_) {
        set_ptr(repr, repr.ptr_count, node);
        ++repr.ptr_count;
        return kNoNode;
      }
      // Inline overflow: move every pointer plus the new node into a wide
      // pool entry.
      NodeId pointees[kMaxNodes];
      const int count = repr.ptr_count;
      for (int slot = 0; slot < count; ++slot) {
        pointees[slot] = get_ptr(repr, slot);
      }
      WideEntry* wide = allocate_wide(repr);
      for (int slot = 0; slot < count; ++slot) {
        wide->vector.set(pointees[slot]);
      }
      wide->vector.set(node);
      repr.ptr_count = 0;
      return kNoNode;
    }
    case kWide: {
      if (WideEntry* wide = resolve(repr)) {
        wide->vector.set(node);
        return kNoNode;
      }
      degrade_to_broadcast(repr);
      return kNoNode;
    }
    default:
      return kNoNode;  // broadcast already covers everyone
  }
}

void OverflowCacheFormat::remove_sharer(SharerRepr& repr, NodeId node) const {
  switch (repr.rotor) {
    case kInline: {
      const int slot = find_ptr(repr, node);
      if (slot >= 0) {
        const int last = repr.ptr_count - 1;
        if (slot != last) {
          set_ptr(repr, slot, get_ptr(repr, last));
        }
        set_ptr(repr, last, 0);
        --repr.ptr_count;
      }
      return;
    }
    case kWide: {
      if (WideEntry* wide = resolve(repr)) {
        wide->vector.clear(node);  // wide entries stay exact
      } else {
        degrade_to_broadcast(repr);
      }
      return;
    }
    default:
      return;
  }
}

void OverflowCacheFormat::collect_targets(const SharerRepr& repr,
                                          NodeId exclude,
                                          std::vector<NodeId>& out) const {
  switch (repr.rotor) {
    case kInline:
      for (int slot = 0; slot < repr.ptr_count; ++slot) {
        const NodeId node = get_ptr(repr, slot);
        if (node != exclude) {
          out.push_back(node);
        }
      }
      return;
    case kWide: {
      if (const WideEntry* wide = resolve(repr)) {
        for (int pos = wide->vector.find_next(0); pos >= 0;
             pos = wide->vector.find_next(pos + 1)) {
          if (static_cast<NodeId>(pos) != exclude) {
            out.push_back(static_cast<NodeId>(pos));
          }
        }
        return;
      }
      collect_all(exclude, out);
      return;
    }
    default:
      collect_all(exclude, out);
      return;
  }
}

bool OverflowCacheFormat::maybe_sharer(const SharerRepr& repr,
                                       NodeId node) const {
  switch (repr.rotor) {
    case kInline:
      return find_ptr(repr, node) >= 0;
    case kWide:
      if (const WideEntry* wide = resolve(repr)) {
        return wide->vector.test(node);
      }
      return true;  // stale handle: conservative
    default:
      return true;
  }
}

bool OverflowCacheFormat::known_empty(const SharerRepr& repr) const {
  switch (repr.rotor) {
    case kInline:
      return repr.ptr_count == 0;
    case kWide:
      if (const WideEntry* wide = resolve(repr)) {
        return wide->vector.none();
      }
      return false;
    default:
      return false;
  }
}

bool OverflowCacheFormat::precise(const SharerRepr& repr) const {
  switch (repr.rotor) {
    case kInline:
      return true;
    case kWide:
      return resolve(repr) != nullptr;
    default:
      return false;
  }
}

}  // namespace dircc
