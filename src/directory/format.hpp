// Directory sharer-set formats (Section 3 and 4.1 of the paper).
//
// A directory entry must record which clusters may hold a cached copy of a
// memory block. All schemes studied in the paper fit the same interface:
//
//  * Dir_P      — full bit vector, one bit per cluster (exact).
//  * Dir_iB     — i pointers; on overflow set a broadcast bit.
//  * Dir_iNB    — i pointers; on overflow displace an existing sharer
//                 (the displaced cluster must be invalidated by the caller).
//  * Dir_iX     — i pointers; on overflow collapse into one composite
//                 pointer whose bits may be 0, 1 or X ("both").
//  * Dir_iCV_r  — i pointers; on overflow reinterpret the same bits as a
//                 coarse bit vector, one bit per region of r clusters.
//
// A SharerFormat is a flyweight: one instance per directory, operating on
// per-entry SharerRepr state. Formats may *overestimate* the sharer set
// (extraneous invalidations) but must never underestimate it — that is the
// superset-safety invariant the protocol and the tests rely on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/entry_bits.hpp"
#include "common/types.hpp"

namespace dircc {

/// Which of the paper's schemes a directory uses.
enum class SchemeKind {
  kFullBitVector,
  kLimitedBroadcast,
  kLimitedNoBroadcast,
  kSuperset,
  kCoarseVector,
  /// Section 7 extension (after Archibald's suggestion the paper cites):
  /// small per-block entries that overflow into a shared cache of wide
  /// full-bit-vector entries; when that cache in turn overflows, the
  /// displaced block degrades to broadcast.
  kOverflowCache,
};

/// Static configuration of a scheme.
struct SchemeConfig {
  SchemeKind kind = SchemeKind::kFullBitVector;
  int num_nodes = 0;     ///< clusters tracked by the directory
  int num_pointers = 3;  ///< i — pointers per entry (limited schemes)
  int region_size = 2;   ///< r — clusters per coarse-vector bit
  int pool_entries = 256;  ///< wide entries in the overflow cache (Dir_iOV)

  static SchemeConfig full(int nodes) {
    return {SchemeKind::kFullBitVector, nodes, 0, 0};
  }
  static SchemeConfig broadcast(int nodes, int pointers) {
    return {SchemeKind::kLimitedBroadcast, nodes, pointers, 0};
  }
  static SchemeConfig no_broadcast(int nodes, int pointers) {
    return {SchemeKind::kLimitedNoBroadcast, nodes, pointers, 0};
  }
  static SchemeConfig superset(int nodes, int pointers = 2) {
    return {SchemeKind::kSuperset, nodes, pointers, 0};
  }
  static SchemeConfig coarse(int nodes, int pointers, int region) {
    return {SchemeKind::kCoarseVector, nodes, pointers, region};
  }
  static SchemeConfig overflow(int nodes, int pointers, int pool) {
    return {SchemeKind::kOverflowCache, nodes, pointers, 0, pool};
  }
};

/// Per-entry sharer-tracking state. The interpretation of `bits` depends on
/// the format and on `overflowed`.
struct SharerRepr {
  EntryBits bits;
  std::uint8_t ptr_count = 0;  ///< pointers in use (limited schemes)
  std::uint8_t rotor = 0;      ///< Dir_iNB displacement rotor
  bool overflowed = false;     ///< broadcast / composite / coarse mode

  void reset() {
    bits.reset();
    ptr_count = 0;
    rotor = 0;
    overflowed = false;
  }
};

/// Flyweight operations on SharerRepr for one scheme.
class SharerFormat {
 public:
  virtual ~SharerFormat() = default;

  virtual SchemeKind kind() const = 0;

  /// Paper-style name, e.g. "Dir32", "Dir3B", "Dir3CV2".
  virtual std::string name() const = 0;

  /// Clusters this format tracks.
  int num_nodes() const { return num_nodes_; }

  /// Sharer-tracking state bits one entry consumes (excluding the dirty bit
  /// and any sparse-directory tag), as accounted in Sections 3 and 5.
  virtual int state_bits() const = 0;

  /// Records `node` as a sharer. Returns a displaced sharer that the caller
  /// must invalidate (Dir_iNB pointer overflow), or kNoNode.
  virtual NodeId add_sharer(SharerRepr& repr, NodeId node) const = 0;

  /// Best-effort removal of `node` (e.g. after a writeback). Imprecise
  /// representations may be unable to remove and must stay conservative.
  virtual void remove_sharer(SharerRepr& repr, NodeId node) const = 0;

  /// Appends every cluster that may hold a copy, except `exclude`
  /// (pass kNoNode to include all). This is the invalidation-target set.
  virtual void collect_targets(const SharerRepr& repr, NodeId exclude,
                               std::vector<NodeId>& out) const = 0;

  /// True when `node` might hold a copy according to the representation.
  virtual bool maybe_sharer(const SharerRepr& repr, NodeId node) const = 0;

  /// True when the representation provably tracks no sharers.
  virtual bool known_empty(const SharerRepr& repr) const = 0;

  /// True when the representation is exact (no extraneous targets).
  virtual bool precise(const SharerRepr& repr) const = 0;

 protected:
  explicit SharerFormat(int num_nodes);

  int num_nodes_;
};

/// Builds the format object for `config` (validates the configuration).
std::unique_ptr<SharerFormat> make_format(const SchemeConfig& config);

}  // namespace dircc
