// One directory level: a sharer format plus a bank of directory stores.
//
// The flat machine has a single level — one store per home cluster, sharer
// sets over clusters. The two-level hierarchical organization
// (docs/HIERARCHY.md) composes two of these: an inter-chip level at the
// homes whose sharer sets range over *chips*, and an intra-chip level with
// one store per chip whose sharer sets range over that chip's local
// clusters. Schemes, sparse/dense organization and overflow handling are
// the existing src/directory machinery unchanged; a level only bundles the
// format with its stores and owns the per-store seed/index derivation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "directory/format.hpp"
#include "directory/store.hpp"

namespace dircc {

class DirectoryLevel {
 public:
  /// Builds `num_stores` stores from `store`, seeding store i with
  /// `base_seed + golden_ratio * i` (the flat machine's per-home
  /// derivation, kept bit-exact) and indexing sparse sets by
  /// block / `index_divisor`.
  DirectoryLevel(const SchemeConfig& scheme, const StoreConfig& store,
                 int num_stores, std::uint64_t base_seed,
                 std::uint64_t index_divisor);

  const SchemeConfig& scheme() const { return scheme_; }
  SharerFormat& format() { return *format_; }
  const SharerFormat& format() const { return *format_; }

  int num_stores() const { return static_cast<int>(stores_.size()); }
  DirectoryStore& store(int index) { return *stores_[index]; }
  const DirectoryStore& store(int index) const { return *stores_[index]; }

 private:
  SchemeConfig scheme_;
  std::unique_ptr<SharerFormat> format_;
  std::vector<std::unique_ptr<DirectoryStore>> stores_;
};

}  // namespace dircc
