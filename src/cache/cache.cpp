#include "cache/cache.hpp"

#include "common/ensure.hpp"

namespace dircc {

Cache::Cache(std::uint64_t num_lines, int associativity)
    : num_sets_(0), assoc_(associativity) {
  ensure(associativity >= 1, "cache associativity must be >= 1");
  ensure(num_lines >= static_cast<std::uint64_t>(associativity) &&
             num_lines % static_cast<std::uint64_t>(associativity) == 0,
         "cache line count must be a positive multiple of associativity");
  num_sets_ = num_lines / static_cast<std::uint64_t>(associativity);
  pow2_sets_ = (num_sets_ & (num_sets_ - 1)) == 0;
  set_mask_ = pow2_sets_ ? num_sets_ - 1 : 0;
  ways_.resize(num_lines);
}

Cache::Way* Cache::probe_way(BlockAddr block) {
  const std::uint64_t base = set_of(block) * static_cast<std::uint64_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::uint64_t>(w)];
    if (way.valid && way.block == block) {
      return &way;
    }
  }
  return nullptr;
}

const Cache::Way* Cache::probe_way(BlockAddr block) const {
  return const_cast<Cache*>(this)->probe_way(block);
}

LineState Cache::probe(BlockAddr block) const {
  const Way* way = probe_way(block);
  return way == nullptr ? LineState::kInvalid : way->state;
}

bool Cache::read_lookup(BlockAddr block) {
  Way* way = probe_way(block);
  if (way == nullptr) {
    ++stats_.read_misses;
    return false;
  }
  way->last_use = ++stamp_;
  ++stats_.read_hits;
  return true;
}

Cache::WriteLookup Cache::write_lookup(BlockAddr block) {
  Way* way = probe_way(block);
  if (way == nullptr) {
    ++stats_.write_misses;
    return WriteLookup::kMiss;
  }
  way->last_use = ++stamp_;
  if (way->state == LineState::kModified) {
    ++stats_.write_hits;
    return WriteLookup::kHitModified;
  }
  ++stats_.write_upgrades;
  return WriteLookup::kHitShared;
}

void Cache::fill(BlockAddr block, LineState state, std::uint32_t version,
                 std::optional<EvictedLine>& evicted) {
  evicted.reset();
  ensure(state != LineState::kInvalid, "cannot fill an Invalid line");
  ensure(probe_way(block) == nullptr, "fill of a block already present");
  const std::uint64_t base = set_of(block) * static_cast<std::uint64_t>(assoc_);
  // Prefer a free way; otherwise displace the LRU way.
  Way* target = nullptr;
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::uint64_t>(w)];
    if (!way.valid) {
      target = &way;
      break;
    }
    if (target == nullptr || way.last_use < target->last_use) {
      target = &way;
    }
  }
  if (target->valid) {
    const bool dirty = target->state == LineState::kModified;
    evicted = EvictedLine{target->block, target->version, dirty};
    if (dirty) {
      ++stats_.evictions_dirty;
    } else {
      ++stats_.evictions_clean;
    }
  } else {
    ++valid_;
  }
  target->valid = true;
  target->block = block;
  target->state = state;
  target->version = version;
  target->last_use = ++stamp_;
}

void Cache::upgrade(BlockAddr block, std::uint32_t version) {
  Way* way = probe_way(block);
  ensure(way != nullptr && way->state == LineState::kShared,
         "upgrade requires a Shared line");
  way->state = LineState::kModified;
  way->version = version;
  way->last_use = ++stamp_;
}

void Cache::write_touch(BlockAddr block, std::uint32_t version) {
  Way* way = probe_way(block);
  ensure(way != nullptr && way->state == LineState::kModified,
         "write_touch requires a Modified line");
  way->version = version;
  way->last_use = ++stamp_;
}

bool Cache::refresh(BlockAddr block, std::uint32_t version) {
  Way* way = probe_way(block);
  if (way == nullptr) {
    return false;
  }
  way->version = version;
  way->last_use = ++stamp_;
  return true;
}

Cache::InvalidateResult Cache::invalidate(BlockAddr block) {
  Way* way = probe_way(block);
  if (way == nullptr) {
    ++stats_.invalidations_empty;
    return {};
  }
  ++stats_.invalidations_received;
  InvalidateResult result{true, way->state == LineState::kModified,
                          way->version};
  way->valid = false;
  way->state = LineState::kInvalid;
  ensure(valid_ > 0, "cache valid-line underflow");
  --valid_;
  return result;
}

std::uint32_t Cache::downgrade(BlockAddr block) {
  Way* way = probe_way(block);
  ensure(way != nullptr && way->state == LineState::kModified,
         "downgrade requires a Modified line");
  way->state = LineState::kShared;
  return way->version;
}

std::uint32_t Cache::version_of(BlockAddr block) const {
  const Way* way = probe_way(block);
  ensure(way != nullptr, "version_of on an absent block");
  return way->version;
}

}  // namespace dircc
