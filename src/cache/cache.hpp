// Private processor cache model.
//
// Each simulated processor has one set-associative write-back cache (it
// stands for the DASH secondary cache, which is the coherence point). Lines
// carry MSI-style states plus a version number used by the value-coherence
// property checks: every committed write increments the block's global
// version, and a correct protocol must only ever let a read observe the
// latest version.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace dircc {

/// Cache line states (MSI; Exclusive-clean is folded into Modified the way
/// the DASH directory treats "dirty": the owner may write without a further
/// directory transaction).
enum class LineState : std::uint8_t { kInvalid, kShared, kModified };

/// A dirty line displaced by a fill; the protocol turns it into a writeback.
struct EvictedLine {
  BlockAddr block = 0;
  std::uint32_t version = 0;
  bool dirty = false;
};

/// Per-cache event counters.
struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;        ///< hits on a Modified line
  std::uint64_t write_upgrades = 0;    ///< hits on a Shared line
  std::uint64_t write_misses = 0;
  std::uint64_t evictions_clean = 0;
  std::uint64_t evictions_dirty = 0;
  std::uint64_t invalidations_received = 0;  ///< line present and killed
  std::uint64_t invalidations_empty = 0;     ///< extraneous (no copy held)
};

/// Set-associative LRU cache over block addresses.
class Cache {
 public:
  /// `num_lines` total lines across `associativity`-way sets; `num_lines`
  /// must be a positive multiple of `associativity`.
  Cache(std::uint64_t num_lines, int associativity);

  /// State of `block` in this cache (kInvalid when absent). No LRU update.
  LineState probe(BlockAddr block) const;

  /// Looks up `block` for a read; returns true and refreshes LRU on a hit.
  bool read_lookup(BlockAddr block);

  /// Looks up `block` for a write. Distinguishes the three outcomes the
  /// protocol cares about.
  enum class WriteLookup { kMiss, kHitShared, kHitModified };
  WriteLookup write_lookup(BlockAddr block);

  /// Installs `block` in `state` with `version`, possibly displacing a
  /// dirty line (returned via `evicted`). The block must not be present.
  void fill(BlockAddr block, LineState state, std::uint32_t version,
            std::optional<EvictedLine>& evicted);

  /// Promotes a Shared line to Modified and bumps its version.
  void upgrade(BlockAddr block, std::uint32_t version);

  /// Records a new version on an already-Modified line (a write hit).
  void write_touch(BlockAddr block, std::uint32_t version);

  /// Updates the version of a line if present, any state (used by
  /// write-through first-level caches). Returns whether the line was there.
  bool refresh(BlockAddr block, std::uint32_t version);

  /// Removes `block` if present. Returns what was there (for dirty flushes
  /// and for counting extraneous invalidations).
  struct InvalidateResult {
    bool had_copy = false;
    bool was_dirty = false;
    std::uint32_t version = 0;
  };
  InvalidateResult invalidate(BlockAddr block);

  /// Demotes a Modified line to Shared (sharing writeback). Returns the
  /// version being written back. The line must be present and Modified.
  std::uint32_t downgrade(BlockAddr block);

  /// Version held for `block`; the block must be present.
  std::uint32_t version_of(BlockAddr block) const;

  std::uint64_t num_lines() const { return ways_.size(); }
  int associativity() const { return assoc_; }
  std::uint64_t lines_valid() const { return valid_; }
  const CacheStats& stats() const { return stats_; }

  /// Read-only view of one valid line, for external auditors (src/check).
  struct LineView {
    BlockAddr block = 0;
    LineState state = LineState::kInvalid;
    std::uint32_t version = 0;
  };

  /// Calls `fn(LineView)` for every valid line. No LRU update.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const Way& way : ways_) {
      if (way.valid) fn(LineView{way.block, way.state, way.version});
    }
  }

 private:
  struct Way {
    bool valid = false;
    BlockAddr block = 0;
    LineState state = LineState::kInvalid;
    std::uint32_t version = 0;
    std::uint64_t last_use = 0;
  };

  /// Set index. Every configuration we model has a power-of-two set count,
  /// so the modulo on the per-access path reduces to a mask.
  std::uint64_t set_of(BlockAddr block) const {
    return pow2_sets_ ? (block & set_mask_) : (block % num_sets_);
  }
  Way* probe_way(BlockAddr block);
  const Way* probe_way(BlockAddr block) const;

  std::uint64_t num_sets_;
  std::uint64_t set_mask_ = 0;
  bool pow2_sets_ = false;
  int assoc_;
  std::uint64_t stamp_ = 0;
  std::uint64_t valid_ = 0;
  CacheStats stats_;
  std::vector<Way> ways_;
};

}  // namespace dircc
