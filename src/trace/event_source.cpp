#include "trace/event_source.hpp"

namespace dircc {

ProgramTrace materialize(EventSource& source) {
  ProgramTrace trace;
  trace.app_name = source.app_name();
  trace.block_size = source.block_size();
  const int procs = source.num_procs();
  trace.per_proc.assign(static_cast<std::size_t>(procs), {});
  for (int p = 0; p < procs; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    TraceEvent ev;
    while (source.next(static_cast<ProcId>(p), ev)) {
      stream.push_back(ev);
    }
  }
  return trace;
}

}  // namespace dircc
