#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/layout.hpp"

namespace dircc {
namespace {

/// Fixed-point particle kinematics: positions and velocities are tracked in
/// 1/1024ths of a cell so the generator is exactly deterministic.
struct Particle {
  std::int64_t pos[3];
  std::int64_t vel[3];
};

}  // namespace

ProgramTrace generate_mp3d(const Mp3dConfig& config) {
  ensure(config.procs >= 1, "MP3D needs at least one processor");
  ensure(config.particles >= config.procs, "MP3D needs particles to move");
  ensure(config.cells_per_axis >= 2, "MP3D space grid too small");

  ProgramTrace trace;
  trace.app_name = "MP3D";
  trace.block_size = config.block_size;
  trace.per_proc.assign(static_cast<std::size_t>(config.procs), {});

  const int axis = config.cells_per_axis;
  const std::int64_t scale = 1024;
  const std::int64_t span = static_cast<std::int64_t>(axis) * scale;

  AddressLayout layout(config.block_size);
  // Each particle record is two blocks (position/velocity + bookkeeping).
  const Region particles = layout.alloc(
      "particles", static_cast<Addr>(config.particles) * 2 *
                       static_cast<Addr>(config.block_size));
  // One block per space cell.
  const Region cells = layout.alloc(
      "cells", static_cast<Addr>(axis) * static_cast<Addr>(axis) *
                   static_cast<Addr>(axis) *
                   static_cast<Addr>(config.block_size));
  // Global reservoir counters, lock-protected.
  const Region reservoir =
      layout.alloc("reservoir", static_cast<Addr>(config.block_size));
  constexpr Addr kReservoirLock = 0;

  auto particle_block = [&](int id, int half) {
    return particles.at(static_cast<Addr>(id) * 2 *
                            static_cast<Addr>(config.block_size) +
                        static_cast<Addr>(half) *
                            static_cast<Addr>(config.block_size));
  };
  auto cell_block = [&](const Particle& particle) {
    const auto cx = static_cast<Addr>(particle.pos[0] / scale);
    const auto cy = static_cast<Addr>(particle.pos[1] / scale);
    const auto cz = static_cast<Addr>(particle.pos[2] / scale);
    const Addr index =
        (cz * static_cast<Addr>(axis) + cy) * static_cast<Addr>(axis) + cx;
    return cells.at(index * static_cast<Addr>(config.block_size));
  };

  // Deterministic initial state: positions uniform, velocities a slow
  // drift (a particle crosses a cell in ~6 steps, so cell residency — and
  // with it the 1-2-processor migratory sharing — persists across steps).
  Rng init_rng(config.seed);
  std::vector<Particle> swarm(static_cast<std::size_t>(config.particles));
  for (Particle& particle : swarm) {
    for (int d = 0; d < 3; ++d) {
      particle.pos[d] =
          static_cast<std::int64_t>(init_rng.below(static_cast<std::uint64_t>(span)));
      particle.vel[d] =
          static_cast<std::int64_t>(init_rng.between(0, 340)) - 170;
    }
  }

  Rng rng(config.seed ^ 0xabcdef12345ULL);
  Addr barrier_id = 0;
  for (int step = 0; step < config.steps; ++step) {
    for (auto& stream : trace.per_proc) {
      stream.push_back(TraceEvent::barrier(barrier_id));
    }
    ++barrier_id;
    for (int id = 0; id < config.particles; ++id) {
      const int p = id % config.procs;
      auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
      Particle& particle = swarm[static_cast<std::size_t>(id)];
      // Move: read the record, advance, write it back.
      stream.push_back(TraceEvent::read(particle_block(id, 0)));
      stream.push_back(TraceEvent::read(particle_block(id, 1)));
      for (int d = 0; d < 3; ++d) {
        particle.pos[d] = (particle.pos[d] + particle.vel[d] + span) % span;
      }
      stream.push_back(TraceEvent::write(particle_block(id, 0)));
      // Update the occupancy/collision state of the current space cell —
      // this is the migratory data of Section 6.2.
      const Addr cell = cell_block(particle);
      stream.push_back(TraceEvent::read(cell));
      stream.push_back(TraceEvent::write(cell));
      // Collisions pair the particle with another one in the same cell;
      // the partner's record is touched too, which briefly shares a
      // "private" particle block between two processors.
      if (rng.chance(config.collision_prob)) {
        const int partner = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(config.particles)));
        stream.push_back(TraceEvent::read(particle_block(partner, 0)));
        stream.push_back(TraceEvent::write(particle_block(partner, 0)));
      }
      if (rng.chance(0.05)) {
        stream.push_back(TraceEvent::think(
            static_cast<std::uint32_t>(rng.between(1, 3))));
      }
    }
    // Each processor folds its local tallies into the global reservoir.
    for (auto& stream : trace.per_proc) {
      stream.push_back(TraceEvent::lock(kReservoirLock));
      stream.push_back(TraceEvent::read(reservoir.at(0)));
      stream.push_back(TraceEvent::write(reservoir.at(0)));
      stream.push_back(TraceEvent::unlock(kReservoirLock));
    }
  }
  return trace;
}

}  // namespace dircc
