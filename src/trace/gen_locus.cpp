#include <algorithm>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/layout.hpp"

namespace dircc {
namespace {

/// Grid geometry: 2-byte cost cells, row-major, so one 16-byte block covers
/// 8 horizontally adjacent cells.
struct Grid {
  const Region& region;
  int width;
  int block_size;

  Addr block_at(int x, int y) const {
    const Addr byte =
        (static_cast<Addr>(y) * static_cast<Addr>(width) +
         static_cast<Addr>(x)) *
        2;
    return region.at(byte - byte % static_cast<Addr>(block_size));
  }
};

/// Emits reads (and optionally read-modify-writes) along an L-shaped route
/// from (x1,y1) to (x2,y2) with the bend at (x2,y1) or (x1,y2).
void walk_route(std::vector<TraceEvent>& stream, const Grid& grid, int x1,
                int y1, int x2, int y2, bool bend_at_x2_first, bool write,
                int cells_per_block) {
  const int bend_x = bend_at_x2_first ? x2 : x1;
  const int bend_y = bend_at_x2_first ? y1 : y2;
  // Horizontal leg (at y = bend_y's row for the leg that moves in x).
  const int hx_lo = std::min(x1, x2);
  const int hx_hi = std::max(x1, x2);
  const int hy = bend_at_x2_first ? y1 : y2;
  for (int x = hx_lo; x <= hx_hi; x += cells_per_block) {
    stream.push_back(TraceEvent::read(grid.block_at(x, hy)));
    if (write) {
      stream.push_back(TraceEvent::write(grid.block_at(x, hy)));
    }
  }
  // Vertical leg.
  const int vy_lo = std::min(y1, y2);
  const int vy_hi = std::max(y1, y2);
  for (int y = vy_lo; y <= vy_hi; ++y) {
    stream.push_back(TraceEvent::read(grid.block_at(bend_x, y)));
    if (write) {
      stream.push_back(TraceEvent::write(grid.block_at(bend_x, y)));
    }
  }
  (void)bend_y;
}

}  // namespace

ProgramTrace generate_locusroute(const LocusConfig& config) {
  ensure(config.procs >= 1, "LocusRoute needs at least one processor");
  ensure(config.regions >= 1 && config.grid_w % config.regions == 0,
         "grid width must divide evenly into regions");
  ensure(config.block_size % 2 == 0, "cost cells are 2 bytes");

  ProgramTrace trace;
  trace.app_name = "LocusRoute";
  trace.block_size = config.block_size;
  trace.per_proc.assign(static_cast<std::size_t>(config.procs), {});

  AddressLayout layout(config.block_size);
  const Region grid_region = layout.alloc(
      "cost_grid", static_cast<Addr>(config.grid_w) *
                       static_cast<Addr>(config.grid_h) * 2);
  // Global routing parameters: a handful of blocks read by every processor
  // for every wire and occasionally rewritten — the source of the rare
  // very-wide invalidations in the Figure 3 distribution tail.
  const Region global_table = layout.alloc(
      "global_table", 8 * static_cast<Addr>(config.block_size));
  // One density counter block per region, lock-protected.
  const Region density = layout.alloc(
      "density", static_cast<Addr>(config.regions) *
                     static_cast<Addr>(config.block_size));

  const Grid grid{grid_region, config.grid_w, config.block_size};
  const int cells_per_block = config.block_size / 2;
  const int strip_w = config.grid_w / config.regions;
  const int procs_per_region =
      std::max(1, config.procs / config.regions);

  Rng rng(config.seed);
  for (int w = 0; w < config.wires; ++w) {
    // Wires are placed in a geographic region; the processors assigned to
    // that region take them round-robin (static schedule standing in for
    // the original's work queue).
    const int region = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(config.regions)));
    const int lane = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(procs_per_region)));
    const int p = (region * procs_per_region + lane) % config.procs;
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];

    const bool crosses = rng.chance(config.cross_region_prob) &&
                         region + 1 < config.regions;
    const int x_lo = region * strip_w;
    const int x_hi = (crosses ? region + 2 : region + 1) * strip_w - 1;
    auto rand_x = [&] {
      return x_lo + static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(x_hi - x_lo + 1)));
    };
    auto rand_y = [&] {
      return static_cast<int>(
          rng.below(static_cast<std::uint64_t>(config.grid_h)));
    };
    const int x1 = rand_x();
    const int y1 = rand_y();
    const int x2 = rand_x();
    const int y2 = rand_y();

    // Consult the global routing parameters.
    stream.push_back(TraceEvent::read(global_table.at(
        rng.below(8) * static_cast<std::uint64_t>(config.block_size))));

    // Evaluate both L-shaped candidates (cost reads only)...
    walk_route(stream, grid, x1, y1, x2, y2, true, false, cells_per_block);
    walk_route(stream, grid, x1, y1, x2, y2, false, false, cells_per_block);
    // ...then commit the cheaper-looking one with read-modify-writes of the
    // occupancy counters along it.
    const bool choose_first = rng.chance(0.5);
    walk_route(stream, grid, x1, y1, x2, y2, choose_first, true,
               cells_per_block);

    // Update the region's density tally under its lock.
    stream.push_back(TraceEvent::lock(static_cast<Addr>(region)));
    stream.push_back(TraceEvent::read(
        density.at(static_cast<Addr>(region) *
                   static_cast<Addr>(config.block_size))));
    stream.push_back(TraceEvent::write(
        density.at(static_cast<Addr>(region) *
                   static_cast<Addr>(config.block_size))));
    stream.push_back(TraceEvent::unlock(static_cast<Addr>(region)));

    // Rarely, a wire forces a global parameter update (e.g. a new maximum
    // congestion estimate) — a write to a block read by all processors.
    if (rng.chance(config.global_update_prob)) {
      stream.push_back(TraceEvent::write(global_table.at(
          rng.below(8) * static_cast<std::uint64_t>(config.block_size))));
    }
    if (rng.chance(0.3)) {
      stream.push_back(
          TraceEvent::think(static_cast<std::uint32_t>(rng.between(2, 8))));
    }
  }
  return trace;
}

}  // namespace dircc
