#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/layout.hpp"

namespace dircc {

ProgramTrace generate_dwf(const DwfConfig& config) {
  ensure(config.procs >= 1, "DWF needs at least one processor");
  ensure(config.seq_length % config.block_size == 0,
         "DWF sequence length must be a whole number of blocks");
  ensure(config.pattern_rows >= 1 && config.num_sequences >= 1,
         "DWF needs a pattern and a library");

  ProgramTrace trace;
  trace.app_name = "DWF";
  trace.block_size = config.block_size;
  trace.per_proc.assign(static_cast<std::size_t>(config.procs), {});

  AddressLayout layout(config.block_size);
  // One block per pattern row: the pattern and its score column are tiny,
  // read-only and consulted by every process for every DP row — the
  // "constantly read by all" arrays of Section 6.2.
  const Region pattern = layout.alloc(
      "pattern", static_cast<Addr>(config.pattern_rows) *
                     static_cast<Addr>(config.block_size));
  const Region library = layout.alloc(
      "library", static_cast<Addr>(config.num_sequences) *
                     static_cast<Addr>(config.seq_length));
  // Per-process private DP rows (current + previous), reused per sequence.
  const Region dp = layout.alloc(
      "dp_rows", static_cast<Addr>(config.procs) * 2 *
                     static_cast<Addr>(config.seq_length) * 2);
  // One global best-score record, lock-protected.
  const Region best = layout.alloc("best_score",
                                   static_cast<Addr>(config.block_size));
  constexpr Addr kBestLock = 0;

  const int lib_blocks = config.seq_length / config.block_size;
  const Addr dp_row_bytes = static_cast<Addr>(config.seq_length) * 2;

  Rng rng(config.seed);
  for (int s = 0; s < config.num_sequences; ++s) {
    const int p = s % config.procs;
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    const Addr seq_base = static_cast<Addr>(s) *
                          static_cast<Addr>(config.seq_length);
    const Addr dp_base = static_cast<Addr>(p) * 2 * dp_row_bytes;
    for (int r = 0; r < config.pattern_rows; ++r) {
      const Addr pattern_row = static_cast<Addr>(r) *
                               static_cast<Addr>(config.block_size);
      const Addr prev_row = dp_base + static_cast<Addr>(r % 2) * dp_row_bytes;
      const Addr cur_row =
          dp_base + static_cast<Addr>((r + 1) % 2) * dp_row_bytes;
      for (int lb = 0; lb < lib_blocks; ++lb) {
        const Addr off = static_cast<Addr>(lb) *
                         static_cast<Addr>(config.block_size);
        // Consult the pattern row for every DP cell batch (read-only,
        // shared by every process — the Section 6.2 arrays that make
        // Dir_iNB shuttle copies around).
        stream.push_back(TraceEvent::read(pattern.at(pattern_row)));
        stream.push_back(TraceEvent::read(library.at(seq_base + off)));
        // Wavefront dependency: previous row in, current row out. The DP
        // cells are 2 bytes each, so a sequence block's worth of cells
        // spans two DP blocks; touching the first is representative.
        stream.push_back(TraceEvent::read(dp.at(prev_row + off * 2)));
        stream.push_back(TraceEvent::write(dp.at(cur_row + off * 2)));
      }
      if (rng.chance(0.25)) {
        stream.push_back(TraceEvent::think(
            static_cast<std::uint32_t>(rng.between(1, 4))));
      }
    }
    // Publish the sequence score under the global lock.
    stream.push_back(TraceEvent::lock(kBestLock));
    stream.push_back(TraceEvent::read(best.at(0)));
    stream.push_back(TraceEvent::write(best.at(0)));
    stream.push_back(TraceEvent::unlock(kBestLock));
  }
  return trace;
}

}  // namespace dircc
