// Structural validation of a ProgramTrace.
//
// The engine deadlocks (by design, with a diagnostic) on malformed
// synchronization; this validator catches the same problems up front, which
// matters for traces loaded from files rather than generated in-process.
#pragma once

#include <string>

#include "trace/event.hpp"

namespace dircc {

/// Checks that
///  * every Lock is eventually Unlocked by the same processor, with no
///    nested re-acquisition of a lock a processor already holds,
///  * every Unlock matches a held lock,
///  * all processors observe the same sequence of barrier ids (global
///    barriers), and
///  * read/write addresses stay within the 2^48 address range the
///    simulator's home interleaving assumes.
/// Returns true when the trace is well formed; otherwise fills `error`.
bool validate_trace(const ProgramTrace& trace, std::string* error = nullptr);

}  // namespace dircc
