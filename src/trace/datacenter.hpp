// Datacenter workload generators (streaming-first).
//
// The paper's four SPLASH-era applications reproduce 1990 scientific
// sharing patterns; the workloads a modern serving stack puts on a shared
// memory system look different — and stress the directory *harder* in
// exactly the dimension the paper studies. Three generators, each
// parameterized by a simulated client count so sweeps can push toward
// millions of users:
//
//  * KV     — Zipf-skewed key-value GET/SET store (think memcached/memec).
//             A handful of hot keys are read by every front-end processor
//             and written often enough that every SET invalidates a nearly
//             full sharer set: the pointer-overflow stress case for
//             Dir_i B / Dir_i CV_r, far beyond what LU's pivot column does.
//  * QUEUE  — producer→consumer RPC queues. Payload slots are written by a
//             producer and read by the consumer that owns the queue:
//             pairwise/migratory sharing plus lock-protected queue indices.
//  * OLTP   — lock-heavy transactional row store. Each transaction locks a
//             Zipf-chosen row, reads it, updates it, releases: migratory
//             data + heavy lock traffic (MP3D's pattern, scaled up and
//             contended).
//
// Every generator exists in two forms built from one per-processor stream
// definition, so they agree event for event:
//  * a streaming EventSource (make_*_source) with O(procs x chunk) memory —
//    the form billion-access runs use; and
//  * a materialized ProgramTrace (generate_*) produced by draining the
//    streaming source — the form sweep grids and the TraceCache consume.
//
// Per-processor independence: a processor's stream depends only on the
// config and its own processor id (clients are dealt round-robin onto
// processors; all cross-processor contention is resolved by the engine at
// simulation time, not by the generators). That is what makes bounded-
// lookahead streaming — and thread-count-invariant results — possible.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/event.hpp"
#include "trace/event_source.hpp"

namespace dircc {

/// Zipf-skewed key-value GET/SET serving workload.
struct KvConfig {
  int procs = 32;
  int block_size = 16;
  std::uint64_t clients = 256;       ///< simulated front-end clients
  std::uint64_t ops_per_client = 64; ///< GET/SET operations per client
  std::uint64_t keys = 4096;         ///< distinct keys in the store
  int value_blocks = 4;              ///< cache blocks per value
  int index_blocks = 8;              ///< widely-read routing/index table
  double zipf_theta = 0.99;          ///< key skew (0 = uniform; YCSB-like)
  double get_fraction = 0.9;         ///< remainder are SETs
  std::uint32_t think_cycles = 4;    ///< client-side work between ops
  std::uint64_t seed = 11;
};

/// Producer→consumer RPC queue workload.
struct QueueConfig {
  int procs = 32;
  int block_size = 16;
  std::uint64_t clients = 256;        ///< RPC client sessions
  std::uint64_t rpcs_per_client = 32; ///< requests per session
  int queues = 32;                    ///< queue q is consumed by proc q%procs
  int slots_per_queue = 16;           ///< payload ring size
  int payload_blocks = 4;             ///< blocks per message payload
  std::uint32_t service_cycles = 8;   ///< consumer-side work per message
  std::uint64_t seed = 12;
};

/// Lock-heavy migratory OLTP row-store workload.
struct OltpConfig {
  int procs = 32;
  int block_size = 16;
  std::uint64_t clients = 256;       ///< database connections
  std::uint64_t txns_per_client = 16;
  std::uint64_t rows = 1024;         ///< lockable rows
  int rows_per_txn = 4;              ///< rows touched per transaction
  int row_blocks = 2;                ///< blocks per row
  double zipf_theta = 0.8;           ///< row-selection skew
  double write_fraction = 0.5;       ///< row touches that update the row
  std::uint32_t think_cycles = 6;    ///< work while holding the row lock
  std::uint64_t seed = 13;
};

/// Streaming sources: bounded per-processor lookahead, no O(events) memory.
std::unique_ptr<EventSource> make_kv_source(const KvConfig& config);
std::unique_ptr<EventSource> make_queue_source(const QueueConfig& config);
std::unique_ptr<EventSource> make_oltp_source(const OltpConfig& config);

/// Materialized forms (drain the streaming source): identical streams, for
/// sweep grids, the TraceCache and the trace-file tools.
ProgramTrace generate_kv(const KvConfig& config);
ProgramTrace generate_queue(const QueueConfig& config);
ProgramTrace generate_oltp(const OltpConfig& config);

/// The three datacenter workloads, for registry-style sweeps.
enum class DatacenterKind { kKv, kQueue, kOltp };

const char* datacenter_name(DatacenterKind kind);

/// Default-parameter configs for `kind` with the given machine shape and
/// client count; `scale` multiplies the per-client operation count (the
/// event-count axis), leaving the data-set shape fixed.
KvConfig kv_defaults(int procs, int block_size, std::uint64_t clients,
                     std::uint64_t seed, double scale = 1.0);
QueueConfig queue_defaults(int procs, int block_size, std::uint64_t clients,
                           std::uint64_t seed, double scale = 1.0);
OltpConfig oltp_defaults(int procs, int block_size, std::uint64_t clients,
                         std::uint64_t seed, double scale = 1.0);

/// Streaming source for `kind` with defaults as above.
std::unique_ptr<EventSource> make_datacenter_source(DatacenterKind kind,
                                                    int procs, int block_size,
                                                    std::uint64_t clients,
                                                    std::uint64_t seed,
                                                    double scale = 1.0);

/// Materialized form of make_datacenter_source (identical streams).
ProgramTrace generate_datacenter(DatacenterKind kind, int procs,
                                 int block_size, std::uint64_t clients,
                                 std::uint64_t seed, double scale = 1.0);

}  // namespace dircc
