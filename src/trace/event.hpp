// Memory-reference trace model.
//
// The paper drives its DASH simulator with Tango-generated global event
// streams: shared reads, shared writes and synchronization operations
// (Section 5). We reproduce the same abstraction: a ProgramTrace holds one
// event stream per processor; the event-driven engine (src/sim) interleaves
// them by simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dircc {

/// One global event in a processor's reference stream.
///
/// Field order packs the record into 16 bytes (addr, arg, kind) instead of
/// the 24 a leading one-byte kind forces; the engine streams hundreds of
/// millions of these, so the layout is memory-bandwidth-relevant.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kRead,     ///< shared-data read of `addr`
    kWrite,    ///< shared-data write of `addr`
    kLock,     ///< acquire lock `addr` (lock id, not a memory address)
    kUnlock,   ///< release lock `addr`
    kBarrier,  ///< global barrier `addr` (barrier id)
    kThink,    ///< local computation for `arg` cycles
  };

  Addr addr = 0;
  std::uint32_t arg = 0;
  Kind kind = Kind::kRead;

  static TraceEvent read(Addr a) { return {a, 0, Kind::kRead}; }
  static TraceEvent write(Addr a) { return {a, 0, Kind::kWrite}; }
  static TraceEvent lock(Addr id) { return {id, 0, Kind::kLock}; }
  static TraceEvent unlock(Addr id) { return {id, 0, Kind::kUnlock}; }
  static TraceEvent barrier(Addr id) { return {id, 0, Kind::kBarrier}; }
  static TraceEvent think(std::uint32_t cycles) {
    return {0, cycles, Kind::kThink};
  }

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

static_assert(sizeof(TraceEvent) == 16, "TraceEvent must stay a packed 16B");

/// A complete multiprocessor reference trace.
struct ProgramTrace {
  std::string app_name;
  int block_size = 16;
  std::vector<std::vector<TraceEvent>> per_proc;

  int num_procs() const { return static_cast<int>(per_proc.size()); }
  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& stream : per_proc) {
      n += stream.size();
    }
    return n;
  }
};

/// Aggregate characteristics in the shape of the paper's Table 2.
struct TraceCharacteristics {
  std::uint64_t shared_refs = 0;   ///< reads + writes
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t sync_ops = 0;      ///< lock + unlock + barrier events
  std::uint64_t distinct_blocks = 0;
  double shared_mbytes = 0.0;      ///< distinct blocks x block size
};

TraceCharacteristics characterize(const ProgramTrace& trace);

}  // namespace dircc
