#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

int scaled(int value, double scale, int minimum) {
  const int s = static_cast<int>(std::lround(value * scale));
  return std::max(minimum, s);
}

}  // namespace

const char* app_name(AppKind app) {
  switch (app) {
    case AppKind::kLu:
      return "LU";
    case AppKind::kDwf:
      return "DWF";
    case AppKind::kMp3d:
      return "MP3D";
    case AppKind::kLocusRoute:
      return "LocusRoute";
  }
  return "?";
}

ProgramTrace generate_app(AppKind app, int procs, int block_size,
                          std::uint64_t seed, double scale) {
  ensure(scale > 0.0 && scale <= 4.0, "trace scale out of range");
  switch (app) {
    case AppKind::kLu: {
      LuConfig config;
      config.procs = procs;
      config.block_size = block_size;
      // n scales with cube-root of the reference-count scale; keep it even
      // so columns stay block aligned.
      config.n = scaled(config.n, std::cbrt(scale), 16) & ~1;
      config.seed = seed;
      return generate_lu(config);
    }
    case AppKind::kDwf: {
      DwfConfig config;
      config.procs = procs;
      config.block_size = block_size;
      config.num_sequences = scaled(config.num_sequences, scale, procs);
      config.seed = seed;
      return generate_dwf(config);
    }
    case AppKind::kMp3d: {
      Mp3dConfig config;
      config.procs = procs;
      config.block_size = block_size;
      config.steps = scaled(config.steps, scale, 2);
      config.seed = seed;
      return generate_mp3d(config);
    }
    case AppKind::kLocusRoute: {
      LocusConfig config;
      config.procs = procs;
      config.block_size = block_size;
      config.wires = scaled(config.wires, scale, procs);
      config.seed = seed;
      return generate_locusroute(config);
    }
  }
  ensure(false, "unknown application kind");
  return {};
}

}  // namespace dircc
