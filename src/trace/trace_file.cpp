#include "trace/trace_file.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace dircc {
namespace {

constexpr char kMagic[4] = {'D', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxReasonableEvents = 1ULL << 36;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  return static_cast<bool>(in);
}

struct PackedEvent {
  std::uint8_t kind;
  std::uint8_t pad[3];
  std::uint32_t arg;
  std::uint64_t addr;
};
static_assert(sizeof(PackedEvent) == 16);

constexpr std::uint64_t kUnknownSize = ~std::uint64_t{0};

/// Bytes left between the current read position and end-of-stream, or
/// kUnknownSize when the stream is not seekable (e.g. a pipe). Restores the
/// read position and stream state.
std::uint64_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) {
    in.clear();
    return kUnknownSize;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.clear();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos || !in) {
    in.clear();
    in.seekg(pos);
    return kUnknownSize;
  }
  return static_cast<std::uint64_t>(end - pos);
}

}  // namespace

bool write_trace(std::ostream& out, const ProgramTrace& trace) {
  out.write(kMagic, sizeof kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(trace.per_proc.size()));
  put(out, static_cast<std::uint32_t>(trace.block_size));
  put(out, static_cast<std::uint32_t>(trace.app_name.size()));
  out.write(trace.app_name.data(),
            static_cast<std::streamsize>(trace.app_name.size()));
  for (const auto& stream : trace.per_proc) {
    put(out, static_cast<std::uint64_t>(stream.size()));
    for (const TraceEvent& ev : stream) {
      PackedEvent packed{static_cast<std::uint8_t>(ev.kind),
                         {0, 0, 0},
                         ev.arg,
                         ev.addr};
      out.write(reinterpret_cast<const char*>(&packed), sizeof packed);
    }
  }
  return static_cast<bool>(out);
}

bool read_trace(std::istream& in, ProgramTrace& trace) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return false;
  }
  std::uint32_t version = 0;
  std::uint32_t procs = 0;
  std::uint32_t block_size = 0;
  std::uint32_t name_len = 0;
  if (!get(in, version) || version != kVersion || !get(in, procs) ||
      !get(in, block_size) || !get(in, name_len)) {
    return false;
  }
  if (block_size == 0 || procs == 0 || procs > 65536 || name_len > 4096) {
    return false;
  }
  trace.app_name.resize(name_len);
  in.read(trace.app_name.data(), name_len);
  if (!in) {
    return false;
  }
  trace.block_size = static_cast<int>(block_size);
  trace.per_proc.assign(procs, {});
  for (auto& stream : trace.per_proc) {
    std::uint64_t count = 0;
    if (!get(in, count) || count > kMaxReasonableEvents) {
      return false;
    }
    // A lying per-stream count must never become an up-front O(count)
    // allocation: a crafted header claiming 2^36 events used to drive a
    // ~1 TiB resize before EOF was noticed. When the stream is seekable
    // the count is checked against the bytes actually remaining (and the
    // allocation sized once, exactly); on a non-seekable stream the vector
    // grows geometrically as events arrive, so a short stream fails at the
    // first missing event with only real data resident.
    const std::uint64_t remaining = remaining_bytes(in);
    if (remaining != kUnknownSize) {
      if (count > remaining / sizeof(PackedEvent)) {
        return false;
      }
      stream.reserve(count);
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      PackedEvent packed;
      in.read(reinterpret_cast<char*>(&packed), sizeof packed);
      if (!in || packed.kind > static_cast<std::uint8_t>(
                                   TraceEvent::Kind::kThink)) {
        return false;
      }
      stream.push_back({packed.addr, packed.arg,
                        static_cast<TraceEvent::Kind>(packed.kind)});
    }
  }
  return true;
}

bool save_trace(const std::string& path, const ProgramTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  return out && write_trace(out, trace);
}

bool load_trace(const std::string& path, ProgramTrace& trace) {
  std::ifstream in(path, std::ios::binary);
  return in && read_trace(in, trace);
}

}  // namespace dircc
