// Binary trace file format.
//
// Lets users capture generator output (or supply their own traces, e.g.
// converted from real Tango/SPLASH runs) and replay them through the
// simulator. Layout, little-endian:
//
//   magic   "DTRC"            4 bytes
//   version u32               (currently 1)
//   procs   u32
//   block   u32               block size in bytes
//   name    u32 length + bytes
//   per processor: u64 event count, then packed events
//     {u8 kind, u8 pad[3], u32 arg, u64 addr}
#pragma once

#include <iosfwd>
#include <string>

#include "trace/event.hpp"

namespace dircc {

/// Serializes `trace` to `out`. Returns false on I/O failure.
bool write_trace(std::ostream& out, const ProgramTrace& trace);

/// Deserializes a trace from `in`. Returns false on I/O failure or a
/// malformed stream; `trace` is unspecified in that case.
bool read_trace(std::istream& in, ProgramTrace& trace);

/// File-path convenience wrappers.
bool save_trace(const std::string& path, const ProgramTrace& trace);
bool load_trace(const std::string& path, ProgramTrace& trace);

}  // namespace dircc
