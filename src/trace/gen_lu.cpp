#include "common/ensure.hpp"
#include "trace/generators.hpp"
#include "trace/layout.hpp"

namespace dircc {
namespace {

/// Per-column block walker: the matrix is column-major with 8-byte
/// elements, so each column is a block-aligned run of n*8 bytes.
class ColumnBlocks {
 public:
  ColumnBlocks(const Region& matrix, int n, int block_size)
      : matrix_(matrix),
        n_(n),
        elems_per_block_(block_size / 8),
        block_size_(block_size) {}

  /// Byte address of the block holding rows [row, row+elems_per_block) of
  /// column `col`.
  Addr block_addr(int col, int row) const {
    const Addr elem = static_cast<Addr>(col) * static_cast<Addr>(n_) +
                      static_cast<Addr>(row);
    const Addr byte = elem * 8;
    return matrix_.at(byte - byte % static_cast<Addr>(block_size_));
  }

  int first_block_row(int row) const {
    return row - row % elems_per_block_;
  }
  int elems_per_block() const { return elems_per_block_; }

 private:
  const Region& matrix_;
  int n_;
  int elems_per_block_;
  int block_size_;
};

}  // namespace

ProgramTrace generate_lu(const LuConfig& config) {
  ensure(config.procs >= 1, "LU needs at least one processor");
  ensure(config.block_size % 8 == 0 && config.block_size >= 8,
         "LU block size must hold whole 8-byte elements");
  ensure(config.n >= 2, "LU matrix must be at least 2x2");

  ProgramTrace trace;
  trace.app_name = "LU";
  trace.block_size = config.block_size;
  trace.per_proc.assign(static_cast<std::size_t>(config.procs), {});

  AddressLayout layout(config.block_size);
  const Region matrix = layout.alloc(
      "matrix", static_cast<Addr>(config.n) * static_cast<Addr>(config.n) * 8);
  // Per-step pivot bookkeeping (pivot value, column norm): written by the
  // pivot owner each step and read by everyone afterwards — so each write
  // invalidates the full sharer set from the previous step. This is the
  // small wide-invalidation component visible in the paper's LU traffic.
  const Region step_info =
      layout.alloc("step_info", static_cast<Addr>(config.block_size));
  ColumnBlocks blocks(matrix, config.n, config.block_size);

  const int n = config.n;
  const int procs = config.procs;
  auto owner_of = [procs](int col) { return col % procs; };

  Addr barrier_id = 0;
  for (int k = 0; k < n; ++k) {
    // Pivot step: the owner normalizes column k below the diagonal.
    {
      auto& stream = trace.per_proc[static_cast<std::size_t>(owner_of(k))];
      stream.push_back(TraceEvent::read(blocks.block_addr(k, k)));
      for (int row = blocks.first_block_row(k); row < n;
           row += blocks.elems_per_block()) {
        stream.push_back(TraceEvent::read(blocks.block_addr(k, row)));
        stream.push_back(TraceEvent::write(blocks.block_addr(k, row)));
        stream.push_back(TraceEvent::think(2));
      }
      stream.push_back(TraceEvent::write(step_info.at(0)));
    }
    // Everyone waits for the pivot column.
    for (auto& stream : trace.per_proc) {
      stream.push_back(TraceEvent::barrier(barrier_id));
    }
    ++barrier_id;
    // All processors consult the step's pivot bookkeeping.
    for (auto& stream : trace.per_proc) {
      stream.push_back(TraceEvent::read(step_info.at(0)));
    }
    // Update step: each processor folds the pivot column into every later
    // column it owns. The pivot column is read by *all* processors here —
    // the wide read-sharing that breaks Dir_iNB (Section 6.2).
    for (int j = k + 1; j < n; ++j) {
      auto& stream = trace.per_proc[static_cast<std::size_t>(owner_of(j))];
      for (int row = blocks.first_block_row(k); row < n;
           row += blocks.elems_per_block()) {
        stream.push_back(TraceEvent::read(blocks.block_addr(k, row)));
        stream.push_back(TraceEvent::read(blocks.block_addr(j, row)));
        stream.push_back(TraceEvent::write(blocks.block_addr(j, row)));
      }
      stream.push_back(TraceEvent::think(4));
    }
    // Step barrier before the next pivot.
    for (auto& stream : trace.per_proc) {
      stream.push_back(TraceEvent::barrier(barrier_id));
    }
    ++barrier_id;
  }
  return trace;
}

}  // namespace dircc
