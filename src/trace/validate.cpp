#include "trace/validate.hpp"

#include <set>
#include <vector>

namespace dircc {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

}  // namespace

bool validate_trace(const ProgramTrace& trace, std::string* error) {
  if (trace.per_proc.empty()) {
    return fail(error, "trace has no processors");
  }
  if (trace.block_size <= 0 || !is_pow2(static_cast<std::uint64_t>(
                                   trace.block_size))) {
    return fail(error, "block size must be a positive power of two");
  }
  constexpr Addr kAddrLimit = Addr{1} << 48;

  std::vector<std::vector<Addr>> barrier_seq(
      static_cast<std::size_t>(trace.num_procs()));
  for (int p = 0; p < trace.num_procs(); ++p) {
    std::set<Addr> held;
    for (const TraceEvent& ev : trace.per_proc[static_cast<std::size_t>(p)]) {
      switch (ev.kind) {
        case TraceEvent::Kind::kRead:
        case TraceEvent::Kind::kWrite:
          if (ev.addr >= kAddrLimit) {
            return fail(error, "address out of range on processor " +
                                   std::to_string(p));
          }
          break;
        case TraceEvent::Kind::kLock:
          if (!held.insert(ev.addr).second) {
            return fail(error, "processor " + std::to_string(p) +
                                   " re-acquires lock " +
                                   std::to_string(ev.addr) +
                                   " it already holds");
          }
          break;
        case TraceEvent::Kind::kUnlock:
          if (held.erase(ev.addr) == 0) {
            return fail(error, "processor " + std::to_string(p) +
                                   " unlocks lock " + std::to_string(ev.addr) +
                                   " it does not hold");
          }
          break;
        case TraceEvent::Kind::kBarrier:
          if (!held.empty()) {
            return fail(error, "processor " + std::to_string(p) +
                                   " enters a barrier while holding a lock");
          }
          barrier_seq[static_cast<std::size_t>(p)].push_back(ev.addr);
          break;
        case TraceEvent::Kind::kThink:
          break;
      }
    }
    if (!held.empty()) {
      return fail(error, "processor " + std::to_string(p) +
                             " ends the trace holding a lock");
    }
  }
  // Barrier sequences must agree across participating processors. A
  // processor with an empty stream finishes before any barrier opens and is
  // not waited for (see Engine), so it is exempt from the cross-check.
  int reference = -1;
  for (int p = 0; p < trace.num_procs(); ++p) {
    if (trace.per_proc[static_cast<std::size_t>(p)].empty()) {
      continue;
    }
    if (reference < 0) {
      reference = p;
    } else if (barrier_seq[static_cast<std::size_t>(p)] !=
               barrier_seq[static_cast<std::size_t>(reference)]) {
      return fail(error, "barrier sequences differ between processors " +
                             std::to_string(reference) + " and " +
                             std::to_string(p));
    }
  }
  return true;
}

}  // namespace dircc
