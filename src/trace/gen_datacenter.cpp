// Datacenter workload generators: Zipf key-value serving, producer→consumer
// RPC queues, and lock-heavy OLTP (see datacenter.hpp for the modeling
// rationale).
//
// Implementation shape: each workload is one BufferedSource subclass whose
// refill() emits a bounded chunk of whole client operations for one
// processor, from per-processor state only (own RNG, own counters). The
// materialized generate_* forms simply drain a fresh source, so the two
// forms cannot diverge.
#include "trace/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "trace/layout.hpp"

namespace dircc {
namespace {

/// Operations emitted per refill: the per-processor lookahead bound (times
/// the handful of events one operation expands to).
constexpr std::uint64_t kOpsPerChunk = 32;

/// Decorrelates per-processor RNG streams from one base seed.
std::uint64_t proc_seed(std::uint64_t seed, int proc) {
  SplitMix64 mixer(seed +
                   0x9e3779b97f4a7c15ULL *
                       static_cast<std::uint64_t>(proc + 1));
  return mixer.next();
}

/// Clients are dealt round-robin onto processors; processor p serves
/// clients {c : c % procs == p}.
std::uint64_t clients_of(std::uint64_t clients, int procs, int proc) {
  const auto p = static_cast<std::uint64_t>(proc);
  const auto n = static_cast<std::uint64_t>(procs);
  return clients / n + (p < clients % n ? 1 : 0);
}

/// Zipf(theta) rank sampler over [0, n): P(k) ∝ 1/(k+1)^theta, via an
/// O(n)-memory CDF table and binary search. Memory depends on the data-set
/// size only, never on the event count.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta) : cdf_(n) {
    ensure(n >= 1, "Zipf sampler needs a non-empty domain");
    ensure(theta >= 0.0, "Zipf theta must be non-negative");
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = total;
    }
    for (double& value : cdf_) {
      value /= total;
    }
  }

  std::uint64_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end()
               ? cdf_.size() - 1
               : static_cast<std::uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// ---------------------------------------------------------------------------
// KV: Zipf-skewed GET/SET store
// ---------------------------------------------------------------------------

class KvSource final : public BufferedSource {
 public:
  explicit KvSource(const KvConfig& config)
      : BufferedSource("KV", config.procs, config.block_size),
        config_(config),
        zipf_(config.keys, config.zipf_theta),
        layout_(config.block_size),
        index_(layout_.alloc("index",
                             static_cast<Addr>(config.index_blocks) *
                                 static_cast<Addr>(config.block_size))),
        values_(layout_.alloc(
            "values", static_cast<Addr>(config.keys) *
                          static_cast<Addr>(config.value_blocks) *
                          static_cast<Addr>(config.block_size))),
        state_(static_cast<std::size_t>(config.procs)) {
    ensure(config.procs >= 1, "KV needs at least one processor");
    ensure(config.keys >= 1, "KV needs at least one key");
    ensure(config.value_blocks >= 1, "KV values need at least one block");
    ensure(config.index_blocks >= 1, "KV index needs at least one block");
    ensure(config.get_fraction >= 0.0 && config.get_fraction <= 1.0,
           "KV get fraction must be in [0, 1]");
    for (int p = 0; p < config.procs; ++p) {
      ProcState& state = state_[static_cast<std::size_t>(p)];
      state.rng = Rng(proc_seed(config.seed, p));
      state.ops_left = clients_of(config.clients, config.procs, p) *
                       config.ops_per_client;
    }
  }

 protected:
  void refill(ProcId proc, std::vector<TraceEvent>& out) override {
    ProcState& state = state_[proc];
    const std::uint64_t ops = std::min(state.ops_left, kOpsPerChunk);
    const auto block = static_cast<Addr>(block_size());
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint64_t key = zipf_.sample(state.rng);
      const bool is_get = state.rng.chance(config_.get_fraction);
      // Route through the widely-read (read-only) index table first.
      out.push_back(TraceEvent::read(index_.at(
          (key % static_cast<std::uint64_t>(config_.index_blocks)) * block)));
      const Addr value =
          key * static_cast<Addr>(config_.value_blocks) * block;
      for (int b = 0; b < config_.value_blocks; ++b) {
        const Addr addr = values_.at(value + static_cast<Addr>(b) * block);
        out.push_back(is_get ? TraceEvent::read(addr)
                             : TraceEvent::write(addr));
      }
      out.push_back(TraceEvent::think(config_.think_cycles));
    }
    state.ops_left -= ops;
  }

 private:
  struct ProcState {
    Rng rng{0};
    std::uint64_t ops_left = 0;
  };

  KvConfig config_;
  ZipfSampler zipf_;
  AddressLayout layout_;
  Region index_;
  Region values_;
  std::vector<ProcState> state_;
};

// ---------------------------------------------------------------------------
// QUEUE: producer→consumer RPC rings
// ---------------------------------------------------------------------------

class QueueSource final : public BufferedSource {
 public:
  explicit QueueSource(const QueueConfig& config)
      : BufferedSource("QUEUE", config.procs, config.block_size),
        config_(config),
        layout_(config.block_size),
        meta_(layout_.alloc("meta", static_cast<Addr>(config.queues) *
                                        static_cast<Addr>(config.block_size))),
        slots_(layout_.alloc(
            "slots", static_cast<Addr>(config.queues) *
                         static_cast<Addr>(config.slots_per_queue) *
                         static_cast<Addr>(config.payload_blocks) *
                         static_cast<Addr>(config.block_size))),
        state_(static_cast<std::size_t>(config.procs)) {
    ensure(config.procs >= 1, "QUEUE needs at least one processor");
    ensure(config.queues >= 1, "QUEUE needs at least one queue");
    ensure(config.slots_per_queue >= 1, "QUEUE rings need at least one slot");
    ensure(config.payload_blocks >= 1,
           "QUEUE payloads need at least one block");
    // Arrival counts per queue, in closed form: client c's i-th RPC goes to
    // queue (c + i) % queues, so both sides of the stream agree on how many
    // messages each consumer must drain without any shared counters.
    const auto queues = static_cast<std::uint64_t>(config.queues);
    std::vector<std::uint64_t> arrivals(queues, 0);
    const std::uint64_t base = config.rpcs_per_client / queues;
    const std::uint64_t rem = config.rpcs_per_client % queues;
    for (std::uint64_t q = 0; q < queues; ++q) {
      arrivals[q] = config.clients * base;
    }
    // The leftover `rem` RPCs of client c land on queues c, c+1, ...,
    // c+rem-1 (mod queues): queue q receives one from every client with
    // (q - c) mod queues < rem.
    for (std::uint64_t x = 0; x < queues; ++x) {
      const std::uint64_t clients_at =
          config.clients / queues + (x < config.clients % queues ? 1 : 0);
      for (std::uint64_t j = 0; j < rem; ++j) {
        arrivals[(x + j) % queues] += clients_at;
      }
    }
    for (int p = 0; p < config.procs; ++p) {
      ProcState& state = state_[static_cast<std::size_t>(p)];
      state.rng = Rng(proc_seed(config.seed, p));
      state.nclients = clients_of(config.clients, config.procs, p);
      state.produce_left = state.nclients * config.rpcs_per_client;
      // First client on this processor, for the queue rotation.
      state.next_client = static_cast<std::uint64_t>(p);
      for (int q = p; q < config.queues; q += config.procs) {
        state.owned_queues.push_back(q);
        state.consume_left += arrivals[static_cast<std::uint64_t>(q)];
      }
      state.produce_slot.assign(static_cast<std::size_t>(config.queues), 0);
      state.consume_seq.assign(state.owned_queues.size(), 0);
    }
  }

 protected:
  void refill(ProcId proc, std::vector<TraceEvent>& out) override {
    ProcState& state = state_[proc];
    // Alternate one enqueue with one dequeue while both remain, so lock and
    // payload traffic interleave the way a serving loop's would; the longer
    // side drains at the end.
    for (std::uint64_t op = 0; op < kOpsPerChunk; ++op) {
      if (state.produce_left == 0 && state.consume_left == 0) {
        return;
      }
      if (state.produce_left > 0) {
        produce(state, out);
      }
      if (state.consume_left > 0) {
        consume(state, out);
      }
    }
  }

 private:
  struct ProcState {
    Rng rng{0};
    std::uint64_t nclients = 0;      ///< clients served by this processor
    std::uint64_t produce_left = 0;
    std::uint64_t consume_left = 0;
    std::uint64_t next_client = 0;   ///< client issuing the next RPC
    std::uint64_t produce_seq = 0;   ///< RPCs issued so far (rotation index)
    std::vector<int> owned_queues;   ///< queues this processor consumes
    std::size_t next_owned = 0;      ///< round-robin cursor into the above
    std::vector<std::uint64_t> produce_slot;  ///< per-queue next write slot
    std::vector<std::uint64_t> consume_seq;   ///< per-owned-queue reads done
  };

  Addr meta_addr(int queue) const {
    return meta_.at(static_cast<Addr>(queue) *
                    static_cast<Addr>(block_size()));
  }

  Addr slot_addr(int queue, std::uint64_t slot, int payload_block) const {
    const auto block = static_cast<Addr>(block_size());
    const auto per_queue = static_cast<Addr>(config_.slots_per_queue) *
                           static_cast<Addr>(config_.payload_blocks) * block;
    return slots_.at(static_cast<Addr>(queue) * per_queue +
                     static_cast<Addr>(slot) *
                         static_cast<Addr>(config_.payload_blocks) * block +
                     static_cast<Addr>(payload_block) * block);
  }

  void produce(ProcState& state, std::vector<TraceEvent>& out) {
    // Client c's i-th RPC targets queue (c + i) % queues — matching the
    // arrival counts computed in the constructor. This processor's clients
    // are issued round-robin, so i == produce_seq / nclients.
    const auto queues = static_cast<std::uint64_t>(config_.queues);
    const std::uint64_t client = state.next_client;
    const std::uint64_t turn = state.produce_seq / state.nclients;
    const int q = static_cast<int>((client + turn) % queues);
    const std::uint64_t slot =
        state.produce_slot[static_cast<std::size_t>(q)]++ %
        static_cast<std::uint64_t>(config_.slots_per_queue);
    const Addr lock_id = static_cast<Addr>(q);
    out.push_back(TraceEvent::lock(lock_id));
    out.push_back(TraceEvent::read(meta_addr(q)));   // load tail index
    for (int b = 0; b < config_.payload_blocks; ++b) {
      out.push_back(TraceEvent::write(slot_addr(q, slot, b)));
    }
    out.push_back(TraceEvent::write(meta_addr(q)));  // publish new tail
    out.push_back(TraceEvent::unlock(lock_id));
    --state.produce_left;
    ++state.produce_seq;
    // Advance to this processor's next client (round-robin deal).
    state.next_client += static_cast<std::uint64_t>(num_procs());
    if (state.next_client >= config_.clients) {
      state.next_client %= static_cast<std::uint64_t>(num_procs());
    }
  }

  void consume(ProcState& state, std::vector<TraceEvent>& out) {
    const std::size_t owned = state.next_owned % state.owned_queues.size();
    state.next_owned = (owned + 1) % state.owned_queues.size();
    const int q = state.owned_queues[owned];
    const std::uint64_t slot =
        state.consume_seq[owned]++ %
        static_cast<std::uint64_t>(config_.slots_per_queue);
    const Addr lock_id = static_cast<Addr>(q);
    out.push_back(TraceEvent::lock(lock_id));
    out.push_back(TraceEvent::read(meta_addr(q)));   // load head index
    for (int b = 0; b < config_.payload_blocks; ++b) {
      out.push_back(TraceEvent::read(slot_addr(q, slot, b)));
    }
    out.push_back(TraceEvent::write(meta_addr(q)));  // retire the message
    out.push_back(TraceEvent::unlock(lock_id));
    out.push_back(TraceEvent::think(config_.service_cycles));
    --state.consume_left;
  }

  QueueConfig config_;
  AddressLayout layout_;
  Region meta_;
  Region slots_;
  std::vector<ProcState> state_;
};

// ---------------------------------------------------------------------------
// OLTP: lock-heavy migratory row store
// ---------------------------------------------------------------------------

class OltpSource final : public BufferedSource {
 public:
  explicit OltpSource(const OltpConfig& config)
      : BufferedSource("OLTP", config.procs, config.block_size),
        config_(config),
        zipf_(config.rows, config.zipf_theta),
        layout_(config.block_size),
        rows_(layout_.alloc("rows",
                            static_cast<Addr>(config.rows) *
                                static_cast<Addr>(config.row_blocks) *
                                static_cast<Addr>(config.block_size))),
        state_(static_cast<std::size_t>(config.procs)) {
    ensure(config.procs >= 1, "OLTP needs at least one processor");
    ensure(config.rows >= 1, "OLTP needs at least one row");
    ensure(config.rows_per_txn >= 1, "OLTP txns must touch at least one row");
    ensure(config.row_blocks >= 1, "OLTP rows need at least one block");
    ensure(config.write_fraction >= 0.0 && config.write_fraction <= 1.0,
           "OLTP write fraction must be in [0, 1]");
    for (int p = 0; p < config.procs; ++p) {
      ProcState& state = state_[static_cast<std::size_t>(p)];
      state.rng = Rng(proc_seed(config.seed, p));
      state.txns_left = clients_of(config.clients, config.procs, p) *
                        config.txns_per_client;
    }
  }

 protected:
  void refill(ProcId proc, std::vector<TraceEvent>& out) override {
    ProcState& state = state_[proc];
    const std::uint64_t txns = std::min(state.txns_left, kOpsPerChunk);
    const auto block = static_cast<Addr>(block_size());
    for (std::uint64_t txn = 0; txn < txns; ++txn) {
      for (int r = 0; r < config_.rows_per_txn; ++r) {
        // One row lock at a time (acquire → touch → release): lock-heavy
        // and migratory without nested acquisition, so the simulated
        // machine can contend but never deadlock.
        const std::uint64_t row = zipf_.sample(state.rng);
        const bool update = state.rng.chance(config_.write_fraction);
        const Addr base =
            row * static_cast<Addr>(config_.row_blocks) * block;
        out.push_back(TraceEvent::lock(static_cast<Addr>(row)));
        for (int b = 0; b < config_.row_blocks; ++b) {
          out.push_back(TraceEvent::read(
              rows_.at(base + static_cast<Addr>(b) * block)));
        }
        out.push_back(TraceEvent::think(config_.think_cycles));
        if (update) {
          for (int b = 0; b < config_.row_blocks; ++b) {
            out.push_back(TraceEvent::write(
                rows_.at(base + static_cast<Addr>(b) * block)));
          }
        }
        out.push_back(TraceEvent::unlock(static_cast<Addr>(row)));
      }
    }
    state.txns_left -= txns;
  }

 private:
  struct ProcState {
    Rng rng{0};
    std::uint64_t txns_left = 0;
  };

  OltpConfig config_;
  ZipfSampler zipf_;
  AddressLayout layout_;
  Region rows_;
  std::vector<ProcState> state_;
};

std::uint64_t scaled_count(std::uint64_t count, double scale) {
  const double value = static_cast<double>(count) * scale;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                        std::llround(value)));
}

}  // namespace

std::unique_ptr<EventSource> make_kv_source(const KvConfig& config) {
  return std::make_unique<KvSource>(config);
}

std::unique_ptr<EventSource> make_queue_source(const QueueConfig& config) {
  return std::make_unique<QueueSource>(config);
}

std::unique_ptr<EventSource> make_oltp_source(const OltpConfig& config) {
  return std::make_unique<OltpSource>(config);
}

ProgramTrace generate_kv(const KvConfig& config) {
  KvSource source(config);
  return materialize(source);
}

ProgramTrace generate_queue(const QueueConfig& config) {
  QueueSource source(config);
  return materialize(source);
}

ProgramTrace generate_oltp(const OltpConfig& config) {
  OltpSource source(config);
  return materialize(source);
}

const char* datacenter_name(DatacenterKind kind) {
  switch (kind) {
    case DatacenterKind::kKv:
      return "KV";
    case DatacenterKind::kQueue:
      return "QUEUE";
    case DatacenterKind::kOltp:
      return "OLTP";
  }
  return "?";
}

KvConfig kv_defaults(int procs, int block_size, std::uint64_t clients,
                     std::uint64_t seed, double scale) {
  KvConfig config;
  config.procs = procs;
  config.block_size = block_size;
  config.clients = clients;
  config.ops_per_client = scaled_count(config.ops_per_client, scale);
  config.seed = seed;
  return config;
}

QueueConfig queue_defaults(int procs, int block_size, std::uint64_t clients,
                           std::uint64_t seed, double scale) {
  QueueConfig config;
  config.procs = procs;
  config.block_size = block_size;
  config.clients = clients;
  config.rpcs_per_client = scaled_count(config.rpcs_per_client, scale);
  config.queues = procs;
  config.seed = seed;
  return config;
}

OltpConfig oltp_defaults(int procs, int block_size, std::uint64_t clients,
                         std::uint64_t seed, double scale) {
  OltpConfig config;
  config.procs = procs;
  config.block_size = block_size;
  config.clients = clients;
  config.txns_per_client = scaled_count(config.txns_per_client, scale);
  config.seed = seed;
  return config;
}

std::unique_ptr<EventSource> make_datacenter_source(DatacenterKind kind,
                                                    int procs, int block_size,
                                                    std::uint64_t clients,
                                                    std::uint64_t seed,
                                                    double scale) {
  switch (kind) {
    case DatacenterKind::kKv:
      return make_kv_source(kv_defaults(procs, block_size, clients, seed,
                                        scale));
    case DatacenterKind::kQueue:
      return make_queue_source(queue_defaults(procs, block_size, clients,
                                              seed, scale));
    case DatacenterKind::kOltp:
      return make_oltp_source(oltp_defaults(procs, block_size, clients, seed,
                                            scale));
  }
  ensure(false, "unknown datacenter workload kind");
  return nullptr;
}

ProgramTrace generate_datacenter(DatacenterKind kind, int procs,
                                 int block_size, std::uint64_t clients,
                                 std::uint64_t seed, double scale) {
  const auto source =
      make_datacenter_source(kind, procs, block_size, clients, seed, scale);
  return materialize(*source);
}

}  // namespace dircc
