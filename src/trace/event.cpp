#include "trace/event.hpp"

#include <unordered_set>

namespace dircc {

TraceCharacteristics characterize(const ProgramTrace& trace) {
  TraceCharacteristics c;
  std::unordered_set<BlockAddr> blocks;
  const auto block_size = static_cast<Addr>(trace.block_size);
  for (const auto& stream : trace.per_proc) {
    for (const TraceEvent& ev : stream) {
      switch (ev.kind) {
        case TraceEvent::Kind::kRead:
          ++c.shared_reads;
          blocks.insert(ev.addr / block_size);
          break;
        case TraceEvent::Kind::kWrite:
          ++c.shared_writes;
          blocks.insert(ev.addr / block_size);
          break;
        case TraceEvent::Kind::kLock:
        case TraceEvent::Kind::kUnlock:
        case TraceEvent::Kind::kBarrier:
          ++c.sync_ops;
          break;
        case TraceEvent::Kind::kThink:
          break;
      }
    }
  }
  c.shared_refs = c.shared_reads + c.shared_writes;
  c.distinct_blocks = blocks.size();
  c.shared_mbytes = static_cast<double>(c.distinct_blocks) *
                    static_cast<double>(trace.block_size) / (1024.0 * 1024.0);
  return c;
}

}  // namespace dircc
