// Streaming event-source interface between trace producers and the engine.
//
// The original pipeline materialized a whole ProgramTrace (O(events) memory)
// before the engine saw the first event, which caps a run at whatever fits
// in RAM. An EventSource inverts that: the engine *pulls* events one at a
// time per processor, so a producer only ever needs its bounded per-
// processor lookahead resident — a billion-access run costs the same memory
// as a thousand-access one.
//
// Two families of sources exist:
//  * MaterializedSource — adapts an existing ProgramTrace (every SPLASH-era
//    generator, TraceCache entry and trace file) onto the pull interface.
//    Replaying through it is byte-identical to the pre-streaming engine.
//  * BufferedSource — base class for true streaming producers (the
//    datacenter generators in trace/datacenter.hpp): subclasses refill one
//    processor's bounded chunk buffer on demand and never hold the full
//    stream.
//
// Contract: per-processor streams are independent — next(p, ...) for
// different p may be interleaved in any order (the engine pulls in simulated-
// time order, which is data dependent), and the sequence of events returned
// for a given processor must not depend on that interleaving.
//
// Threading (docs/PARALLELISM.md): the sharded engine's fetch workers pull
// *different* processors' streams from different threads concurrently, so
// next(p, ...) must only touch state owned by processor p (or immutable
// shared state). Calls for the same processor are always serialized by the
// caller. events_pulled() may only be read while no next() is in flight
// (both engines read it after the run drains).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "trace/event.hpp"

namespace dircc {

/// Pull-based producer of per-processor reference streams.
class EventSource {
 public:
  virtual ~EventSource() = default;

  virtual const std::string& app_name() const = 0;
  virtual int num_procs() const = 0;
  virtual int block_size() const = 0;

  /// Pulls the next event of `proc`'s stream into `ev`. Returns false when
  /// the stream is exhausted (and on every later call for that processor).
  virtual bool next(ProcId proc, TraceEvent& ev) = 0;

  /// Events handed out so far, across all processors (for throughput and
  /// progress accounting; monotone). Only valid while pulls are quiescent —
  /// implementations account per processor so that concurrent distinct-proc
  /// next() calls stay race-free, and sum the slots here.
  virtual std::uint64_t events_pulled() const = 0;
};

/// Adapter: serves an already-materialized ProgramTrace through the pull
/// interface. Keeps every existing generator, cache and trace file working
/// unchanged; replay order and results are identical to indexing the trace
/// directly.
class MaterializedSource final : public EventSource {
 public:
  /// Non-owning: `trace` must outlive the source.
  explicit MaterializedSource(const ProgramTrace& trace)
      : trace_(&trace), cursor_(trace.per_proc.size(), 0) {}

  /// Shared-ownership form for cached traces (harness::TraceCache hands out
  /// shared_ptr<const ProgramTrace>).
  explicit MaterializedSource(std::shared_ptr<const ProgramTrace> trace)
      : owned_(std::move(trace)),
        trace_(owned_.get()),
        cursor_(trace_->per_proc.size(), 0) {
    ensure(trace_ != nullptr, "MaterializedSource needs a trace");
  }

  const std::string& app_name() const override { return trace_->app_name; }
  int num_procs() const override { return trace_->num_procs(); }
  int block_size() const override { return trace_->block_size; }

  bool next(ProcId proc, TraceEvent& ev) override {
    const auto& stream = trace_->per_proc[proc];
    std::size_t& cursor = cursor_[proc];
    if (cursor >= stream.size()) {
      return false;
    }
    ev = stream[cursor++];
    return true;
  }

  std::uint64_t events_pulled() const override {
    std::uint64_t total = 0;
    for (std::size_t cursor : cursor_) {
      total += cursor;
    }
    return total;
  }

 private:
  std::shared_ptr<const ProgramTrace> owned_;
  const ProgramTrace* trace_;
  std::vector<std::size_t> cursor_;
};

/// Base class for streaming producers: maintains one bounded chunk buffer
/// per processor and asks the subclass to refill it when it drains. Memory
/// is O(procs x chunk), independent of total event count.
class BufferedSource : public EventSource {
 public:
  BufferedSource(std::string app_name, int procs, int block_size)
      : app_name_(std::move(app_name)),
        procs_(procs),
        block_size_(block_size),
        buffers_(static_cast<std::size_t>(procs)) {
    ensure(procs >= 1, "streaming source needs at least one processor");
    ensure(block_size >= 1, "streaming source needs a positive block size");
  }

  const std::string& app_name() const override { return app_name_; }
  int num_procs() const override { return procs_; }
  int block_size() const override { return block_size_; }

  bool next(ProcId proc, TraceEvent& ev) override {
    Buffer& buffer = buffers_[proc];
    if (buffer.pos >= buffer.events.size()) {
      if (buffer.done) {
        return false;
      }
      buffer.events.clear();
      buffer.pos = 0;
      refill(proc, buffer.events);
      if (buffer.events.empty()) {
        buffer.done = true;
        return false;
      }
    }
    ev = buffer.events[buffer.pos++];
    ++buffer.handed;
    return true;
  }

  std::uint64_t events_pulled() const override {
    std::uint64_t total = 0;
    for (const Buffer& buffer : buffers_) {
      total += buffer.handed;
    }
    return total;
  }

  /// Largest chunk any refill produced (diagnostic: the lookahead bound).
  std::size_t max_chunk_events() const {
    std::size_t max = 0;
    for (const Buffer& buffer : buffers_) {
      max = std::max(max, buffer.events.capacity());
    }
    return max;
  }

 protected:
  /// Appends the next chunk of `proc`'s stream to `out` (empty = stream
  /// exhausted). Must be a pure function of the source's construction
  /// parameters and this processor's own progress — never of the other
  /// processors' pull order.
  virtual void refill(ProcId proc, std::vector<TraceEvent>& out) = 0;

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
    std::size_t pos = 0;
    std::uint64_t handed = 0;
    bool done = false;
  };

  std::string app_name_;
  int procs_;
  int block_size_;
  std::vector<Buffer> buffers_;
};

/// Drains `source` into a ProgramTrace (the materializing adapter's
/// inverse). The result is exactly the trace a streaming generator stands
/// for — used by the TraceSpec builders so sweep grids and the TraceCache
/// keep working on the new workloads, and by the equivalence tests.
ProgramTrace materialize(EventSource& source);

}  // namespace dircc
