// Shared address-space layout helper for the trace generators.
//
// Generators allocate named regions (matrices, grids, particle arrays) and
// address them by element; the layout hands out block-aligned byte ranges so
// distinct data structures never share a cache block (no false sharing
// between structures — false sharing *within* a structure is part of the
// modeled behaviour and handled by each generator).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace dircc {

/// A block-aligned region of the simulated shared address space.
struct Region {
  std::string name;
  Addr base = 0;     ///< byte address, block aligned
  Addr bytes = 0;    ///< rounded up to whole blocks

  /// Byte address of `offset` within the region (bounds checked).
  Addr at(Addr offset) const {
    ensure(offset < bytes, "region offset out of range");
    return base + offset;
  }
};

/// Sequential allocator of block-aligned regions.
class AddressLayout {
 public:
  explicit AddressLayout(int block_size) : block_size_(block_size) {
    ensure(block_size >= 1, "block size must be positive");
  }

  /// Allocates `bytes` (rounded up to whole blocks, minimum one) under
  /// `name`. The minimum keeps a zero-byte request from producing an empty
  /// region whose base aliases the next structure's first block — the
  /// region would be unusable anyway (at() rejects every offset) but its
  /// base address looked valid and pointed into someone else's data.
  Region alloc(std::string name, Addr bytes) {
    const Addr rounded =
        ceil_div(std::max<Addr>(bytes, 1), static_cast<Addr>(block_size_)) *
        static_cast<Addr>(block_size_);
    Region region{std::move(name), next_, rounded};
    next_ += rounded;
    regions_.push_back(region);
    return region;
  }

  int block_size() const { return block_size_; }
  Addr bytes_allocated() const { return next_; }
  const std::vector<Region>& regions() const { return regions_; }

 private:
  int block_size_;
  Addr next_ = 0;
  std::vector<Region> regions_;
};

}  // namespace dircc
