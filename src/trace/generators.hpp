// Synthetic application trace generators.
//
// The paper drives its simulator with Tango-captured references from four
// applications (Section 5). Those binaries and the Tango tracer are long
// gone, so we regenerate the reference streams by executing the same
// *algorithms* at cache-block granularity (see DESIGN.md, substitutions).
// What matters for the directory study is each application's sharing
// pattern, and each generator reproduces its application's pattern
// structurally:
//
//  * LU          — column-blocked LU factorization: the pivot column is
//                  read by every processor right after the pivot step
//                  (wide read-sharing; Dir_iNB's worst case), while each
//                  column is otherwise updated only by its owner.
//  * DWF         — wavefront string matcher over a gene library: small
//                  read-only pattern/score tables are read constantly by
//                  every process; the DP working set is tiny.
//  * MP3D        — 3-D particle simulator: particles are private, space
//                  cells migrate between the 1-2 processors whose particles
//                  currently occupy them (migratory sharing).
//  * LocusRoute  — standard-cell router: the cost grid is shared by the
//                  several processors routing wires in the same geographic
//                  region (writes to ~4-8-sharer blocks; Dir_iB's worst
//                  case), plus a small widely-read global table.
#pragma once

#include <cstdint>

#include "trace/event.hpp"

namespace dircc {

/// LU factorization of an n x n matrix, columns interleaved across
/// processors (SPLASH-style dense LU without pivoting).
struct LuConfig {
  int procs = 32;
  int block_size = 16;
  int n = 128;  ///< matrix dimension; elements are 8-byte doubles
  std::uint64_t seed = 1;
};
ProgramTrace generate_lu(const LuConfig& config);

/// Gene-database string matching via dynamic-programming wavefront.
struct DwfConfig {
  int procs = 32;
  int block_size = 16;
  int pattern_rows = 32;    ///< DP rows == pattern elements
  int seq_length = 128;     ///< bytes per library sequence
  int num_sequences = 512;  ///< library size; distributed round-robin
  std::uint64_t seed = 2;
};
ProgramTrace generate_dwf(const DwfConfig& config);

/// Rarefied-airflow particle simulation on a 3-D space grid.
struct Mp3dConfig {
  int procs = 32;
  int block_size = 16;
  int particles = 8192;
  int cells_per_axis = 16;  ///< space grid is cells^3
  int steps = 24;
  double collision_prob = 0.2;
  std::uint64_t seed = 3;
};
ProgramTrace generate_mp3d(const Mp3dConfig& config);

/// Standard-cell routing over a shared cost grid split into geographic
/// regions, several processors per region.
struct LocusConfig {
  int procs = 32;
  int block_size = 16;
  int grid_w = 512;  ///< routing grid width in cells (2 bytes per cell)
  int grid_h = 64;
  int regions = 8;   ///< vertical geographic strips
  int wires = 6000;
  double cross_region_prob = 0.1;  ///< wires spanning two regions
  double global_update_prob = 0.01;  ///< wires that write the global table
  std::uint64_t seed = 4;
};
ProgramTrace generate_locusroute(const LocusConfig& config);

/// The four benchmark applications, for registry-style sweeps.
enum class AppKind { kLu, kDwf, kMp3d, kLocusRoute };

const char* app_name(AppKind app);

/// Generates `app` with default parameters scaled by `scale` (0 < scale
/// <= 1 shrinks the problem for quick runs; 1.0 is the benchmark size).
ProgramTrace generate_app(AppKind app, int procs, int block_size,
                          std::uint64_t seed, double scale = 1.0);

}  // namespace dircc
