#include "sci/sci_system.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dircc {

/// One block's sharing list, head first. `dirty` implies a single element
/// whose cache holds the line Modified.
struct SciSystem::BlockList {
  std::vector<NodeId> nodes;
  bool dirty = false;

  bool contains(NodeId node) const {
    return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
  }
};

SciSystem::SciSystem(const SciConfig& config) : config_(config) {
  ensure(config.num_procs >= 1, "need at least one processor");
  ensure(is_pow2(static_cast<std::uint64_t>(config.block_size)),
         "block size must be a power of two");
  caches_.reserve(static_cast<std::size_t>(config.num_procs));
  for (int p = 0; p < config.num_procs; ++p) {
    caches_.emplace_back(config.cache_lines_per_proc, config.cache_assoc);
  }
}

SciSystem::~SciSystem() = default;

int SciSystem::pointer_bits_per_line() const {
  // Forward and back pointer per cache line, kept in cache-speed SRAM —
  // the storage-scaling advantage (and cost) the paper discusses.
  return 2 * log2_ceil(static_cast<std::uint64_t>(config_.num_procs));
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

void SciSystem::count_msg(MsgClass cls, NodeId from, NodeId to) {
  if (from != to) {
    stats_.messages.add(cls);
  }
}

std::uint32_t SciSystem::memory_version(BlockAddr block) const {
  auto it = memory_.find(block);
  return it == memory_.end() ? 0 : it->second;
}

std::uint32_t SciSystem::bump_latest(BlockAddr block) {
  return ++latest_[block];
}

std::uint32_t SciSystem::latest_version(BlockAddr block) const {
  auto it = latest_.find(block);
  return it == latest_.end() ? 0 : it->second;
}

void SciSystem::check_version(BlockAddr block,
                              std::uint32_t observed) const {
  if (config_.validate) {
    ensure(observed == latest_version(block),
           "SCI coherence violation: a read observed a stale version");
  }
}

std::vector<NodeId> SciSystem::list_of(BlockAddr block) const {
  auto it = lists_.find(block);
  return it == lists_.end() ? std::vector<NodeId>{} : it->second.nodes;
}

bool SciSystem::dirty_at_head(BlockAddr block) const {
  auto it = lists_.find(block);
  return it != lists_.end() && it->second.dirty;
}

CacheStats SciSystem::aggregate_cache_stats() const {
  CacheStats total;
  for (const Cache& cache : caches_) {
    const CacheStats& s = cache.stats();
    total.read_hits += s.read_hits;
    total.read_misses += s.read_misses;
    total.write_hits += s.write_hits;
    total.write_upgrades += s.write_upgrades;
    total.write_misses += s.write_misses;
    total.evictions_clean += s.evictions_clean;
    total.evictions_dirty += s.evictions_dirty;
    total.invalidations_received += s.invalidations_received;
    total.invalidations_empty += s.invalidations_empty;
  }
  return total;
}

// ---------------------------------------------------------------------------
// List surgery
// ---------------------------------------------------------------------------

void SciSystem::unlink(BlockList& list, BlockAddr block, NodeId node) {
  const auto it = std::find(list.nodes.begin(), list.nodes.end(), node);
  ensure(it != list.nodes.end(), "unlink of a node not on the list");
  const NodeId h = home_of(block);
  ++sci_stats_.unlink_operations;
  // Neighbour pointer updates: the departing node tells its predecessor
  // (or the home, when it is the head) and its successor.
  if (it == list.nodes.begin()) {
    count_msg(MsgClass::kRequest, node, h);  // move memory's head pointer
    count_msg(MsgClass::kAck, h, node);
  } else {
    const NodeId prev = *(it - 1);
    count_msg(MsgClass::kRequest, node, prev);
    count_msg(MsgClass::kAck, prev, node);
  }
  if (it + 1 != list.nodes.end()) {
    const NodeId next = *(it + 1);
    count_msg(MsgClass::kRequest, node, next);
    count_msg(MsgClass::kAck, next, node);
  }
  list.nodes.erase(it);
}

Cycle SciSystem::purge_successors(BlockList& list, BlockAddr block,
                                  NodeId head) {
  ensure(!list.nodes.empty() && list.nodes.front() == head,
         "purge must start from the head");
  Cycle added = 0;
  std::uint64_t purged = 0;
  // "The list is unraveled one by one": each invalidation learns the next
  // pointer only from the previous ack, so the round trips serialize.
  for (std::size_t i = 1; i < list.nodes.size(); ++i) {
    const NodeId victim = list.nodes[i];
    const auto result = caches_[victim].invalidate(block);
    ensure(result.had_copy, "SCI list member held no copy");
    count_msg(MsgClass::kInvalidation, head, victim);
    count_msg(MsgClass::kAck, victim, head);
    added += config_.purge_round;
    ++purged;
  }
  sci_stats_.purge_lengths.add(purged);
  sci_stats_.serialized_cycles += added;
  stats_.inval_distribution.add(purged);
  list.nodes.resize(1);
  return added;
}

void SciSystem::handle_eviction(ProcId proc, const EvictedLine& evicted) {
  auto it = lists_.find(evicted.block);
  ensure(it != lists_.end(), "evicted line had no sharing list");
  BlockList& list = it->second;
  const NodeId h = home_of(evicted.block);
  if (evicted.dirty) {
    ensure(list.dirty && list.nodes.size() == 1 &&
               list.nodes.front() == proc,
           "dirty eviction from a non-head");
    ++stats_.dirty_eviction_writebacks;
    count_msg(MsgClass::kWriteback, proc, h);
    memory_[evicted.block] = evicted.version;
    lists_.erase(it);
    return;
  }
  // A shared line cannot be dropped silently: unlink from the list.
  unlink(list, evicted.block, proc);
  if (list.nodes.empty()) {
    lists_.erase(it);
  }
}

void SciSystem::fill_cache(ProcId proc, BlockAddr block, LineState state,
                           std::uint32_t version) {
  std::optional<EvictedLine> evicted;
  caches_[proc].fill(block, state, version, evicted);
  if (evicted) {
    handle_eviction(proc, *evicted);
  }
}

// ---------------------------------------------------------------------------
// The access path
// ---------------------------------------------------------------------------

Cycle SciSystem::access(ProcId proc, BlockAddr block, bool is_write,
                        Cycle /*now*/) {
  ensure(proc < static_cast<ProcId>(config_.num_procs),
         "processor id out of range");
  ++stats_.accesses;
  Cache& cache = caches_[proc];
  const NodeId c = proc;
  const NodeId h = home_of(block);
  const LatencyModel& lat = config_.latency;

  if (!is_write) {
    if (cache.read_lookup(block)) {
      ++stats_.cache_hits;
      check_version(block, cache.version_of(block));
      return lat.cache_hit;
    }
    ++stats_.read_transactions;
    count_msg(MsgClass::kRequest, c, h);
    BlockList& list = lists_[block];
    ensure(!list.contains(c), "reader already on the list after a miss");
    if (list.nodes.empty()) {
      // Memory supplies; requester starts the list.
      count_msg(MsgClass::kReply, h, c);
      list.nodes.push_back(c);
      const std::uint32_t version = memory_version(block);
      fill_cache(proc, block, LineState::kShared, version);
      check_version(block, version);
      return c == h ? lat.local_access : lat.remote_2cluster;
    }
    if (list.dirty) {
      // Home hands back the head pointer; the head supplies the data,
      // downgrades, and refreshes memory.
      const NodeId head = list.nodes.front();
      ++sci_stats_.head_supplies;
      count_msg(MsgClass::kReply, h, c);       // head pointer
      count_msg(MsgClass::kRequest, c, head);  // data request
      const std::uint32_t version = caches_[head].downgrade(block);
      ++stats_.sharing_writebacks;
      count_msg(MsgClass::kWriteback, head, h);
      memory_[block] = version;
      count_msg(MsgClass::kReply, head, c);
      list.dirty = false;
      list.nodes.insert(list.nodes.begin(), c);
      fill_cache(proc, block, LineState::kShared, version);
      check_version(block, version);
      const int distinct = 1 + (h != c ? 1 : 0) + (head != c && head != h);
      return lat.transaction(distinct, 0);
    }
    // Shared list: memory supplies; the requester prepends itself, which
    // needs one extra round trip to link to the old head.
    const NodeId old_head = list.nodes.front();
    count_msg(MsgClass::kReply, h, c);
    count_msg(MsgClass::kRequest, c, old_head);
    count_msg(MsgClass::kAck, old_head, c);
    list.nodes.insert(list.nodes.begin(), c);
    const std::uint32_t version = memory_version(block);
    fill_cache(proc, block, LineState::kShared, version);
    check_version(block, version);
    return (c == h ? lat.local_access : lat.remote_2cluster) +
           config_.prepend_round;
  }

  // Write.
  switch (cache.write_lookup(block)) {
    case Cache::WriteLookup::kHitModified: {
      ++stats_.cache_hits;
      cache.write_touch(block, bump_latest(block));
      return lat.cache_hit;
    }
    case Cache::WriteLookup::kHitShared:
    case Cache::WriteLookup::kMiss:
      break;
  }
  ++stats_.write_transactions;
  count_msg(MsgClass::kRequest, c, h);
  BlockList& list = lists_[block];

  if (list.nodes.empty()) {
    count_msg(MsgClass::kReply, h, c);
    list.nodes.push_back(c);
    list.dirty = true;
    stats_.inval_distribution.add(0);
    sci_stats_.purge_lengths.add(0);
    const std::uint32_t version = bump_latest(block);
    fill_cache(proc, block, LineState::kModified, version);
    return c == h ? lat.local_access : lat.remote_2cluster;
  }

  if (list.dirty) {
    // Ownership transfer from the current (sole) head.
    const NodeId old_head = list.nodes.front();
    ensure(old_head != c, "dirty-at-requester write must be a cache hit");
    ++stats_.ownership_transfers;
    count_msg(MsgClass::kRequest, h, old_head);
    const auto result = caches_[old_head].invalidate(block);
    ensure(result.had_copy && result.was_dirty,
           "SCI head lost its dirty copy");
    count_msg(MsgClass::kReply, old_head, c);
    count_msg(MsgClass::kAck, old_head, h);  // head pointer update
    list.nodes.front() = c;
    const std::uint32_t version = bump_latest(block);
    fill_cache(proc, block, LineState::kModified, version);
    const int distinct = 1 + (h != c ? 1 : 0) + (old_head != c && old_head != h);
    return lat.transaction(distinct, 0);
  }

  // Shared list: the writer must be (or become) the head, then unravel
  // the list serially.
  Cycle extra = 0;
  if (!list.contains(c)) {
    // Attach at the head first (as on a read miss).
    count_msg(MsgClass::kReply, h, c);
    count_msg(MsgClass::kRequest, c, list.nodes.front());
    count_msg(MsgClass::kAck, list.nodes.front(), c);
    list.nodes.insert(list.nodes.begin(), c);
    extra += config_.prepend_round;
  } else if (list.nodes.front() != c) {
    // Mid-list writer: unlink, then re-attach at the head.
    unlink(list, block, c);
    count_msg(MsgClass::kReply, h, c);
    if (!list.nodes.empty()) {
      count_msg(MsgClass::kRequest, c, list.nodes.front());
      count_msg(MsgClass::kAck, list.nodes.front(), c);
    }
    list.nodes.insert(list.nodes.begin(), c);
    extra += config_.prepend_round;
  } else {
    count_msg(MsgClass::kReply, h, c);  // write permission from home
  }
  extra += purge_successors(list, block, c);
  list.dirty = true;
  const std::uint32_t version = bump_latest(block);
  if (cache.probe(block) == LineState::kShared) {
    cache.upgrade(block, version);
  } else {
    fill_cache(proc, block, LineState::kModified, version);
  }
  return (c == h ? lat.local_access : lat.remote_2cluster) + extra;
}

}  // namespace dircc
