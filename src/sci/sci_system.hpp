// SciSystem — cache-based linked-list directory coherence (Section 3.3).
//
// The third class of directory schemes the paper discusses: instead of a
// sharer record next to memory, each memory block's directory entry is a
// doubly-linked list threaded through the sharing caches. Memory holds only
// the head (and tail) pointer; each cache line carries forward/back
// pointers to the rest of the list, as in the IEEE Scalable Coherent
// Interface the paper cites.
//
// Protocol, following the paper's description:
//  * A read attaches the requester at the *head* of the list: the home
//    replies with the data and the old head id, and the requester links
//    itself to the old head (one extra round trip).
//  * A write makes the requester the head, then "the list is unraveled one
//    by one as all the copies in the caches are invalidated one after
//    another" — each successor is invalidated with a serial round trip,
//    because the next pointer is only learned from each ack. This is the
//    paper's first qualitative disadvantage: serialized invalidations.
//  * A cache displacing a line cannot do so silently: it must unlink from
//    the list, costing messages to its neighbours (and to the home when
//    the head leaves). Second disadvantage: replacement traffic.
//  * In exchange, the directory state scales with cache size by
//    construction and the list is always exact — no extraneous
//    invalidations, and (third point in the paper) the pointer storage
//    must be fast SRAM next to the caches rather than DRAM.
//
// This implementation models lists at the same cluster granularity as the
// memory-based protocols (one processor per cluster is required, which is
// also the configuration the paper simulates).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "protocol/system.hpp"

namespace dircc {

/// SCI-specific latency/configuration knobs on top of the base machine.
struct SciConfig {
  int num_procs = 32;
  std::uint64_t cache_lines_per_proc = 1024;
  int cache_assoc = 4;
  int block_size = 16;
  LatencyModel latency;
  /// Round trip to link the new head to the old one on a read.
  Cycle prepend_round = 40;
  /// Serial round trip per invalidated list element on a write.
  Cycle purge_round = 40;
  bool validate = true;
};

/// Counters specific to the linked-list organization.
struct SciStats {
  Histogram purge_lengths;            ///< list elements invalidated per write
  std::uint64_t unlink_operations = 0;    ///< replacements that had to unlink
  std::uint64_t serialized_cycles = 0;    ///< cycles spent walking lists
  std::uint64_t head_supplies = 0;        ///< reads served by a dirty head
};

class SciSystem final : public MemorySystem {
 public:
  explicit SciSystem(const SciConfig& config);
  ~SciSystem() override;

  /// `now` is accepted for interface compatibility; the SCI model is
  /// contention-free (like the paper's own simulator).
  Cycle access(ProcId proc, BlockAddr block, bool is_write,
               Cycle now) override;
  using MemorySystem::access;

  int num_procs() const override { return config_.num_procs; }
  int block_size() const override { return config_.block_size; }
  NodeId cluster_of(ProcId proc) const override {
    return static_cast<NodeId>(proc);
  }

  const ProtocolStats& stats() const override { return stats_; }
  const SciStats& sci_stats() const { return sci_stats_; }
  CacheStats aggregate_cache_stats() const override;
  const SciConfig& config() const { return config_; }

  /// Pointer storage per cache line: forward + back pointer.
  int pointer_bits_per_line() const;

  // --- introspection for tests ---
  const Cache& cache(ProcId proc) const { return caches_[proc]; }
  /// Sharing list for `block`, head first; empty when uncached.
  std::vector<NodeId> list_of(BlockAddr block) const;
  /// True when the head holds the block modified.
  bool dirty_at_head(BlockAddr block) const;
  std::uint32_t latest_version(BlockAddr block) const;

 private:
  struct BlockList;

  NodeId home_of(BlockAddr block) const {
    return static_cast<NodeId>(
        block % static_cast<BlockAddr>(config_.num_procs));
  }

  void count_msg(MsgClass cls, NodeId from, NodeId to);
  std::uint32_t memory_version(BlockAddr block) const;
  std::uint32_t bump_latest(BlockAddr block);
  void check_version(BlockAddr block, std::uint32_t observed) const;

  // Unlinks `node` from `block`'s list, counting the neighbour updates.
  // `list` must currently contain `node`.
  void unlink(BlockList& list, BlockAddr block, NodeId node);
  // Invalidates every list element after the head, serially. Returns the
  // added latency and records the purge length.
  Cycle purge_successors(BlockList& list, BlockAddr block, NodeId head);
  // Handles a line displaced from `proc`'s cache (mandatory unlink).
  void handle_eviction(ProcId proc, const EvictedLine& evicted);
  void fill_cache(ProcId proc, BlockAddr block, LineState state,
                  std::uint32_t version);

  SciConfig config_;
  std::vector<Cache> caches_;
  std::unordered_map<BlockAddr, BlockList> lists_;
  std::unordered_map<BlockAddr, std::uint32_t> latest_;
  std::unordered_map<BlockAddr, std::uint32_t> memory_;
  ProtocolStats stats_;
  SciStats sci_stats_;
};

}  // namespace dircc
