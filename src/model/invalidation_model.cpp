#include "model/invalidation_model.hpp"

#include <numeric>
#include <vector>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace dircc {

namespace {

/// C(a, s) / C(b, s) without overflow, for 0 <= a <= b.
double choose_ratio(int a, int b, int s) {
  if (s > a) {
    return 0.0;
  }
  double ratio = 1.0;
  for (int j = 0; j < s; ++j) {
    ratio *= static_cast<double>(a - j) / static_cast<double>(b - j);
  }
  return ratio;
}

}  // namespace

double expected_invalidations_full(int sharers) {
  return static_cast<double>(sharers);
}

double expected_invalidations_broadcast(int num_nodes, int pointers,
                                        int sharers) {
  if (sharers <= pointers) {
    return static_cast<double>(sharers);
  }
  return static_cast<double>(num_nodes - 1);
}

double expected_invalidations_no_broadcast(int pointers, int sharers) {
  return static_cast<double>(sharers < pointers ? sharers : pointers);
}

double expected_invalidations_coarse(int num_nodes, int pointers,
                                     int region_size, int sharers) {
  ensure(region_size >= 1 && num_nodes % region_size == 0,
         "closed form needs equal-sized regions");
  ensure(sharers < num_nodes, "need room for a distinct writer");
  if (sharers <= pointers) {
    return static_cast<double>(sharers);  // still precise
  }
  const int regions = num_nodes / region_size;
  const int pool = num_nodes - 1;  // candidate sharers exclude the writer
  // A region away from the writer is invalidated unless none of its
  // region_size slots drew a sharer; the writer's own region has only
  // region_size - 1 slots and the writer itself is never a target.
  const double p_other =
      1.0 - choose_ratio(pool - region_size, pool, sharers);
  const double p_writer_region =
      1.0 - choose_ratio(pool - (region_size - 1), pool, sharers);
  return static_cast<double>(regions - 1) *
             static_cast<double>(region_size) * p_other +
         static_cast<double>(region_size - 1) * p_writer_region;
}

double InvalidationModel::mean_invalidations(const SchemeConfig& scheme,
                                             int sharers) const {
  ensure(sharers >= 0 && sharers < scheme.num_nodes,
         "sharer count must leave room for a distinct writer");
  const auto format = make_format(scheme);
  Rng rng(seed ^ (static_cast<std::uint64_t>(sharers) << 32));

  std::vector<NodeId> nodes(static_cast<std::size_t>(scheme.num_nodes));
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::vector<NodeId> targets;
  SharerRepr repr;

  std::uint64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    // Partial Fisher-Yates: the first `sharers`+1 slots become the random
    // distinct clusters; slot `sharers` is the writer.
    for (int i = 0; i <= sharers; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.between(static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(scheme.num_nodes - 1)));
      std::swap(nodes[static_cast<std::size_t>(i)], nodes[j]);
    }
    const NodeId writer = nodes[static_cast<std::size_t>(sharers)];
    repr.reset();
    for (int i = 0; i < sharers; ++i) {
      // A displaced sharer (Dir_iNB) no longer holds a copy, so it simply
      // drops out of the tracked set; the model charges no invalidation
      // here because Figure 2 counts write-time invalidations only.
      (void)format->add_sharer(repr, nodes[static_cast<std::size_t>(i)]);
    }
    targets.clear();
    format->collect_targets(repr, writer, targets);
    total += targets.size();
  }
  return static_cast<double>(total) / static_cast<double>(trials);
}

}  // namespace dircc
