// Monte-Carlo invalidation model (Figure 2 of the paper).
//
// For a block shared by s randomly chosen clusters, how many invalidations
// does each directory scheme send when a distinct cluster writes it? The
// full bit vector sends exactly s (the intrinsic minimum); the limited
// schemes overshoot by the amount their representation has blurred.
#pragma once

#include <cstdint>

#include "directory/format.hpp"

namespace dircc {

struct InvalidationModel {
  int trials = 20000;
  std::uint64_t seed = 7;

  /// Mean invalidations sent on a write to a block with `sharers` distinct
  /// random sharers (the writer is a further distinct cluster), under
  /// `scheme`. Sharers are inserted in random order, as in the paper's
  /// "randomly chosen for each invalidation event" methodology.
  double mean_invalidations(const SchemeConfig& scheme, int sharers) const;
};

// Closed-form expectations for the same experiment (writer and sharers
// uniformly random and distinct). These cross-check the Monte-Carlo model
// and give the exact curves of Figure 2 without sampling noise.

/// Dir_P: exactly the sharer count.
double expected_invalidations_full(int sharers);

/// Dir_iB: s for s <= i, otherwise broadcast to everyone but the writer.
double expected_invalidations_broadcast(int num_nodes, int pointers,
                                        int sharers);

/// Dir_iNB: the tracked set never exceeds the pointer count.
double expected_invalidations_no_broadcast(int pointers, int sharers);

/// Dir_iCV_r via hypergeometric region occupancy. Requires region_size to
/// divide num_nodes (equal regions).
double expected_invalidations_coarse(int num_nodes, int pointers,
                                     int region_size, int sharers);

}  // namespace dircc
