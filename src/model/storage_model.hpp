// Directory storage model (Sections 3, 4.2 and Table 1).
//
// Computes the directory memory a machine configuration needs — per-entry
// state bits for each scheme, sparse-directory tag bits, and the resulting
// overhead relative to main memory — reproducing Table 1 and the Section 5
// "savings factor of 54" arithmetic.
#pragma once

#include <cstdint>
#include <string>

#include "common/ensure.hpp"
#include "directory/format.hpp"

namespace dircc {

struct MachineModel {
  int processors = 64;
  int procs_per_cluster = 4;
  std::uint64_t mem_bytes_per_proc = 16ULL << 20;    ///< 16 MB
  std::uint64_t cache_bytes_per_proc = 256ULL << 10; ///< 256 KB
  int block_size = 16;
  SchemeConfig scheme;  ///< scheme.num_nodes must equal clusters()
  int sparsity = 1;     ///< memory blocks per directory entry; 1 = full
  /// Blocks sharing one wide entry (Section 7 grouping). Each grouped
  /// block needs its own 2-bit state and dirty-owner pointer next to the
  /// shared sharer field; with the default of 1 the classic
  /// one-dirty-bit-per-entry accounting applies.
  int blocks_per_entry = 1;

  int clusters() const {
    // Integer division here used to silently truncate (65 procs at 4 per
    // cluster "worked" and modeled a 16-cluster machine); a machine whose
    // cluster size does not divide its processor count is a config error.
    ensure(procs_per_cluster >= 1, "procs_per_cluster must be positive");
    ensure(processors % procs_per_cluster == 0,
           "processors must be a multiple of procs_per_cluster");
    return processors / procs_per_cluster;
  }
  std::uint64_t total_mem_bytes() const {
    return mem_bytes_per_proc * static_cast<std::uint64_t>(processors);
  }
  std::uint64_t total_cache_bytes() const {
    return cache_bytes_per_proc * static_cast<std::uint64_t>(processors);
  }
  std::uint64_t total_mem_blocks() const {
    return total_mem_bytes() / static_cast<std::uint64_t>(block_size);
  }
  std::uint64_t total_cache_blocks() const {
    return total_cache_bytes() / static_cast<std::uint64_t>(block_size);
  }

  /// Directory entries across the whole machine.
  std::uint64_t directory_entries() const {
    return total_mem_blocks() / static_cast<std::uint64_t>(sparsity) /
           static_cast<std::uint64_t>(blocks_per_entry);
  }

  /// Sparse directories address 1/sparsity of the blocks per entry slot, so
  /// a tag of log2(sparsity) bits disambiguates (Section 6: "a full bit
  /// vector directory with sparsity 64 requires ... 6 bits of tag").
  int tag_bits() const { return log2_ceil(static_cast<std::uint64_t>(sparsity)); }

  /// Sharer state + 1 dirty bit + sparse tag.
  int bits_per_entry() const;

  /// Total directory bits for the machine.
  std::uint64_t directory_bits() const {
    return directory_entries() * static_cast<std::uint64_t>(bits_per_entry());
  }

  /// Directory memory as a fraction of main memory.
  double overhead_fraction() const {
    return static_cast<double>(directory_bits()) /
           static_cast<double>(total_mem_bytes() * 8);
  }

  /// Storage ratio versus the non-sparse full-bit-vector organization on
  /// the same machine (the paper's "savings factor").
  double savings_vs_full_bit_vector() const;

  /// Scheme display name, e.g. "sparse(4) Dir8CV4".
  std::string describe_scheme() const;
};

/// Two-level directory storage accounting (docs/HIERARCHY.md).
///
/// The inter-chip level keeps one (possibly sparse) entry per tracked
/// memory block at the homes, with sharer sets over *chips*; each chip adds
/// a duplicate-tag-style intra-chip directory sized by the chip's aggregate
/// cache, with sharer sets over the chip's local clusters. `machine`
/// supplies the geometry (its `scheme`/`sparsity` fields are ignored here —
/// the per-level schemes below replace them).
struct HierStorageModel {
  MachineModel machine;
  int chips = 4;
  SchemeConfig inter;      ///< inter.num_nodes must equal chips
  int inter_sparsity = 1;  ///< memory blocks per inter entry; 1 = full
  SchemeConfig intra;      ///< intra.num_nodes must equal clusters_per_chip()
  /// Intra entries per chip as a multiple of the chip's cached blocks
  /// (1.0 = exactly cache-sized; >1 leaves slack against conflict misses).
  double intra_slack = 1.0;

  int clusters_per_chip() const {
    ensure(chips >= 1, "chips must be positive");
    ensure(machine.clusters() % chips == 0,
           "chips must divide the cluster count");
    return machine.clusters() / chips;
  }

  std::uint64_t inter_entries() const {
    return machine.total_mem_blocks() /
           static_cast<std::uint64_t>(inter_sparsity);
  }
  int inter_bits_per_entry() const;
  std::uint64_t inter_bits() const {
    return inter_entries() * static_cast<std::uint64_t>(inter_bits_per_entry());
  }

  std::uint64_t intra_entries_per_chip() const;
  int intra_bits_per_entry() const;
  /// Intra-chip directory bits summed over all chips.
  std::uint64_t intra_bits() const {
    return static_cast<std::uint64_t>(chips) * intra_entries_per_chip() *
           static_cast<std::uint64_t>(intra_bits_per_entry());
  }

  std::uint64_t total_bits() const { return inter_bits() + intra_bits(); }
  double overhead_fraction() const {
    return static_cast<double>(total_bits()) /
           static_cast<double>(machine.total_mem_bytes() * 8);
  }
};

/// Directoryless (DLS) baseline: coherence by broadcast, no directory
/// storage at all. Here so scaling studies can report flat, two-level, and
/// directoryless organizations through one accounting surface.
inline std::uint64_t dls_directory_bits() { return 0; }

}  // namespace dircc
