#include "model/storage_model.hpp"

#include "common/ensure.hpp"

namespace dircc {

int MachineModel::bits_per_entry() const {
  ensure(scheme.num_nodes == clusters(),
         "scheme node count must equal the cluster count");
  ensure(blocks_per_entry >= 1, "blocks_per_entry must be positive");
  const auto format = make_format(scheme);
  if (blocks_per_entry == 1) {
    return format->state_bits() + 1 /*dirty*/ + tag_bits();
  }
  // Grouped entry: shared sharer field + per-block 2-bit state and dirty
  // owner pointer.
  const int owner_bits =
      log2_ceil(static_cast<std::uint64_t>(clusters()));
  return format->state_bits() +
         blocks_per_entry * (2 + owner_bits) + tag_bits();
}

double MachineModel::savings_vs_full_bit_vector() const {
  MachineModel baseline = *this;
  baseline.scheme = SchemeConfig::full(clusters());
  baseline.sparsity = 1;
  baseline.blocks_per_entry = 1;
  return static_cast<double>(baseline.directory_bits()) /
         static_cast<double>(directory_bits());
}

std::string MachineModel::describe_scheme() const {
  const auto format = make_format(scheme);
  if (sparsity == 1) {
    return format->name();
  }
  return "sparse(" + std::to_string(sparsity) + ") " + format->name();
}

}  // namespace dircc
