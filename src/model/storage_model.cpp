#include "model/storage_model.hpp"

#include "common/ensure.hpp"

namespace dircc {

int MachineModel::bits_per_entry() const {
  ensure(scheme.num_nodes == clusters(),
         "scheme node count must equal the cluster count");
  ensure(blocks_per_entry >= 1, "blocks_per_entry must be positive");
  const auto format = make_format(scheme);
  if (blocks_per_entry == 1) {
    return format->state_bits() + 1 /*dirty*/ + tag_bits();
  }
  // Grouped entry: shared sharer field + per-block 2-bit state and dirty
  // owner pointer.
  const int owner_bits =
      log2_ceil(static_cast<std::uint64_t>(clusters()));
  return format->state_bits() +
         blocks_per_entry * (2 + owner_bits) + tag_bits();
}

double MachineModel::savings_vs_full_bit_vector() const {
  MachineModel baseline = *this;
  baseline.scheme = SchemeConfig::full(clusters());
  baseline.sparsity = 1;
  baseline.blocks_per_entry = 1;
  return static_cast<double>(baseline.directory_bits()) /
         static_cast<double>(directory_bits());
}

int HierStorageModel::inter_bits_per_entry() const {
  ensure(inter.num_nodes == chips,
         "inter scheme node count must equal the chip count");
  const auto format = make_format(inter);
  return format->state_bits() + 1 /*dirty*/ +
         log2_ceil(static_cast<std::uint64_t>(inter_sparsity));
}

std::uint64_t HierStorageModel::intra_entries_per_chip() const {
  const std::uint64_t chip_cache_blocks =
      machine.total_cache_blocks() / static_cast<std::uint64_t>(chips);
  const auto entries =
      static_cast<std::uint64_t>(static_cast<double>(chip_cache_blocks) *
                                 intra_slack);
  ensure(entries >= 1, "intra directory must hold at least one entry");
  return entries;
}

int HierStorageModel::intra_bits_per_entry() const {
  ensure(intra.num_nodes == clusters_per_chip(),
         "intra scheme node count must equal clusters per chip");
  const auto format = make_format(intra);
  // Cache-sized structure: the tag must pick out one block among all the
  // memory blocks that can map to a slot.
  const std::uint64_t slots = intra_entries_per_chip();
  const std::uint64_t tag_space =
      machine.total_mem_blocks() > slots ? machine.total_mem_blocks() / slots
                                         : 1;
  return format->state_bits() + 1 /*dirty*/ + log2_ceil(tag_space);
}

std::string MachineModel::describe_scheme() const {
  const auto format = make_format(scheme);
  if (sparsity == 1) {
    return format->name();
  }
  return "sparse(" + std::to_string(sparsity) + ") " + format->name();
}

}  // namespace dircc
