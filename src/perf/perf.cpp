#include "perf/perf.hpp"

#include <sys/resource.h>
#include <sys/utsname.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/types.hpp"

#include "common/ensure.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "directory/format.hpp"
#include "obs/attrib/collector.hpp"
#include "sim/sharded_engine.hpp"
#include "trace/datacenter.hpp"
#include "trace/generators.hpp"

namespace dircc::perf {

namespace {

// The paper's Section 5 machine, pinned to the same parameters the bench
// binaries use so the fig07_10 matrix measures exactly the cells the
// golden table runs.
constexpr int kProcs = 32;
constexpr int kBlockSize = 16;

SystemConfig perf_machine(const SchemeConfig& scheme, std::uint64_t seed) {
  SystemConfig config;
  config.num_procs = kProcs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 1024;
  config.cache_assoc = 4;
  config.block_size = kBlockSize;
  config.scheme = scheme;
  config.seed = seed;
  return config;
}

// Sparse directory at size factor 1 (same shaping as bench/make_sparse).
void make_sparse(SystemConfig& config) {
  const std::uint64_t total_cache_lines =
      config.cache_lines_per_proc *
      static_cast<std::uint64_t>(config.num_procs);
  const auto clusters = static_cast<std::uint64_t>(config.num_clusters());
  std::uint64_t per_home = total_cache_lines / clusters;
  const std::uint64_t assoc = 4;
  per_home = ceil_div(per_home, assoc) * assoc;
  config.store.sparse = true;
  config.store.sparse_entries = per_home;
  config.store.sparse_assoc = static_cast<int>(assoc);
  config.store.policy = ReplPolicy::kRandom;
}

struct SchemeDim {
  const char* label;
  SchemeConfig config;
};

std::vector<SchemeDim> scheme_dims(bool reduced) {
  std::vector<SchemeDim> dims;
  dims.push_back({"full", SchemeConfig::full(kProcs)});
  if (!reduced) {
    dims.push_back({"cv", SchemeConfig::coarse(kProcs, 3, 2)});
    dims.push_back({"b", SchemeConfig::broadcast(kProcs, 3)});
  }
  dims.push_back({"nb", SchemeConfig::no_broadcast(kProcs, 3)});
  return dims;
}

std::vector<AppKind> app_dims(bool reduced) {
  if (reduced) {
    return {AppKind::kMp3d, AppKind::kLu};
  }
  return {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d, AppKind::kLocusRoute};
}

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  gmtime_r(&now, &parts);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &parts);
  return buffer;
}

PerfAggregate aggregate_cells(const std::vector<PerfCellResult>& cells,
                              const std::string& grid) {
  PerfAggregate out;
  for (const PerfCellResult& cell : cells) {
    if (!grid.empty() && cell.grid != grid) {
      continue;
    }
    ++out.cells;
    out.accesses += cell.accesses;
    out.trace_events += cell.trace_events;
    out.build_ms += cell.build_ms;
    out.sim_ms += cell.p50_ms;
  }
  if (out.sim_ms > 0.0) {
    out.accesses_per_sec =
        static_cast<double>(out.accesses) / (out.sim_ms / 1000.0);
  }
  return out;
}

void emit_aggregate(JsonWriter& json, const char* name,
                    const PerfAggregate& aggregate) {
  json.key(name);
  json.begin_object();
  json.field("cells", aggregate.cells);
  json.field("accesses", aggregate.accesses);
  json.field("trace_events", aggregate.trace_events);
  json.field("build_ms", aggregate.build_ms);
  json.field("sim_ms", aggregate.sim_ms);
  json.field("accesses_per_sec", aggregate.accesses_per_sec);
  json.field("mcycles_per_sec", aggregate.mcycles_per_sec);
  json.end_object();
}

std::string fmt_rate(double per_sec) {
  std::ostringstream out;
  if (per_sec >= 1e6) {
    out << std::fixed << std::setprecision(2) << per_sec / 1e6 << "M";
  } else {
    out << std::fixed << std::setprecision(1) << per_sec / 1e3 << "k";
  }
  return out.str();
}

std::string fmt_ms(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << ms;
  return out.str();
}

}  // namespace

MachineInfo machine_info() {
  MachineInfo info;
  utsname names{};
  if (uname(&names) == 0) {
    info.os = std::string(names.sysname) + " " + names.release;
    info.arch = names.machine;
  } else {
    info.os = "unknown";
    info.arch = "unknown";
  }
#if defined(__clang__)
  info.compiler = std::string("clang ") + std::to_string(__clang_major__) +
                  "." + std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  info.compiler = std::string("gcc ") + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__);
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "Release";
#else
  info.build_type = "Debug";
#endif
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

std::string git_sha() {
  FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) {
    return "unknown";
  }
  char buffer[128] = {};
  std::string out;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    out = buffer;
  }
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::uint64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size());
  auto index = static_cast<std::size_t>(std::ceil(rank));
  index = index == 0 ? 0 : index - 1;
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

std::vector<PerfCell> perf_matrix(const MatrixOptions& options) {
  ensure(options.name == "fig07_10" || options.name == "full" ||
             options.name == "smoke" || options.name == "streaming",
         "unknown perf matrix (expected fig07_10, full, smoke or "
         "streaming)");
  if (options.name == "streaming") {
    // Bounded-lookahead cells: throughput of the pull path plus the
    // flat-memory watermark. Client count is pinned; --scale grows the
    // event count without touching the data-set shape, which is exactly
    // the axis the O(1)-memory claim varies.
    constexpr std::uint64_t kClients = 256;
    std::vector<PerfCell> cells;
    for (const DatacenterKind kind :
         {DatacenterKind::kKv, DatacenterKind::kQueue,
          DatacenterKind::kOltp}) {
      for (const SchemeDim& scheme :
           std::vector<SchemeDim>{{"full", SchemeConfig::full(kProcs)},
                                  {"nb",
                                   SchemeConfig::no_broadcast(kProcs, 3)}}) {
        PerfCell cell;
        const std::string scheme_name = make_format(scheme.config)->name();
        cell.key = std::string("perf/stream=") + datacenter_name(kind) +
                   "/scheme=" + scheme_name;
        cell.fields = {{"app", datacenter_name(kind)},
                       {"scheme", scheme_name},
                       {"backend", "analytic"},
                       {"store", "dense"}};
        cell.grid = "streaming";
        const std::uint64_t seed = options.seed;
        const double scale = options.scale;
        cell.stream = [kind, seed, scale] {
          return make_datacenter_source(kind, kProcs, kBlockSize, kClients,
                                        seed, scale);
        };
        cell.system = perf_machine(scheme.config, options.seed);
        cells.push_back(std::move(cell));
      }
    }
    return cells;
  }
  const bool reduced = options.name == "smoke";
  const bool extended = options.name != "fig07_10";

  struct BackendDim {
    const char* label;
    BackendKind kind;
  };
  std::vector<BackendDim> backends = {{"analytic", BackendKind::kAnalytic}};
  if (extended) {
    backends.push_back({"queued", BackendKind::kQueued});
  }
  std::vector<const char*> stores = {"dense"};
  if (extended) {
    stores.push_back("sparse");
  }

  std::vector<PerfCell> cells;
  for (const AppKind app : app_dims(reduced)) {
    for (const SchemeDim& scheme : scheme_dims(reduced)) {
      for (const BackendDim& backend : backends) {
        for (const char* store : stores) {
          const bool sparse = std::string(store) == "sparse";
          PerfCell cell;
          const std::string scheme_name =
              make_format(scheme.config)->name();
          cell.key = std::string("perf/app=") + app_name(app) +
                     "/scheme=" + scheme_name + "/backend=" + backend.label +
                     "/store=" + store;
          cell.fields = {{"app", app_name(app)},
                         {"scheme", scheme_name},
                         {"backend", backend.label},
                         {"store", store}};
          cell.grid = (backend.kind == BackendKind::kAnalytic && !sparse &&
                       !reduced)
                          ? "fig07_10"
                          : "extended";
          cell.trace = harness::app_trace(app, kProcs, kBlockSize,
                                          options.seed, options.scale);
          cell.system = perf_machine(scheme.config, options.seed);
          cell.system.backend = backend.kind;
          if (sparse) {
            make_sparse(cell.system);
          }
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

PerfReport run_matrix(const std::vector<PerfCell>& cells,
                      const MatrixOptions& options, int reps,
                      const PerfProgress& progress, bool obs_overhead) {
  ensure(reps > 0, "perf reps must be positive");
  PerfReport report;
  report.matrix = options;
  report.reps = reps;
  report.machine = machine_info();
  report.git = git_sha();
  report.cells.reserve(cells.size());

  harness::TraceCache cache;
  std::size_t done = 0;
  for (const PerfCell& cell : cells) {
    if (progress) {
      progress(done, cells.size(), cell.key);
    }
    PerfCellResult result;
    result.key = cell.key;
    result.fields = cell.fields;
    result.grid = cell.grid;

    std::shared_ptr<const ProgramTrace> trace;
    if (cell.stream) {
      // Streaming cell: nothing to build up front — sources are created
      // per rep (they are single-shot), and the first one's construction
      // is the build phase.
      result.trace_bytes = 0;
    } else {
      const double build_start = now_ms();
      trace = cache.get(cell.trace);
      result.build_ms = now_ms() - build_start;
      result.trace_events = trace->total_events();
      result.trace_bytes = result.trace_events * sizeof(TraceEvent);
    }

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
      std::unique_ptr<EventSource> source;
      if (cell.stream) {
        const double build_start = now_ms();
        source = cell.stream();
        if (rep == 0) {
          result.build_ms = now_ms() - build_start;
        }
      }
      const double sim_start = now_ms();
      CoherenceSystem system(cell.system);
      Engine engine = cell.stream
                          ? Engine(system, *source, cell.engine)
                          : Engine(system, *trace, cell.engine);
      const RunResult run = engine.run();
      const double elapsed = now_ms() - sim_start;
      samples.push_back(elapsed);
      result.sim_ms.add(elapsed);
      if (rep == 0) {
        result.accesses = run.protocol.accesses;
        result.sim_cycles = run.exec_cycles;
        if (cell.stream) {
          result.trace_events = source->events_pulled();
        }
      } else {
        // The simulator is deterministic; a rep that diverges means the
        // measurement harness itself is broken.
        ensure(run.exec_cycles == result.sim_cycles,
               "perf rep diverged from the first repetition");
      }
    }
    if (obs_overhead) {
      // Same cell, same reps, with the latency-attribution collector
      // attached — the delta against the base pass is the obs cost.
      std::vector<double> attrib_samples;
      attrib_samples.reserve(static_cast<std::size_t>(reps));
      for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<EventSource> source;
        if (cell.stream) {
          source = cell.stream();
        }
        const double sim_start = now_ms();
        CoherenceSystem system(cell.system);
        obs::attrib::Collector collector;
        system.attach_attribution(&collector);
        Engine engine = cell.stream
                            ? Engine(system, *source, cell.engine)
                            : Engine(system, *trace, cell.engine);
        const RunResult run = engine.run();
        attrib_samples.push_back(now_ms() - sim_start);
        // Attribution is pure observation; a cycle-count divergence means
        // a sink mutated backend state.
        ensure(run.exec_cycles == result.sim_cycles,
               "attribution pass diverged from the base repetitions");
      }
      result.attrib_p50_ms = percentile(attrib_samples, 50.0);
    }
    if (cell.stream) {
      result.peak_rss = peak_rss_bytes();
    }
    result.p50_ms = percentile(samples, 50.0);
    result.p95_ms = percentile(samples, 95.0);
    // Engine-threads axis: the same cell re-timed under the sharded engine
    // at every requested thread count. Results must not move — the
    // determinism contract (docs/PARALLELISM.md) is enforced per rep.
    const bool axis_active = std::any_of(
        options.threads_axis.begin(), options.threads_axis.end(),
        [](int threads) { return threads > 1; });
    if (axis_active) {
      PerfCellResult::ThreadsPoint serial;
      serial.engine_threads = 1;
      serial.p50_ms = result.p50_ms;
      serial.p95_ms = result.p95_ms;
      serial.speedup = 1.0;
      if (result.p50_ms > 0.0) {
        serial.accesses_per_sec =
            static_cast<double>(result.accesses) / (result.p50_ms / 1000.0);
      }
      result.threads.push_back(serial);
      for (const int threads : options.threads_axis) {
        if (threads <= 1) {
          continue;
        }
        EngineConfig sharded_config = cell.engine;
        sharded_config.engine_threads = threads;
        std::vector<double> axis_samples;
        axis_samples.reserve(static_cast<std::size_t>(reps));
        for (int rep = 0; rep < reps; ++rep) {
          std::unique_ptr<EventSource> source;
          if (cell.stream) {
            source = cell.stream();
          }
          const double sim_start = now_ms();
          CoherenceSystem system(cell.system);
          ShardedEngine engine =
              cell.stream ? ShardedEngine(system, *source, sharded_config)
                          : ShardedEngine(system, *trace, sharded_config);
          const RunResult run = engine.run();
          axis_samples.push_back(now_ms() - sim_start);
          ensure(run.exec_cycles == result.sim_cycles,
                 "sharded engine diverged from the serial repetitions");
        }
        PerfCellResult::ThreadsPoint point;
        point.engine_threads = threads;
        point.p50_ms = percentile(axis_samples, 50.0);
        point.p95_ms = percentile(axis_samples, 95.0);
        if (point.p50_ms > 0.0) {
          point.accesses_per_sec =
              static_cast<double>(result.accesses) / (point.p50_ms / 1000.0);
          point.speedup = result.p50_ms / point.p50_ms;
        }
        result.threads.push_back(point);
      }
    }
    const double p50_sec = result.p50_ms / 1000.0;
    const double best_sec = result.sim_ms.min() / 1000.0;
    if (p50_sec > 0.0) {
      result.accesses_per_sec =
          static_cast<double>(result.accesses) / p50_sec;
      result.mcycles_per_sec =
          static_cast<double>(result.sim_cycles) / p50_sec / 1e6;
    }
    if (best_sec > 0.0) {
      result.best_accesses_per_sec =
          static_cast<double>(result.accesses) / best_sec;
    }
    report.cells.push_back(std::move(result));
    ++done;
  }
  if (progress) {
    progress(done, cells.size(), "");
  }

  report.all = aggregate_cells(report.cells, "");
  report.fig07_10 = aggregate_cells(report.cells, "fig07_10");
  double cycles = 0.0;
  double fig_cycles = 0.0;
  for (const PerfCellResult& cell : report.cells) {
    cycles += static_cast<double>(cell.sim_cycles);
    if (cell.grid == "fig07_10") {
      fig_cycles += static_cast<double>(cell.sim_cycles);
    }
  }
  if (report.all.sim_ms > 0.0) {
    report.all.mcycles_per_sec = cycles / (report.all.sim_ms / 1000.0) / 1e6;
  }
  if (report.fig07_10.sim_ms > 0.0) {
    report.fig07_10.mcycles_per_sec =
        fig_cycles / (report.fig07_10.sim_ms / 1000.0) / 1e6;
  }
  // Aggregate the engine-threads axis: sum-of-p50 speedups over the whole
  // matrix and the fig07_10 subset, per thread count.
  if (!report.cells.empty() && !report.cells.front().threads.empty()) {
    const std::size_t points = report.cells.front().threads.size();
    for (std::size_t p = 0; p < points; ++p) {
      ThreadsScaling scaling;
      scaling.engine_threads =
          report.cells.front().threads[p].engine_threads;
      std::uint64_t all_accesses = 0;
      std::uint64_t fig_accesses = 0;
      for (const PerfCellResult& cell : report.cells) {
        const PerfCellResult::ThreadsPoint& point = cell.threads[p];
        scaling.all_sim_ms += point.p50_ms;
        all_accesses += cell.accesses;
        if (cell.grid == "fig07_10") {
          scaling.fig_sim_ms += point.p50_ms;
          fig_accesses += cell.accesses;
        }
      }
      if (scaling.all_sim_ms > 0.0) {
        scaling.all_accesses_per_sec =
            static_cast<double>(all_accesses) / (scaling.all_sim_ms / 1000.0);
      }
      if (scaling.fig_sim_ms > 0.0) {
        scaling.fig_accesses_per_sec =
            static_cast<double>(fig_accesses) / (scaling.fig_sim_ms / 1000.0);
      }
      report.threads_scaling.push_back(scaling);
    }
    const double all_serial_ms = report.threads_scaling.front().all_sim_ms;
    const double fig_serial_ms = report.threads_scaling.front().fig_sim_ms;
    for (ThreadsScaling& scaling : report.threads_scaling) {
      if (scaling.all_sim_ms > 0.0) {
        scaling.all_speedup = all_serial_ms / scaling.all_sim_ms;
      }
      if (scaling.fig_sim_ms > 0.0) {
        scaling.fig_speedup = fig_serial_ms / scaling.fig_sim_ms;
      }
    }
  }
  report.obs_overhead.measured = obs_overhead;
  report.obs_overhead.obs_compiled = obs::compiled();
  if (obs_overhead) {
    double attrib_ms = 0.0;
    for (const PerfCellResult& cell : report.cells) {
      attrib_ms += cell.attrib_p50_ms;
    }
    report.obs_overhead.base_sim_ms = report.all.sim_ms;
    report.obs_overhead.attrib_sim_ms = attrib_ms;
    report.obs_overhead.base_accesses_per_sec = report.all.accesses_per_sec;
    if (attrib_ms > 0.0) {
      report.obs_overhead.attrib_accesses_per_sec =
          static_cast<double>(report.all.accesses) / (attrib_ms / 1000.0);
    }
    if (report.all.sim_ms > 0.0) {
      report.obs_overhead.overhead_fraction =
          attrib_ms / report.all.sim_ms - 1.0;
    }
  }
  report.peak_rss = peak_rss_bytes();
  return report;
}

std::optional<Baseline> load_baseline(const std::string& text,
                                      const std::string& path,
                                      std::string* error) {
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(text, doc, &parse_error)) {
    if (error != nullptr) {
      *error = "baseline is not valid JSON: " + parse_error;
    }
    return std::nullopt;
  }
  if (doc.string_or("schema", "") != kSchemaName) {
    if (error != nullptr) {
      *error = "baseline is not a " + std::string(kSchemaName) + " document";
    }
    return std::nullopt;
  }
  if (static_cast<int>(doc.number_or("schema_version", 0)) !=
      kSchemaVersion) {
    if (error != nullptr) {
      *error = "baseline schema_version mismatch (expected " +
               std::to_string(kSchemaVersion) + ")";
    }
    return std::nullopt;
  }
  Baseline baseline;
  baseline.path = path;
  baseline.git = doc.string_or("git_sha", "unknown");
  if (const JsonValue* all = doc.get("aggregate", "all")) {
    baseline.all_accesses_per_sec = all->number_or("accesses_per_sec", 0.0);
  }
  if (const JsonValue* fig = doc.get("aggregate", "fig07_10")) {
    baseline.fig_accesses_per_sec = fig->number_or("accesses_per_sec", 0.0);
  }
  if (const JsonValue* cells = doc.find("cells"); cells != nullptr &&
                                                  cells->is_array()) {
    for (const JsonValue& cell : cells->items()) {
      const std::string key = cell.string_or("key", "");
      const double rate = cell.number_or("accesses_per_sec", 0.0);
      if (!key.empty() && rate > 0.0) {
        baseline.cell_throughput.emplace_back(key, rate);
      }
    }
  }
  return baseline;
}

void write_report(std::ostream& out, const PerfReport& report,
                  const Baseline* baseline) {
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", kSchemaName);
  json.field("schema_version", static_cast<std::uint64_t>(kSchemaVersion));
  json.field("generated_utc", utc_timestamp());
  json.field("git_sha", report.git);
  json.key("machine");
  json.begin_object();
  json.field("os", report.machine.os);
  json.field("arch", report.machine.arch);
  json.field("compiler", report.machine.compiler);
  json.field("build_type", report.machine.build_type);
  json.field("hardware_threads",
             static_cast<std::uint64_t>(report.machine.hardware_threads));
  json.end_object();
  json.key("config");
  json.begin_object();
  json.field("matrix", report.matrix.name);
  json.field("reps", static_cast<std::uint64_t>(report.reps));
  json.field("scale", report.matrix.scale);
  json.field("seed", report.matrix.seed);
  json.end_object();
  json.field("peak_rss_bytes", report.peak_rss);

  json.key("cells");
  json.begin_array();
  for (const PerfCellResult& cell : report.cells) {
    json.begin_object();
    json.field("key", cell.key);
    for (const auto& [name, value] : cell.fields) {
      json.field(name, value);
    }
    json.field("grid", cell.grid);
    json.field("accesses", cell.accesses);
    json.field("trace_events", cell.trace_events);
    json.field("trace_bytes", cell.trace_bytes);
    json.field("sim_cycles", cell.sim_cycles);
    json.field("build_ms", cell.build_ms);
    json.key("sim_ms");
    json.begin_object();
    json.field("count", cell.sim_ms.count());
    json.field("mean", cell.sim_ms.mean());
    json.field("stddev", cell.sim_ms.stddev());
    json.field("min", cell.sim_ms.min());
    json.field("max", cell.sim_ms.max());
    json.field("p50", cell.p50_ms);
    json.field("p95", cell.p95_ms);
    json.end_object();
    json.field("accesses_per_sec", cell.accesses_per_sec);
    json.field("best_accesses_per_sec", cell.best_accesses_per_sec);
    json.field("mcycles_per_sec", cell.mcycles_per_sec);
    if (cell.peak_rss > 0) {
      json.field("peak_rss_bytes", cell.peak_rss);
    }
    if (report.obs_overhead.measured) {
      json.field("attrib_p50_ms", cell.attrib_p50_ms);
    }
    if (!cell.threads.empty()) {
      json.key("threads");
      json.begin_array();
      for (const PerfCellResult::ThreadsPoint& point : cell.threads) {
        json.begin_object();
        json.field("engine_threads",
                   static_cast<std::uint64_t>(point.engine_threads));
        json.field("p50_ms", point.p50_ms);
        json.field("p95_ms", point.p95_ms);
        json.field("accesses_per_sec", point.accesses_per_sec);
        json.field("speedup", point.speedup);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();

  json.key("aggregate");
  json.begin_object();
  emit_aggregate(json, "all", report.all);
  emit_aggregate(json, "fig07_10", report.fig07_10);
  json.end_object();

  if (!report.threads_scaling.empty()) {
    json.key("config_threads_axis");
    json.begin_array();
    for (const int threads : report.matrix.threads_axis) {
      json.value(static_cast<std::uint64_t>(threads));
    }
    json.end_array();
    json.key("threads_scaling");
    json.begin_array();
    for (const ThreadsScaling& scaling : report.threads_scaling) {
      json.begin_object();
      json.field("engine_threads",
                 static_cast<std::uint64_t>(scaling.engine_threads));
      json.field("all_sim_ms", scaling.all_sim_ms);
      json.field("all_accesses_per_sec", scaling.all_accesses_per_sec);
      json.field("all_speedup", scaling.all_speedup);
      json.field("fig07_10_sim_ms", scaling.fig_sim_ms);
      json.field("fig07_10_accesses_per_sec", scaling.fig_accesses_per_sec);
      json.field("fig07_10_speedup", scaling.fig_speedup);
      json.end_object();
    }
    json.end_array();
  }

  if (report.obs_overhead.measured) {
    json.key("obs_overhead");
    json.begin_object();
    json.field("obs_compiled", report.obs_overhead.obs_compiled);
    json.field("base_sim_ms", report.obs_overhead.base_sim_ms);
    json.field("attrib_sim_ms", report.obs_overhead.attrib_sim_ms);
    json.field("base_accesses_per_sec",
               report.obs_overhead.base_accesses_per_sec);
    json.field("attrib_accesses_per_sec",
               report.obs_overhead.attrib_accesses_per_sec);
    json.field("overhead_fraction", report.obs_overhead.overhead_fraction);
    json.end_object();
  }

  if (baseline != nullptr) {
    json.key("baseline");
    json.begin_object();
    json.field("path", baseline->path);
    json.field("git_sha", baseline->git);
    const auto speedup_block = [&](const char* name, double before,
                                   double after) {
      json.key(name);
      json.begin_object();
      json.field("before_accesses_per_sec", before);
      json.field("after_accesses_per_sec", after);
      json.field("speedup", before > 0.0 ? after / before : 0.0);
      json.end_object();
    };
    speedup_block("all", baseline->all_accesses_per_sec,
                  report.all.accesses_per_sec);
    speedup_block("fig07_10", baseline->fig_accesses_per_sec,
                  report.fig07_10.accesses_per_sec);
    json.key("cells");
    json.begin_array();
    for (const PerfCellResult& cell : report.cells) {
      const auto match = std::find_if(
          baseline->cell_throughput.begin(), baseline->cell_throughput.end(),
          [&](const auto& entry) { return entry.first == cell.key; });
      if (match == baseline->cell_throughput.end()) {
        continue;
      }
      json.begin_object();
      json.field("key", cell.key);
      json.field("before_accesses_per_sec", match->second);
      json.field("after_accesses_per_sec", cell.accesses_per_sec);
      json.field("speedup", cell.accesses_per_sec / match->second);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  out << '\n';
}

void print_summary(std::ostream& out, const PerfReport& report,
                   const Baseline* baseline) {
  out << "perf matrix '" << report.matrix.name << "' — "
      << report.cells.size() << " cells x " << report.reps
      << " reps, scale " << report.matrix.scale << " (" << report.machine.os
      << ", " << report.machine.compiler << ", "
      << report.machine.build_type << ")\n\n";

  const bool streaming = std::any_of(
      report.cells.begin(), report.cells.end(),
      [](const PerfCellResult& cell) { return cell.peak_rss > 0; });
  TextTable table;
  std::vector<std::string> header = {"cell",       "accesses",
                                     "build ms",   "sim p50 ms",
                                     "sim p95 ms", "accesses/s"};
  if (streaming) {
    header.push_back("peak RSS MiB");
  }
  table.header(header);
  for (const PerfCellResult& cell : report.cells) {
    std::vector<std::string> row = {
        cell.key,          std::to_string(cell.accesses),
        fmt_ms(cell.build_ms), fmt_ms(cell.p50_ms),
        fmt_ms(cell.p95_ms),   fmt_rate(cell.accesses_per_sec)};
    if (streaming) {
      row.push_back(cell.peak_rss > 0
                        ? std::to_string(cell.peak_rss / (1024 * 1024))
                        : "-");
    }
    table.row(row);
  }
  table.print(out);

  out << "\naggregate (sum work / sum p50 time):\n";
  out << "  all cells: " << fmt_rate(report.all.accesses_per_sec)
      << " accesses/s over " << fmt_ms(report.all.sim_ms) << " ms\n";
  if (report.fig07_10.cells > 0) {
    out << "  fig07_10:  " << fmt_rate(report.fig07_10.accesses_per_sec)
        << " accesses/s over " << fmt_ms(report.fig07_10.sim_ms) << " ms\n";
  }
  out << "  peak RSS:  " << report.peak_rss / (1024 * 1024) << " MiB\n";
  if (!report.threads_scaling.empty()) {
    out << "\nengine-threads scaling (results byte-identical across the "
           "axis; wall time on "
        << report.machine.hardware_threads << " host thread"
        << (report.machine.hardware_threads == 1 ? "" : "s") << "):\n";
    TextTable scaling_table;
    scaling_table.header({"engine threads", "all sim ms", "all accesses/s",
                          "all speedup", "fig07_10 speedup"});
    for (const ThreadsScaling& scaling : report.threads_scaling) {
      std::ostringstream all_speedup;
      all_speedup << std::fixed << std::setprecision(2)
                  << scaling.all_speedup << "x";
      std::ostringstream fig_speedup;
      if (report.fig07_10.cells > 0) {
        fig_speedup << std::fixed << std::setprecision(2)
                    << scaling.fig_speedup << "x";
      } else {
        fig_speedup << "-";
      }
      scaling_table.row({std::to_string(scaling.engine_threads),
                         fmt_ms(scaling.all_sim_ms),
                         fmt_rate(scaling.all_accesses_per_sec),
                         all_speedup.str(), fig_speedup.str()});
    }
    scaling_table.print(out);
  }
  if (report.obs_overhead.measured) {
    const ObsOverhead& obs = report.obs_overhead;
    out << "  obs-overhead: " << fmt_ms(obs.base_sim_ms) << " ms -> "
        << fmt_ms(obs.attrib_sim_ms) << " ms with attribution ("
        << std::fixed << std::setprecision(1)
        << obs.overhead_fraction * 100.0 << "%"
        << (obs.obs_compiled ? "" : ", DIRCC_OBS=0 — attach is a no-op")
        << ")\n";
  }

  if (baseline != nullptr) {
    out << "\nvs baseline " << baseline->path << " (" << baseline->git
        << "):\n";
    if (baseline->all_accesses_per_sec > 0.0) {
      out << "  all cells: "
          << fmt_rate(baseline->all_accesses_per_sec) << " -> "
          << fmt_rate(report.all.accesses_per_sec) << " accesses/s ("
          << std::fixed << std::setprecision(2)
          << report.all.accesses_per_sec / baseline->all_accesses_per_sec
          << "x)\n";
    }
    if (baseline->fig_accesses_per_sec > 0.0 && report.fig07_10.cells > 0) {
      out << "  fig07_10:  "
          << fmt_rate(baseline->fig_accesses_per_sec) << " -> "
          << fmt_rate(report.fig07_10.accesses_per_sec) << " accesses/s ("
          << std::fixed << std::setprecision(2)
          << report.fig07_10.accesses_per_sec /
                 baseline->fig_accesses_per_sec
          << "x)\n";
    }
  }
}

}  // namespace dircc::perf
