// Simulator-performance measurement subsystem.
//
// The paper-reproduction benches measure the *simulated machine*; nothing
// in the repo measured the *simulator itself*, so throughput regressions
// were invisible. This subsystem runs a pinned matrix of (trace generator
// x scheme x latency backend x directory store) cells, times the
// trace-build and simulate phases separately, and emits a schema-versioned
// BENCH_PERF.json (machine info, git sha, per-cell p50/p95, aggregate
// accesses/sec) that is the repo's performance trajectory: commit one per
// optimization PR and diff them with --baseline.
//
// Measurement discipline: cells run serially (a thread pool would contend
// with itself and blur per-cell timing), each cell's simulate phase runs
// `reps` times on the same cached trace, and the matrix is deterministic —
// cell keys, configs and seeds depend only on (matrix, scale, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json_parse.hpp"
#include "common/stats.hpp"
#include "harness/trace_cache.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"

namespace dircc::perf {

/// Where and what this process runs on; recorded so perf numbers are never
/// compared across machines by accident.
struct MachineInfo {
  std::string os;        ///< kernel name + release (uname)
  std::string arch;      ///< machine architecture (uname)
  std::string compiler;  ///< compiler id + version (predefined macros)
  std::string build_type;///< "Release" vs "Debug" (NDEBUG)
  int hardware_threads = 0;
};

MachineInfo machine_info();

/// HEAD commit of the repository the process runs in, or "unknown".
std::string git_sha();

/// Peak resident set size of this process in bytes (0 when unavailable).
std::uint64_t peak_rss_bytes();

/// Nearest-rank percentile of `samples` (copied; input order preserved).
/// `q` in [0, 100]. Returns 0 for an empty sample set.
double percentile(std::vector<double> samples, double q);

/// One cell of the measurement matrix.
struct PerfCell {
  std::string key;
  /// Label dimensions emitted into the cell's JSON record.
  std::vector<std::pair<std::string, std::string>> fields;
  /// "fig07_10" for the dense/analytic app x scheme sub-grid (the headline
  /// aggregate), "streaming" for the bounded-lookahead cells, "extended"
  /// otherwise.
  std::string grid;
  harness::TraceSpec trace;
  /// Streaming cell: when set, every rep pulls from a fresh source built by
  /// this factory instead of a cached trace (`trace` is ignored and nothing
  /// is materialized). `trace_events` then reports the events pulled and
  /// the cell records its own peak-RSS watermark — the number the flat-
  /// memory claim is checked against.
  std::function<std::unique_ptr<EventSource>()> stream;
  SystemConfig system;
  EngineConfig engine;
};

/// Matrix selection. `name` is one of:
///  * "fig07_10"  — exactly the Figure 7-10 grid: 4 apps x 4 schemes,
///    analytic backend, full (dense) directory. 16 cells.
///  * "full"      — fig07_10 crossed with backend {analytic, queued} and
///    store {dense, sparse}. 64 cells.
///  * "smoke"     — a reduced 2x2x2x2 grid at quarter scale for CI.
///  * "streaming" — the three datacenter workloads (kv, queue, oltp)
///    pulled through bounded-lookahead EventSources: 3 workloads x 2
///    schemes (full, nb), analytic, dense. 6 cells; scale multiplies the
///    per-client operation count.
struct MatrixOptions {
  std::string name = "full";
  double scale = 1.0;      ///< trace-size multiplier fed to the generators
  std::uint64_t seed = 1990;
  /// Engine-thread counts to measure each cell at (the sharded engine's
  /// speedup axis, docs/PARALLELISM.md). {1} = serial only, no axis in the
  /// report. Every entry replays byte-identically — run_matrix enforces
  /// rep-for-rep exec_cycles equality across the whole axis — so the axis
  /// only varies wall time, never results.
  std::vector<int> threads_axis = {1};
};

/// Builds the pinned cell matrix. Deterministic in `options` alone.
std::vector<PerfCell> perf_matrix(const MatrixOptions& options);

/// Measured numbers for one cell.
struct PerfCellResult {
  std::string key;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string grid;
  std::uint64_t accesses = 0;      ///< shared-data accesses per simulate rep
  std::uint64_t trace_events = 0;  ///< total events in the driving trace
  std::uint64_t trace_bytes = 0;   ///< resident bytes of the cached trace
  Cycle sim_cycles = 0;            ///< simulated exec_cycles (rep-invariant)
  double build_ms = 0.0;           ///< trace build (first touch only)
  OnlineStats sim_ms;              ///< per-rep simulate wall milliseconds
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  /// accesses / p50 simulate seconds — the cell's throughput headline.
  double accesses_per_sec = 0.0;
  /// accesses / min simulate seconds (best rep).
  double best_accesses_per_sec = 0.0;
  /// simulated cycles / p50 simulate seconds, in millions.
  double mcycles_per_sec = 0.0;
  /// Process peak RSS in bytes sampled right after this cell's reps
  /// (streaming cells only; 0 otherwise). Monotone across the process, so
  /// a flat sequence over growing event counts demonstrates O(1) memory.
  std::uint64_t peak_rss = 0;
  /// p50 simulate ms with the attribution collector attached (obs-overhead
  /// pass only; 0 when that pass did not run).
  double attrib_p50_ms = 0.0;
  /// One measured point of the engine-threads axis.
  struct ThreadsPoint {
    int engine_threads = 1;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double accesses_per_sec = 0.0;
    /// serial p50 / this p50 (>1 = the sharded engine was faster).
    double speedup = 0.0;
  };
  /// Per-thread-count timings (empty unless the threads axis was measured;
  /// then it includes the serial point for a complete table).
  std::vector<ThreadsPoint> threads;
};

/// Attribution-cost comparison: the same pinned matrix timed with the
/// obs/attrib latency-attribution collector attached vs. detached, so the
/// observability layer's overhead is tracked in BENCH_PERF.json and a
/// regression (a hot-path emission getting expensive) is visible in the
/// perf trajectory like any other slowdown.
struct ObsOverhead {
  bool measured = false;       ///< the attrib pass actually ran
  bool obs_compiled = false;   ///< DIRCC_OBS state of this build
  double base_sim_ms = 0.0;    ///< sum of per-cell p50, collector detached
  double attrib_sim_ms = 0.0;  ///< sum of per-cell p50, collector attached
  double base_accesses_per_sec = 0.0;
  double attrib_accesses_per_sec = 0.0;
  /// attrib_sim_ms / base_sim_ms - 1 (0.05 = attribution costs 5%).
  double overhead_fraction = 0.0;
};

/// Throughput over a set of cells (sum of work / sum of p50 time).
struct PerfAggregate {
  std::uint64_t cells = 0;
  std::uint64_t accesses = 0;
  std::uint64_t trace_events = 0;
  double build_ms = 0.0;
  double sim_ms = 0.0;  ///< sum of per-cell p50 simulate ms
  double accesses_per_sec = 0.0;
  double mcycles_per_sec = 0.0;
};

/// Aggregate speedup at one engine-thread count (sum of per-cell p50 over
/// the matrix and the fig07_10 subset, against the serial sums).
struct ThreadsScaling {
  int engine_threads = 1;
  double all_sim_ms = 0.0;
  double all_accesses_per_sec = 0.0;
  double all_speedup = 0.0;
  double fig_sim_ms = 0.0;
  double fig_accesses_per_sec = 0.0;
  double fig_speedup = 0.0;
};

/// One full measurement pass.
struct PerfReport {
  MatrixOptions matrix;
  int reps = 0;
  MachineInfo machine;
  std::string git;
  std::vector<PerfCellResult> cells;
  PerfAggregate all;       ///< every cell in the matrix
  PerfAggregate fig07_10;  ///< the grid == "fig07_10" subset
  ObsOverhead obs_overhead;
  /// Engine-threads speedup table (empty unless the axis was measured).
  std::vector<ThreadsScaling> threads_scaling;
  std::uint64_t peak_rss = 0;
};

/// Progress callback: (cells finished, cells total, current key).
using PerfProgress =
    std::function<void(std::size_t, std::size_t, const std::string&)>;

/// Runs every cell `reps` times and gathers the report. Serial by design.
/// With `obs_overhead` set, every cell runs a second `reps`-deep timed pass
/// with an obs/attrib Collector attached to the system, and the report's
/// `obs_overhead` block compares the two (at DIRCC_OBS=0 the attach is a
/// no-op and the block records obs_compiled = false).
PerfReport run_matrix(const std::vector<PerfCell>& cells,
                      const MatrixOptions& options, int reps,
                      const PerfProgress& progress = nullptr,
                      bool obs_overhead = false);

/// A previously emitted BENCH_PERF.json, loaded for before/after tables.
struct Baseline {
  std::string path;
  std::string git;
  double all_accesses_per_sec = 0.0;
  double fig_accesses_per_sec = 0.0;
  /// key -> accesses_per_sec of the baseline run's cells.
  std::vector<std::pair<std::string, double>> cell_throughput;
};

/// Parses `text` (a BENCH_PERF.json document). Returns nullopt and fills
/// `error` on malformed input or a schema-version mismatch.
std::optional<Baseline> load_baseline(const std::string& text,
                                      const std::string& path,
                                      std::string* error = nullptr);

inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "dircc-bench-perf";

/// Writes the schema-versioned BENCH_PERF.json document. When `baseline`
/// is non-null a "baseline" object with per-cell and aggregate speedups is
/// included.
void write_report(std::ostream& out, const PerfReport& report,
                  const Baseline* baseline);

/// Human-readable summary table (stdout companion of the JSON document).
void print_summary(std::ostream& out, const PerfReport& report,
                   const Baseline* baseline);

}  // namespace dircc::perf
