// Lightweight invariant checking used throughout the library.
//
// dircc::ensure() is always on (the simulator is a measurement instrument; a
// silently-corrupted run is worse than an aborted one). The checks guard
// protocol invariants, not hot arithmetic, so the cost is negligible.
#pragma once

#include <source_location>
#include <string_view>

namespace dircc {

[[noreturn]] void ensure_failed(std::string_view message,
                                const std::source_location& where);

/// Aborts with a diagnostic when `condition` is false.
inline void ensure(
    bool condition, std::string_view message,
    const std::source_location& where = std::source_location::current()) {
  if (!condition) {
    ensure_failed(message, where);
  }
}

}  // namespace dircc
