// EntryBits: the raw state word of one directory entry.
//
// Every directory scheme in the paper reinterprets the *same* fixed budget of
// state bits: as a full bit vector (Dir_P), as an array of node pointers
// (Dir_iB / Dir_iNB / Dir_iX before overflow), as a coarse bit vector
// (Dir_iCV_r after overflow), or as a composite value/don't-care pointer pair
// (Dir_iX after overflow). EntryBits provides the untyped 256-bit storage plus
// the bit and bit-field accessors those reinterpretations need.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace dircc {

/// 256 bits of per-entry directory state, addressable as single bits or as
/// arbitrary-width little-endian bit fields.
class EntryBits {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = kBits / 64;

  constexpr EntryBits() = default;

  /// Clears all bits.
  void reset() { words_.fill(0); }

  /// Sets bit `pos`.
  void set(int pos) {
    check_pos(pos);
    words_[static_cast<std::size_t>(pos >> 6)] |= bit_mask(pos);
  }

  /// Clears bit `pos`.
  void clear(int pos) {
    check_pos(pos);
    words_[static_cast<std::size_t>(pos >> 6)] &= ~bit_mask(pos);
  }

  /// Reads bit `pos`.
  bool test(int pos) const {
    check_pos(pos);
    return (words_[static_cast<std::size_t>(pos >> 6)] & bit_mask(pos)) != 0;
  }

  /// Number of set bits across the whole word.
  int popcount() const {
    int total = 0;
    for (std::uint64_t w : words_) {
      total += std::popcount(w);
    }
    return total;
  }

  /// True when no bit is set.
  bool none() const {
    for (std::uint64_t w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  /// Index of the lowest set bit at or above `from`, or -1 when none.
  int find_next(int from) const {
    if (from >= kBits) {
      return -1;
    }
    int word = from >> 6;
    std::uint64_t masked =
        words_[static_cast<std::size_t>(word)] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (masked != 0) {
        return word * 64 + std::countr_zero(masked);
      }
      if (++word >= kWords) {
        return -1;
      }
      masked = words_[static_cast<std::size_t>(word)];
    }
  }

  /// Reads a little-endian bit field of `width` bits starting at `pos`.
  /// `width` must be <= 32 (node pointers never exceed log2(kMaxNodes) bits)
  /// and may be 0, in which case the result is 0.
  std::uint32_t get_field(int pos, int width) const {
    ensure(width >= 0 && width <= 32, "field width out of range");
    std::uint32_t value = 0;
    for (int i = 0; i < width; ++i) {
      if (test(pos + i)) {
        value |= std::uint32_t{1} << i;
      }
    }
    return value;
  }

  /// Writes a little-endian bit field of `width` bits starting at `pos`.
  void set_field(int pos, int width, std::uint32_t value) {
    ensure(width >= 0 && width <= 32, "field width out of range");
    for (int i = 0; i < width; ++i) {
      if ((value >> i) & 1u) {
        set(pos + i);
      } else {
        clear(pos + i);
      }
    }
  }

  friend bool operator==(const EntryBits&, const EntryBits&) = default;

 private:
  static void check_pos(int pos) {
    ensure(pos >= 0 && pos < kBits, "EntryBits position out of range");
  }
  static std::uint64_t bit_mask(int pos) { return std::uint64_t{1} << (pos & 63); }

  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace dircc
