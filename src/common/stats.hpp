// Statistics primitives: histograms (the paper's invalidation distributions,
// Figures 3-6) and online means.
#pragma once

#include <cstdint>
#include <vector>

namespace dircc {

/// Histogram over small non-negative integer samples (e.g. the number of
/// invalidations sent per write event). Bins grow on demand.
class Histogram {
 public:
  /// Records one sample of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Number of recorded samples.
  std::uint64_t events() const { return events_; }

  /// Sum over all samples (e.g. total invalidations).
  std::uint64_t total() const { return total_; }

  /// Mean sample value; 0 when empty.
  double mean() const;

  /// Count of samples equal to `value`.
  std::uint64_t count_at(std::uint64_t value) const;

  /// Fraction of samples equal to `value`; 0 when empty.
  double fraction_at(std::uint64_t value) const;

  /// Largest recorded value (0 when empty).
  std::uint64_t max_value() const;

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  /// Drops all samples.
  void clear();

  const std::vector<std::uint64_t>& bins() const { return bins_; }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t events_ = 0;
  std::uint64_t total_ = 0;
};

/// Numerically stable online mean/variance/min/max accumulator (Welford's
/// algorithm). Two accumulators built over disjoint sample streams combine
/// exactly with merge() (Chan et al.'s count-weighted update), so per-thread
/// accumulators can be folded into a global one without bias.
class OnlineStats {
 public:
  void add(double sample);
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Population variance (M2 / count); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Folds `other` into this accumulator as if its samples had been add()ed
  /// here. Count-weighted, so merge order does not matter.
  void merge(const OnlineStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dircc
