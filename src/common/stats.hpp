// Statistics primitives: histograms (the paper's invalidation distributions,
// Figures 3-6) and online means.
#pragma once

#include <cstdint>
#include <vector>

namespace dircc {

/// Histogram over small non-negative integer samples (e.g. the number of
/// invalidations sent per write event). Bins grow on demand.
class Histogram {
 public:
  /// Records one sample of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Number of recorded samples.
  std::uint64_t events() const { return events_; }

  /// Sum over all samples (e.g. total invalidations).
  std::uint64_t total() const { return total_; }

  /// Mean sample value; 0 when empty.
  double mean() const;

  /// Count of samples equal to `value`.
  std::uint64_t count_at(std::uint64_t value) const;

  /// Fraction of samples equal to `value`; 0 when empty.
  double fraction_at(std::uint64_t value) const;

  /// Largest recorded value (0 when empty).
  std::uint64_t max_value() const;

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  /// Drops all samples.
  void clear();

  const std::vector<std::uint64_t>& bins() const { return bins_; }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t events_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram over explicitly configured bucket boundaries. Where Histogram
/// keeps one bin per integer value (right for small invalidation counts,
/// hopeless for cycle-scale latencies), a BucketedHistogram places each
/// sample into the first bucket whose upper edge is >= the sample; samples
/// beyond the last edge land in a final overflow bucket. Edges are part of
/// the histogram's identity: merge() requires identical edges, and every
/// export renders them alongside the counts so readers never guess.
class BucketedHistogram {
 public:
  BucketedHistogram() = default;
  explicit BucketedHistogram(std::vector<std::uint64_t> upper_edges);

  /// (Re)configures the bucket upper edges (strictly increasing, nonempty).
  /// Only legal while the histogram is empty.
  void set_edges(std::vector<std::uint64_t> upper_edges);

  /// Upper-inclusive bucket edges; counts() has edges().size() + 1 entries
  /// (the last is the overflow bucket above the final edge).
  const std::vector<std::uint64_t>& edges() const { return edges_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Records `count` samples of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t events() const { return events_; }
  std::uint64_t total() const { return total_; }
  /// Mean sample value; 0 when empty.
  double mean() const;
  /// Largest recorded sample (0 when empty).
  std::uint64_t max_value() const { return max_; }

  /// Merges another histogram recorded over identical edges.
  void merge(const BucketedHistogram& other);

  /// Drops all samples (edges are kept).
  void clear();

 private:
  std::vector<std::uint64_t> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t events_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// Power-of-two bucket edges from `first` to `last` inclusive (both must be
/// powers of two, first <= last) — the default shape for latency buckets.
std::vector<std::uint64_t> pow2_edges(std::uint64_t first, std::uint64_t last);

/// Numerically stable online mean/variance/min/max accumulator (Welford's
/// algorithm). Two accumulators built over disjoint sample streams combine
/// exactly with merge() (Chan et al.'s count-weighted update), so per-thread
/// accumulators can be folded into a global one without bias.
class OnlineStats {
 public:
  void add(double sample);
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Population variance (M2 / count); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Folds `other` into this accumulator as if its samples had been add()ed
  /// here. Count-weighted, so merge order does not matter.
  void merge(const OnlineStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dircc
