#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace dircc {

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), Row{std::move(cells), false});
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::rule() { rows_.push_back(Row{{}, true}); }

void TextTable::print(std::ostream& out) const {
  std::size_t columns = 0;
  for (const Row& r : rows_) {
    columns = std::max(columns, r.cells.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }
  auto print_rule = [&] {
    for (std::size_t c = 0; c < columns; ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  bool printed_header = false;
  for (const Row& r : rows_) {
    if (r.is_rule) {
      print_rule();
      continue;
    }
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < r.cells.size() ? r.cells[c] : std::string();
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
    if (has_header_ && !printed_header) {
      print_rule();
      printed_header = true;
    }
  }
}

std::string fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      result.push_back(',');
      since_sep = 0;
    }
    result.push_back(*it);
    ++since_sep;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace dircc
