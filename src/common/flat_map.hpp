// Open-addressing hash map keyed by 64-bit block addresses.
//
// The simulator's hottest lookups — directory entries, block version
// tables — were std::unordered_map, which pays a heap allocation per node
// and a pointer chase per probe. FlatMap stores slots contiguously with
// linear probing, so the common hit is one hash, one mask and (almost
// always) one cache line.
//
// Semantics, scoped to what those call sites need:
//  * find / try_emplace / erase by exact u64 key; every key value is
//    legal (slot liveness lives in a separate state byte, no reserved
//    sentinel key).
//  * erase leaves a tombstone: no slot ever moves except on growth, so
//    pointers returned by find/try_emplace stay valid until the next
//    *inserting* call (exactly std::unordered_map's guarantee minus
//    stability across inserts — callers must not hold references across
//    try_emplace, and the protocol layer does not).
//  * Deterministic: the hash is a fixed splitmix64 finalizer and growth
//    doubles a power-of-two table, so iteration order depends only on the
//    operation history, never on the platform.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ensure.hpp"

namespace dircc {

template <typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  /// Pre-sizes the table for `n` live keys without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t needed = kMinCapacity;
    // Keep the load factor below ~7/8 at n entries.
    while (needed * 7 / 8 <= n) {
      needed *= 2;
    }
    if (needed > slots_.size()) {
      rehash(needed);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value* find(std::uint64_t key) {
    if (slots_.empty()) {
      return nullptr;
    }
    for (std::size_t i = index_of(key);; i = next(i)) {
      const std::uint8_t state = states_[i];
      if (state == kEmpty) {
        return nullptr;
      }
      if (state == kFull && slots_[i].key == key) {
        return &slots_[i].value;
      }
    }
  }

  const Value* find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Returns the value for `key`, default-constructing it when absent.
  /// `inserted` reports whether a new slot was claimed. The returned
  /// pointer is invalidated by the next inserting call.
  Value* try_emplace(std::uint64_t key, bool& inserted) {
    grow_if_needed();
    std::size_t tombstone = kNpos;
    for (std::size_t i = index_of(key);; i = next(i)) {
      const std::uint8_t state = states_[i];
      if (state == kFull) {
        if (slots_[i].key == key) {
          inserted = false;
          return &slots_[i].value;
        }
        continue;
      }
      if (state == kTombstone) {
        if (tombstone == kNpos) {
          tombstone = i;
        }
        continue;
      }
      // Empty: the key is absent. Reuse the first tombstone on the probe
      // path when there was one (keeps chains short).
      const std::size_t slot = tombstone != kNpos ? tombstone : i;
      if (states_[slot] == kTombstone) {
        --tombstones_;
      }
      states_[slot] = kFull;
      slots_[slot].key = key;
      slots_[slot].value = Value{};
      ++size_;
      inserted = true;
      return &slots_[slot].value;
    }
  }

  /// Removes `key`. Returns true when it was present. No slot moves.
  bool erase(std::uint64_t key) {
    if (slots_.empty()) {
      return false;
    }
    for (std::size_t i = index_of(key);; i = next(i)) {
      const std::uint8_t state = states_[i];
      if (state == kEmpty) {
        return false;
      }
      if (state == kFull && slots_[i].key == key) {
        states_[i] = kTombstone;
        ++tombstones_;
        --size_;
        return true;
      }
    }
  }

  /// Calls `fn(key, value)` for every live entry, in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;

  static std::size_t hash(std::uint64_t key) {
    // splitmix64 finalizer: cheap, well-mixed, fully specified.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  std::size_t index_of(std::uint64_t key) const {
    return hash(key) & (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
      return;
    }
    // Grow when live + tombstoned slots pass 7/8 of capacity, so probe
    // chains stay short even under heavy erase churn. Growing on live
    // count alone sizes the new table (tombstones are dropped by the
    // rehash).
    if ((size_ + tombstones_ + 1) * 8 > slots_.size() * 7) {
      std::size_t target = slots_.size();
      while ((size_ + 1) * 8 > target * 7 / 2) {
        target *= 2;
      }
      rehash(target);
    }
  }

  void rehash(std::size_t new_capacity) {
    ensure((new_capacity & (new_capacity - 1)) == 0,
           "FlatMap capacity must be a power of two");
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_.assign(new_capacity, Slot{});
    states_.assign(new_capacity, kEmpty);
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_states[i] != kFull) {
        continue;
      }
      for (std::size_t j = index_of(old_slots[i].key);; j = next(j)) {
        if (states_[j] == kEmpty) {
          states_[j] = kFull;
          slots_[j] = std::move(old_slots[i]);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace dircc
