#include "common/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace dircc {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* child = find(key);
  return child != nullptr && child->is_number() ? child->as_number()
                                                : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* child = find(key);
  return child != nullptr && child->is_string() ? child->as_string()
                                                : fallback;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array(std::vector<JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.items_ = std::move(v);
  return out;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.members_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word, JsonValue v, JsonValue& out) {
    std::size_t n = 0;
    while (word[n] != '\0') {
      if (pos_ + n >= text_.size() || text_[pos_ + n] != word[n]) {
        return fail("invalid literal");
      }
      ++n;
    }
    pos_ += n;
    out = std::move(v);
    return true;
  }

  /// Consumes four hex digits of a \u escape into `code`.
  bool hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) {
      return fail("truncated \\u escape");
    }
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char hex = text_[pos_++];
      code <<= 4;
      if (hex >= '0' && hex <= '9') {
        code |= static_cast<unsigned>(hex - '0');
      } else if (hex >= 'a' && hex <= 'f') {
        code |= static_cast<unsigned>(hex - 'a' + 10);
      } else if (hex >= 'A' && hex <= 'F') {
        code |= static_cast<unsigned>(hex - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  bool string_body(std::string& out) {
    // Caller consumed the opening quote.
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') {
        return true;
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!hex4(code)) {
            return false;
          }
          // Combine a surrogate pair into one supplementary-plane code
          // point (RFC 8259 §7). A lone surrogate is not a code point —
          // encoding it as a 3-byte sequence would emit invalid (CESU-8)
          // UTF-8 — so unpaired halves are rejected.
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!hex4(low)) {
              return false;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // UTF-8 encode the code point (the writers only emit escapes for
          // control characters, but accept the full range).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail("malformed number");
    }
    out = JsonValue::number(parsed);
    return true;
  }

  bool value(JsonValue& out) {
    if (depth_ > 64) {
      return fail("nesting too deep");
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char ch = text_[pos_];
    if (ch == '{') {
      ++pos_;
      ++depth_;
      std::vector<std::pair<std::string, JsonValue>> members;
      skip_ws();
      if (!consume('}')) {
        for (;;) {
          skip_ws();
          if (!consume('"')) {
            return fail("expected an object key");
          }
          std::string key;
          if (!string_body(key)) {
            return false;
          }
          skip_ws();
          if (!consume(':')) {
            return fail("expected ':'");
          }
          JsonValue member;
          if (!value(member)) {
            return false;
          }
          members.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (consume(',')) {
            continue;
          }
          if (consume('}')) {
            break;
          }
          return fail("expected ',' or '}'");
        }
      }
      --depth_;
      out = JsonValue::object(std::move(members));
      return true;
    }
    if (ch == '[') {
      ++pos_;
      ++depth_;
      std::vector<JsonValue> items;
      skip_ws();
      if (!consume(']')) {
        for (;;) {
          JsonValue item;
          if (!value(item)) {
            return false;
          }
          items.push_back(std::move(item));
          skip_ws();
          if (consume(',')) {
            continue;
          }
          if (consume(']')) {
            break;
          }
          return fail("expected ',' or ']'");
        }
      }
      --depth_;
      out = JsonValue::array(std::move(items));
      return true;
    }
    if (ch == '"') {
      ++pos_;
      std::string body;
      if (!string_body(body)) {
        return false;
      }
      out = JsonValue::string(std::move(body));
      return true;
    }
    if (ch == 't') {
      return literal("true", JsonValue::boolean(true), out);
    }
    if (ch == 'f') {
      return literal("false", JsonValue::boolean(false), out);
    }
    if (ch == 'n') {
      return literal("null", JsonValue::null(), out);
    }
    return number(out);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string* error) {
  Parser parser(text);
  return parser.parse(out, error);
}

}  // namespace dircc
