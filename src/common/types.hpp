// Fundamental identifier and quantity types shared by every dircc subsystem.
//
// The simulator models a DASH-style machine: processors are grouped into
// clusters, the directory tracks sharers at *cluster* granularity (as in the
// DASH prototype, where the intra-cluster bus keeps the caches within a
// cluster coherent), and memory is interleaved across clusters at cache-block
// granularity.
#pragma once

#include <cstdint>
#include <limits>

namespace dircc {

/// Identifies one processor (equivalently: one private cache).
using ProcId = std::uint16_t;

/// Identifies one processing node (cluster). The directory tracks clusters.
using NodeId = std::uint16_t;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Cache-block index: Addr >> log2(block size).
using BlockAddr = std::uint64_t;

/// Simulated processor cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no processor".
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();

/// Hard upper bound on cluster count supported by the in-entry bit storage
/// (EntryBits holds 256 bits, enough for a full vector over 256 clusters).
inline constexpr int kMaxNodes = 256;

/// Ceiling of log2 for directory pointer widths. log2_ceil(1) == 0.
constexpr int log2_ceil(std::uint64_t value) {
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < value) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// True when value is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace dircc
