#include "common/stats.hpp"

#include <cmath>

namespace dircc {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= bins_.size()) {
    bins_.resize(value + 1, 0);
  }
  bins_[value] += count;
  events_ += count;
  total_ += value * count;
}

double Histogram::mean() const {
  if (events_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_) / static_cast<double>(events_);
}

std::uint64_t Histogram::count_at(std::uint64_t value) const {
  if (value >= bins_.size()) {
    return 0;
  }
  return bins_[value];
}

double Histogram::fraction_at(std::uint64_t value) const {
  if (events_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count_at(value)) / static_cast<double>(events_);
}

std::uint64_t Histogram::max_value() const {
  for (std::size_t i = bins_.size(); i > 0; --i) {
    if (bins_[i - 1] != 0) {
      return i - 1;
    }
  }
  return 0;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    if (other.bins_[i] != 0) {
      add(i, other.bins_[i]);
    }
  }
}

void Histogram::clear() {
  bins_.clear();
  events_ = 0;
  total_ = 0;
}

void OnlineStats::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  const double total =
      static_cast<double>(count_) + static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

}  // namespace dircc
