#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace dircc {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= bins_.size()) {
    bins_.resize(value + 1, 0);
  }
  bins_[value] += count;
  events_ += count;
  total_ += value * count;
}

double Histogram::mean() const {
  if (events_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_) / static_cast<double>(events_);
}

std::uint64_t Histogram::count_at(std::uint64_t value) const {
  if (value >= bins_.size()) {
    return 0;
  }
  return bins_[value];
}

double Histogram::fraction_at(std::uint64_t value) const {
  if (events_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count_at(value)) / static_cast<double>(events_);
}

std::uint64_t Histogram::max_value() const {
  for (std::size_t i = bins_.size(); i > 0; --i) {
    if (bins_[i - 1] != 0) {
      return i - 1;
    }
  }
  return 0;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    if (other.bins_[i] != 0) {
      add(i, other.bins_[i]);
    }
  }
}

void Histogram::clear() {
  bins_.clear();
  events_ = 0;
  total_ = 0;
}

BucketedHistogram::BucketedHistogram(std::vector<std::uint64_t> upper_edges) {
  set_edges(std::move(upper_edges));
}

void BucketedHistogram::set_edges(std::vector<std::uint64_t> upper_edges) {
  ensure(events_ == 0, "bucket edges can only change on an empty histogram");
  ensure(!upper_edges.empty(), "a bucketed histogram needs at least one edge");
  for (std::size_t i = 1; i < upper_edges.size(); ++i) {
    ensure(upper_edges[i - 1] < upper_edges[i],
           "bucket edges must be strictly increasing");
  }
  edges_ = std::move(upper_edges);
  counts_.assign(edges_.size() + 1, 0);
}

void BucketedHistogram::add(std::uint64_t value, std::uint64_t count) {
  ensure(!edges_.empty(), "bucketed histogram used before set_edges");
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += count;
  events_ += count;
  total_ += value * count;
  if (value > max_) {
    max_ = value;
  }
}

double BucketedHistogram::mean() const {
  if (events_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_) / static_cast<double>(events_);
}

void BucketedHistogram::merge(const BucketedHistogram& other) {
  if (other.events_ == 0) {
    return;
  }
  if (edges_.empty()) {
    set_edges(other.edges_);
  }
  ensure(edges_ == other.edges_,
         "bucketed histograms merge only over identical edges");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  events_ += other.events_;
  total_ += other.total_;
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

void BucketedHistogram::clear() {
  counts_.assign(counts_.size(), 0);
  events_ = 0;
  total_ = 0;
  max_ = 0;
}

std::vector<std::uint64_t> pow2_edges(std::uint64_t first,
                                      std::uint64_t last) {
  ensure(first > 0 && (first & (first - 1)) == 0 &&
             (last & (last - 1)) == 0 && first <= last,
         "pow2_edges wants powers of two with first <= last");
  std::vector<std::uint64_t> edges;
  for (std::uint64_t edge = first; edge <= last; edge *= 2) {
    edges.push_back(edge);
    if (edge > last / 2) {
      break;  // avoid overflow past the final doubling
    }
  }
  return edges;
}

void OnlineStats::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  const double total =
      static_cast<double>(count_) + static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

}  // namespace dircc
