// Minimal JSON parser (DOM-style), the read-side counterpart of
// common/json.hpp's JsonWriter.
//
// The perf suite compares a fresh run against a previously emitted
// BENCH_PERF.json, and the tests validate emitted documents structurally;
// both need to *read* JSON, not just write it. This parser covers exactly
// the JSON the repo's writers produce (objects, arrays, strings with the
// standard escapes, finite numbers, booleans, null) with no external
// dependencies. Object members preserve insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dircc {

/// One parsed JSON value. A small tagged union; arrays and objects own
/// their children.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const JsonValue* find(const std::string& key) const;

  /// `find` chained through nested objects, e.g. get("aggregate",
  /// "fig07_10"). Returns nullptr as soon as a link is missing.
  template <typename... Rest>
  const JsonValue* get(const std::string& key, const Rest&... rest) const {
    const JsonValue* child = find(key);
    if constexpr (sizeof...(rest) == 0) {
      return child;
    } else {
      return child == nullptr ? nullptr : child->get(rest...);
    }
  }

  /// Convenience: member `key` as a number, or `fallback` when absent or
  /// not a number.
  double number_or(const std::string& key, double fallback) const;
  /// Convenience: member `key` as a string, or `fallback`.
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array(std::vector<JsonValue> v);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as one JSON document. Returns true on success; on failure
/// fills `error` (when non-null) with a position-annotated message and
/// leaves `out` unspecified. Trailing non-whitespace is an error.
bool json_parse(const std::string& text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace dircc
