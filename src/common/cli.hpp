// Minimal command-line option parser for the example drivers and tools.
//
// Supports "--key value", "--key=value" and boolean "--flag" arguments,
// with typed accessors and an automatically generated usage string. Not a
// general-purpose library — just enough for reproducible experiment
// drivers without external dependencies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dircc {

/// Thrown by the typed accessors when an option's value cannot be
/// interpreted as the requested type (e.g. --procs=abc via get_int, or
/// --scale=1.5x via get_double). Previously such values silently parsed
/// their numeric prefix — "--procs=abc" configured 0 processors.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wraps a CLI entry point so a CliError surfaces as a normal usage
/// error on stderr (exit 2) instead of an uncaught-exception abort.
/// Typical use: `int main(...) { return run_cli([&] { ... }); }`.
int run_cli(const std::function<int()>& body);

class CliParser {
 public:
  /// Declares an option with a default value and help text.
  void add_option(std::string name, std::string default_value,
                  std::string help);
  void add_flag(std::string name, std::string help);

  /// Overrides the default of an already-registered option, for binaries
  /// that share a flag family but want a different resting point (e.g.
  /// scale_study defaults --inter-scheme to the coarse vector).
  void set_default(const std::string& name, std::string default_value);

  /// Parses argv. Returns false (and fills error()) on unknown options,
  /// missing values, or the same option given twice (no flag here is
  /// repeatable, and last-wins silently masked typo'd configs);
  /// "--help" sets help_requested().
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  /// Typed accessors: the whole value must parse as the requested type
  /// (no trailing garbage, no empty string, no overflow) or they throw
  /// CliError naming the option and the offending value.
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  /// Renders option help, one line per option.
  std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace dircc
