// Deterministic pseudo-random number generation.
//
// All stochastic choices in the library (random sharer sets for the Figure 2
// model, random sparse-directory replacement, workload randomness in the
// trace generators) flow through Xoshiro256** seeded via SplitMix64, so every
// experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>

#include "common/ensure.hpp"

namespace dircc {

/// SplitMix64: used only to expand a user seed into Xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1990'0815ULL) {
    SplitMix64 mixer(seed);
    for (auto& word : state_) {
      word = mixer.next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    ensure(bound > 0, "Rng::below requires a positive bound");
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    while (true) {
      const std::uint64_t sample = next();
      if (sample >= threshold) {
        return sample % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    ensure(lo <= hi, "Rng::between requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dircc
