#include "common/ensure.hpp"

#include <cstdio>
#include <cstdlib>

namespace dircc {

void ensure_failed(std::string_view message,
                   const std::source_location& where) {
  std::fprintf(stderr, "dircc invariant violated at %s:%u: %.*s\n",
               where.file_name(), static_cast<unsigned>(where.line()),
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace dircc
