// Minimal deterministic JSON emission.
//
// The sweep harness (src/harness) and the run reports (src/sim/report)
// emit machine-readable records whose byte-for-byte stability matters:
// the determinism check diffs the JSON of a multi-threaded sweep against
// a single-threaded one. Everything here renders exactly what it is told,
// in call order, with no locale dependence and no incidental whitespace —
// the same call sequence always produces the same bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dircc {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
std::string json_escape(const std::string& text);

/// Renders a double as a JSON number ("%.6g"; non-finite values are
/// rejected — the simulator never produces them legitimately).
std::string json_number(double value);

/// Streaming writer for nested JSON objects and arrays. Commas and
/// key/value separators are managed automatically; calls must form a
/// well-nested document (enforced with dircc::ensure).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  // Emits the separator a new element needs, and validates nesting.
  void element();
  void raw(const std::string& text);

  std::ostream& out_;
  struct Level {
    Scope scope;
    bool has_elements = false;
  };
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

}  // namespace dircc
