#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/ensure.hpp"

namespace dircc {

int run_cli(const std::function<int()>& body) {
  try {
    return body();
  } catch (const CliError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

void CliParser::add_option(std::string name, std::string default_value,
                           std::string help) {
  ensure(!options_.count(name), "duplicate option");
  order_.push_back(name);
  options_[std::move(name)] = Option{std::move(default_value),
                                     std::move(help), false};
}

void CliParser::add_flag(std::string name, std::string help) {
  ensure(!options_.count(name), "duplicate option");
  order_.push_back(name);
  options_[std::move(name)] = Option{"false", std::move(help), true};
}

void CliParser::set_default(const std::string& name,
                            std::string default_value) {
  const auto it = options_.find(name);
  ensure(it != options_.end(), "set_default on unregistered option");
  ensure(!it->second.is_flag, "set_default on a flag");
  it->second.default_value = std::move(default_value);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      error_ = "unknown option: --" + arg;
      return false;
    }
    if (values_.count(arg) != 0) {
      // Last-wins would let a sweep script's typo'd second occurrence
      // silently mask the first (e.g. `--procs 32 ... --procs 8`).
      error_ = "option --" + arg + " given more than once";
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + arg + " does not take a value";
        return false;
      }
      values_[arg] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + arg + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto defined = options_.find(name);
  ensure(defined != options_.end(), "undeclared option queried");
  const auto it = values_.find(name);
  return it == values_.end() ? defined->second.default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw CliError("option --" + name + " expects an integer, got '" + text +
                   "'");
  }
  return value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw CliError("option --" + name + " expects a number, got '" + text +
                   "'");
  }
  return value;
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n";
  for (const std::string& name : order_) {
    const Option& option = options_.at(name);
    out << "  --" << name;
    if (!option.is_flag) {
      out << " <value> (default: " << option.default_value << ")";
    }
    out << "\n      " << option.help << "\n";
  }
  return out.str();
}

}  // namespace dircc
