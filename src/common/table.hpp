// Fixed-width text table printer used by the benchmark harnesses to emit
// paper-style rows (Table 1, Table 2, Figures 2-14 series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dircc {

/// Accumulates rows of cells and prints them with aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal rule.
  void rule();

  /// Renders the table to `out`.
  void print(std::ostream& out) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };
  std::vector<Row> rows_;
  bool has_header_ = false;
};

/// Formats a double with `digits` decimals.
std::string fmt(double value, int digits = 2);

/// Formats an integer with thousands separators (1,234,567).
std::string fmt_count(std::uint64_t value);

}  // namespace dircc
