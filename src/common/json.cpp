#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/ensure.hpp"

namespace dircc {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  ensure(std::isfinite(value), "JSON numbers must be finite");
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

void JsonWriter::element() {
  if (stack_.empty()) {
    return;  // top-level value
  }
  Level& level = stack_.back();
  if (level.scope == Scope::kObject) {
    ensure(key_pending_, "JSON object members need key() before value()");
    key_pending_ = false;
    return;
  }
  if (level.has_elements) {
    out_ << ',';
  }
  level.has_elements = true;
}

void JsonWriter::raw(const std::string& text) { out_ << text; }

JsonWriter& JsonWriter::begin_object() {
  element();
  stack_.push_back({Scope::kObject});
  out_ << '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ensure(!stack_.empty() && stack_.back().scope == Scope::kObject &&
             !key_pending_,
         "unbalanced JSON end_object");
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  stack_.push_back({Scope::kArray});
  out_ << '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ensure(!stack_.empty() && stack_.back().scope == Scope::kArray,
         "unbalanced JSON end_array");
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  ensure(!stack_.empty() && stack_.back().scope == Scope::kObject &&
             !key_pending_,
         "JSON key() outside an object");
  Level& level = stack_.back();
  if (level.has_elements) {
    out_ << ',';
  }
  level.has_elements = true;
  key_pending_ = true;
  out_ << '"' << json_escape(name) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  element();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  element();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  element();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  element();
  raw(json_number(number));
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  element();
  out_ << (flag ? "true" : "false");
  return *this;
}

}  // namespace dircc
