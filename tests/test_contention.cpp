// Home-directory occupancy contention model.
#include <gtest/gtest.h>

#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig contended_config(int procs = 8) {
  SystemConfig config;
  config.num_procs = procs;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(procs);
  config.model_contention = true;
  return config;
}

TEST(Contention, BackToBackRequestsToOneHomeQueue) {
  CoherenceSystem sys(contended_config());
  // Two different blocks, same home (0 and 8 with 8 clusters), issued at
  // the same instant by different processors.
  const Cycle first = sys.access(1, 0, false, /*now=*/0);
  const Cycle second = sys.access(2, 8, false, /*now=*/0);
  EXPECT_EQ(first, sys.config().latency.remote_2cluster);
  EXPECT_GT(second, first);  // queued behind the busy home
  EXPECT_GT(sys.stats().contention_wait_cycles, 0u);
}

TEST(Contention, DifferentHomesDoNotInterfere) {
  CoherenceSystem sys(contended_config());
  sys.access(1, 0, false, 0);
  const Cycle other_home = sys.access(2, 1, false, 0);
  EXPECT_EQ(other_home, sys.config().latency.remote_2cluster);
}

TEST(Contention, BusyPeriodExpires) {
  CoherenceSystem sys(contended_config());
  sys.access(1, 0, false, 0);
  // Well after the home's occupancy window, no queueing remains.
  const Cycle later = sys.access(2, 8, false, 10000);
  EXPECT_EQ(later, sys.config().latency.remote_2cluster);
}

TEST(Contention, CacheHitsNeverQueue) {
  CoherenceSystem sys(contended_config());
  sys.access(1, 0, false, 0);
  sys.access(2, 8, false, 0);  // home 0 busy
  const Cycle hit = sys.access(1, 0, false, 0);
  EXPECT_EQ(hit, sys.config().latency.cache_hit);
}

TEST(Contention, WideInvalidationsOccupyTheHomeLonger) {
  // A write with many targets emits more messages, extending the busy
  // window a following request must wait out.
  auto waited = [](int sharers) {
    SystemConfig config = contended_config();
    CoherenceSystem sys(config);
    for (int p = 1; p <= sharers; ++p) {
      sys.access(static_cast<ProcId>(p), 0, false, 0);
    }
    sys.access(1, 0, true, 5000);   // invalidation burst at home 0
    sys.access(2, 8, false, 5000);  // queued behind it
    return sys.stats().contention_wait_cycles;
  };
  EXPECT_GT(waited(7), waited(2));
}

TEST(Contention, OffByDefaultAndFreeOfCharge) {
  SystemConfig config = contended_config();
  config.model_contention = false;
  CoherenceSystem sys(config);
  sys.access(1, 0, false, 0);
  const Cycle second = sys.access(2, 8, false, 0);
  EXPECT_EQ(second, sys.config().latency.remote_2cluster);
  EXPECT_EQ(sys.stats().contention_wait_cycles, 0u);
}

TEST(Contention, AmplifiesTheBroadcastSchemesCostEndToEnd) {
  // Section 6.2: "we consequently expect the performance degradation due
  // to an increased number of messages to be larger" on a busier machine.
  // With contention on, Dir3B's broadcast bursts show up in execution
  // time, not just message counts.
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, 32, 16, 7, 0.5);
  auto run = [&](SchemeConfig scheme) {
    SystemConfig config;
    config.num_procs = 32;
    config.cache_lines_per_proc = 512;
    config.cache_assoc = 4;
    config.scheme = scheme;
    config.model_contention = true;
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult full = run(SchemeConfig::full(32));
  const RunResult cv = run(SchemeConfig::coarse(32, 3, 2));
  const RunResult b = run(SchemeConfig::broadcast(32, 3));
  // The broadcast scheme spends far longer queued at busy homes; at this
  // scaled-down size the end-to-end exec gap can sit inside the noise, so
  // assert the robust signal (queue time) plus a no-worse bound on exec.
  EXPECT_GT(b.protocol.contention_wait_cycles,
            2 * cv.protocol.contention_wait_cycles);
  EXPECT_GE(b.exec_cycles, cv.exec_cycles * 99 / 100);
  EXPECT_GE(cv.exec_cycles, full.exec_cycles * 99 / 100);
}

}  // namespace
}  // namespace dircc
