// CoherenceSystem: directed protocol-transaction scenarios.
//
// Conventions used throughout: 4 clusters x 1 processor, full bit vector
// unless stated. Block addresses are chosen so home_of(b) == b % 4; block 0
// is homed at cluster 0, block 1 at cluster 1, etc.
#include <gtest/gtest.h>

#include "protocol/system.hpp"

namespace dircc {
namespace {

SystemConfig small_config(SchemeConfig scheme, int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = scheme;
  return config;
}

TEST(Protocol, ReadMissCleanRemoteIsTwoClusterTransaction) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  // Proc 1 reads block 0 (home = cluster 0).
  const Cycle lat = sys.access(1, 0, false);
  EXPECT_EQ(lat, sys.config().latency.remote_2cluster);
  EXPECT_EQ(sys.stats().messages.get(MsgClass::kRequest), 1u);
  EXPECT_EQ(sys.stats().messages.get(MsgClass::kReply), 1u);
  EXPECT_EQ(sys.stats().messages.total(), 2u);
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kShared);
  EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, 1));
}

TEST(Protocol, ReadMissAtHomeIsLocalAndFree) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  const Cycle lat = sys.access(0, 0, false);  // home cluster reads its block
  EXPECT_EQ(lat, sys.config().latency.local_access);
  EXPECT_EQ(sys.stats().messages.total(), 0u);
}

TEST(Protocol, ReadHitIsOneCycle) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, false);
  const Cycle lat = sys.access(1, 0, false);
  EXPECT_EQ(lat, sys.config().latency.cache_hit);
  EXPECT_EQ(sys.stats().cache_hits, 1u);
}

TEST(Protocol, ReadOfDirtyBlockForwardsToOwner) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(2, 0, true);  // proc 2 owns block 0 dirty
  const auto base = sys.stats().messages;
  const Cycle lat = sys.access(1, 0, false);  // three distinct clusters
  EXPECT_EQ(lat, sys.config().latency.remote_3cluster);
  const auto& msgs = sys.stats().messages;
  // Request (1->0), forwarded request (0->2), reply (2->1),
  // sharing writeback (2->0).
  EXPECT_EQ(msgs.get(MsgClass::kRequest) - base.get(MsgClass::kRequest), 2u);
  EXPECT_EQ(msgs.get(MsgClass::kReply) - base.get(MsgClass::kReply), 1u);
  EXPECT_EQ(msgs.get(MsgClass::kWriteback) - base.get(MsgClass::kWriteback),
            1u);
  EXPECT_EQ(sys.stats().sharing_writebacks, 1u);
  // Both clusters now share; the entry is clean.
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kShared);
  EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, 1));
  EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, 2));
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kShared);
}

TEST(Protocol, WriteToSharedInvalidatesEverySharer) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  sys.access(3, 0, false);
  const auto base = sys.stats().messages;
  const Cycle lat = sys.access(1, 0, true);  // upgrade by proc 1
  // Sharers {1,2,3}; targets exclude the writer -> invalidate 2 and 3.
  const auto& msgs = sys.stats().messages;
  EXPECT_EQ(msgs.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            2u);
  EXPECT_EQ(msgs.get(MsgClass::kAck) - base.get(MsgClass::kAck), 2u);
  EXPECT_EQ(lat, sys.config().latency.remote_2cluster +
                     sys.config().latency.invalidation_round +
                     2 * sys.config().latency.per_invalidation);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(3).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kModified);
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kDirty);
  EXPECT_EQ(entry->owner, 1);
  // The invalidation event was recorded with 2 network invalidations.
  EXPECT_EQ(sys.stats().inval_distribution.count_at(2), 1u);
}

TEST(Protocol, WriteToUncachedRecordsZeroInvalidationEvent) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, true);
  EXPECT_EQ(sys.stats().inval_distribution.events(), 1u);
  EXPECT_EQ(sys.stats().inval_distribution.count_at(0), 1u);
}

TEST(Protocol, MigratoryWriteTransfersOwnershipWithoutInvalEvent) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, true);
  const auto events_before = sys.stats().inval_distribution.events();
  const Cycle lat = sys.access(2, 0, true);  // dirty at 1, home 0: 3 clusters
  EXPECT_EQ(lat, sys.config().latency.remote_3cluster);
  EXPECT_EQ(sys.stats().ownership_transfers, 1u);
  // Ownership transfer is not an invalidation event (Section 6.1).
  EXPECT_EQ(sys.stats().inval_distribution.events(), events_before);
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kModified);
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kDirty);
  EXPECT_EQ(entry->owner, 2);
}

TEST(Protocol, WriteHitModifiedIsFreeAndBumpsVersion) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, true);
  const auto msgs_before = sys.stats().messages.total();
  const Cycle lat = sys.access(1, 0, true);
  EXPECT_EQ(lat, sys.config().latency.cache_hit);
  EXPECT_EQ(sys.stats().messages.total(), msgs_before);
  EXPECT_EQ(sys.latest_version(0), 2u);
  EXPECT_EQ(sys.cache(1).version_of(0), 2u);
}

TEST(Protocol, HomeSharerInvalidationCostsNoNetworkMessage) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(0, 0, false);  // home cluster itself shares block 0
  sys.access(1, 0, false);
  const auto base = sys.stats().messages;
  sys.access(1, 0, true);  // invalidate sharer set {0}; 0 is the home
  const auto& msgs = sys.stats().messages;
  // The home kills its local copy over the bus: no invalidation message,
  // but the ack to the requester still crosses the network.
  EXPECT_EQ(msgs.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            0u);
  EXPECT_EQ(msgs.get(MsgClass::kAck) - base.get(MsgClass::kAck), 1u);
  EXPECT_EQ(sys.cache(0).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.stats().inval_distribution.count_at(0), 1u);
}

TEST(Protocol, CoarseVectorSendsExtraneousInvalidationsAfterOverflow) {
  // 8 clusters, Dir1CV2: one pointer, then regions of two.
  auto config = small_config(SchemeConfig::coarse(8, 1, 2), 8);
  CoherenceSystem sys(config);
  sys.access(2, 0, false);  // pointer: {2}
  sys.access(4, 0, false);  // overflow -> regions {2,3} and {4,5}
  const auto base = sys.stats().messages;
  sys.access(7, 0, true);
  const auto& msgs = sys.stats().messages;
  // Targets are clusters 2,3,4,5; 3 and 5 hold nothing -> extraneous.
  EXPECT_EQ(msgs.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            4u);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 2u);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(4).probe(0), LineState::kInvalid);
}

TEST(Protocol, NoBroadcastDisplacementInvalidatesOnRead) {
  auto config = small_config(SchemeConfig::no_broadcast(8, 2), 8);
  CoherenceSystem sys(config);
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  const auto base = sys.stats().messages;
  sys.access(3, 0, false);  // pointer overflow displaces 1 or 2
  EXPECT_EQ(sys.stats().nb_read_displacements, 1u);
  const auto& msgs = sys.stats().messages;
  EXPECT_EQ(msgs.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            1u);
  // Exactly one of the two early readers lost its copy.
  const int live = (sys.cache(1).probe(0) != LineState::kInvalid ? 1 : 0) +
                   (sys.cache(2).probe(0) != LineState::kInvalid ? 1 : 0);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(sys.cache(3).probe(0), LineState::kShared);
}

TEST(Protocol, DirtyEvictionWritesBackAndFreesDirectoryEntry) {
  auto config = small_config(SchemeConfig::full(4));
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;  // direct mapped: blocks 0 and 4 conflict
  CoherenceSystem sys(config);
  sys.access(1, 0, true);  // dirty block 0 in proc 1
  const auto base = sys.stats().messages;
  sys.access(1, 4, false);  // fills the same set, evicting dirty block 0
  EXPECT_EQ(sys.stats().dirty_eviction_writebacks, 1u);
  EXPECT_EQ(sys.stats().messages.get(MsgClass::kWriteback) -
                base.get(MsgClass::kWriteback),
            1u);
  EXPECT_EQ(sys.peek_entry(0), nullptr);  // entry released
  // Memory now holds the latest version: a fresh read observes it.
  sys.access(2, 0, false);
  EXPECT_EQ(sys.cache(2).version_of(0), sys.latest_version(0));
}

TEST(Protocol, SharedEvictionIsSilentAndLeavesStaleSharer) {
  auto config = small_config(SchemeConfig::full(4));
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;
  CoherenceSystem sys(config);
  sys.access(1, 0, false);
  const auto msgs_before = sys.stats().messages.total();
  sys.access(1, 4, false);  // silently displaces the shared copy of 0
  EXPECT_EQ(sys.stats().messages.total(), msgs_before + 2);  // just the miss
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);  // stale sharer kept (superset-safe)
  EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, 1));
  // A later write sends an extraneous invalidation to cluster 1.
  sys.access(2, 0, true);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 1u);
}

TEST(Protocol, UpgradeKeepsDataAndOnlyInvalidatesOthers) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  sys.access(1, 0, true);  // proc 1 upgrades its Shared copy
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kModified);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.aggregate_cache_stats().write_upgrades, 1u);
}

TEST(Protocol, VersionsFlowThroughMigration) {
  CoherenceSystem sys(small_config(SchemeConfig::full(4)));
  sys.access(1, 0, true);   // v1 at proc 1
  sys.access(1, 0, true);   // v2
  sys.access(2, 0, true);   // transfer -> v3 at proc 2
  sys.access(3, 0, false);  // sharing writeback, read observes v3
  EXPECT_EQ(sys.latest_version(0), 3u);
  EXPECT_EQ(sys.cache(3).version_of(0), 3u);
  sys.access(1, 0, false);
  EXPECT_EQ(sys.cache(1).version_of(0), 3u);
}

TEST(Protocol, PerHopLatencyRespondsToMeshDistance) {
  auto config = small_config(SchemeConfig::full(16), 16);
  config.latency.per_hop = 3;
  CoherenceSystem sys(config);
  // 16 clusters in a 4x4 mesh. Proc 1 reads block 0: hops(1,0)=1, round
  // trip = 2 hops.
  const Cycle near = sys.access(1, 0, false);
  EXPECT_EQ(near, sys.config().latency.remote_2cluster + 3 * 2);
  // Proc 15 (corner) reads block 0 (other corner): hops = 6, round 12.
  const Cycle far = sys.access(15, 0, false);
  EXPECT_EQ(far, sys.config().latency.remote_2cluster + 3 * 12);
}

// ---------------------------------------------------------------------------
// Clustered mode (4 processors per cluster, DASH prototype style)
// ---------------------------------------------------------------------------

SystemConfig clustered_config() {
  SystemConfig config;
  config.num_procs = 8;
  config.procs_per_cluster = 4;  // 2 clusters
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(2);
  return config;
}

TEST(ProtocolClustered, SiblingSharedCopyServedByBusWithNoMessages) {
  CoherenceSystem sys(clustered_config());
  sys.access(0, 1, false);  // proc 0 (cluster 0) reads block 1 (home 1)
  const auto msgs_before = sys.stats().messages.total();
  const Cycle lat = sys.access(1, 1, false);  // sibling has it Shared
  EXPECT_EQ(lat, sys.config().latency.local_access);
  EXPECT_EQ(sys.stats().messages.total(), msgs_before);
  EXPECT_EQ(sys.cache(1).probe(1), LineState::kShared);
}

TEST(ProtocolClustered, SiblingDirtyReadTriggersSharingWriteback) {
  CoherenceSystem sys(clustered_config());
  sys.access(0, 1, true);  // proc 0 dirty block 1 (home = cluster 1)
  const Cycle lat = sys.access(1, 1, false);  // sibling read
  EXPECT_EQ(lat, sys.config().latency.local_access);
  EXPECT_EQ(sys.stats().sharing_writebacks, 1u);
  EXPECT_EQ(sys.cache(0).probe(1), LineState::kShared);
  EXPECT_EQ(sys.cache(1).probe(1), LineState::kShared);
  const DirEntry* entry = sys.peek_entry(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kShared);
}

TEST(ProtocolClustered, SiblingDirtyWriteTransfersWithinCluster) {
  CoherenceSystem sys(clustered_config());
  sys.access(0, 1, true);
  const auto msgs_before = sys.stats().messages.total();
  const Cycle lat = sys.access(1, 1, true);  // cluster-internal transfer
  EXPECT_EQ(lat, sys.config().latency.local_access);
  EXPECT_EQ(sys.stats().messages.total(), msgs_before);
  EXPECT_EQ(sys.cache(0).probe(1), LineState::kInvalid);
  EXPECT_EQ(sys.cache(1).probe(1), LineState::kModified);
  // Directory still shows cluster 0 as the dirty owner.
  const DirEntry* entry = sys.peek_entry(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kDirty);
  EXPECT_EQ(entry->owner, 0);
}

TEST(ProtocolClustered, WriteScrubsSiblingsOverTheBus) {
  CoherenceSystem sys(clustered_config());
  sys.access(0, 1, false);  // two siblings share
  sys.access(1, 1, false);
  sys.access(4, 1, false);  // remote cluster shares too
  sys.access(0, 1, true);   // proc 0 writes
  EXPECT_EQ(sys.cache(1).probe(1), LineState::kInvalid);  // sibling scrubbed
  EXPECT_EQ(sys.cache(4).probe(1), LineState::kInvalid);  // remote killed
  EXPECT_EQ(sys.cache(0).probe(1), LineState::kModified);
}

// ---------------------------------------------------------------------------
// Sparse directory replacement behaviour
// ---------------------------------------------------------------------------

SystemConfig sparse_config(int entries_per_home) {
  SystemConfig config;
  config.num_procs = 4;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(4);
  config.store.sparse = true;
  config.store.sparse_entries = static_cast<std::uint64_t>(entries_per_home);
  config.store.sparse_assoc = entries_per_home;  // one fully-assoc set
  config.store.policy = ReplPolicy::kLru;
  return config;
}

TEST(ProtocolSparse, SharedVictimReclamationInvalidatesAllCopies) {
  CoherenceSystem sys(sparse_config(2));
  // Home 0 blocks: 0, 4, 8. Fill the two entries with shared blocks.
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  sys.access(1, 4, false);
  const auto base = sys.stats().messages;
  sys.access(3, 8, false);  // displaces the LRU entry (block 0)
  EXPECT_EQ(sys.stats().sparse_replacements, 1u);
  // Both copies of block 0 were invalidated.
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.stats().sparse_replacement_invals, 2u);
  const auto& msgs = sys.stats().messages;
  EXPECT_EQ(msgs.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            2u);
  // Acks return to the home's RAC.
  EXPECT_EQ(msgs.get(MsgClass::kAck) - base.get(MsgClass::kAck), 2u);
}

TEST(ProtocolSparse, DirtyVictimIsWrittenBackBeforeReuse) {
  CoherenceSystem sys(sparse_config(2));
  sys.access(1, 0, true);  // dirty block 0, v1
  sys.access(2, 4, false);
  sys.access(3, 8, false);  // displaces block 0 (dirty)
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.stats().sparse_replacements, 1u);
  // The dirty data reached memory: a later read sees version 1.
  sys.access(2, 0, false);
  EXPECT_EQ(sys.cache(2).version_of(0), 1u);
}

TEST(ProtocolSparse, ReplacedBlockCanReturnLater) {
  CoherenceSystem sys(sparse_config(2));
  sys.access(1, 0, false);
  sys.access(1, 4, false);
  sys.access(1, 8, false);   // 0 displaced
  sys.access(1, 0, false);   // 0 comes back (displacing another)
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kShared);
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, DirState::kShared);
}

TEST(ProtocolSparse, ReplacementStatsAccumulate) {
  CoherenceSystem sys(sparse_config(2));
  sys.access(1, 0, false);
  sys.access(1, 4, false);
  sys.access(1, 8, false);
  EXPECT_EQ(sys.stats().sparse_replacements, 1u);
  EXPECT_GE(sys.stats().sparse_replacement_invals, 1u);
}

}  // namespace
}  // namespace dircc
