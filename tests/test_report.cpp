// RunReport JSON/CSV serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

RunResult sample_result() {
  SystemConfig config;
  config.num_procs = 4;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(4);
  CoherenceSystem sys(config);
  ProgramTrace trace;
  trace.block_size = 16;
  trace.per_proc.assign(4, {});
  trace.per_proc[0] = {TraceEvent::write(0), TraceEvent::read(16)};
  trace.per_proc[1] = {TraceEvent::read(0)};
  Engine engine(sys, trace);
  return engine.run();
}

TEST(RunReport, JsonHasCoreMetrics) {
  const RunResult result = sample_result();
  RunReport report("smoke", result);
  report.add_field("scheme", std::string("Dir4"));
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"label\": \"smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"exec_cycles\": " +
                      std::to_string(result.exec_cycles)),
            std::string::npos);
  EXPECT_NE(json.find("\"msgs_total\": "), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"Dir4\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RunReport, JsonEscapesStrings) {
  RunReport report("with \"quotes\"\nand newline", sample_result());
  std::ostringstream out;
  report.write_json(out);
  EXPECT_NE(out.str().find("with \\\"quotes\\\"\\nand newline"),
            std::string::npos);
}

TEST(RunReport, JsonArrayIsWellFormedish) {
  const RunResult result = sample_result();
  std::vector<RunReport> runs{RunReport("a", result), RunReport("b", result)};
  std::ostringstream out;
  write_json_array(out, runs);
  const std::string json = out.str();
  EXPECT_EQ(json.find('['), 0u);
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_NE(json.find("]\n"), std::string::npos);
}

TEST(RunReport, CsvHeaderMatchesRows) {
  const RunResult result = sample_result();
  RunReport a("a", result);
  RunReport b("b", result);
  a.add_field("extra", std::uint64_t{1});
  b.add_field("extra", std::uint64_t{2});
  std::ostringstream out;
  write_csv(out, {a, b});
  const std::string csv = out.str();
  // header + 2 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_EQ(csv.find("label,exec_cycles"), 0u);
  // Every line has the same number of commas.
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  const auto commas = std::count(line.begin(), line.end(), ',');
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), commas);
  }
}

TEST(RunReport, EmptyCsvWritesNothing) {
  std::ostringstream out;
  write_csv(out, {});
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace dircc
