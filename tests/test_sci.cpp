// SciSystem: the cache-based linked-list directory (Section 3.3).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sci/sci_system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SciConfig small_sci(int procs = 8) {
  SciConfig config;
  config.num_procs = procs;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  return config;
}

TEST(Sci, ReadersPrependToTheList) {
  SciSystem sys(small_sci());
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  sys.access(3, 0, false);
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{3, 2, 1}));
  EXPECT_FALSE(sys.dirty_at_head(0));
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kShared);
  EXPECT_EQ(sys.cache(3).probe(0), LineState::kShared);
}

TEST(Sci, FirstReadComesFromMemoryWithTwoMessages) {
  SciSystem sys(small_sci());
  const Cycle lat = sys.access(1, 0, false);
  EXPECT_EQ(lat, sys.config().latency.remote_2cluster);
  EXPECT_EQ(sys.stats().messages.total(), 2u);  // request + reply
}

TEST(Sci, LaterReadsPayThePrependRoundTrip) {
  SciSystem sys(small_sci());
  sys.access(1, 0, false);
  const auto msgs_before = sys.stats().messages.total();
  const Cycle lat = sys.access(2, 0, false);
  EXPECT_EQ(lat, sys.config().latency.remote_2cluster +
                     sys.config().prepend_round);
  // request + reply + link request + link ack
  EXPECT_EQ(sys.stats().messages.total(), msgs_before + 4);
}

TEST(Sci, WriteUnravelsTheListSerially) {
  SciSystem sys(small_sci());
  for (ProcId p = 1; p <= 4; ++p) {
    sys.access(p, 0, false);
  }
  const Cycle lat = sys.access(4, 0, true);  // head writes (upgrade)
  // Three successors, each a serial purge round.
  EXPECT_EQ(lat, sys.config().latency.remote_2cluster +
                     3 * sys.config().purge_round);
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{4}));
  EXPECT_TRUE(sys.dirty_at_head(0));
  for (ProcId p = 1; p <= 3; ++p) {
    EXPECT_EQ(sys.cache(p).probe(0), LineState::kInvalid);
  }
  EXPECT_EQ(sys.sci_stats().purge_lengths.max_value(), 3u);
  EXPECT_EQ(sys.sci_stats().serialized_cycles,
            3 * sys.config().purge_round);
}

TEST(Sci, PurgeLatencyGrowsLinearlyWithSharers) {
  // The paper's key disadvantage: serial invalidations. Compare purge
  // latency after 2 vs 6 sharers.
  auto write_latency_after = [](int readers) {
    SciSystem sys(small_sci());
    for (int p = 1; p <= readers; ++p) {
      sys.access(static_cast<ProcId>(p), 0, false);
    }
    return sys.access(static_cast<ProcId>(readers), 0, true);
  };
  const Cycle small = write_latency_after(2);
  const Cycle large = write_latency_after(6);
  EXPECT_EQ(large - small, 4 * SciConfig{}.purge_round);
}

TEST(Sci, MidListWriterUnlinksAndPurges) {
  SciSystem sys(small_sci());
  sys.access(1, 0, false);
  sys.access(2, 0, false);
  sys.access(3, 0, false);  // list [3,2,1]
  sys.access(2, 0, true);   // mid-list writer
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{2}));
  EXPECT_TRUE(sys.dirty_at_head(0));
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(3).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(2).probe(0), LineState::kModified);
  EXPECT_GT(sys.sci_stats().unlink_operations, 0u);
}

TEST(Sci, DirtyHeadSuppliesReaders) {
  SciSystem sys(small_sci());
  sys.access(1, 0, true);   // dirty at 1
  sys.access(2, 0, false);  // head supplies, downgrades, memory refreshed
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{2, 1}));
  EXPECT_FALSE(sys.dirty_at_head(0));
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kShared);
  EXPECT_EQ(sys.cache(2).version_of(0), 1u);
  EXPECT_EQ(sys.sci_stats().head_supplies, 1u);
}

TEST(Sci, OwnershipTransfersBetweenWriters) {
  SciSystem sys(small_sci());
  sys.access(1, 0, true);
  sys.access(2, 0, true);
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{2}));
  EXPECT_TRUE(sys.dirty_at_head(0));
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.stats().ownership_transfers, 1u);
  EXPECT_EQ(sys.latest_version(0), 2u);
}

TEST(Sci, ReplacementMustUnlink) {
  SciConfig config = small_sci();
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;  // blocks 0 and 4 conflict
  SciSystem sys(config);
  sys.access(1, 0, false);
  sys.access(2, 0, false);  // list [2,1]
  const auto msgs_before = sys.stats().messages.total();
  sys.access(1, 4, false);  // displaces 1's copy of block 0 -> unlink
  EXPECT_EQ(sys.list_of(0), (std::vector<NodeId>{2}));
  EXPECT_GT(sys.sci_stats().unlink_operations, 0u);
  // Miss (2 msgs) + unlink neighbour update (request+ack).
  EXPECT_GE(sys.stats().messages.total(), msgs_before + 4);
}

TEST(Sci, DirtyReplacementWritesBack) {
  SciConfig config = small_sci();
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;
  SciSystem sys(config);
  sys.access(1, 0, true);   // dirty block 0
  sys.access(1, 4, false);  // conflicting fill
  EXPECT_TRUE(sys.list_of(0).empty());
  EXPECT_EQ(sys.stats().dirty_eviction_writebacks, 1u);
  sys.access(2, 0, false);  // fresh read sees the written-back version
  EXPECT_EQ(sys.cache(2).version_of(0), 1u);
}

TEST(Sci, NoExtraneousInvalidationsEver) {
  // The list is exact: every invalidation hits a real copy.
  SciSystem sys(small_sci());
  Rng rng(0x5c1);
  for (int i = 0; i < 20000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(8)),
               static_cast<BlockAddr>(rng.below(32)), rng.chance(0.3));
  }
  EXPECT_EQ(sys.aggregate_cache_stats().invalidations_empty, 0u);
  EXPECT_GT(sys.stats().messages.inv_plus_ack(), 0u);
}

TEST(Sci, RandomTrafficStaysCoherent) {
  // validate=true aborts on stale reads; also check list/cache agreement.
  SciSystem sys(small_sci());
  Rng rng(0x5c2);
  for (int i = 0; i < 10000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(8)),
               static_cast<BlockAddr>(rng.below(24)), rng.chance(0.3));
    if (i % 250 == 249) {
      for (BlockAddr b = 0; b < 24; ++b) {
        const auto list = sys.list_of(b);
        for (int p = 0; p < 8; ++p) {
          const bool cached = sys.cache(static_cast<ProcId>(p)).probe(b) !=
                              LineState::kInvalid;
          const bool listed =
              std::find(list.begin(), list.end(), static_cast<NodeId>(p)) !=
              list.end();
          ASSERT_EQ(cached, listed)
              << "block " << b << " proc " << p << ": list and caches "
              << "disagree";
        }
      }
    }
  }
}

TEST(Sci, PointerStorageScalesWithMachineSize) {
  EXPECT_EQ(SciSystem(small_sci(8)).pointer_bits_per_line(), 6);
  EXPECT_EQ(SciSystem(small_sci(64)).pointer_bits_per_line(), 12);
  EXPECT_EQ(SciSystem(small_sci(256)).pointer_bits_per_line(), 16);
}

TEST(Sci, RunsUnderTheEngineEndToEnd) {
  SciConfig config = small_sci(16);
  config.cache_lines_per_proc = 256;
  SciSystem sys(config);
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 16, 16, 11, 0.1);
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_GT(result.protocol.accesses, 10000u);
  EXPECT_GT(result.exec_cycles, 0u);
  EXPECT_EQ(sys.aggregate_cache_stats().invalidations_empty, 0u);
}

TEST(Sci, SerializationHurtsWideSharingVersusDirectory) {
  // Writes to widely shared blocks: SCI pays a serial round trip per
  // sharer; the memory-based directory overlaps its invalidations.
  const int procs = 16;
  SciConfig sci_config = small_sci(procs);
  sci_config.cache_lines_per_proc = 64;
  SciSystem sci(sci_config);

  SystemConfig dir_config;
  dir_config.num_procs = procs;
  dir_config.cache_lines_per_proc = 64;
  dir_config.cache_assoc = 4;
  dir_config.scheme = SchemeConfig::full(procs);
  CoherenceSystem dir(dir_config);

  Cycle sci_write = 0;
  Cycle dir_write = 0;
  for (int p = 0; p < procs; ++p) {
    sci.access(static_cast<ProcId>(p), 0, false);
    dir.access(static_cast<ProcId>(p), 0, false);
  }
  sci_write = sci.access(0, 0, true);
  dir_write = dir.access(0, 0, true);
  EXPECT_GT(sci_write, 2 * dir_write);
}

}  // namespace
}  // namespace dircc
