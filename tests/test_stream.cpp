// Streaming trace pipeline: EventSource contract, the materializing
// adapter's equivalence with direct trace replay, the datacenter
// generators' streaming <-> materialized identity, pull-order independence,
// bounded lookahead, sweep thread-count invariance on the new workloads,
// and pinned Table-2-style characteristics for the three generators.
#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hpp"
#include "harness/sink.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/run_metrics.hpp"
#include "trace/datacenter.hpp"
#include "trace/event_source.hpp"
#include "trace/generators.hpp"
#include "trace/validate.hpp"

namespace dircc {
namespace {

SystemConfig machine(int procs) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.block_size = 16;
  config.scheme = SchemeConfig::full(procs);
  return config;
}

/// Every registered RunResult counter rendered as one JSON object — two
/// runs are "the same" exactly when their fingerprints are byte-equal.
std::string fingerprint(const RunResult& result) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  obs::MetricsRegistry registry;
  register_metrics(registry, result);
  registry.emit_fields(json);
  json.end_object();
  return out.str();
}

// ---------------------------------------------------------------------------
// MaterializedSource: the adapter must be invisible
// ---------------------------------------------------------------------------

class AdapterEquivalence : public ::testing::TestWithParam<AppKind> {};

TEST_P(AdapterEquivalence, SourceCtorMatchesTraceCtor) {
  const ProgramTrace trace = generate_app(GetParam(), 8, 16, 5, 0.05);

  CoherenceSystem direct_sys(machine(8));
  Engine direct(direct_sys, trace);
  const RunResult direct_result = direct.run();

  MaterializedSource source(trace);
  CoherenceSystem streamed_sys(machine(8));
  Engine streamed(streamed_sys, source);
  const RunResult streamed_result = streamed.run();

  EXPECT_EQ(fingerprint(direct_result), fingerprint(streamed_result));
  EXPECT_EQ(source.events_pulled(), trace.total_events());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AdapterEquivalence,
                         ::testing::Values(AppKind::kLu, AppKind::kDwf,
                                           AppKind::kMp3d,
                                           AppKind::kLocusRoute));

TEST(MaterializedSource, MaterializeRoundTripsTheTrace) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 4, 16, 9, 0.05);
  MaterializedSource source(trace);
  const ProgramTrace copy = materialize(source);
  EXPECT_EQ(copy.app_name, trace.app_name);
  EXPECT_EQ(copy.block_size, trace.block_size);
  ASSERT_EQ(copy.per_proc.size(), trace.per_proc.size());
  for (std::size_t p = 0; p < trace.per_proc.size(); ++p) {
    EXPECT_EQ(copy.per_proc[p], trace.per_proc[p]) << "proc " << p;
  }
}

// ---------------------------------------------------------------------------
// Datacenter generators: streaming and materialized forms are one stream
// ---------------------------------------------------------------------------

class DatacenterStream : public ::testing::TestWithParam<DatacenterKind> {};

TEST_P(DatacenterStream, StreamingRunMatchesMaterializedRun) {
  const ProgramTrace trace =
      generate_datacenter(GetParam(), 8, 16, 48, 7, 0.5);

  CoherenceSystem mat_sys(machine(8));
  Engine materialized(mat_sys, trace);
  const RunResult mat_result = materialized.run();

  const auto source = make_datacenter_source(GetParam(), 8, 16, 48, 7, 0.5);
  CoherenceSystem str_sys(machine(8));
  Engine streamed(str_sys, *source);
  const RunResult str_result = streamed.run();

  EXPECT_EQ(fingerprint(mat_result), fingerprint(str_result));
  EXPECT_EQ(source->events_pulled(), trace.total_events());
}

TEST_P(DatacenterStream, PerProcStreamsMatchMaterializedForm) {
  const ProgramTrace trace =
      generate_datacenter(GetParam(), 4, 16, 24, 3, 0.5);
  const auto source = make_datacenter_source(GetParam(), 4, 16, 24, 3, 0.5);
  ASSERT_EQ(source->num_procs(), trace.num_procs());
  for (int p = 0; p < trace.num_procs(); ++p) {
    std::vector<TraceEvent> drained;
    TraceEvent ev;
    while (source->next(static_cast<ProcId>(p), ev)) {
      drained.push_back(ev);
    }
    EXPECT_EQ(drained, trace.per_proc[static_cast<std::size_t>(p)])
        << "proc " << p;
  }
}

TEST_P(DatacenterStream, StreamsAreIndependentOfPullOrder) {
  // Proc-major drain vs round-robin drain: the per-processor sequences
  // must be identical — the engine pulls in data-dependent simulated-time
  // order, so any order sensitivity would break determinism.
  const auto a = make_datacenter_source(GetParam(), 4, 16, 24, 3, 0.5);
  const auto b = make_datacenter_source(GetParam(), 4, 16, 24, 3, 0.5);

  std::vector<std::vector<TraceEvent>> major(4);
  for (int p = 0; p < 4; ++p) {
    TraceEvent ev;
    while (a->next(static_cast<ProcId>(p), ev)) {
      major[static_cast<std::size_t>(p)].push_back(ev);
    }
  }
  std::vector<std::vector<TraceEvent>> round(4);
  bool any = true;
  while (any) {
    any = false;
    for (int p = 0; p < 4; ++p) {
      TraceEvent ev;
      if (b->next(static_cast<ProcId>(p), ev)) {
        round[static_cast<std::size_t>(p)].push_back(ev);
        any = true;
      }
    }
  }
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(major[static_cast<std::size_t>(p)],
              round[static_cast<std::size_t>(p)])
        << "proc " << p;
  }
}

TEST_P(DatacenterStream, LookaheadStaysBounded) {
  const auto source = make_datacenter_source(GetParam(), 4, 16, 64, 3, 2.0);
  const auto* buffered = dynamic_cast<const BufferedSource*>(source.get());
  ASSERT_NE(buffered, nullptr)
      << "datacenter sources must be streaming, not materialized";
  TraceEvent ev;
  std::uint64_t drained = 0;
  for (int p = 0; p < 4; ++p) {
    while (source->next(static_cast<ProcId>(p), ev)) {
      ++drained;
    }
  }
  EXPECT_GT(drained, 4096u) << "stream long enough to need many refills";
  // Far below the total stream: the O(procs x chunk) memory bound.
  EXPECT_LE(buffered->max_chunk_events(), 1024u);
}

TEST_P(DatacenterStream, GeneratesStructurallyValidTraces) {
  const ProgramTrace trace =
      generate_datacenter(GetParam(), 8, 16, 48, 7, 0.5);
  std::string error;
  EXPECT_TRUE(validate_trace(trace, &error)) << error;
  for (const auto& stream : trace.per_proc) {
    EXPECT_FALSE(stream.empty());
  }
}

TEST_P(DatacenterStream, ExhaustedStreamStaysExhausted) {
  const auto source = make_datacenter_source(GetParam(), 2, 16, 4, 3, 0.25);
  TraceEvent ev;
  while (source->next(0, ev)) {
  }
  EXPECT_FALSE(source->next(0, ev));
  EXPECT_FALSE(source->next(0, ev));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DatacenterStream,
                         ::testing::Values(DatacenterKind::kKv,
                                           DatacenterKind::kQueue,
                                           DatacenterKind::kOltp));

// ---------------------------------------------------------------------------
// Sweep harness: the new workloads keep thread-count invariance
// ---------------------------------------------------------------------------

TEST(DatacenterSweep, ResultsAreThreadCountInvariant) {
  const auto cells = [] {
    std::vector<harness::SweepCell> out;
    for (const DatacenterKind kind :
         {DatacenterKind::kKv, DatacenterKind::kQueue,
          DatacenterKind::kOltp}) {
      harness::SweepCell cell;
      cell.key = std::string("t/app=") + datacenter_name(kind);
      cell.fields = {{"app", datacenter_name(kind)}};
      cell.trace = harness::datacenter_trace(kind, 8, 16, 32, 11, 0.5);
      cell.system = machine(8);
      cell.system.seed = harness::cell_seed(11, cell.key);
      out.push_back(std::move(cell));
    }
    return out;
  }();

  const auto jsonl = [&](int threads) {
    harness::SweepRunner runner(threads);
    const std::vector<harness::CellResult> results = runner.run(cells);
    std::ostringstream out;
    harness::SinkOptions sink;
    sink.include_timing = false;
    harness::write_results_jsonl(out, results, sink);
    return out.str();
  };

  EXPECT_EQ(jsonl(1), jsonl(2));
}

// ---------------------------------------------------------------------------
// Pinned characteristics (Table-2 style golden stats)
// ---------------------------------------------------------------------------
//
// Exact counts for fixed small configs. A change here means the generated
// streams changed — which silently invalidates every recorded datacenter
// sweep, so it must be a conscious decision.

TEST(DatacenterGolden, KvCharacteristics) {
  KvConfig config;
  config.procs = 8;
  config.clients = 64;
  config.ops_per_client = 32;
  const ProgramTrace trace = generate_kv(config);
  const TraceCharacteristics c = characterize(trace);
  EXPECT_EQ(trace.total_events(), 12288u);
  EXPECT_EQ(c.shared_reads, 9420u);
  EXPECT_EQ(c.shared_writes, 820u);
  EXPECT_EQ(c.sync_ops, 0u);
  EXPECT_EQ(c.distinct_blocks, 3172u);
}

TEST(DatacenterGolden, QueueCharacteristics) {
  QueueConfig config;
  config.procs = 8;
  config.clients = 64;
  config.rpcs_per_client = 16;
  config.queues = 8;
  const ProgramTrace trace = generate_queue(config);
  const TraceCharacteristics c = characterize(trace);
  EXPECT_EQ(trace.total_events(), 17408u);
  EXPECT_EQ(c.shared_reads, 6144u);
  EXPECT_EQ(c.shared_writes, 6144u);
  EXPECT_EQ(c.sync_ops, 4096u);
  EXPECT_EQ(c.distinct_blocks, 520u);
}

TEST(DatacenterGolden, OltpCharacteristics) {
  OltpConfig config;
  config.procs = 8;
  config.clients = 64;
  config.txns_per_client = 8;
  const ProgramTrace trace = generate_oltp(config);
  const TraceCharacteristics c = characterize(trace);
  EXPECT_EQ(trace.total_events(), 12236u);
  EXPECT_EQ(c.shared_reads, 4096u);
  EXPECT_EQ(c.shared_writes, 1996u);
  EXPECT_EQ(c.sync_ops, 4096u);
  EXPECT_EQ(c.distinct_blocks, 1310u);
}

}  // namespace
}  // namespace dircc
