// Cross-module property tests: randomized traffic and real application
// traces driven through the full protocol stack, checking the global
// coherence invariants of DESIGN.md under every scheme and store flavour.
//
// Note the value-coherence invariant (reads always observe the latest
// version) is *always* on: SystemConfig::validate defaults to true and any
// violation aborts the process, so every run below doubles as a coherence
// check of millions of accesses.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

struct StackCase {
  const char* label;
  SchemeConfig scheme;
  bool sparse;
  ReplPolicy policy;
};

class ProtocolStack : public ::testing::TestWithParam<StackCase> {};

SystemConfig stack_config(const StackCase& c) {
  SystemConfig config;
  config.num_procs = c.scheme.num_nodes;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 32;
  config.cache_assoc = 4;
  config.scheme = c.scheme;
  if (c.sparse) {
    config.store.sparse = true;
    // Deliberately tight: half the per-cluster cache lines, to force
    // replacements constantly.
    config.store.sparse_entries = 16;
    config.store.sparse_assoc = 4;
    config.store.policy = c.policy;
  }
  return config;
}

/// Checks the global invariants for one block.
void check_block_invariants(const CoherenceSystem& sys, BlockAddr block,
                            const char* label) {
  const SystemConfig& config = sys.config();
  std::vector<NodeId> clusters_with_copy;
  int modified_lines = 0;
  int valid_lines = 0;
  NodeId modified_cluster = kNoNode;
  for (int p = 0; p < config.num_procs; ++p) {
    const LineState st = sys.cache(static_cast<ProcId>(p)).probe(block);
    if (st == LineState::kInvalid) {
      continue;
    }
    ++valid_lines;
    const NodeId cluster = sys.cluster_of(static_cast<ProcId>(p));
    clusters_with_copy.push_back(cluster);
    if (st == LineState::kModified) {
      ++modified_lines;
      modified_cluster = cluster;
    }
  }
  // Single-writer: a Modified line is the only valid copy machine-wide.
  if (modified_lines > 0) {
    ASSERT_EQ(modified_lines, 1) << label << " block " << block;
    ASSERT_EQ(valid_lines, 1) << label << " block " << block;
  }
  const DirEntry* entry = sys.peek_entry(block);
  if (valid_lines == 0) {
    return;  // entry may be live-but-stale; that is allowed
  }
  // Sparse residency: any cached block has a live directory entry.
  ASSERT_NE(entry, nullptr) << label << " block " << block;
  if (modified_lines == 1) {
    ASSERT_EQ(entry->state, DirState::kDirty) << label << " block " << block;
    ASSERT_EQ(entry->owner, modified_cluster) << label << " block " << block;
    return;
  }
  // Superset safety: every cluster holding a copy is a possible sharer.
  ASSERT_EQ(entry->state, DirState::kShared) << label << " block " << block;
  for (NodeId cluster : clusters_with_copy) {
    ASSERT_TRUE(sys.format().maybe_sharer(entry->sharers, cluster))
        << label << " block " << block << " cluster " << cluster;
  }
}

TEST_P(ProtocolStack, RandomTrafficKeepsInvariants) {
  const StackCase& c = GetParam();
  SystemConfig config = stack_config(c);
  CoherenceSystem sys(config);
  Rng rng(0x5eedULL);
  constexpr int kBlocks = 24;
  constexpr int kAccesses = 6000;
  for (int i = 0; i < kAccesses; ++i) {
    const auto proc = static_cast<ProcId>(
        rng.below(static_cast<std::uint64_t>(config.num_procs)));
    const auto block = static_cast<BlockAddr>(rng.below(kBlocks));
    const bool is_write = rng.chance(0.3);
    sys.access(proc, block, is_write);
    if (i % 100 == 99) {
      for (BlockAddr b = 0; b < kBlocks; ++b) {
        check_block_invariants(sys, b, c.label);
      }
    }
  }
  // Message conservation: every network invalidation produces an ack (acks
  // can exceed invalidations because home-cluster targets are invalidated
  // over the bus yet still ack the requester across the network).
  const auto& msgs = sys.stats().messages;
  EXPECT_LE(msgs.get(MsgClass::kInvalidation), msgs.get(MsgClass::kAck));
  EXPECT_GT(sys.stats().accesses, 0u);
}

TEST_P(ProtocolStack, HotBlockWriteStormStaysCoherent) {
  const StackCase& c = GetParam();
  SystemConfig config = stack_config(c);
  CoherenceSystem sys(config);
  // Everyone reads, then one writes, repeatedly: the classic wide-sharing
  // invalidation pattern. Version validation (always on) plus the final
  // invariant check prove nobody kept a stale copy.
  for (int round = 0; round < 40; ++round) {
    for (int p = 0; p < config.num_procs; ++p) {
      sys.access(static_cast<ProcId>(p), 0, false);
    }
    const auto writer =
        static_cast<ProcId>(round % config.num_procs);
    sys.access(writer, 0, true);
    for (int p = 0; p < config.num_procs; ++p) {
      if (p != writer) {
        EXPECT_EQ(sys.cache(static_cast<ProcId>(p)).probe(0),
                  LineState::kInvalid)
            << c.label;
      }
    }
    check_block_invariants(sys, 0, c.label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndStores, ProtocolStack,
    ::testing::Values(
        StackCase{"Full32", SchemeConfig::full(32), false, ReplPolicy::kLru},
        StackCase{"Full32SparseLRU", SchemeConfig::full(32), true,
                  ReplPolicy::kLru},
        StackCase{"Full32SparseRand", SchemeConfig::full(32), true,
                  ReplPolicy::kRandom},
        StackCase{"Full32SparseLRA", SchemeConfig::full(32), true,
                  ReplPolicy::kLra},
        StackCase{"B3", SchemeConfig::broadcast(32, 3), false,
                  ReplPolicy::kLru},
        StackCase{"B3Sparse", SchemeConfig::broadcast(32, 3), true,
                  ReplPolicy::kRandom},
        StackCase{"NB3", SchemeConfig::no_broadcast(32, 3), false,
                  ReplPolicy::kLru},
        StackCase{"NB3Sparse", SchemeConfig::no_broadcast(32, 3), true,
                  ReplPolicy::kRandom},
        StackCase{"X3", SchemeConfig::superset(32, 3), false,
                  ReplPolicy::kLru},
        StackCase{"CV32", SchemeConfig::coarse(32, 3, 2), false,
                  ReplPolicy::kLru},
        StackCase{"CV32Sparse", SchemeConfig::coarse(32, 3, 2), true,
                  ReplPolicy::kRandom},
        StackCase{"CV16r4", SchemeConfig::coarse(16, 2, 4), false,
                  ReplPolicy::kLru},
        StackCase{"OV32", SchemeConfig::overflow(32, 2, 8), false,
                  ReplPolicy::kLru},
        StackCase{"OV32Sparse", SchemeConfig::overflow(32, 2, 8), true,
                  ReplPolicy::kRandom}),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// End-to-end application runs (value validation on throughout)
// ---------------------------------------------------------------------------

RunResult run_app(AppKind app, SchemeConfig scheme, double scale = 0.1) {
  SystemConfig config;
  config.num_procs = 16;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.scheme = scheme;
  CoherenceSystem sys(config);
  const ProgramTrace trace = generate_app(app, 16, 16, 11, scale);
  Engine engine(sys, trace);
  return engine.run();
}

TEST(EndToEnd, LuNoBroadcastChurnsWhereOthersDoNot) {
  const RunResult full = run_app(AppKind::kLu, SchemeConfig::full(16));
  const RunResult nb =
      run_app(AppKind::kLu, SchemeConfig::no_broadcast(16, 3));
  const RunResult cv = run_app(AppKind::kLu, SchemeConfig::coarse(16, 3, 2));
  // Dir_iNB's pointer displacement on the widely-read pivot column floods
  // the machine with invalidations and extra re-read traffic (Fig. 7).
  EXPECT_GT(nb.protocol.messages.inv_plus_ack(),
            4 * full.protocol.messages.inv_plus_ack());
  EXPECT_GT(nb.protocol.messages.total(),
            full.protocol.messages.total() * 3 / 2);
  // The coarse vector stays close to the full vector.
  EXPECT_LT(cv.protocol.messages.total(),
            full.protocol.messages.total() * 6 / 5);
  EXPECT_LE(full.exec_cycles, nb.exec_cycles);
}

TEST(EndToEnd, Mp3dIsInsensitiveToTheScheme) {
  const RunResult full = run_app(AppKind::kMp3d, SchemeConfig::full(16));
  const RunResult b = run_app(AppKind::kMp3d, SchemeConfig::broadcast(16, 3));
  const RunResult nb =
      run_app(AppKind::kMp3d, SchemeConfig::no_broadcast(16, 3));
  // Migratory 1-2 sharer data: every scheme handles it (Fig. 9).
  EXPECT_NEAR(static_cast<double>(b.protocol.messages.total()),
              static_cast<double>(full.protocol.messages.total()),
              0.05 * static_cast<double>(full.protocol.messages.total()));
  EXPECT_NEAR(static_cast<double>(nb.exec_cycles),
              static_cast<double>(full.exec_cycles),
              0.05 * static_cast<double>(full.exec_cycles));
}

TEST(EndToEnd, LocusRouteBroadcastPaysForMidSizeSharing) {
  const RunResult full =
      run_app(AppKind::kLocusRoute, SchemeConfig::full(16), 0.2);
  const RunResult b =
      run_app(AppKind::kLocusRoute, SchemeConfig::broadcast(16, 3), 0.2);
  const RunResult cv =
      run_app(AppKind::kLocusRoute, SchemeConfig::coarse(16, 3, 2), 0.2);
  // Writes to ~4-8-sharer grid blocks overflow three pointers and force
  // broadcasts; the coarse vector sends far fewer invalidations (Fig. 10).
  EXPECT_GT(b.protocol.messages.inv_plus_ack(),
            cv.protocol.messages.inv_plus_ack());
  EXPECT_GE(b.protocol.inval_distribution.mean(),
            cv.protocol.inval_distribution.mean());
  EXPECT_GE(cv.protocol.inval_distribution.mean(),
            full.protocol.inval_distribution.mean() - 1e-9);
}

TEST(EndToEnd, CoarseVectorNeverWorseThanBroadcastAcrossApps) {
  for (AppKind app : {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d,
                      AppKind::kLocusRoute}) {
    const RunResult b = run_app(app, SchemeConfig::broadcast(16, 3));
    const RunResult cv = run_app(app, SchemeConfig::coarse(16, 3, 2));
    EXPECT_LE(cv.protocol.messages.inv_plus_ack(),
              b.protocol.messages.inv_plus_ack() + 5)
        << app_name(app);
  }
}

TEST(EndToEnd, SparseDirectoryAddsBoundedTraffic) {
  // Section 6.3 / abstract: sparse directories add modest traffic. With a
  // sparse directory as large as the caches (size factor 1) the added
  // traffic stays within a few tens of percent on MP3D.
  SystemConfig config;
  config.num_procs = 16;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(16);

  CoherenceSystem dense_sys(config);
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 16, 16, 11, 0.1);
  Engine dense_engine(dense_sys, trace);
  const RunResult dense = dense_engine.run();

  config.store.sparse = true;
  config.store.sparse_entries =
      config.cache_lines_per_proc;  // size factor 1 (16 homes x 64)
  config.store.sparse_assoc = 4;
  config.store.policy = ReplPolicy::kRandom;
  CoherenceSystem sparse_sys(config);
  Engine sparse_engine(sparse_sys, trace);
  const RunResult sparse = sparse_engine.run();

  EXPECT_GT(sparse_sys.stats().sparse_replacements, 0u);
  EXPECT_LT(static_cast<double>(sparse.protocol.messages.total()),
            1.35 * static_cast<double>(dense.protocol.messages.total()));
  EXPECT_LT(static_cast<double>(sparse.exec_cycles),
            1.25 * static_cast<double>(dense.exec_cycles));
}

TEST(EndToEnd, ClusteredDashPrototypeRunsCoherently) {
  // 16 processors as 4 clusters of 4 (DASH prototype shape), full vector.
  SystemConfig config;
  config.num_procs = 16;
  config.procs_per_cluster = 4;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(4);
  CoherenceSystem sys(config);
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 16, 16, 11, 0.1);
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_GT(result.protocol.accesses, 10000u);
  // Intra-cluster sharing must have produced message-free transactions.
  EXPECT_GT(result.protocol.local_transactions, 0u);
}

}  // namespace
}  // namespace dircc
