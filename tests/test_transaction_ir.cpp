// Golden-shape tests for the transaction IR: the protocol layer describes
// every transaction as an ordered hop DAG, and downstream consumers (the
// latency backends, the message fold, the obs spans, the fault hooks) see
// nothing else. These tests pin the exact hop sequences of the canonical
// transactions so any protocol change that reshapes a transaction is
// caught as a diff against a readable serialization.
#include <gtest/gtest.h>

#include "protocol/system.hpp"
#include "protocol/transaction.hpp"

namespace dircc {
namespace {

SystemConfig config32() {
  SystemConfig config;
  config.num_procs = 32;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(32);
  return config;
}

TEST(TransactionIr, TwoClusterCleanRead) {
  CoherenceSystem sys(config32());
  sys.access(1, 0, false, 0);
  EXPECT_EQ(format_transaction(sys.last_transaction()),
            "directory read c=1 h=0\n"
            "  0: request 1->0\n"
            "  1: reply 0->1 dep=0\n");
}

TEST(TransactionIr, ThreeClusterDirtyRead) {
  CoherenceSystem sys(config32());
  sys.access(2, 0, true, 0);  // cluster 2 becomes the dirty owner
  sys.access(1, 0, false, 100);
  EXPECT_EQ(format_transaction(sys.last_transaction()),
            "directory read c=1 h=0 o=2\n"
            "  0: request 1->0\n"
            "  1: forward 0->2 dep=0\n"
            "  2: sharing-wb 2->0 dep=1\n"
            "  3: reply 2->1 dep=1\n");
}

TEST(TransactionIr, WriteWithInvalidationFanout) {
  CoherenceSystem sys(config32());
  for (ProcId p = 1; p <= 3; ++p) {
    sys.access(p, 0, false, 0);  // three sharers
  }
  sys.access(4, 0, true, 100);
  EXPECT_EQ(format_transaction(sys.last_transaction()),
            "directory write c=4 h=0 ack-round\n"
            "  0: request 4->0\n"
            "  1: inval 0->1 dep=0 fanout=0(write-shared)\n"
            "  2: ack 1->4 dep=1 fanout=0(write-shared)\n"
            "  3: inval 0->2 dep=0 fanout=0(write-shared)\n"
            "  4: ack 2->4 dep=3 fanout=0(write-shared)\n"
            "  5: inval 0->3 dep=0 fanout=0(write-shared)\n"
            "  6: ack 3->4 dep=5 fanout=0(write-shared)\n"
            "  7: reply 0->4 dep=0\n");
}

TEST(TransactionIr, SparseVictimReclamationWithDirtyWriteback) {
  SystemConfig config = config32();
  config.store.sparse = true;
  config.store.sparse_entries = 2;
  config.store.sparse_assoc = 2;
  config.store.policy = ReplPolicy::kLru;
  CoherenceSystem sys(config);
  sys.access(1, 0, true, 0);     // dirty entry, owner cluster 1
  sys.access(1, 32, false, 10);  // second entry in home 0's only set
  // A third block at home 0 forces reclamation of the LRU victim (block
  // 0): fetch the dirty copy back, flush it to memory, then serve the
  // read that caused it all.
  sys.access(2, 64, false, 100);
  EXPECT_EQ(format_transaction(sys.last_transaction()),
            "directory read c=2 h=0\n"
            "  0: request 2->0\n"
            "  1: victim-fetch 0->1 dep=0\n"
            "  2: victim-wb 1->0 dep=1\n"
            "  3: reply 0->2 dep=0\n");
}

TEST(TransactionIr, CacheHitLeavesNoTransaction) {
  CoherenceSystem sys(config32());
  sys.access(1, 0, false, 0);
  sys.access(1, 0, false, 100);  // hit
  EXPECT_EQ(sys.last_transaction().kind, TxnKind::kNone);
  EXPECT_FALSE(sys.last_transaction().active());
}

TEST(TransactionIr, SnoopServedMissCommitsAsLocal) {
  SystemConfig config = config32();
  config.num_procs = 4;
  config.procs_per_cluster = 2;
  config.scheme = SchemeConfig::full(2);
  CoherenceSystem sys(config);
  sys.access(0, 1, false, 0);    // directory fill into cluster 0
  sys.access(1, 1, false, 100);  // sibling snoop-serves the copy
  EXPECT_EQ(format_transaction(sys.last_transaction()),
            "local read c=0 h=1\n");
}

TEST(TransactionIr, FoldMatchesTheMessageCounters) {
  CoherenceSystem sys(config32());
  for (ProcId p = 1; p <= 3; ++p) {
    sys.access(p, 0, false, 0);
  }
  const std::uint64_t before = sys.stats().messages.total();
  sys.access(4, 0, true, 100);
  EXPECT_EQ(sys.stats().messages.total() - before,
            static_cast<std::uint64_t>(
                sys.last_transaction().network_messages()));
}

}  // namespace
}  // namespace dircc
