// Latency-attribution subsystem (obs/attrib): hop categorization, windowed
// utilization series, the backend timing-sink contract, the critical-path
// invariant against the queued backend, report schemas, and sweep wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hpp"
#include "harness/sweep.hpp"
#include "network/mesh.hpp"
#include "obs/attrib/collector.hpp"
#include "obs/attrib/report.hpp"
#include "obs/metrics.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/event.hpp"
#include "trace/generators.hpp"

namespace dircc::obs::attrib {
namespace {

TEST(PathCats, EveryHopKindHasACategory) {
  EXPECT_EQ(hop_category(HopKind::kRequest), PathCat::kRequest);
  EXPECT_EQ(hop_category(HopKind::kForward), PathCat::kForward);
  EXPECT_EQ(hop_category(HopKind::kVictimFetch), PathCat::kForward);
  EXPECT_EQ(hop_category(HopKind::kInval), PathCat::kInvalidation);
  EXPECT_EQ(hop_category(HopKind::kDisplacementInval),
            PathCat::kInvalidation);
  EXPECT_EQ(hop_category(HopKind::kReclaimInval), PathCat::kInvalidation);
  EXPECT_EQ(hop_category(HopKind::kAck), PathCat::kAck);
  EXPECT_EQ(hop_category(HopKind::kReclaimAck), PathCat::kAck);
  EXPECT_EQ(hop_category(HopKind::kTransferAck), PathCat::kAck);
  EXPECT_EQ(hop_category(HopKind::kReply), PathCat::kData);
  EXPECT_EQ(hop_category(HopKind::kSharingWriteback), PathCat::kWriteback);
  EXPECT_EQ(hop_category(HopKind::kVictimWriteback), PathCat::kWriteback);
  EXPECT_EQ(hop_category(HopKind::kEvictionWriteback), PathCat::kWriteback);
  EXPECT_EQ(hop_category(HopKind::kReplacementHint), PathCat::kWriteback);
  EXPECT_STREQ(path_cat_name(PathCat::kInvalidation), "invalidation");
  EXPECT_STREQ(txn_class_name(TxnClass::kDir3Write), "dir3_write");
}

TEST(WindowedUsage, AccountsAndCoarsensIntervals) {
  WindowedUsage usage;
  usage.configure(10, 4);
  usage.add(0, 10);
  usage.add(12, 18);
  EXPECT_EQ(usage.window(), 10u);
  ASSERT_EQ(usage.busy().size(), 2u);
  EXPECT_EQ(usage.busy()[0], 10u);
  EXPECT_EQ(usage.busy()[1], 6u);
  // 45 lands past window * max_windows = 40: the series folds to width 20
  // and the interval splits across the two windows it overlaps.
  usage.add(35, 45);
  EXPECT_EQ(usage.window(), 20u);
  ASSERT_EQ(usage.busy().size(), 3u);
  EXPECT_EQ(usage.busy()[0], 16u);
  EXPECT_EQ(usage.busy()[1], 5u);
  EXPECT_EQ(usage.busy()[2], 5u);
  usage.coarsen_to(40);
  ASSERT_EQ(usage.busy().size(), 2u);
  EXPECT_EQ(usage.busy()[0], 21u);
  EXPECT_EQ(usage.busy()[1], 5u);
}

TEST(WindowedUsage, MergeAlignsDivergedWidths) {
  WindowedUsage a;
  a.configure(10, 4);
  a.add(0, 5);
  WindowedUsage b;
  b.configure(10, 4);
  b.add(35, 45);  // forces b to width 20
  EXPECT_EQ(b.window(), 20u);
  a.merge(b);
  EXPECT_EQ(a.window(), 20u);
  ASSERT_EQ(a.busy().size(), 3u);
  EXPECT_EQ(a.busy()[0], 5u);
  EXPECT_EQ(a.busy()[1], 5u);
  EXPECT_EQ(a.busy()[2], 5u);
}

TEST(Collector, DefaultLatencyEdgesArePinned) {
  const std::vector<std::uint64_t> edges = default_latency_edges();
  ASSERT_EQ(edges.size(), 18u);  // 2^3 .. 2^20
  EXPECT_EQ(edges.front(), 8u);
  EXPECT_EQ(edges.back(), 1u << 20);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i], edges[i - 1] * 2);
  }
}

TEST(Mesh, LinkEndpointsInvertTheRouteEncoding) {
  const MeshTopology mesh(4, 3);
  std::vector<LinkId> links;
  for (int from = 0; from < mesh.num_nodes(); ++from) {
    for (int to = 0; to < mesh.num_nodes(); ++to) {
      links.clear();
      mesh.route_links(static_cast<NodeId>(from), static_cast<NodeId>(to),
                       &links);
      if (from == to) {
        EXPECT_TRUE(links.empty());
        continue;
      }
      // The decoded endpoints must chain: each link starts where the
      // previous one ended, one Manhattan step at a time, source to
      // destination.
      int x = mesh.node_x(static_cast<NodeId>(from));
      int y = mesh.node_y(static_cast<NodeId>(from));
      for (const LinkId link : links) {
        const MeshTopology::LinkEndpoints ep = mesh.link_endpoints(link);
        EXPECT_EQ(ep.from_x, x);
        EXPECT_EQ(ep.from_y, y);
        EXPECT_EQ(std::abs(ep.to_x - ep.from_x) +
                      std::abs(ep.to_y - ep.from_y),
                  1);
        x = ep.to_x;
        y = ep.to_y;
      }
      EXPECT_EQ(x, mesh.node_x(static_cast<NodeId>(to)));
      EXPECT_EQ(y, mesh.node_y(static_cast<NodeId>(to)));
      EXPECT_EQ(static_cast<int>(links.size()),
                mesh.hops(static_cast<NodeId>(from),
                          static_cast<NodeId>(to)));
    }
  }
  EXPECT_EQ(mesh.link_name(0), "(0,0)->(1,0)");
}

// A wide-sharing program: every processor reads a block set, a rotating
// writer invalidates it (fan-out), and a contended lock adds ownership
// transfers — together covering 1/2/3-cluster reads and writes.
ProgramTrace wide_sharing_trace(int procs) {
  ProgramTrace trace;
  trace.app_name = "attrib-fanout";
  trace.block_size = 16;
  trace.per_proc.resize(static_cast<std::size_t>(procs));
  constexpr Addr kLock = 0x8000;
  constexpr Addr kBarrier = 0x9000;
  for (int p = 0; p < procs; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int round = 0; round < 4; ++round) {
      for (int b = 0; b < 8; ++b) {
        stream.push_back(TraceEvent::read(0x100 + static_cast<Addr>(b) * 16));
      }
      stream.push_back(TraceEvent::barrier(kBarrier));
      if (p == round % procs) {
        for (int b = 0; b < 8; ++b) {
          stream.push_back(
              TraceEvent::write(0x100 + static_cast<Addr>(b) * 16));
        }
      }
      stream.push_back(TraceEvent::barrier(kBarrier));
      stream.push_back(TraceEvent::lock(kLock));
      stream.push_back(TraceEvent::write(0xF00));
      stream.push_back(TraceEvent::unlock(kLock));
    }
  }
  return trace;
}

// Records hop timings and, at each commit, re-derives the transaction's
// latency from them: the dep chain ending at the last-finishing hop must
// telescope to the walked completion, and the final latency must equal
// max(analytic floor, walked). The sink owns its own AnalyticBackend so the
// check is independent of the queued backend's internal floor computation.
class InvariantSink : public AttributionSink {
 public:
  explicit InvariantSink(const SystemConfig& config)
      : mesh_(config.num_clusters()),
        latency_(config.latency),
        analytic_(mesh_, latency_) {}

  void bind(const Topology& mesh) override {
    EXPECT_EQ(mesh.width(), mesh_.width());
    EXPECT_EQ(mesh.height(), mesh_.height());
  }
  void on_hop(const Transaction& /*txn*/, const HopTiming& timing) override {
    EXPECT_EQ(timing.done, timing.start + timing.queue + timing.service);
    hops_.push_back(timing);
  }
  void on_link(LinkId /*link*/, Cycle /*wait*/, Cycle /*busy_from*/,
               Cycle /*busy_until*/) override {}
  void on_home(NodeId /*home*/, Cycle /*wait*/, Cycle /*busy_from*/,
               Cycle /*busy_until*/) override {}

  void on_commit(const Transaction& txn, const TransactionRoute& route,
                 Cycle now, Cycle latency) override {
    if (hops_.empty()) {
      return;  // bus-served access: no hop walk to check against
    }
    ASSERT_EQ(hops_.size(), txn.hops.size());
    std::size_t best = 0;
    for (std::size_t i = 1; i < hops_.size(); ++i) {
      if (hops_[i].done > hops_[best].done) {
        best = i;
      }
    }
    const Cycle walked = hops_[best].done - now;
    Cycle chain = 0;
    int idx = static_cast<int>(best);
    while (idx >= 0) {
      const HopTiming& timing = hops_[static_cast<std::size_t>(idx)];
      chain += timing.queue + timing.service;
      idx = txn.hops[static_cast<std::size_t>(idx)].dep;
    }
    EXPECT_EQ(chain, walked)
        << "critical-path sum does not telescope to the walked completion";
    ProtocolStats scratch;
    const Cycle analytic =
        analytic_.transaction_latency(txn, now, scratch, route);
    EXPECT_EQ(latency, std::max(analytic, walked))
        << "latency is not max(analytic floor, walked completion)";
    ++checked_;
    hops_.clear();
  }

  std::uint64_t checked() const { return checked_; }

 private:
  MeshTopology mesh_;
  LatencyModel latency_;
  AnalyticBackend analytic_;
  std::vector<HopTiming> hops_;
  std::uint64_t checked_ = 0;
};

TEST(CriticalPath, SumsToQueuedLatencyAcrossSchemes) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  constexpr int kProcs = 8;
  const ProgramTrace trace = wide_sharing_trace(kProcs);
  const std::vector<SchemeConfig> schemes = {
      SchemeConfig::full(kProcs), SchemeConfig::coarse(kProcs, 3, 2),
      SchemeConfig::broadcast(kProcs, 3),
      SchemeConfig::no_broadcast(kProcs, 3)};
  for (const SchemeConfig& scheme : schemes) {
    SystemConfig config;
    config.num_procs = kProcs;
    config.cache_lines_per_proc = 16;
    config.scheme = scheme;
    config.backend = BackendKind::kQueued;
    CoherenceSystem system(config);
    InvariantSink sink(config);
    system.attach_attribution(&sink);
    Engine engine(system, trace);
    engine.run();
    EXPECT_GT(sink.checked(), 0u) << "scheme checked no directory txns";
  }
}

TEST(Collector, AttributionDoesNotChangeTheSimulation) {
  SystemConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(8);
  config.backend = BackendKind::kQueued;
  const ProgramTrace trace = wide_sharing_trace(8);

  CoherenceSystem bare_system(config);
  Engine bare(bare_system, trace);
  const RunResult without = bare.run();

  CoherenceSystem observed_system(config);
  Collector collector;
  observed_system.attach_attribution(&collector);
  Engine observed(observed_system, trace);
  const RunResult with = observed.run();

  EXPECT_EQ(without.exec_cycles, with.exec_cycles);
  EXPECT_EQ(without.protocol.messages.total(),
            with.protocol.messages.total());
}

TEST(Collector, QueuedRunPopulatesEveryFacet) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(8);
  config.backend = BackendKind::kQueued;
  CoherenceSystem system(config);
  Collector collector;
  system.attach_attribution(&collector);
  const ProgramTrace trace = wide_sharing_trace(8);
  Engine engine(system, trace);
  engine.run();

  EXPECT_TRUE(collector.bound());
  EXPECT_GT(collector.transactions(), 0u);
  EXPECT_GT(collector.span(), 0u);
  EXPECT_GT(collector.crit_service_cycles(), 0u);
  Cycle link_busy = 0;
  for (const ResourceStats& stats : collector.link_stats()) {
    link_busy += stats.busy;
  }
  EXPECT_GT(link_busy, 0u);
  Cycle home_busy = 0;
  for (const ResourceStats& stats : collector.home_stats()) {
    home_busy += stats.busy;
  }
  EXPECT_GT(home_busy, 0u);
  std::uint64_t classified = 0;
  for (const std::uint64_t count : collector.class_count()) {
    classified += count;
  }
  EXPECT_EQ(classified, collector.transactions());

  MetricsRegistry registry;
  collector.register_metrics(registry);
  EXPECT_EQ(registry.counter("attrib.txns"), collector.transactions());
  EXPECT_EQ(registry.counter("attrib.crit.service_cycles"),
            collector.crit_service_cycles());
  EXPECT_NE(registry.find_bucketed("attrib.latency.dir3_write"), nullptr);
}

TEST(Collector, AnalyticBackendStillClassifiesCommits) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(8);
  CoherenceSystem system(config);  // default analytic backend
  Collector collector;
  system.attach_attribution(&collector);
  const ProgramTrace trace = wide_sharing_trace(8);
  Engine engine(system, trace);
  engine.run();

  EXPECT_GT(collector.transactions(), 0u);
  // No per-hop timing exists under the analytic backend: link/home facets
  // and the critical-path decomposition stay empty.
  EXPECT_EQ(collector.crit_service_cycles(), 0u);
  EXPECT_EQ(collector.crit_queue_cycles(), 0u);
  for (const ResourceStats& stats : collector.link_stats()) {
    EXPECT_EQ(stats.busy, 0u);
  }
}

TEST(Collector, MergeSumsAndExportsDeterministically) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(8);
  config.backend = BackendKind::kQueued;
  const ProgramTrace trace = wide_sharing_trace(8);

  const auto run_once = [&] {
    Collector collector;
    CoherenceSystem system(config);
    system.attach_attribution(&collector);
    Engine engine(system, trace);
    engine.run();
    return collector;
  };
  Collector first = run_once();
  Collector second = run_once();

  std::ostringstream a;
  write_attrib_json(first, a);
  std::ostringstream b;
  write_attrib_json(second, b);
  EXPECT_EQ(a.str(), b.str());  // identical runs export identical bytes

  Collector merged;  // merging into an unbound collector adopts, then sums
  merged.merge(first);
  merged.merge(second);
  EXPECT_EQ(merged.transactions(), 2 * first.transactions());
  EXPECT_EQ(merged.crit_service_cycles(), 2 * first.crit_service_cycles());
  EXPECT_EQ(merged.link_stats()[0].busy, 2 * first.link_stats()[0].busy);
}

TEST(Reports, AttribAndHotspotDocumentsAreWellFormed) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(8);
  config.backend = BackendKind::kQueued;
  CoherenceSystem system(config);
  Collector collector;
  system.attach_attribution(&collector);
  const ProgramTrace trace = wide_sharing_trace(8);
  Engine engine(system, trace);
  engine.run();

  std::ostringstream attrib;
  write_attrib_json(collector, attrib);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(attrib.str(), doc, &error)) << error;
  EXPECT_EQ(doc.string_or("schema", ""), kAttribSchema);
  EXPECT_NE(doc.find("critical_path"), nullptr);
  EXPECT_NE(doc.find("links"), nullptr);

  std::ostringstream hotspot;
  write_hotspot_json(collector, 5, hotspot);
  JsonValue report;
  ASSERT_TRUE(json_parse(hotspot.str(), report, &error)) << error;
  EXPECT_EQ(report.string_or("schema", ""), kHotspotSchema);
  const JsonValue* top_links = report.find("top_links");
  ASSERT_NE(top_links, nullptr);
  ASSERT_TRUE(top_links->is_array());
  // Ranked by busy + wait, descending; ranks are 1-based and contiguous.
  Cycle previous = ~Cycle{0};
  std::uint64_t rank = 1;
  for (const JsonValue& entry : top_links->items()) {
    EXPECT_EQ(static_cast<std::uint64_t>(entry.number_or("rank", 0)), rank);
    const auto load =
        static_cast<Cycle>(entry.number_or("busy_cycles", 0.0)) +
        static_cast<Cycle>(entry.number_or("wait_cycles", 0.0));
    EXPECT_LE(load, previous);
    previous = load;
    ++rank;
  }

  std::ostringstream csv;
  write_attrib_csv(collector, csv);
  EXPECT_EQ(csv.str().rfind("kind,id,name,busy_cycles,wait_cycles,msgs,util",
                            0),
            0u);
}

TEST(SweepAttribution, CellsCarryCollectorsAndAreThreadInvariant) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  std::vector<harness::SweepCell> cells;
  for (const char* scheme : {"full", "nb"}) {
    harness::SweepCell cell;
    cell.key = std::string("attrib-test/") + scheme;
    cell.trace = harness::app_trace(AppKind::kMp3d, 8, 16, 1990, 0.05);
    cell.system.num_procs = 8;
    cell.system.cache_lines_per_proc = 64;
    cell.system.scheme = std::string(scheme) == "full"
                             ? SchemeConfig::full(8)
                             : SchemeConfig::no_broadcast(8, 3);
    cell.system.backend = BackendKind::kQueued;
    cells.push_back(std::move(cell));
  }
  harness::SweepOptions options;
  options.attrib = true;

  harness::SweepRunner serial(1);
  const std::vector<harness::CellResult> one = serial.run(cells, options);
  harness::SweepRunner pooled(4);
  const std::vector<harness::CellResult> four = pooled.run(cells, options);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_NE(one[i].attrib, nullptr);
    ASSERT_NE(four[i].attrib, nullptr);
    EXPECT_GT(one[i].attrib->transactions(), 0u);
    std::ostringstream a;
    write_attrib_json(*one[i].attrib, a);
    std::ostringstream b;
    write_attrib_json(*four[i].attrib, b);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(SweepAttribution, DisabledOptionLeavesCellsBare) {
  std::vector<harness::SweepCell> cells(1);
  cells[0].key = "attrib-test/off";
  cells[0].trace = harness::app_trace(AppKind::kMp3d, 8, 16, 1990, 0.05);
  cells[0].system.num_procs = 8;
  cells[0].system.cache_lines_per_proc = 64;
  cells[0].system.scheme = SchemeConfig::full(8);
  harness::SweepRunner runner(1);
  const std::vector<harness::CellResult> results =
      runner.run(cells, harness::SweepOptions{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].attrib, nullptr);
}

}  // namespace
}  // namespace dircc::obs::attrib
