// Directory sharer-format semantics: the exact behaviour of Dir_P, Dir_iB,
// Dir_iNB, Dir_iX and Dir_iCV_r, including the overflow transitions, plus a
// randomized superset-safety property sweep across all schemes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "directory/format.hpp"

namespace dircc {
namespace {

std::vector<NodeId> targets_of(const SharerFormat& format,
                               const SharerRepr& repr,
                               NodeId exclude = kNoNode) {
  std::vector<NodeId> out;
  format.collect_targets(repr, exclude, out);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Full bit vector
// ---------------------------------------------------------------------------

TEST(FullBitVector, TracksExactSet) {
  auto format = make_format(SchemeConfig::full(32));
  SharerRepr repr;
  EXPECT_TRUE(format->known_empty(repr));
  format->add_sharer(repr, 3);
  format->add_sharer(repr, 17);
  format->add_sharer(repr, 31);
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{3, 17, 31}));
  EXPECT_TRUE(format->maybe_sharer(repr, 17));
  EXPECT_FALSE(format->maybe_sharer(repr, 16));
  EXPECT_TRUE(format->precise(repr));
  format->remove_sharer(repr, 17);
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{3, 31}));
  format->remove_sharer(repr, 3);
  format->remove_sharer(repr, 31);
  EXPECT_TRUE(format->known_empty(repr));
}

TEST(FullBitVector, ExcludeDropsOnlyThatNode) {
  auto format = make_format(SchemeConfig::full(8));
  SharerRepr repr;
  for (NodeId n : {1, 2, 5}) {
    format->add_sharer(repr, n);
  }
  EXPECT_EQ(targets_of(*format, repr, 2), (std::vector<NodeId>{1, 5}));
}

TEST(FullBitVector, NameAndBits) {
  auto format = make_format(SchemeConfig::full(32));
  EXPECT_EQ(format->name(), "Dir32");
  EXPECT_EQ(format->state_bits(), 32);
}

TEST(FullBitVector, AddIsIdempotent) {
  auto format = make_format(SchemeConfig::full(16));
  SharerRepr repr;
  format->add_sharer(repr, 9);
  format->add_sharer(repr, 9);
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{9}));
}

// ---------------------------------------------------------------------------
// Dir_iB — limited pointers with broadcast
// ---------------------------------------------------------------------------

TEST(LimitedBroadcast, PreciseUntilOverflow) {
  auto format = make_format(SchemeConfig::broadcast(32, 3));
  SharerRepr repr;
  format->add_sharer(repr, 4);
  format->add_sharer(repr, 8);
  format->add_sharer(repr, 12);
  EXPECT_TRUE(format->precise(repr));
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{4, 8, 12}));
}

TEST(LimitedBroadcast, OverflowBroadcastsToAllButWriter) {
  auto format = make_format(SchemeConfig::broadcast(32, 3));
  SharerRepr repr;
  for (NodeId n : {4, 8, 12, 16}) {
    EXPECT_EQ(format->add_sharer(repr, n), kNoNode);
  }
  EXPECT_FALSE(format->precise(repr));
  const auto targets = targets_of(*format, repr, 7);
  EXPECT_EQ(targets.size(), 31u);  // everyone except the excluded writer
  EXPECT_TRUE(format->maybe_sharer(repr, 0));
  EXPECT_FALSE(format->known_empty(repr));
}

TEST(LimitedBroadcast, RemoveWorksOnlyWhilePrecise) {
  auto format = make_format(SchemeConfig::broadcast(32, 3));
  SharerRepr repr;
  format->add_sharer(repr, 1);
  format->add_sharer(repr, 2);
  format->remove_sharer(repr, 1);
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{2}));
  format->add_sharer(repr, 3);
  format->add_sharer(repr, 4);
  format->add_sharer(repr, 5);  // overflow
  format->remove_sharer(repr, 2);
  EXPECT_EQ(targets_of(*format, repr).size(), 32u);  // still broadcast
}

TEST(LimitedBroadcast, StateBitsCountPointersPlusBroadcastBit) {
  auto format = make_format(SchemeConfig::broadcast(32, 3));
  EXPECT_EQ(format->state_bits(), 3 * 5 + 1);
  EXPECT_EQ(format->name(), "Dir3B");
}

// ---------------------------------------------------------------------------
// Dir_iNB — limited pointers, no broadcast
// ---------------------------------------------------------------------------

TEST(LimitedNoBroadcast, DisplacesWhenFull) {
  auto format = make_format(SchemeConfig::no_broadcast(32, 3));
  SharerRepr repr;
  EXPECT_EQ(format->add_sharer(repr, 1), kNoNode);
  EXPECT_EQ(format->add_sharer(repr, 2), kNoNode);
  EXPECT_EQ(format->add_sharer(repr, 3), kNoNode);
  const NodeId displaced = format->add_sharer(repr, 4);
  EXPECT_NE(displaced, kNoNode);
  EXPECT_NE(displaced, NodeId{4});
  // The displaced node is gone, the new one is present, size stays 3.
  const auto targets = targets_of(*format, repr);
  EXPECT_EQ(targets.size(), 3u);
  EXPECT_TRUE(std::count(targets.begin(), targets.end(), 4));
  EXPECT_FALSE(std::count(targets.begin(), targets.end(), displaced));
}

TEST(LimitedNoBroadcast, NeverExceedsPointerCount) {
  auto format = make_format(SchemeConfig::no_broadcast(16, 2));
  SharerRepr repr;
  for (NodeId n = 0; n < 10; ++n) {
    format->add_sharer(repr, n);
    EXPECT_LE(targets_of(*format, repr).size(), 2u);
  }
  EXPECT_TRUE(format->precise(repr));
}

TEST(LimitedNoBroadcast, RotorSpreadsDisplacements) {
  auto format = make_format(SchemeConfig::no_broadcast(32, 3));
  SharerRepr repr;
  format->add_sharer(repr, 1);
  format->add_sharer(repr, 2);
  format->add_sharer(repr, 3);
  const NodeId first = format->add_sharer(repr, 4);
  const NodeId second = format->add_sharer(repr, 5);
  EXPECT_NE(first, second);  // consecutive overflows hit different victims
}

TEST(LimitedNoBroadcast, AddExistingSharerIsNoOp) {
  auto format = make_format(SchemeConfig::no_broadcast(32, 3));
  SharerRepr repr;
  format->add_sharer(repr, 1);
  format->add_sharer(repr, 2);
  format->add_sharer(repr, 3);
  EXPECT_EQ(format->add_sharer(repr, 2), kNoNode);
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Dir_iX — superset / composite pointer
// ---------------------------------------------------------------------------

TEST(Superset, CompositeCoversAllInsertedNodes) {
  auto format = make_format(SchemeConfig::superset(32));
  SharerRepr repr;
  const std::vector<NodeId> sharers{5, 9, 20};
  for (NodeId n : sharers) {
    format->add_sharer(repr, n);
  }
  const auto targets = targets_of(*format, repr);
  for (NodeId n : sharers) {
    EXPECT_TRUE(std::count(targets.begin(), targets.end(), n)) << n;
  }
}

TEST(Superset, CompositeIsSupersetNotExact) {
  auto format = make_format(SchemeConfig::superset(32));
  SharerRepr repr;
  // 0b00101 and 0b01001 and 0b10001 differ in bits 2,3,4 ->
  // composite = 0bXXX01, which matches 8 nodes.
  format->add_sharer(repr, 0b00101);
  format->add_sharer(repr, 0b01001);
  format->add_sharer(repr, 0b10001);
  EXPECT_FALSE(format->precise(repr));
  const auto targets = targets_of(*format, repr);
  EXPECT_EQ(targets.size(), 8u);
  for (NodeId n : targets) {
    EXPECT_EQ(n & 0b11u, 0b01u) << n;  // low bits pinned
  }
}

TEST(Superset, DegradesTowardBroadcastWithManySharers) {
  auto format = make_format(SchemeConfig::superset(32));
  SharerRepr repr;
  // Nodes 0 and 31 disagree in every bit: composite becomes all-X.
  format->add_sharer(repr, 0);
  format->add_sharer(repr, 31);
  format->add_sharer(repr, 1);
  EXPECT_EQ(targets_of(*format, repr).size(), 32u);
}

TEST(Superset, TwoPointersStayPrecise) {
  auto format = make_format(SchemeConfig::superset(32));
  SharerRepr repr;
  format->add_sharer(repr, 7);
  format->add_sharer(repr, 23);
  EXPECT_TRUE(format->precise(repr));
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{7, 23}));
}

// ---------------------------------------------------------------------------
// Dir_iCV_r — coarse vector
// ---------------------------------------------------------------------------

TEST(CoarseVector, PreciseUntilOverflow) {
  auto format = make_format(SchemeConfig::coarse(32, 3, 2));
  SharerRepr repr;
  format->add_sharer(repr, 0);
  format->add_sharer(repr, 10);
  format->add_sharer(repr, 21);
  EXPECT_TRUE(format->precise(repr));
  EXPECT_EQ(targets_of(*format, repr), (std::vector<NodeId>{0, 10, 21}));
}

TEST(CoarseVector, OverflowSwitchesToRegions) {
  auto format = make_format(SchemeConfig::coarse(32, 3, 2));
  SharerRepr repr;
  format->add_sharer(repr, 0);   // region 0 -> {0,1}
  format->add_sharer(repr, 10);  // region 5 -> {10,11}
  format->add_sharer(repr, 21);  // region 10 -> {20,21}
  format->add_sharer(repr, 30);  // overflow; region 15 -> {30,31}
  EXPECT_FALSE(format->precise(repr));
  EXPECT_EQ(targets_of(*format, repr),
            (std::vector<NodeId>{0, 1, 10, 11, 20, 21, 30, 31}));
  EXPECT_TRUE(format->maybe_sharer(repr, 11));   // same region as 10
  EXPECT_FALSE(format->maybe_sharer(repr, 12));  // untouched region
}

TEST(CoarseVector, CoarseModeAddSetsOneRegionBit) {
  auto format = make_format(SchemeConfig::coarse(32, 1, 4));
  SharerRepr repr;
  format->add_sharer(repr, 0);
  format->add_sharer(repr, 5);  // overflow with i=1
  EXPECT_EQ(targets_of(*format, repr),
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
  format->add_sharer(repr, 17);
  EXPECT_EQ(targets_of(*format, repr).size(), 12u);
}

TEST(CoarseVector, RegionAtTailIsClipped) {
  // 10 nodes, region size 4 -> last region covers only nodes 8..9.
  auto format = make_format(SchemeConfig::coarse(10, 1, 4));
  SharerRepr repr;
  format->add_sharer(repr, 0);
  format->add_sharer(repr, 9);  // overflow
  EXPECT_EQ(targets_of(*format, repr),
            (std::vector<NodeId>{0, 1, 2, 3, 8, 9}));
}

TEST(CoarseVector, NeverBroadcastsUnlessAllRegionsSet) {
  auto format = make_format(SchemeConfig::coarse(32, 3, 2));
  SharerRepr repr;
  for (NodeId n = 0; n < 8; ++n) {
    format->add_sharer(repr, n);  // regions 0..3 only
  }
  EXPECT_EQ(targets_of(*format, repr).size(), 8u);  // not 32
}

TEST(CoarseVector, StateBitsAreMaxOfModesPlusFlag) {
  // Dir3CV2 over 32 nodes: pointers 3*5=15, coarse 16 -> 17 bits.
  auto format = make_format(SchemeConfig::coarse(32, 3, 2));
  EXPECT_EQ(format->state_bits(), 17);
  EXPECT_EQ(format->name(), "Dir3CV2");
  // Dir8CV4 over 256 nodes: pointers 8*8=64, coarse 64 -> 65 bits.
  auto big = make_format(SchemeConfig::coarse(256, 8, 4));
  EXPECT_EQ(big->state_bits(), 65);
}

TEST(CoarseVector, ExcludeDropsOnlyWriter) {
  auto format = make_format(SchemeConfig::coarse(32, 3, 2));
  SharerRepr repr;
  for (NodeId n : {0, 10, 21, 30}) {
    format->add_sharer(repr, n);  // overflowed
  }
  const auto targets = targets_of(*format, repr, 1);  // writer in region 0
  EXPECT_EQ(targets.size(), 7u);
  EXPECT_FALSE(std::count(targets.begin(), targets.end(), 1));
  EXPECT_TRUE(std::count(targets.begin(), targets.end(), 0));
}

// ---------------------------------------------------------------------------
// Property sweep: superset safety and writer exclusion for every scheme.
// ---------------------------------------------------------------------------

struct SchemeCase {
  const char* label;
  SchemeConfig config;
};

class FormatProperty : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(FormatProperty, TargetsAlwaysCoverLiveSharers) {
  const SchemeConfig config = GetParam().config;
  auto format = make_format(config);
  Rng rng(0xfeedULL);
  for (int round = 0; round < 200; ++round) {
    SharerRepr repr;
    std::set<NodeId> live;
    const int inserts = 1 + static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(config.num_nodes)));
    for (int i = 0; i < inserts; ++i) {
      const auto node = static_cast<NodeId>(
          rng.below(static_cast<std::uint64_t>(config.num_nodes)));
      const NodeId displaced = format->add_sharer(repr, node);
      live.insert(node);
      if (displaced != kNoNode) {
        live.erase(displaced);  // Dir_iNB invalidated that copy
      }
    }
    // Occasionally remove a live sharer (models a precise writeback).
    if (!live.empty() && rng.chance(0.5)) {
      const NodeId gone = *live.begin();
      format->remove_sharer(repr, gone);
      // Imprecise modes may keep it as a target — that is allowed; only
      // precise modes must actually drop it, which the superset check
      // below does not require. Either way `gone` no longer holds a copy.
      live.erase(gone);
    }
    std::vector<NodeId> targets;
    format->collect_targets(repr, kNoNode, targets);
    const std::set<NodeId> target_set(targets.begin(), targets.end());
    EXPECT_EQ(target_set.size(), targets.size())
        << GetParam().label << ": duplicate targets";
    for (NodeId n : live) {
      EXPECT_TRUE(target_set.count(n))
          << GetParam().label << ": live sharer " << n << " not covered";
      EXPECT_TRUE(format->maybe_sharer(repr, n)) << GetParam().label;
    }
    // Writer exclusion.
    if (!live.empty()) {
      const NodeId writer = *live.rbegin();
      std::vector<NodeId> excl;
      format->collect_targets(repr, writer, excl);
      EXPECT_FALSE(std::count(excl.begin(), excl.end(), writer))
          << GetParam().label;
    }
    // known_empty must never be claimed while a copy is live.
    if (!live.empty()) {
      EXPECT_FALSE(format->known_empty(repr)) << GetParam().label;
    }
  }
}

TEST_P(FormatProperty, TargetsNeverExceedNodeCount) {
  const SchemeConfig config = GetParam().config;
  auto format = make_format(config);
  SharerRepr repr;
  for (int n = 0; n < config.num_nodes; ++n) {
    format->add_sharer(repr, static_cast<NodeId>(n));
  }
  std::vector<NodeId> targets;
  format->collect_targets(repr, kNoNode, targets);
  EXPECT_LE(targets.size(), static_cast<std::size_t>(config.num_nodes));
  for (NodeId t : targets) {
    EXPECT_LT(t, config.num_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FormatProperty,
    ::testing::Values(
        SchemeCase{"Dir32", SchemeConfig::full(32)},
        SchemeCase{"Dir64", SchemeConfig::full(64)},
        SchemeCase{"Dir3B", SchemeConfig::broadcast(32, 3)},
        SchemeCase{"Dir1B", SchemeConfig::broadcast(16, 1)},
        SchemeCase{"Dir3NB", SchemeConfig::no_broadcast(32, 3)},
        SchemeCase{"Dir2X", SchemeConfig::superset(32)},
        SchemeCase{"Dir3CV2", SchemeConfig::coarse(32, 3, 2)},
        SchemeCase{"Dir3CV4_64", SchemeConfig::coarse(64, 3, 4)},
        SchemeCase{"Dir8CV4_256", SchemeConfig::coarse(256, 8, 4)},
        SchemeCase{"Dir1CV7_29", SchemeConfig::coarse(29, 1, 7)}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace dircc
