// Deterministic JSON emission (common/json).
#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hpp"
#include "common/json_parse.hpp"

namespace dircc {
namespace {

TEST(JsonEscape, HandlesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, EscapesEveryControlCharacter) {
  // RFC 8259: U+0000 through U+001F must never appear raw in a string.
  for (int ch = 0x00; ch < 0x20; ++ch) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(ch)));
    ASSERT_GE(escaped.size(), 2u) << "char " << ch;
    EXPECT_EQ(escaped[0], '\\') << "char " << ch;
    for (const char out : escaped) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u) << "char " << ch;
    }
  }
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonNumber, RendersCompactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(2.0), "2");
}

TEST(JsonWriter, FlatObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("name", std::string("Dir3CV2"));
  json.field("cycles", std::uint64_t{1234});
  json.field("mean", 2.5);
  json.field("sparse", true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"Dir3CV2\",\"cycles\":1234,\"mean\":2.5,"
            "\"sparse\":true}");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("cells");
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.begin_object();
  json.field("k", std::string("v"));
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), "{\"cells\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriter, FieldWithEmbeddedControlCharactersStaysValid) {
  // Regression: a label dimension carrying a newline/tab (e.g. a cell key
  // built from user input) must round-trip as legal JSON, not raw bytes.
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("note", std::string("line1\nline2\tend"));
  json.end_object();
  EXPECT_EQ(out.str(), "{\"note\":\"line1\\nline2\\tend\"}");
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
  EXPECT_EQ(out.str().find('\t'), std::string::npos);
}

TEST(JsonWriter, EscapesKeys) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("we\"ird", std::string("x"));
  json.end_object();
  EXPECT_EQ(out.str(), "{\"we\\\"ird\":\"x\"}");
}

TEST(JsonParse, CombinesSurrogatePairsIntoFourByteUtf8) {
  // U+1D11E (musical G clef) is \uD834\uDD1E; RFC 8259 §7 says the pair
  // denotes one supplementary-plane code point, which UTF-8 encodes as
  // exactly four bytes — not two 3-byte CESU-8 sequences.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse("\"\\uD834\\uDD1E\"", doc, &error)) << error;
  EXPECT_EQ(doc.as_string(), "\xF0\x9D\x84\x9E");
  // Supplementary-plane text round-trips through the writer: the writer
  // passes non-control bytes through raw, and the parser accepts raw UTF-8.
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("s", doc.as_string());
  json.end_object();
  JsonValue again;
  ASSERT_TRUE(json_parse(out.str(), again, &error)) << error;
  ASSERT_NE(again.find("s"), nullptr);
  EXPECT_EQ(again.find("s")->as_string(), "\xF0\x9D\x84\x9E");
}

TEST(JsonParse, RejectsUnpairedSurrogates) {
  JsonValue doc;
  std::string error;
  // Lone high surrogate (end of string, non-escape follower, and a
  // non-low-surrogate second escape) and a lone low surrogate.
  EXPECT_FALSE(json_parse("\"\\uD834\"", doc, &error));
  EXPECT_NE(error.find("high surrogate"), std::string::npos) << error;
  EXPECT_FALSE(json_parse("\"\\uD834x\"", doc, &error));
  EXPECT_FALSE(json_parse("\"\\uD834\\u0041\"", doc, &error));
  EXPECT_FALSE(json_parse("\"\\uDD1E\"", doc, &error));
  EXPECT_NE(error.find("low surrogate"), std::string::npos) << error;
}

TEST(JsonWriterDeathTest, RejectsValueWithoutKeyInObject) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.value(std::uint64_t{1});
      },
      "key");
}

TEST(JsonWriterDeathTest, RejectsUnbalancedClose) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.end_array();
      },
      "unbalanced");
}

}  // namespace
}  // namespace dircc
