// Deterministic JSON emission (common/json).
#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hpp"

namespace dircc {
namespace {

TEST(JsonEscape, HandlesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, EscapesEveryControlCharacter) {
  // RFC 8259: U+0000 through U+001F must never appear raw in a string.
  for (int ch = 0x00; ch < 0x20; ++ch) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(ch)));
    ASSERT_GE(escaped.size(), 2u) << "char " << ch;
    EXPECT_EQ(escaped[0], '\\') << "char " << ch;
    for (const char out : escaped) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u) << "char " << ch;
    }
  }
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonNumber, RendersCompactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(2.0), "2");
}

TEST(JsonWriter, FlatObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("name", std::string("Dir3CV2"));
  json.field("cycles", std::uint64_t{1234});
  json.field("mean", 2.5);
  json.field("sparse", true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"Dir3CV2\",\"cycles\":1234,\"mean\":2.5,"
            "\"sparse\":true}");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("cells");
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.begin_object();
  json.field("k", std::string("v"));
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), "{\"cells\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriter, FieldWithEmbeddedControlCharactersStaysValid) {
  // Regression: a label dimension carrying a newline/tab (e.g. a cell key
  // built from user input) must round-trip as legal JSON, not raw bytes.
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("note", std::string("line1\nline2\tend"));
  json.end_object();
  EXPECT_EQ(out.str(), "{\"note\":\"line1\\nline2\\tend\"}");
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
  EXPECT_EQ(out.str().find('\t'), std::string::npos);
}

TEST(JsonWriter, EscapesKeys) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("we\"ird", std::string("x"));
  json.end_object();
  EXPECT_EQ(out.str(), "{\"we\\\"ird\":\"x\"}");
}

TEST(JsonWriterDeathTest, RejectsValueWithoutKeyInObject) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.value(std::uint64_t{1});
      },
      "key");
}

TEST(JsonWriterDeathTest, RejectsUnbalancedClose) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.end_array();
      },
      "unbalanced");
}

}  // namespace
}  // namespace dircc
