// Deterministic JSON emission (common/json).
#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hpp"

namespace dircc {
namespace {

TEST(JsonEscape, HandlesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RendersCompactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(2.0), "2");
}

TEST(JsonWriter, FlatObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("name", std::string("Dir3CV2"));
  json.field("cycles", std::uint64_t{1234});
  json.field("mean", 2.5);
  json.field("sparse", true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"Dir3CV2\",\"cycles\":1234,\"mean\":2.5,"
            "\"sparse\":true}");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("cells");
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.begin_object();
  json.field("k", std::string("v"));
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(out.str(), "{\"cells\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriter, EscapesKeys) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("we\"ird", std::string("x"));
  json.end_object();
  EXPECT_EQ(out.str(), "{\"we\\\"ird\":\"x\"}");
}

TEST(JsonWriterDeathTest, RejectsValueWithoutKeyInObject) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.value(std::uint64_t{1});
      },
      "key");
}

TEST(JsonWriterDeathTest, RejectsUnbalancedClose) {
  EXPECT_DEATH(
      {
        std::ostringstream out;
        JsonWriter json(out);
        json.begin_object();
        json.end_array();
      },
      "unbalanced");
}

}  // namespace
}  // namespace dircc
