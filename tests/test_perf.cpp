// Perf subsystem (src/perf): matrix pinning, measurement equivalence, and
// the BENCH_PERF.json schema contract.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hpp"
#include "perf/perf.hpp"
#include "sim/engine.hpp"
#include "sim/ready_tree.hpp"

namespace dircc::perf {
namespace {

MatrixOptions smoke_options() {
  MatrixOptions options;
  options.name = "smoke";
  options.scale = 0.25;
  return options;
}

TEST(PerfMatrix, Fig0710GridIsExactlyThePaperGrid) {
  MatrixOptions options;
  options.name = "fig07_10";
  const std::vector<PerfCell> cells = perf_matrix(options);
  ASSERT_EQ(cells.size(), 16u);  // 4 apps x 4 schemes
  std::set<std::string> apps;
  std::set<std::string> schemes;
  for (const PerfCell& cell : cells) {
    EXPECT_EQ(cell.grid, "fig07_10") << cell.key;
    for (const auto& [name, value] : cell.fields) {
      if (name == "app") {
        apps.insert(value);
      } else if (name == "scheme") {
        schemes.insert(value);
      } else if (name == "backend") {
        EXPECT_EQ(value, "analytic") << cell.key;
      } else if (name == "store") {
        EXPECT_EQ(value, "dense") << cell.key;
      }
    }
  }
  EXPECT_EQ(apps.size(), 4u);
  EXPECT_EQ(schemes.size(), 4u);
}

TEST(PerfMatrix, FullGridCrossesBackendAndStore) {
  MatrixOptions options;
  options.name = "full";
  const std::vector<PerfCell> cells = perf_matrix(options);
  ASSERT_EQ(cells.size(), 64u);  // 4 x 4 x 2 backends x 2 stores
  std::size_t fig = 0;
  for (const PerfCell& cell : cells) {
    if (cell.grid == "fig07_10") {
      ++fig;
    }
  }
  // The analytic/dense quadrant is the paper grid; everything else is
  // "extended" so the headline aggregate never mixes in queued cells.
  EXPECT_EQ(fig, 16u);
}

TEST(PerfMatrix, SmokeGridIsReduced) {
  const std::vector<PerfCell> cells = perf_matrix(smoke_options());
  EXPECT_EQ(cells.size(), 16u);  // 2 apps x 2 schemes x 2 backends x 2 stores
  for (const PerfCell& cell : cells) {
    EXPECT_EQ(cell.grid, "extended") << cell.key;
  }
}

TEST(PerfMatrix, DeterministicInOptionsAlone) {
  const std::vector<PerfCell> first = perf_matrix(smoke_options());
  const std::vector<PerfCell> second = perf_matrix(smoke_options());
  ASSERT_EQ(first.size(), second.size());
  std::set<std::string> keys;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].key, second[i].key);
    EXPECT_EQ(first[i].trace.key, second[i].trace.key);
    EXPECT_EQ(first[i].grid, second[i].grid);
    keys.insert(first[i].key);
  }
  EXPECT_EQ(keys.size(), first.size()) << "cell keys must be unique";
}

TEST(PerfMatrixDeathTest, RejectsUnknownName) {
  MatrixOptions options;
  options.name = "nope";
  EXPECT_DEATH(perf_matrix(options), "unknown perf matrix");
}

TEST(Percentile, NearestRank) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
  EXPECT_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 95.0), 4.0);
}

TEST(ReadyTreeTest, OrdersByTimeThenProcessor) {
  ReadyTree tree;
  tree.init(5);
  EXPECT_EQ(tree.min(), ReadyTree::kIdle);
  tree.set(3, ReadyTree::encode(10, 3));
  tree.set(1, ReadyTree::encode(7, 1));
  tree.set(4, ReadyTree::encode(7, 4));
  // Earliest time wins; equal times break ties toward the lower proc id —
  // the pop order of the (time, proc) heap the tree replaced.
  EXPECT_EQ(ReadyTree::when_of(tree.min()), Cycle{7});
  EXPECT_EQ(ReadyTree::proc_of(tree.min()), ProcId{1});
  tree.clear(1);
  EXPECT_EQ(ReadyTree::proc_of(tree.min()), ProcId{4});
  tree.clear(4);
  EXPECT_EQ(ReadyTree::when_of(tree.min()), Cycle{10});
  tree.clear(3);
  EXPECT_EQ(tree.min(), ReadyTree::kIdle);
}

TEST(ReadyTreeTest, RescheduleOverwritesTheSlot) {
  ReadyTree tree;
  tree.init(2);
  tree.set(0, ReadyTree::encode(100, 0));
  tree.set(1, ReadyTree::encode(50, 1));
  EXPECT_EQ(ReadyTree::proc_of(tree.min()), ProcId{1});
  tree.set(1, ReadyTree::encode(200, 1));
  EXPECT_EQ(ReadyTree::proc_of(tree.min()), ProcId{0});
  EXPECT_EQ(ReadyTree::when_of(tree.min()), Cycle{100});
}

// A two-cell slice of the smoke matrix keeps the measured runtime small
// while still exercising the full measurement path.
std::vector<PerfCell> tiny_matrix() {
  std::vector<PerfCell> cells = perf_matrix(smoke_options());
  cells.resize(2);
  return cells;
}

TEST(RunMatrix, MatchesADirectSimulatorRun) {
  const std::vector<PerfCell> cells = tiny_matrix();
  const PerfReport report = run_matrix(cells, smoke_options(), 2);
  ASSERT_EQ(report.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Equivalence guard: the harness must measure exactly the simulator it
    // claims to — same trace, same config, same result counters.
    const ProgramTrace trace = cells[i].trace.build();
    CoherenceSystem system(cells[i].system);
    Engine engine(system, trace, cells[i].engine);
    const RunResult run = engine.run();
    EXPECT_EQ(report.cells[i].accesses, run.protocol.accesses)
        << cells[i].key;
    EXPECT_EQ(report.cells[i].sim_cycles, run.exec_cycles) << cells[i].key;
    EXPECT_EQ(report.cells[i].trace_events, trace.total_events())
        << cells[i].key;
    EXPECT_EQ(report.cells[i].sim_ms.count(), 2u) << cells[i].key;
  }
  EXPECT_EQ(report.all.cells, cells.size());
  EXPECT_EQ(report.fig07_10.cells, 0u);  // smoke cells are all "extended"
}

TEST(WriteReport, EmitsTheVersionedSchema) {
  const std::vector<PerfCell> cells = tiny_matrix();
  const PerfReport report = run_matrix(cells, smoke_options(), 1);
  std::ostringstream out;
  write_report(out, report, nullptr);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(out.str(), doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("schema", ""), kSchemaName);
  EXPECT_EQ(doc.number_or("schema_version", -1), kSchemaVersion);
  ASSERT_NE(doc.find("git_sha"), nullptr);
  ASSERT_NE(doc.get("machine", "compiler"), nullptr);
  ASSERT_NE(doc.get("machine", "build_type"), nullptr);
  EXPECT_EQ(doc.get("config", "matrix")->as_string(), "smoke");
  EXPECT_EQ(doc.get("config", "reps")->as_number(), 1.0);

  const JsonValue* cell_array = doc.find("cells");
  ASSERT_NE(cell_array, nullptr);
  ASSERT_TRUE(cell_array->is_array());
  ASSERT_EQ(cell_array->items().size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cell_array->items()[i];
    EXPECT_EQ(cell.string_or("key", ""), cells[i].key);
    ASSERT_NE(cell.get("sim_ms", "p50"), nullptr) << cells[i].key;
    EXPECT_GT(cell.number_or("accesses", 0.0), 0.0) << cells[i].key;
    EXPECT_GT(cell.number_or("sim_cycles", 0.0), 0.0) << cells[i].key;
    EXPECT_GT(cell.number_or("accesses_per_sec", 0.0), 0.0) << cells[i].key;
  }
  ASSERT_NE(doc.get("aggregate", "all"), nullptr);
  ASSERT_NE(doc.get("aggregate", "fig07_10"), nullptr);
  EXPECT_EQ(doc.get("aggregate", "all", "cells")->as_number(),
            static_cast<double>(cells.size()));
  EXPECT_EQ(doc.find("baseline"), nullptr);  // none supplied
}

TEST(WriteReport, BaselineRoundTripsAndYieldsSpeedups) {
  const std::vector<PerfCell> cells = tiny_matrix();
  const PerfReport report = run_matrix(cells, smoke_options(), 1);
  std::ostringstream first;
  write_report(first, report, nullptr);

  // A report must load back as its own baseline...
  std::string error;
  const std::optional<Baseline> baseline =
      load_baseline(first.str(), "BENCH_PERF.json", &error);
  ASSERT_TRUE(baseline.has_value()) << error;
  EXPECT_EQ(baseline->git, report.git);
  EXPECT_EQ(baseline->cell_throughput.size(), report.cells.size());
  // json_number emits 6 significant digits, so the round trip is only
  // accurate to ~1e-5 relative.
  EXPECT_NEAR(baseline->all_accesses_per_sec, report.all.accesses_per_sec,
              report.all.accesses_per_sec * 1e-4);

  // ...and diffing a run against itself reports ~1.0x per cell.
  std::ostringstream second;
  write_report(second, report, &*baseline);
  JsonValue doc;
  ASSERT_TRUE(json_parse(second.str(), doc, &error)) << error;
  const JsonValue* speedup = doc.get("baseline", "all", "speedup");
  ASSERT_NE(speedup, nullptr);
  EXPECT_NEAR(speedup->as_number(), 1.0, 1e-4);
  const JsonValue* cell_diffs = doc.get("baseline", "cells");
  ASSERT_NE(cell_diffs, nullptr);
  ASSERT_EQ(cell_diffs->items().size(), report.cells.size());
  for (const JsonValue& cell : cell_diffs->items()) {
    EXPECT_NEAR(cell.number_or("speedup", 0.0), 1.0, 1e-4);
  }
}

TEST(LoadBaseline, RejectsWrongSchema) {
  std::string error;
  EXPECT_FALSE(load_baseline("{\"schema\":\"other\",\"schema_version\":1}",
                             "x.json", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(load_baseline("{\"schema\":\"dircc-bench-perf\","
                             "\"schema_version\":999}",
                             "x.json", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(load_baseline("not json", "x.json", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dircc::perf
