// EntryBits: bit and bit-field semantics that every directory format
// representation is built on.
#include <gtest/gtest.h>

#include "common/entry_bits.hpp"

namespace dircc {
namespace {

TEST(EntryBits, StartsEmpty) {
  EntryBits bits;
  EXPECT_TRUE(bits.none());
  EXPECT_EQ(bits.popcount(), 0);
  EXPECT_EQ(bits.find_next(0), -1);
}

TEST(EntryBits, SetTestClearSingleBit) {
  EntryBits bits;
  bits.set(5);
  EXPECT_TRUE(bits.test(5));
  EXPECT_FALSE(bits.test(4));
  EXPECT_FALSE(bits.none());
  bits.clear(5);
  EXPECT_FALSE(bits.test(5));
  EXPECT_TRUE(bits.none());
}

TEST(EntryBits, WorksAcrossWordBoundaries) {
  EntryBits bits;
  for (int pos : {0, 63, 64, 127, 128, 191, 192, 255}) {
    bits.set(pos);
  }
  EXPECT_EQ(bits.popcount(), 8);
  for (int pos : {0, 63, 64, 127, 128, 191, 192, 255}) {
    EXPECT_TRUE(bits.test(pos)) << pos;
  }
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(65));
}

TEST(EntryBits, FindNextWalksSetBits) {
  EntryBits bits;
  bits.set(3);
  bits.set(64);
  bits.set(200);
  EXPECT_EQ(bits.find_next(0), 3);
  EXPECT_EQ(bits.find_next(4), 64);
  EXPECT_EQ(bits.find_next(64), 64);
  EXPECT_EQ(bits.find_next(65), 200);
  EXPECT_EQ(bits.find_next(201), -1);
}

TEST(EntryBits, ResetClearsEverything) {
  EntryBits bits;
  bits.set(17);
  bits.set(200);
  bits.reset();
  EXPECT_TRUE(bits.none());
}

TEST(EntryBits, FieldRoundTrips) {
  EntryBits bits;
  bits.set_field(10, 8, 0xA5);
  EXPECT_EQ(bits.get_field(10, 8), 0xA5u);
  // Adjacent fields do not interfere.
  bits.set_field(18, 8, 0x3C);
  EXPECT_EQ(bits.get_field(10, 8), 0xA5u);
  EXPECT_EQ(bits.get_field(18, 8), 0x3Cu);
  // Overwrite clears stale bits.
  bits.set_field(10, 8, 0x01);
  EXPECT_EQ(bits.get_field(10, 8), 0x01u);
}

TEST(EntryBits, FieldAcrossWordBoundary) {
  EntryBits bits;
  bits.set_field(60, 8, 0xFF);
  EXPECT_EQ(bits.get_field(60, 8), 0xFFu);
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  bits.set_field(60, 8, 0x80);
  EXPECT_EQ(bits.get_field(60, 8), 0x80u);
  EXPECT_FALSE(bits.test(63));
}

TEST(EntryBits, FieldStraddlesEveryInteriorWordBoundary) {
  // Fields laid down across the 128- and 192-bit seams (the word-1/2 and
  // word-2/3 boundaries the model checker's raw-entry encoding walks), at
  // every split of an 8-bit field around each seam.
  for (const int seam : {128, 192}) {
    for (int split = 1; split < 8; ++split) {
      EntryBits bits;
      const int pos = seam - split;
      bits.set_field(pos, 8, 0xB7);
      EXPECT_EQ(bits.get_field(pos, 8), 0xB7u)
          << "seam " << seam << " split " << split;
      // Each bit landed where the little-endian layout says it must.
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(bits.test(pos + i), ((0xB7 >> i) & 1) != 0)
            << "seam " << seam << " bit " << i;
      }
      bits.set_field(pos, 8, 0x48);
      EXPECT_EQ(bits.get_field(pos, 8), 0x48u)
          << "overwrite across seam " << seam;
      EXPECT_EQ(bits.popcount(), 2);
    }
  }
}

TEST(EntryBits, FullWidthFieldsAtTheTopOfTheSet) {
  // Maximum-width (32-bit) fields, including one straddling a word seam
  // and one ending exactly at kBits.
  EntryBits bits;
  bits.set_field(112, 32, 0xDEADBEEF);
  EXPECT_EQ(bits.get_field(112, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits.get_field(112, 16), 0xBEEFu);
  EXPECT_EQ(bits.get_field(128, 16), 0xDEADu);
  bits.reset();
  bits.set_field(EntryBits::kBits - 32, 32, 0x80000001);
  EXPECT_EQ(bits.get_field(EntryBits::kBits - 32, 32), 0x80000001u);
  EXPECT_TRUE(bits.test(EntryBits::kBits - 1));
  EXPECT_TRUE(bits.test(EntryBits::kBits - 32));
  EXPECT_EQ(bits.popcount(), 2);
}

TEST(EntryBits, FindNextAtTheLastPosition) {
  // from == kBits - 1 is the last legal query; it must see exactly bit 255
  // and never read past the array.
  EntryBits bits;
  EXPECT_EQ(bits.find_next(EntryBits::kBits - 1), -1);
  bits.set(EntryBits::kBits - 1);
  EXPECT_EQ(bits.find_next(EntryBits::kBits - 1), EntryBits::kBits - 1);
  EXPECT_EQ(bits.find_next(EntryBits::kBits), -1);
  bits.clear(EntryBits::kBits - 1);
  bits.set(EntryBits::kBits - 2);
  EXPECT_EQ(bits.find_next(EntryBits::kBits - 1), -1)
      << "a set bit below `from` must not be reported";
}

TEST(EntryBits, ZeroWidthFieldIsZero) {
  EntryBits bits;
  EXPECT_EQ(bits.get_field(0, 0), 0u);
  bits.set_field(0, 0, 0);  // no-op, must not crash
  EXPECT_TRUE(bits.none());
}

TEST(EntryBits, EqualityComparesContent) {
  EntryBits a;
  EntryBits b;
  EXPECT_EQ(a, b);
  a.set(100);
  EXPECT_NE(a, b);
  b.set(100);
  EXPECT_EQ(a, b);
}

TEST(Log2Ceil, KnownValues) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(32), 5);
  EXPECT_EQ(log2_ceil(33), 6);
  EXPECT_EQ(log2_ceil(256), 8);
}

TEST(CeilDiv, KnownValues) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(IsPow2, KnownValues) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(16));
  EXPECT_FALSE(is_pow2(24));
}

}  // namespace
}  // namespace dircc
