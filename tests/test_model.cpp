// Analytic models: the Figure 2 Monte-Carlo invalidation model and the
// Table 1 storage model.
#include <gtest/gtest.h>

#include "model/invalidation_model.hpp"
#include "model/storage_model.hpp"

namespace dircc {
namespace {

TEST(InvalidationModel, FullVectorIsExactlyTheSharerCount) {
  InvalidationModel model;
  model.trials = 500;
  for (int s : {0, 1, 5, 17, 31}) {
    EXPECT_DOUBLE_EQ(model.mean_invalidations(SchemeConfig::full(32), s),
                     static_cast<double>(s));
  }
}

TEST(InvalidationModel, BroadcastMatchesClosedForm) {
  InvalidationModel model;
  model.trials = 500;
  const auto scheme = SchemeConfig::broadcast(32, 3);
  // Within pointer capacity: exact.
  EXPECT_DOUBLE_EQ(model.mean_invalidations(scheme, 2), 2.0);
  EXPECT_DOUBLE_EQ(model.mean_invalidations(scheme, 3), 3.0);
  // Beyond: broadcast to everyone but the writer.
  EXPECT_DOUBLE_EQ(model.mean_invalidations(scheme, 4), 31.0);
  EXPECT_DOUBLE_EQ(model.mean_invalidations(scheme, 20), 31.0);
}

TEST(InvalidationModel, CoarseVectorBetweenFullAndBroadcast) {
  InvalidationModel model;
  model.trials = 2000;
  const auto full = SchemeConfig::full(32);
  const auto cv = SchemeConfig::coarse(32, 3, 2);
  const auto b = SchemeConfig::broadcast(32, 3);
  for (int s : {4, 8, 12, 16, 24}) {
    const double mean_full = model.mean_invalidations(full, s);
    const double mean_cv = model.mean_invalidations(cv, s);
    const double mean_b = model.mean_invalidations(b, s);
    EXPECT_GE(mean_cv, mean_full) << "s=" << s;
    EXPECT_LE(mean_cv, mean_b) << "s=" << s;
  }
}

TEST(InvalidationModel, CoarseVectorBoundedByRegionArithmetic) {
  InvalidationModel model;
  model.trials = 2000;
  const auto cv = SchemeConfig::coarse(32, 3, 2);
  // s sharers set at most s region bits -> at most 2s targets (minus the
  // writer if it lands in a covered region, but never more than 2s).
  for (int s : {4, 6, 10}) {
    EXPECT_LE(model.mean_invalidations(cv, s), 2.0 * s + 1e-9);
  }
}

TEST(InvalidationModel, SupersetIsAlmostBroadcast) {
  // Section 4.1: "the superset scheme is only marginally better than the
  // broadcast scheme".
  InvalidationModel model;
  model.trials = 2000;
  const auto x = SchemeConfig::superset(32, 3);
  const auto b = SchemeConfig::broadcast(32, 3);
  const auto cv = SchemeConfig::coarse(32, 3, 2);
  for (int s : {8, 16}) {
    const double mean_x = model.mean_invalidations(x, s);
    EXPECT_LE(mean_x, model.mean_invalidations(b, s) + 1e-9);
    EXPECT_GT(mean_x, model.mean_invalidations(cv, s)) << "s=" << s;
    EXPECT_GT(mean_x, 20.0) << "s=" << s;  // close to broadcast already
  }
}

TEST(InvalidationModel, NoBroadcastNeverExceedsPointerCount) {
  InvalidationModel model;
  model.trials = 500;
  const auto nb = SchemeConfig::no_broadcast(32, 3);
  for (int s : {1, 3, 10, 25}) {
    EXPECT_LE(model.mean_invalidations(nb, s), 3.0 + 1e-9);
  }
}

TEST(InvalidationModel, DeterministicForFixedSeed) {
  InvalidationModel model;
  model.trials = 300;
  const auto cv = SchemeConfig::coarse(32, 3, 2);
  EXPECT_DOUBLE_EQ(model.mean_invalidations(cv, 9),
                   model.mean_invalidations(cv, 9));
}

// ---------------------------------------------------------------------------
// Closed forms vs the Monte Carlo
// ---------------------------------------------------------------------------

TEST(ClosedForms, MatchTrivialSchemes) {
  EXPECT_DOUBLE_EQ(expected_invalidations_full(13), 13.0);
  EXPECT_DOUBLE_EQ(expected_invalidations_broadcast(32, 3, 3), 3.0);
  EXPECT_DOUBLE_EQ(expected_invalidations_broadcast(32, 3, 4), 31.0);
  EXPECT_DOUBLE_EQ(expected_invalidations_no_broadcast(3, 2), 2.0);
  EXPECT_DOUBLE_EQ(expected_invalidations_no_broadcast(3, 20), 3.0);
}

TEST(ClosedForms, CoarseVectorEdgeValues) {
  // One sharer under the pointer budget: exact.
  EXPECT_DOUBLE_EQ(expected_invalidations_coarse(32, 3, 2, 2), 2.0);
  // Every node but the writer shares: the whole machine minus the writer.
  EXPECT_NEAR(expected_invalidations_coarse(32, 3, 2, 31), 31.0, 1e-9);
}

TEST(ClosedForms, CoarseVectorMatchesMonteCarlo) {
  InvalidationModel model;
  model.trials = 40000;
  const auto cv = SchemeConfig::coarse(32, 3, 2);
  for (int s : {4, 7, 12, 20, 28}) {
    const double mc = model.mean_invalidations(cv, s);
    const double exact = expected_invalidations_coarse(32, 3, 2, s);
    EXPECT_NEAR(mc, exact, 0.05 * exact + 0.05) << "s=" << s;
  }
}

TEST(ClosedForms, CoarseVectorMatchesMonteCarloWideRegions) {
  InvalidationModel model;
  model.trials = 40000;
  const auto cv = SchemeConfig::coarse(64, 3, 4);
  for (int s : {4, 10, 30}) {
    const double mc = model.mean_invalidations(cv, s);
    const double exact = expected_invalidations_coarse(64, 3, 4, s);
    EXPECT_NEAR(mc, exact, 0.05 * exact + 0.05) << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// Storage model — Table 1 and the Section 5 arithmetic
// ---------------------------------------------------------------------------

MachineModel dash_machine(int procs, SchemeConfig scheme, int sparsity) {
  MachineModel m;
  m.processors = procs;
  m.procs_per_cluster = 4;
  m.scheme = scheme;
  m.sparsity = sparsity;
  return m;
}

TEST(StorageModel, Table1Row1DashPrototype) {
  const MachineModel m = dash_machine(64, SchemeConfig::full(16), 1);
  EXPECT_EQ(m.clusters(), 16);
  EXPECT_EQ(m.bits_per_entry(), 17);  // 16-bit vector + dirty
  EXPECT_NEAR(m.overhead_fraction(), 0.133, 0.001);
}

TEST(StorageModel, Table1Row2SparseFullVector) {
  const MachineModel m = dash_machine(256, SchemeConfig::full(64), 4);
  EXPECT_EQ(m.bits_per_entry(), 64 + 1 + 2);
  EXPECT_NEAR(m.overhead_fraction(), 0.131, 0.001);
}

TEST(StorageModel, Table1Row3SparseCoarseVector) {
  const MachineModel m =
      dash_machine(1024, SchemeConfig::coarse(256, 8, 4), 4);
  EXPECT_EQ(m.bits_per_entry(), 65 + 1 + 2);
  EXPECT_NEAR(m.overhead_fraction(), 0.133, 0.001);
}

TEST(StorageModel, Section5SavingsFactorIs54) {
  // "a full bit vector directory with sparsity 64 requires 32 bits ...,
  // 1 dirty bit, and 6 bits of tag. Instead of 33 bits per 16-byte block
  // we now have 39 bits for every 64 blocks, a savings factor of 54."
  const MachineModel m = dash_machine(128, SchemeConfig::full(32), 64);
  EXPECT_EQ(m.tag_bits(), 6);
  EXPECT_EQ(m.bits_per_entry(), 39);
  EXPECT_NEAR(m.savings_vs_full_bit_vector(), 54.15, 0.1);
}

TEST(StorageModel, OverheadScalesWithSchemeBits) {
  const MachineModel full = dash_machine(1024, SchemeConfig::full(256), 1);
  const MachineModel cv =
      dash_machine(1024, SchemeConfig::coarse(256, 8, 4), 1);
  EXPECT_GT(full.overhead_fraction(), cv.overhead_fraction() * 3);
}

TEST(StorageModel, SparsitySavesOneToTwoOrdersOfMagnitude) {
  // The headline claim: sparse directories cut directory memory by 1-2
  // orders of magnitude depending on sparsity.
  const MachineModel s16 = dash_machine(256, SchemeConfig::full(64), 16);
  const MachineModel s64 = dash_machine(256, SchemeConfig::full(64), 64);
  EXPECT_GT(s16.savings_vs_full_bit_vector(), 10.0);
  EXPECT_GT(s64.savings_vs_full_bit_vector(), 50.0);
}

TEST(StorageModel, DescribeScheme) {
  EXPECT_EQ(dash_machine(64, SchemeConfig::full(16), 1).describe_scheme(),
            "Dir16");
  EXPECT_EQ(
      dash_machine(1024, SchemeConfig::coarse(256, 8, 4), 4).describe_scheme(),
      "sparse(4) Dir8CV4");
}

TEST(StorageModel, EntryCountsFollowSparsity) {
  const MachineModel m = dash_machine(64, SchemeConfig::full(16), 4);
  EXPECT_EQ(m.directory_entries(), m.total_mem_blocks() / 4);
}

TEST(StorageModelDeathTest, RejectsNonDivisibleClusterSize) {
  // Regression: clusters() used to silently truncate 65/4 to 16 and model
  // a machine that does not exist.
  MachineModel m = dash_machine(64, SchemeConfig::full(16), 1);
  m.processors = 65;
  EXPECT_DEATH(m.clusters(), "multiple of procs_per_cluster");
  m.processors = 64;
  m.procs_per_cluster = 0;
  EXPECT_DEATH(m.clusters(), "positive");
}

HierStorageModel hier_machine(int procs, int chips) {
  HierStorageModel h;
  h.machine = dash_machine(procs, SchemeConfig::full(procs / 4), 1);
  h.chips = chips;
  h.inter = SchemeConfig::full(chips);
  h.intra = SchemeConfig::full(h.machine.clusters() / chips);
  return h;
}

TEST(HierStorageModel, InterEntriesAreChipWide) {
  // 1024 procs, 4 per cluster, 16 chips: the inter level keeps a 16-chip
  // vector + dirty bit per memory block instead of a 256-cluster vector.
  const HierStorageModel h = hier_machine(1024, 16);
  EXPECT_EQ(h.clusters_per_chip(), 16);
  EXPECT_EQ(h.inter_bits_per_entry(), 16 + 1);
  EXPECT_EQ(h.inter_entries(), h.machine.total_mem_blocks());
  MachineModel flat = h.machine;
  flat.scheme = SchemeConfig::full(256);
  EXPECT_EQ(flat.bits_per_entry(), 256 + 1);
  // The home-side level alone is ~15x smaller than the flat full map.
  EXPECT_LT(h.inter_bits() * 15, flat.directory_bits());
}

TEST(HierStorageModel, IntraLevelIsCacheSized) {
  const HierStorageModel h = hier_machine(1024, 16);
  // One entry per block the chip's caches can hold (slack 1.0).
  EXPECT_EQ(h.intra_entries_per_chip(), h.machine.total_cache_blocks() / 16);
  // Caches are far smaller than memory, so the per-chip structures stay a
  // small fraction of the inter level and the total beats flat full-map.
  MachineModel flat = h.machine;
  flat.scheme = SchemeConfig::full(256);
  EXPECT_LT(h.total_bits(), flat.directory_bits());
  EXPECT_LT(h.overhead_fraction(), flat.overhead_fraction());
}

TEST(HierStorageModel, SparseInterLevelCompoundsTheSavings) {
  HierStorageModel sparse = hier_machine(1024, 16);
  sparse.inter_sparsity = 64;
  const HierStorageModel full = hier_machine(1024, 16);
  EXPECT_LT(sparse.inter_bits(), full.inter_bits());
  // Tag bits appear once the level goes sparse.
  EXPECT_EQ(sparse.inter_bits_per_entry(), 16 + 1 + 6);
}

TEST(HierStorageModel, DirectorylessBaselineHasZeroBits) {
  EXPECT_EQ(dls_directory_bits(), 0u);
}

TEST(HierStorageModel, RejectsBadChipGeometry) {
  HierStorageModel h = hier_machine(1024, 16);
  h.chips = 7;  // does not divide 256 clusters
  EXPECT_DEATH(h.clusters_per_chip(), "divide");
}

}  // namespace
}  // namespace dircc
