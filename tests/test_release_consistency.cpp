// Release-consistency write buffering in the engine (the DASH latency-
// hiding mechanism; the paper's protocol counts acknowledgements exactly so
// that such an entity — the RAC — can tell when a write has performed).
#include <gtest/gtest.h>

#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig rc_system(int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(procs);
  return config;
}

ProgramTrace writes_trace(int procs, int writes) {
  ProgramTrace trace;
  trace.app_name = "writes";
  trace.block_size = 16;
  trace.per_proc.assign(static_cast<std::size_t>(procs), {});
  for (int w = 0; w < writes; ++w) {
    // Distinct blocks: every write is a full remote transaction.
    trace.per_proc[0].push_back(
        TraceEvent::write(static_cast<Addr>(w) * 16));
  }
  return trace;
}

TEST(ReleaseConsistency, HidesWriteLatency) {
  const ProgramTrace trace = writes_trace(4, 8);
  auto run = [&](bool rc) {
    CoherenceSystem sys(rc_system());
    EngineConfig config;
    config.release_consistency = rc;
    config.write_buffer_depth = 16;  // never stalls in this test
    Engine engine(sys, trace, config);
    return engine.run();
  };
  const RunResult stall = run(false);
  const RunResult rc = run(true);
  // Identical traffic, far less time: the processor issues all 8 writes
  // back to back and only the drain tail remains.
  EXPECT_EQ(rc.protocol.messages.total(), stall.protocol.messages.total());
  EXPECT_LT(rc.exec_cycles, stall.exec_cycles / 2);
  EXPECT_EQ(rc.sync.buffered_writes, 8u);
}

TEST(ReleaseConsistency, FinishWaitsForTheDrain) {
  // Even fully buffered, the run cannot finish before the last write has
  // drained: the final write issues after ~8 issue slots and needs a full
  // remote transaction to land.
  const ProgramTrace trace = writes_trace(4, 8);
  CoherenceSystem sys(rc_system());
  EngineConfig config;
  config.release_consistency = true;
  config.write_buffer_depth = 16;
  Engine engine(sys, trace, config);
  const RunResult result = engine.run();
  EXPECT_GE(result.exec_cycles, 60u);
  EXPECT_LT(result.exec_cycles, 200u);  // but the drains overlapped
}

TEST(ReleaseConsistency, FullBufferStalls) {
  const ProgramTrace trace = writes_trace(4, 12);
  CoherenceSystem sys(rc_system());
  EngineConfig config;
  config.release_consistency = true;
  config.write_buffer_depth = 2;
  Engine engine(sys, trace, config);
  const RunResult result = engine.run();
  EXPECT_GT(result.sync.buffer_stalls, 0u);
}

TEST(ReleaseConsistency, StalledWritesStillCountAsBuffered) {
  // Invariant: every RC-mode write retires into the buffer, so
  // `buffered_writes` counts all of them and `buffer_stalls` is the subset
  // that first had to wait for a slot — not a disjoint bucket.
  const ProgramTrace trace = writes_trace(4, 12);
  CoherenceSystem sys(rc_system());
  EngineConfig config;
  config.release_consistency = true;
  config.write_buffer_depth = 2;
  Engine engine(sys, trace, config);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.buffered_writes, 12u);
  EXPECT_GT(result.sync.buffer_stalls, 0u);
  EXPECT_LE(result.sync.buffer_stalls, result.sync.buffered_writes);
}

TEST(ReleaseConsistency, UnlockFencesBufferedWrites) {
  // Proc 0 writes under a lock then releases; proc 1 acquires and reads.
  // The fence forces the writes to perform before the lock moves, so the
  // (always-on) version validation passing proves the ordering.
  ProgramTrace trace;
  trace.app_name = "fence";
  trace.block_size = 16;
  trace.per_proc.assign(2, {});
  trace.per_proc[0] = {TraceEvent::lock(1), TraceEvent::write(0),
                       TraceEvent::write(16), TraceEvent::unlock(1)};
  trace.per_proc[1] = {TraceEvent::think(5), TraceEvent::lock(1),
                       TraceEvent::read(0), TraceEvent::read(16),
                       TraceEvent::unlock(1)};
  CoherenceSystem sys(rc_system(2));
  EngineConfig config;
  config.release_consistency = true;
  Engine engine(sys, trace, config);
  const RunResult result = engine.run();
  EXPECT_GT(result.sync.fence_wait_cycles, 0u);
  EXPECT_EQ(sys.latest_version(0), 1u);
}

TEST(ReleaseConsistency, BarrierFencesToo) {
  ProgramTrace trace;
  trace.app_name = "barrier-fence";
  trace.block_size = 16;
  trace.per_proc.assign(2, {});
  trace.per_proc[0] = {TraceEvent::write(0), TraceEvent::barrier(0)};
  trace.per_proc[1] = {TraceEvent::barrier(0), TraceEvent::read(0)};
  CoherenceSystem sys(rc_system(2));
  EngineConfig config;
  config.release_consistency = true;
  Engine engine(sys, trace, config);
  const RunResult result = engine.run();
  // Proc 1's post-barrier read observed proc 0's write (validated), and
  // the barrier waited out the buffered write.
  EXPECT_GE(result.exec_cycles, 60u);
}

TEST(ReleaseConsistency, OffByDefaultMatchesLegacyTiming) {
  const ProgramTrace trace = writes_trace(4, 4);
  CoherenceSystem a(rc_system());
  Engine ea(a, trace);
  CoherenceSystem b(rc_system());
  Engine eb(b, trace, EngineConfig{});
  EXPECT_EQ(ea.run().exec_cycles, eb.run().exec_cycles);
}

TEST(ReleaseConsistency, AppRunSpeedsUpWithSameTraffic) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 16, 16, 3, 0.1);
  auto run = [&](bool rc) {
    SystemConfig sys_config = rc_system(16);
    sys_config.cache_lines_per_proc = 256;
    CoherenceSystem sys(sys_config);
    EngineConfig config;
    config.release_consistency = rc;
    Engine engine(sys, trace, config);
    return engine.run();
  };
  const RunResult stall = run(false);
  const RunResult rc = run(true);
  // Buffering changes the interleaving, so message counts can drift a
  // little — but the work is the same and the time is strictly less.
  EXPECT_NEAR(static_cast<double>(rc.protocol.messages.total()),
              static_cast<double>(stall.protocol.messages.total()),
              0.05 * static_cast<double>(stall.protocol.messages.total()));
  EXPECT_LT(rc.exec_cycles, stall.exec_cycles);
}

}  // namespace
}  // namespace dircc
