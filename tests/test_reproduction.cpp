// Reproduction regression tests: pin the *shapes* each paper figure/table
// claims, on scaled-down versions of the bench workloads, so a refactor
// that silently breaks a result fails CI rather than EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "model/invalidation_model.hpp"
#include "model/storage_model.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

RunResult run(const ProgramTrace& trace, SchemeConfig scheme,
              std::uint64_t cache_lines = 512,
              int sparse_size_factor = 0,
              ReplPolicy policy = ReplPolicy::kRandom,
              int sparse_assoc = 4) {
  SystemConfig config;
  config.num_procs = trace.num_procs();
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = cache_lines;
  config.cache_assoc = 4;
  config.scheme = scheme;
  if (sparse_size_factor > 0) {
    const std::uint64_t total =
        cache_lines * static_cast<std::uint64_t>(trace.num_procs());
    std::uint64_t per_home =
        total * static_cast<std::uint64_t>(sparse_size_factor) /
        static_cast<std::uint64_t>(trace.num_procs());
    per_home = ceil_div(per_home, static_cast<std::uint64_t>(sparse_assoc)) *
               static_cast<std::uint64_t>(sparse_assoc);
    config.store.sparse = true;
    config.store.sparse_entries = per_home;
    config.store.sparse_assoc = sparse_assoc;
    config.store.policy = policy;
  }
  CoherenceSystem system(config);
  Engine engine(system, trace);
  return engine.run();
}

// ---------------------------------------------------------------------------
// Figure 2 shapes
// ---------------------------------------------------------------------------

TEST(ReproFig2, OrderingAtModerateSharing) {
  InvalidationModel model;
  model.trials = 1500;
  for (int s : {5, 9, 14}) {
    const double full =
        model.mean_invalidations(SchemeConfig::full(32), s);
    const double cv =
        model.mean_invalidations(SchemeConfig::coarse(32, 3, 2), s);
    const double x =
        model.mean_invalidations(SchemeConfig::superset(32, 3), s);
    const double b =
        model.mean_invalidations(SchemeConfig::broadcast(32, 3), s);
    EXPECT_LT(full, cv);
    EXPECT_LT(cv, x);
    EXPECT_LE(x, b);
    // The coarse vector stays much closer to the ideal than to broadcast.
    EXPECT_LT(cv - full, b - cv) << "s=" << s;
  }
}

TEST(ReproFig2, BroadcastKneeAtPointerCount) {
  InvalidationModel model;
  model.trials = 200;
  const auto b = SchemeConfig::broadcast(32, 3);
  EXPECT_DOUBLE_EQ(model.mean_invalidations(b, 3), 3.0);
  EXPECT_DOUBLE_EQ(model.mean_invalidations(b, 4), 31.0);
}

// ---------------------------------------------------------------------------
// Table 1 / Section 5 arithmetic (also covered in test_model; pinned here
// as the headline storage claim)
// ---------------------------------------------------------------------------

TEST(ReproTable1, SparseSavesOneToTwoOrdersOfMagnitude) {
  MachineModel m;
  m.processors = 128;
  m.procs_per_cluster = 4;
  m.scheme = SchemeConfig::full(32);
  m.sparsity = 64;
  EXPECT_NEAR(m.savings_vs_full_bit_vector(), 54.2, 0.2);
  EXPECT_GE(m.savings_vs_full_bit_vector(), 10.0);   // one order
  EXPECT_LE(m.savings_vs_full_bit_vector(), 100.0);  // within two
}

// ---------------------------------------------------------------------------
// Figures 3-6 shapes (LocusRoute invalidation distributions)
// ---------------------------------------------------------------------------

class ReproInvalDist : public ::testing::Test {
 protected:
  static const ProgramTrace& trace() {
    static const ProgramTrace t =
        generate_app(AppKind::kLocusRoute, 32, 16, 1990, 0.3);
    return t;
  }
};

TEST_F(ReproInvalDist, FullVectorMeanNearOne) {
  const RunResult r = run(trace(), SchemeConfig::full(32));
  EXPECT_GT(r.protocol.inval_distribution.mean(), 0.5);
  EXPECT_LT(r.protocol.inval_distribution.mean(), 1.5);
}

TEST_F(ReproInvalDist, NoBroadcastHasMoreEventsAllSmall) {
  const RunResult full = run(trace(), SchemeConfig::full(32));
  const RunResult nb = run(trace(), SchemeConfig::no_broadcast(32, 3));
  EXPECT_GT(nb.protocol.inval_distribution.events(),
            full.protocol.inval_distribution.events());
  EXPECT_LE(nb.protocol.inval_distribution.max_value(), 3u);
}

TEST_F(ReproInvalDist, BroadcastSpikesAtThirty) {
  const RunResult b = run(trace(), SchemeConfig::broadcast(32, 3));
  const Histogram& dist = b.protocol.inval_distribution;
  // "For most broadcasts, 30 clusters have to be invalidated, since the
  // home cluster and the new owning cluster do not require one."
  EXPECT_GT(dist.count_at(30), 0u);
  std::uint64_t mid = 0;  // nothing between the small cases and the spike
  for (std::uint64_t v = 6; v < 28; ++v) {
    mid += dist.count_at(v);
  }
  EXPECT_EQ(mid, 0u);
  EXPECT_GT(dist.count_at(30), 10 * (mid + 1));
}

TEST_F(ReproInvalDist, CoarseVectorFillsTheTailWithoutBroadcast) {
  const RunResult cv = run(trace(), SchemeConfig::coarse(32, 3, 2));
  const Histogram& dist = cv.protocol.inval_distribution;
  // Region granularity: events above the pointer count exist but the
  // broadcast spike does not.
  std::uint64_t above_pointers = 0;
  for (std::uint64_t v = 4; v <= dist.max_value(); ++v) {
    above_pointers += dist.count_at(v);
  }
  EXPECT_GT(above_pointers, 0u);
  EXPECT_LT(dist.count_at(30) + dist.count_at(31),
            above_pointers / 4 + 1);
  const RunResult b = run(trace(), SchemeConfig::broadcast(32, 3));
  EXPECT_LT(dist.mean(), b.protocol.inval_distribution.mean());
}

// ---------------------------------------------------------------------------
// Figures 7-10 headline orderings
// ---------------------------------------------------------------------------

TEST(ReproFig7to10, CoarseVectorAlwaysClosestToFull) {
  for (AppKind app : {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d,
                      AppKind::kLocusRoute}) {
    const ProgramTrace trace = generate_app(app, 32, 16, 1990, 0.15);
    const auto full = run(trace, SchemeConfig::full(32));
    const auto cv = run(trace, SchemeConfig::coarse(32, 3, 2));
    const auto b = run(trace, SchemeConfig::broadcast(32, 3));
    const auto nb = run(trace, SchemeConfig::no_broadcast(32, 3));
    const auto total = [](const RunResult& r) {
      return static_cast<double>(r.protocol.messages.total());
    };
    // CV within 5% of full on every app...
    EXPECT_LT(total(cv), 1.05 * total(full)) << app_name(app);
    // ...and never worse than the other limited schemes.
    EXPECT_LE(total(cv), total(b) * 1.001) << app_name(app);
    EXPECT_LE(total(cv), total(nb) * 1.001) << app_name(app);
  }
}

TEST(ReproFig10, LocusRouteIsTheAppWhereNbBeatsB) {
  const ProgramTrace locus =
      generate_app(AppKind::kLocusRoute, 32, 16, 1990, 0.3);
  const auto b = run(locus, SchemeConfig::broadcast(32, 3));
  const auto nb = run(locus, SchemeConfig::no_broadcast(32, 3));
  EXPECT_LT(nb.protocol.messages.total(), b.protocol.messages.total());

  const ProgramTrace lu = generate_app(AppKind::kLu, 32, 16, 1990, 0.15);
  const auto lu_b = run(lu, SchemeConfig::broadcast(32, 3));
  const auto lu_nb = run(lu, SchemeConfig::no_broadcast(32, 3));
  EXPECT_GT(lu_nb.protocol.messages.total(),
            lu_b.protocol.messages.total());
}

// ---------------------------------------------------------------------------
// Figures 11-13 shapes
// ---------------------------------------------------------------------------

TEST(ReproFig11, SizeFactorOneCostsLittleTwoCostsLess) {
  LuConfig lu;
  lu.procs = 32;
  lu.n = 96;
  lu.seed = 1990;
  const ProgramTrace trace = generate_lu(lu);
  const auto dense = run(trace, SchemeConfig::full(32), 48);
  const auto sf1 = run(trace, SchemeConfig::full(32), 48, 1);
  const auto sf4 = run(trace, SchemeConfig::full(32), 48, 4);
  const auto exec = [](const RunResult& r) {
    return static_cast<double>(r.exec_cycles);
  };
  EXPECT_GT(sf1.protocol.sparse_replacements, 0u);
  // "only a few percent" at bench scale; this scaled-down test config has
  // a harsher data-set/cache ratio, so allow a wider margin while still
  // catching pathological blowups.
  EXPECT_LT(exec(sf1), 1.3 * exec(dense));
  EXPECT_LE(exec(sf4), exec(sf1));
  EXPECT_LE(sf4.protocol.messages.total(), sf1.protocol.messages.total());
}

TEST(ReproFig13, AssociativityHelpsMonotonically) {
  LuConfig lu;
  lu.procs = 32;
  lu.n = 96;
  lu.seed = 1990;
  const ProgramTrace trace = generate_lu(lu);
  const auto a1 =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kRandom, 1);
  const auto a2 =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kRandom, 2);
  const auto a4 =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kRandom, 4);
  EXPECT_GE(a1.protocol.sparse_replacements,
            a2.protocol.sparse_replacements);
  EXPECT_GE(a2.protocol.sparse_replacements,
            a4.protocol.sparse_replacements);
  EXPECT_GE(a1.protocol.messages.total(), a4.protocol.messages.total());
}

TEST(ReproFig14, LruBeatsTheFieldOnDwf) {
  DwfConfig dwf;
  dwf.procs = 32;
  dwf.num_sequences = 192;
  dwf.seed = 1990;
  const ProgramTrace trace = generate_dwf(dwf);
  const auto lru =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kLru);
  const auto rnd =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kRandom);
  const auto lra =
      run(trace, SchemeConfig::full(32), 48, 1, ReplPolicy::kLra);
  EXPECT_LE(lru.protocol.messages.total(), rnd.protocol.messages.total());
  EXPECT_LE(lru.protocol.messages.total(), lra.protocol.messages.total());
}

}  // namespace
}  // namespace dircc
