// Trace substrate: generators (determinism, structure, sharing patterns),
// layout, validation and the binary file format.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "trace/generators.hpp"
#include "trace/layout.hpp"
#include "trace/trace_file.hpp"
#include "trace/validate.hpp"

namespace dircc {
namespace {

// ---------------------------------------------------------------------------
// AddressLayout
// ---------------------------------------------------------------------------

TEST(AddressLayout, RegionsAreBlockAlignedAndDisjoint) {
  AddressLayout layout(16);
  const Region a = layout.alloc("a", 10);   // rounds to 16
  const Region b = layout.alloc("b", 100);  // rounds to 112
  EXPECT_EQ(a.base % 16, 0u);
  EXPECT_EQ(a.bytes, 16u);
  EXPECT_EQ(b.base, 16u);
  EXPECT_EQ(b.bytes, 112u);
  EXPECT_EQ(layout.bytes_allocated(), 128u);
  EXPECT_EQ(a.at(5), 5u);
  EXPECT_EQ(b.at(0), 16u);
}

// Regression: a zero-byte request used to produce an empty region whose
// base address aliased the next structure's first block. It must occupy at
// least one block of its own.
TEST(AddressLayout, ZeroByteRequestStillOccupiesABlock) {
  AddressLayout layout(16);
  const Region empty = layout.alloc("empty", 0);
  const Region next = layout.alloc("next", 32);
  EXPECT_EQ(empty.bytes, 16u);
  EXPECT_NE(empty.base, next.base);
  EXPECT_EQ(next.base, 16u);
  EXPECT_EQ(empty.at(0), 0u);  // usable, and not next's first block
}

// ---------------------------------------------------------------------------
// Generators — common properties, parameterized over the four applications
// ---------------------------------------------------------------------------

class GeneratorProperty : public ::testing::TestWithParam<AppKind> {};

TEST_P(GeneratorProperty, DeterministicFromSeed) {
  const ProgramTrace a = generate_app(GetParam(), 8, 16, 5, 0.05);
  const ProgramTrace b = generate_app(GetParam(), 8, 16, 5, 0.05);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t p = 0; p < a.per_proc.size(); ++p) {
    EXPECT_EQ(a.per_proc[p], b.per_proc[p]) << "proc " << p;
  }
}

TEST_P(GeneratorProperty, ValidatesStructurally) {
  const ProgramTrace trace = generate_app(GetParam(), 8, 16, 5, 0.05);
  std::string error;
  EXPECT_TRUE(validate_trace(trace, &error)) << error;
}

TEST_P(GeneratorProperty, EveryProcessorParticipates) {
  const ProgramTrace trace = generate_app(GetParam(), 8, 16, 5, 0.1);
  for (const auto& stream : trace.per_proc) {
    EXPECT_FALSE(stream.empty());
  }
}

TEST_P(GeneratorProperty, CharacteristicsAreSane) {
  const ProgramTrace trace = generate_app(GetParam(), 8, 16, 5, 0.1);
  const TraceCharacteristics c = characterize(trace);
  EXPECT_GT(c.shared_reads, 0u);
  EXPECT_GT(c.shared_writes, 0u);
  EXPECT_GT(c.shared_reads, c.shared_writes / 4)
      << "reads should not be dwarfed by writes";
  EXPECT_GT(c.distinct_blocks, 10u);
  EXPECT_EQ(c.shared_refs, c.shared_reads + c.shared_writes);
}

TEST_P(GeneratorProperty, ScaleShrinksTheTrace) {
  const ProgramTrace small = generate_app(GetParam(), 8, 16, 5, 0.05);
  const ProgramTrace large = generate_app(GetParam(), 8, 16, 5, 0.3);
  EXPECT_LT(small.total_events(), large.total_events());
}

INSTANTIATE_TEST_SUITE_P(AllApps, GeneratorProperty,
                         ::testing::Values(AppKind::kLu, AppKind::kDwf,
                                           AppKind::kMp3d,
                                           AppKind::kLocusRoute),
                         [](const ::testing::TestParamInfo<AppKind>& info) {
                           return app_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Generator-specific sharing-pattern checks
// ---------------------------------------------------------------------------

TEST(LuGenerator, PivotColumnIsReadByEveryProcessor) {
  LuConfig config;
  config.procs = 8;
  config.n = 32;
  const ProgramTrace trace = generate_lu(config);
  // Column 0 occupies the first n*8 bytes. After the first pivot step,
  // every processor owning later columns must read it.
  const Addr col0_end = 32 * 8;
  int readers = 0;
  for (const auto& stream : trace.per_proc) {
    bool reads_col0 = false;
    for (const TraceEvent& ev : stream) {
      if (ev.kind == TraceEvent::Kind::kRead && ev.addr < col0_end) {
        reads_col0 = true;
        break;
      }
    }
    readers += reads_col0 ? 1 : 0;
  }
  EXPECT_EQ(readers, 8);
}

TEST(LuGenerator, ColumnsAreWrittenOnlyByTheirOwner) {
  LuConfig config;
  config.procs = 4;
  config.n = 16;
  const ProgramTrace trace = generate_lu(config);
  const Addr matrix_bytes = 16 * 16 * 8;  // writes past this are the
                                          // shared step-info block
  for (int p = 0; p < config.procs; ++p) {
    for (const TraceEvent& ev :
         trace.per_proc[static_cast<std::size_t>(p)]) {
      if (ev.kind != TraceEvent::Kind::kWrite || ev.addr >= matrix_bytes) {
        continue;
      }
      const int col = static_cast<int>(ev.addr / (16 * 8));
      EXPECT_EQ(col % config.procs, p) << "column " << col;
    }
  }
}

TEST(LuGenerator, BarriersSeparateEveryStep) {
  LuConfig config;
  config.procs = 4;
  config.n = 16;
  const ProgramTrace trace = generate_lu(config);
  std::uint64_t barriers = 0;
  for (const TraceEvent& ev : trace.per_proc[0]) {
    if (ev.kind == TraceEvent::Kind::kBarrier) {
      ++barriers;
    }
  }
  EXPECT_EQ(barriers, 2u * 16u);
}

TEST(DwfGenerator, PatternBlocksAreReadByAllAndNeverWritten) {
  DwfConfig config;
  config.procs = 8;
  config.num_sequences = 64;
  const ProgramTrace trace = generate_dwf(config);
  const Addr pattern_end =
      static_cast<Addr>(config.pattern_rows) * config.block_size;
  for (const auto& stream : trace.per_proc) {
    bool reads_pattern = false;
    for (const TraceEvent& ev : stream) {
      if (ev.addr < pattern_end) {
        EXPECT_NE(ev.kind, TraceEvent::Kind::kWrite)
            << "pattern is read-only";
        if (ev.kind == TraceEvent::Kind::kRead) {
          reads_pattern = true;
        }
      }
    }
    EXPECT_TRUE(reads_pattern);
  }
}

TEST(Mp3dGenerator, ParticleBlocksAreMostlyPrivate) {
  Mp3dConfig config;
  config.procs = 8;
  config.particles = 256;
  config.steps = 4;
  config.collision_prob = 0.0;  // isolate the no-collision structure
  const ProgramTrace trace = generate_mp3d(config);
  // With no collisions, a particle block is touched by exactly one
  // processor (its owner).
  const Addr particle_bytes =
      static_cast<Addr>(config.particles) * 2 * config.block_size;
  std::set<std::pair<Addr, int>> touches;
  std::set<Addr> particle_blocks;
  for (int p = 0; p < config.procs; ++p) {
    for (const TraceEvent& ev :
         trace.per_proc[static_cast<std::size_t>(p)]) {
      if ((ev.kind == TraceEvent::Kind::kRead ||
           ev.kind == TraceEvent::Kind::kWrite) &&
          ev.addr < particle_bytes) {
        touches.insert({ev.addr / 16, p});
        particle_blocks.insert(ev.addr / 16);
      }
    }
  }
  EXPECT_EQ(touches.size(), particle_blocks.size())
      << "some particle block was touched by more than one processor";
}

TEST(Mp3dGenerator, CellsMigrateBetweenProcessors) {
  Mp3dConfig config;
  config.procs = 8;
  config.particles = 2048;
  config.steps = 8;
  const ProgramTrace trace = generate_mp3d(config);
  // Cell blocks live after the particle region; count how many processors
  // write each cell block over the run — migratory cells see >= 2.
  const Addr particle_bytes =
      static_cast<Addr>(config.particles) * 2 * config.block_size;
  const Addr cells_bytes = 16ULL * 16 * 16 * config.block_size;
  std::map<Addr, std::set<int>> writers;
  for (int p = 0; p < config.procs; ++p) {
    for (const TraceEvent& ev :
         trace.per_proc[static_cast<std::size_t>(p)]) {
      if (ev.kind == TraceEvent::Kind::kWrite && ev.addr >= particle_bytes &&
          ev.addr < particle_bytes + cells_bytes) {
        writers[ev.addr / 16].insert(p);
      }
    }
  }
  ASSERT_FALSE(writers.empty());
  int multi = 0;
  for (const auto& [block, procs] : writers) {
    if (procs.size() >= 2) {
      ++multi;
    }
  }
  EXPECT_GT(multi, static_cast<int>(writers.size()) / 4)
      << "cells should be shared between processors";
}

TEST(LocusGenerator, GridWritesComeFromFewProcessorsPerBlock) {
  LocusConfig config;
  config.procs = 16;
  config.regions = 8;
  config.wires = 800;
  const ProgramTrace trace = generate_locusroute(config);
  const Addr grid_bytes =
      static_cast<Addr>(config.grid_w) * config.grid_h * 2;
  std::map<Addr, std::set<int>> writers;
  for (int p = 0; p < config.procs; ++p) {
    for (const TraceEvent& ev :
         trace.per_proc[static_cast<std::size_t>(p)]) {
      if (ev.kind == TraceEvent::Kind::kWrite && ev.addr < grid_bytes) {
        writers[ev.addr / 16].insert(p);
      }
    }
  }
  ASSERT_FALSE(writers.empty());
  double total = 0;
  for (const auto& [block, procs] : writers) {
    total += static_cast<double>(procs.size());
  }
  const double mean_writers = total / static_cast<double>(writers.size());
  // Region sharing: more than one writer on average, far fewer than all 16.
  EXPECT_GT(mean_writers, 1.05);
  EXPECT_LT(mean_writers, 8.0);
}

// ---------------------------------------------------------------------------
// Trace file round trip
// ---------------------------------------------------------------------------

TEST(TraceFile, RoundTripsExactly) {
  const ProgramTrace original = generate_app(AppKind::kMp3d, 4, 16, 9, 0.05);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  ProgramTrace loaded;
  ASSERT_TRUE(read_trace(buffer, loaded));
  EXPECT_EQ(loaded.app_name, original.app_name);
  EXPECT_EQ(loaded.block_size, original.block_size);
  ASSERT_EQ(loaded.per_proc.size(), original.per_proc.size());
  for (std::size_t p = 0; p < original.per_proc.size(); ++p) {
    EXPECT_EQ(loaded.per_proc[p], original.per_proc[p]);
  }
}

TEST(TraceFile, RejectsGarbage) {
  std::stringstream buffer("this is not a trace file at all");
  ProgramTrace trace;
  EXPECT_FALSE(read_trace(buffer, trace));
}

TEST(TraceFile, RejectsTruncatedStream) {
  const ProgramTrace original = generate_app(AppKind::kDwf, 2, 16, 9, 0.05);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  ProgramTrace trace;
  EXPECT_FALSE(read_trace(truncated, trace));
}

// Regression: a crafted header whose per-stream count field claims up to
// 2^36 events used to be trusted with an up-front stream.resize(count) —
// close to a 1 TiB allocation — before the reader noticed the stream held
// no event bytes at all. The count must be rejected against the bytes
// actually remaining (or fail at the first missing event), never allocated
// blindly.
TEST(TraceFile, RejectsHeaderWithAbsurdCountWithoutAllocating) {
  std::stringstream buffer;
  buffer.write("DTRC", 4);
  const auto put32 = [&](std::uint32_t v) {
    buffer.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  const auto put64 = [&](std::uint64_t v) {
    buffer.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put32(1);   // version
  put32(1);   // procs
  put32(16);  // block size
  put32(0);   // app-name length
  put64(std::uint64_t{1} << 35);  // claimed events; no event bytes follow
  ProgramTrace trace;
  EXPECT_FALSE(read_trace(buffer, trace));
  // The reader must not have grown the stream toward the claimed count.
  for (const auto& stream : trace.per_proc) {
    EXPECT_LT(stream.capacity(), std::size_t{1} << 20);
  }
}

// Same shape, but the count lies only modestly (claims more events than
// the stream carries): must fail cleanly at the missing event.
TEST(TraceFile, RejectsCountBeyondAvailableEvents) {
  const ProgramTrace original = generate_app(AppKind::kDwf, 2, 16, 9, 0.05);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  std::string bytes = buffer.str();
  // The first per-stream count sits right after the fixed header + name.
  const std::size_t count_at = 4 + 4 + 4 + 4 + 4 + original.app_name.size();
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + count_at, sizeof count);
  count += 1000;
  std::memcpy(bytes.data() + count_at, &count, sizeof count);
  std::stringstream lying(bytes);
  ProgramTrace trace;
  EXPECT_FALSE(read_trace(lying, trace));
}

// ---------------------------------------------------------------------------
// Validator diagnostics
// ---------------------------------------------------------------------------

TEST(ValidateTrace, CatchesUnbalancedLock) {
  ProgramTrace trace;
  trace.per_proc = {{TraceEvent::lock(1)}};
  std::string error;
  EXPECT_FALSE(validate_trace(trace, &error));
  EXPECT_NE(error.find("lock"), std::string::npos);
}

TEST(ValidateTrace, CatchesForeignUnlock) {
  ProgramTrace trace;
  trace.per_proc = {{TraceEvent::unlock(1)}};
  EXPECT_FALSE(validate_trace(trace));
}

TEST(ValidateTrace, CatchesBarrierMismatch) {
  ProgramTrace trace;
  trace.per_proc = {{TraceEvent::barrier(0)}, {TraceEvent::barrier(1)}};
  std::string error;
  EXPECT_FALSE(validate_trace(trace, &error));
  EXPECT_NE(error.find("arrier"), std::string::npos);
}

TEST(ValidateTrace, IdleProcessorIsExemptFromBarrierCrossCheck) {
  // An empty stream finishes before any barrier opens (the engine does not
  // wait for it), so only participating processors must agree.
  ProgramTrace trace;
  trace.per_proc = {{},
                    {TraceEvent::read(0), TraceEvent::barrier(0)},
                    {TraceEvent::write(16), TraceEvent::barrier(0)}};
  EXPECT_TRUE(validate_trace(trace));

  trace.per_proc[2] = {TraceEvent::write(16), TraceEvent::barrier(7)};
  std::string error;
  EXPECT_FALSE(validate_trace(trace, &error));
  EXPECT_NE(error.find("processors 1 and 2"), std::string::npos);
}

TEST(ValidateTrace, AcceptsWellFormedTrace) {
  ProgramTrace trace;
  trace.per_proc = {
      {TraceEvent::lock(1), TraceEvent::read(0), TraceEvent::unlock(1),
       TraceEvent::barrier(0)},
      {TraceEvent::write(16), TraceEvent::barrier(0)}};
  EXPECT_TRUE(validate_trace(trace));
}

}  // namespace
}  // namespace dircc
