// Invariant oracle, fault injection, fuzz generator, and minimizer.
//
// The corruption tests mutate live cache/directory state through the
// *_for_test accessors and assert the oracle reports the exact violation
// kind at the exact block; the end-to-end tests seed each protocol fault
// and assert the oracle catches it during a fuzzed run.
#include <gtest/gtest.h>

#include <sstream>

#include "check/fuzz.hpp"
#include "check/invariant_checker.hpp"
#include "check/minimize.hpp"
#include "trace/trace_file.hpp"

namespace dircc::check {
namespace {

SystemConfig small_config(int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(procs);
  return config;
}

/// Fuzz-run machine: small caches so evictions (and with a sparse store,
/// victimizations) happen constantly.
SystemConfig fuzz_config(FaultKind kind, std::uint64_t trigger = 1) {
  SystemConfig config;
  config.num_procs = 8;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 8;
  config.cache_assoc = 2;
  config.scheme = SchemeConfig::full(8);
  // Fault runs corrupt state on purpose; the protocol's own [[noreturn]]
  // value spot-check must stay out of the oracle's way.
  config.validate = false;
  config.fault.kind = kind;
  config.fault.trigger = trigger;
  return config;
}

FuzzTraceConfig small_fuzz_trace() {
  FuzzTraceConfig tc;
  tc.procs = 8;
  tc.rounds = 2;
  tc.units_per_round = 30;
  tc.hot_blocks = 4;
  tc.pool_blocks = 64;
  tc.seed = 7;
  return tc;
}

bool has_kind(const CheckReport& report, ViolationKind kind) {
  for (const Violation& violation : report.violations) {
    if (violation.kind == kind) {
      return true;
    }
  }
  return false;
}

const Violation* find_kind(const CheckReport& report, ViolationKind kind) {
  for (const Violation& violation : report.violations) {
    if (violation.kind == kind) {
      return &violation;
    }
  }
  return nullptr;
}

TEST(Checker, CleanFuzzRunHasNoViolations) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  const CheckedRun run = run_checked(fuzz_config(FaultKind::kNone),
                                     EngineConfig{},
                                     generate_fuzz_trace(small_fuzz_trace()));
  EXPECT_FALSE(run.report.failed())
      << violation_to_string(run.report.violations.front());
  EXPECT_GT(run.report.accesses_observed, 0u);
  EXPECT_GT(run.report.audits, 0u);
  EXPECT_EQ(run.report.faults_injected, 0u);
  EXPECT_FALSE(run.report.halted);
}

TEST(Checker, ReportsStaleSharerBitAtTheRightBlock) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  CoherenceSystem sys(small_config());
  sys.access(1, 0, false);  // proc 1 caches block 0 Shared
  sys.access(1, 1, false);  // proc 1 caches block 1 Shared (stays intact)
  // Corrupt: the directory forgets that cluster 1 shares block 0.
  DirEntry* entry = sys.directory_for_test(0).find(0);
  ASSERT_NE(entry, nullptr);
  sys.format().remove_sharer(entry->sharers, 1);

  InvariantChecker checker(sys, CheckConfig{});
  checker.audit(10);
  const CheckReport& report = checker.finish(false);
  ASSERT_TRUE(report.failed());
  const Violation* violation =
      find_kind(report, ViolationKind::kForgottenSharer);
  ASSERT_NE(violation, nullptr) << "expected a forgotten-sharer violation";
  EXPECT_EQ(violation->block, 0u);
  EXPECT_EQ(violation->proc, 1);
  EXPECT_EQ(violation->cycle, 10u);
  // The untouched block must not be flagged.
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.block, 0u) << violation_to_string(v);
  }
}

TEST(Checker, ReportsTwoModifiedCopies) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  CoherenceSystem sys(small_config());
  sys.access(1, 0, true);  // proc 1 owns block 0 Modified
  // Corrupt: a second Modified copy appears in proc 2's cache.
  std::optional<EvictedLine> evicted;
  sys.cache_for_test(2).fill(0, LineState::kModified, sys.latest_version(0),
                             evicted);

  InvariantChecker checker(sys, CheckConfig{});
  checker.audit(20);
  const CheckReport& report = checker.finish(false);
  ASSERT_TRUE(report.failed());
  const Violation* violation =
      find_kind(report, ViolationKind::kMultipleOwners);
  ASSERT_NE(violation, nullptr) << "expected a multiple-owners violation";
  EXPECT_EQ(violation->block, 0u);
  EXPECT_EQ(violation->cycle, 20u);
}

TEST(Checker, ReportsSparseEntryDroppedWithoutInvalidation) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  SystemConfig config = small_config();
  config.store.sparse = true;
  config.store.sparse_entries = 16;
  config.store.sparse_assoc = 4;
  CoherenceSystem sys(config);
  sys.access(1, 0, false);  // proc 1 caches block 0 Shared
  // Corrupt: the sparse directory victimizes the entry but "forgets" to
  // invalidate the cached copy.
  sys.directory_for_test(0).release(0);

  InvariantChecker checker(sys, CheckConfig{});
  checker.audit(30);
  const CheckReport& report = checker.finish(false);
  ASSERT_TRUE(report.failed());
  const Violation* violation = find_kind(report, ViolationKind::kMissingEntry);
  ASSERT_NE(violation, nullptr) << "expected a missing-entry violation";
  EXPECT_EQ(violation->block, 0u);
  EXPECT_EQ(violation->proc, 1);
}

TEST(Checker, CatchesInjectedForgetSharerFault) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  const CheckedRun run =
      run_checked(fuzz_config(FaultKind::kForgetSharer), EngineConfig{},
                  generate_fuzz_trace(small_fuzz_trace()));
  EXPECT_EQ(run.report.faults_injected, 1u);
  ASSERT_TRUE(run.report.failed()) << "oracle missed the seeded fault";
  EXPECT_TRUE(run.report.halted);
}

TEST(Checker, CatchesInjectedSkipInvalidationFault) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  const CheckedRun run =
      run_checked(fuzz_config(FaultKind::kSkipInvalidation), EngineConfig{},
                  generate_fuzz_trace(small_fuzz_trace()));
  EXPECT_EQ(run.report.faults_injected, 1u);
  ASSERT_TRUE(run.report.failed()) << "oracle missed the seeded fault";
}

TEST(Checker, CatchesInjectedDroppedWritebackFault) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  // The drop site is the sparse directory's victim-reclaim path, so this
  // run needs an undersized sparse store under enough write pressure that
  // dirty entries get victimized no matter how the victim picks fall.
  SystemConfig config = fuzz_config(FaultKind::kDropVictimWriteback);
  config.store.sparse = true;
  config.store.sparse_entries = 4;
  config.store.sparse_assoc = 2;
  FuzzTraceConfig tc = small_fuzz_trace();
  tc.rounds = 4;
  tc.units_per_round = 40;
  tc.pool_blocks = 192;
  tc.p_write = 0.6;
  const CheckedRun run =
      run_checked(config, EngineConfig{}, generate_fuzz_trace(tc));
  EXPECT_EQ(run.report.faults_injected, 1u);
  ASSERT_TRUE(run.report.failed()) << "oracle missed the seeded fault";
}

TEST(Checker, FaultInjectionFiresExactlyOnce) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  // halt_on_violation=false lets the run continue past the corruption, so
  // the fault machinery gets every later opportunity to (wrongly) fire
  // again.
  CheckConfig check;
  check.halt_on_violation = false;
  const CheckedRun run =
      run_checked(fuzz_config(FaultKind::kForgetSharer), EngineConfig{},
                  generate_fuzz_trace(small_fuzz_trace()), check);
  EXPECT_EQ(run.report.faults_injected, 1u);
  EXPECT_FALSE(run.report.halted);
}

TEST(Minimizer, ShrinksAFailingTraceBelowFiftyEvents) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  const ProgramTrace trace = generate_fuzz_trace(small_fuzz_trace());
  const SystemConfig config = fuzz_config(FaultKind::kForgetSharer);
  const auto min =
      minimize_failure(trace, config, EngineConfig{}, CheckConfig{});
  ASSERT_TRUE(min.has_value()) << "original trace did not fail";
  EXPECT_EQ(min->original_events, trace.total_events());
  EXPECT_LT(min->minimized_events, min->original_events);
  EXPECT_LE(min->minimized_events, 50u);
  ASSERT_TRUE(min->report.failed());
  // The minimized trace must reproduce the same first violation kind.
  const CheckedRun rerun = run_checked(config, EngineConfig{}, min->trace);
  ASSERT_TRUE(rerun.report.failed());
  EXPECT_EQ(rerun.report.violations.front().kind,
            min->report.violations.front().kind);
}

TEST(Minimizer, ReturnsNulloptWhenTheTraceIsClean) {
  if (!compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  const ProgramTrace trace = generate_fuzz_trace(small_fuzz_trace());
  const auto min = minimize_failure(trace, fuzz_config(FaultKind::kNone),
                                    EngineConfig{}, CheckConfig{});
  EXPECT_FALSE(min.has_value());
}

TEST(Fuzz, TraceGenerationIsDeterministic) {
  const FuzzTraceConfig tc = small_fuzz_trace();
  const ProgramTrace a = generate_fuzz_trace(tc);
  const ProgramTrace b = generate_fuzz_trace(tc);
  std::ostringstream sa;
  std::ostringstream sb;
  ASSERT_TRUE(write_trace(sa, a));
  ASSERT_TRUE(write_trace(sb, b));
  EXPECT_EQ(sa.str(), sb.str());

  FuzzTraceConfig other = tc;
  other.seed = tc.seed + 1;
  const ProgramTrace c = generate_fuzz_trace(other);
  std::ostringstream sc;
  ASSERT_TRUE(write_trace(sc, c));
  EXPECT_NE(sa.str(), sc.str());
}

TEST(Fuzz, TraceIsWellFormed) {
  const FuzzTraceConfig tc = small_fuzz_trace();
  const ProgramTrace trace = generate_fuzz_trace(tc);
  EXPECT_EQ(trace.num_procs(), tc.procs);
  EXPECT_GT(trace.total_events(), 0u);
  // Every processor hits the same barriers in the same order, and every
  // lock is released by its taker before the round barrier.
  for (int p = 0; p < tc.procs; ++p) {
    int barriers = 0;
    int held = 0;
    for (const TraceEvent& ev : trace.per_proc[static_cast<std::size_t>(p)]) {
      if (ev.kind == TraceEvent::Kind::kBarrier) {
        EXPECT_EQ(held, 0) << "lock held across a barrier";
        ++barriers;
      } else if (ev.kind == TraceEvent::Kind::kLock) {
        ++held;
      } else if (ev.kind == TraceEvent::Kind::kUnlock) {
        --held;
        EXPECT_GE(held, 0);
      }
    }
    EXPECT_EQ(held, 0);
    EXPECT_EQ(barriers, tc.rounds);
  }
}

TEST(Fuzz, KeyNamesEveryKnob) {
  FuzzTraceConfig tc;
  const std::string key = fuzz_trace_key(tc);
  EXPECT_NE(key.find("procs="), std::string::npos);
  EXPECT_NE(key.find("seed="), std::string::npos);
  FuzzTraceConfig other = tc;
  other.seed += 1;
  EXPECT_NE(key, fuzz_trace_key(other));
}

TEST(FaultSpec, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kForgetSharer), "forget-sharer");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSkipInvalidation), "skip-inval");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDropVictimWriteback),
               "drop-victim-writeback");
}

}  // namespace
}  // namespace dircc::check
