// Observability layer: metrics registry, trace recorder rings/exports, and
// end-to-end event emission from an instrumented engine run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/event.hpp"

namespace dircc::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndSet) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("hits");
  reg.add("hits", 4);
  EXPECT_EQ(reg.counter("hits"), 5u);
  reg.set("hits", 2);
  EXPECT_EQ(reg.counter("hits"), 2u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugesHoldDoubles) {
  MetricsRegistry reg;
  reg.set_gauge("mean_invals", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("mean_invals"), 2.5);
  reg.set_gauge("mean_invals", 0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("mean_invals"), 0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, HistogramsLiveInTheRegistry) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("invals");
  h.add(0, 3);
  h.add(2);
  EXPECT_EQ(&reg.histogram("invals"), &h);  // same object on re-lookup
  const Histogram* found = reg.find_histogram("invals");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->events(), 4u);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
}

TEST(MetricsRegistry, SnapshotAndDiff) {
  MetricsRegistry reg;
  reg.set("msgs", 10);
  reg.set_gauge("ratio", 0.5);
  const MetricsSnapshot before = reg.snapshot();
  reg.add("msgs", 7);
  reg.add("fresh", 3);
  reg.set_gauge("ratio", 0.75);
  const MetricsSnapshot after = reg.snapshot();
  const MetricsSnapshot delta = diff(before, after);
  EXPECT_EQ(delta.counters.at("msgs"), 7u);
  EXPECT_EQ(delta.counters.at("fresh"), 3u);  // absent before counts from 0
  EXPECT_DOUBLE_EQ(delta.gauges.at("ratio"), 0.75);  // gauges: after value
}

TEST(MetricsRegistry, JsonIsNameSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.set("zeta", 1);
  reg.set("alpha", 2);
  reg.set_gauge("mid", 1.5);
  std::ostringstream a;
  reg.write_json(a);
  std::ostringstream b;
  reg.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  // Name order, not insertion order.
  EXPECT_LT(a.str().find("\"alpha\""), a.str().find("\"mid\""));
  EXPECT_LT(a.str().find("\"mid\""), a.str().find("\"zeta\""));
  EXPECT_EQ(a.str().front(), '{');
  EXPECT_EQ(a.str().back(), '}');
}

TEST(MetricsRegistry, HistogramJsonCarriesBins) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("d");
  h.add(0, 2);
  h.add(3);
  std::ostringstream out;
  reg.write_json(out);
  EXPECT_NE(out.str().find("\"events\":3"), std::string::npos);
  EXPECT_NE(out.str().find("\"bins\":[2,0,0,1]"), std::string::npos);
}

TEST(MetricsRegistry, BucketedHistogramPinsConfiguredEdges) {
  MetricsRegistry reg;
  BucketedHistogram& h = reg.bucketed("lat", {8, 16, 32});
  h.add(4);   // first bucket (<= 8)
  h.add(9);   // second bucket (<= 16)
  h.add(40);  // overflow bucket (> 32)
  // Re-lookup returns the same object; matching or empty edges are both
  // accepted on re-lookup.
  EXPECT_EQ(&reg.bucketed("lat", {8, 16, 32}), &h);
  EXPECT_EQ(&reg.bucketed("lat", {}), &h);
  const BucketedHistogram* found = reg.find_bucketed("lat");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->events(), 3u);
  EXPECT_EQ(reg.find_bucketed("absent"), nullptr);
  // The JSON export carries the exact configured boundaries — the
  // regression pin for the bucket-edge configuration.
  std::ostringstream out;
  reg.write_json(out);
  EXPECT_NE(out.str().find("\"edges\":[8,16,32]"), std::string::npos);
  EXPECT_NE(out.str().find("\"counts\":[1,1,0,1]"), std::string::npos);
  EXPECT_NE(out.str().find("\"events\":3"), std::string::npos);
}

TEST(EvTypes, NamesAndClassesAreConsistent) {
  EXPECT_STREQ(ev_type_name(EvType::kBarrierEpisode), "barrier.episode");
  EXPECT_STREQ(ev_type_name(EvType::kInvalFanout), "inval.fanout");
  EXPECT_EQ(ev_class_of(EvType::kStallLock), EvClass::kStall);
  EXPECT_EQ(ev_class_of(EvType::kStallBarrier), EvClass::kStall);
  EXPECT_EQ(ev_class_of(EvType::kLockQueue), EvClass::kLock);
  EXPECT_EQ(ev_class_of(EvType::kLockGrant), EvClass::kLock);
  EXPECT_EQ(ev_class_of(EvType::kLockRetry), EvClass::kLock);
  EXPECT_EQ(ev_class_of(EvType::kBarrierEpisode), EvClass::kBarrier);
  EXPECT_EQ(ev_class_of(EvType::kInvalFanout), EvClass::kInval);
  EXPECT_EQ(ev_class_of(EvType::kSparseVictim), EvClass::kSparse);
  EXPECT_EQ(ev_class_of(EvType::kPtrOverflow), EvClass::kOverflow);
}

TEST(TraceRecorder, RecordsPerLane) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  TraceRecorder rec(2, 1);
  rec.record_proc(0, {10, 0, 1, 0, EvType::kLockGrant});
  rec.record_proc(1, {12, 5, 2, 0, EvType::kStallLock});
  rec.record_home(0, {11, 0, 7, 3, EvType::kInvalFanout});
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, RingDropsOldest) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  TraceRecorderConfig config;
  config.ring_capacity = 4;
  TraceRecorder rec(1, 0, config);
  for (Cycle t = 0; t < 10; ++t) {
    rec.record_proc(0, {t, 0, t, 0, EvType::kLockGrant});
  }
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::ostringstream out;
  rec.write_jsonl(out);
  // The oldest retained event is ts=6; ts=5 and earlier were overwritten.
  EXPECT_EQ(out.str().find("\"ts\":5"), std::string::npos);
  EXPECT_NE(out.str().find("\"ts\":6"), std::string::npos);
  EXPECT_NE(out.str().find("\"ts\":9"), std::string::npos);
}

TEST(TraceRecorder, PerLaneDropCountsAreExported) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  TraceRecorderConfig config;
  config.ring_capacity = 4;
  TraceRecorder rec(2, 0, config);
  for (Cycle t = 0; t < 10; ++t) {
    rec.record_proc(0, {t, 0, 0, 0, EvType::kLockGrant});
  }
  rec.record_proc(1, {1, 0, 0, 0, EvType::kLockGrant});
  EXPECT_EQ(rec.dropped_proc(0), 6u);
  EXPECT_EQ(rec.dropped_proc(1), 0u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::ostringstream out;
  rec.write_chrome_json(out);
  const std::string text = out.str();
  // Only the truncated lane appears in the per-lane map, and its thread
  // name carries the drop count into the trace viewer.
  EXPECT_NE(text.find("\"events_dropped_by_lane\":{\"proc0\":6}"),
            std::string::npos);
  EXPECT_EQ(text.find("\"proc1\":"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"proc 0 (dropped 6)\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"proc 1\""), std::string::npos);
}

TEST(TraceRecorder, ClassMaskFilters) {
  TraceRecorderConfig config;
  config.class_mask = bit(EvClass::kBarrier);
  TraceRecorder rec(1, 1, config);
  EXPECT_EQ(rec.wants(EvClass::kBarrier), compiled());
  EXPECT_FALSE(rec.wants(EvClass::kLock));
  EXPECT_FALSE(rec.wants(EvClass::kInval));
}

TEST(TraceRecorder, ExportIsTimestampOrdered) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  TraceRecorder rec(2, 1);
  // Recorded out of timestamp order across lanes.
  rec.record_proc(1, {30, 0, 0, 0, EvType::kLockGrant});
  rec.record_home(0, {10, 0, 0, 2, EvType::kInvalFanout});
  rec.record_proc(0, {20, 0, 0, 0, EvType::kLockQueue});
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_LT(text.find("\"ts\":10"), text.find("\"ts\":20"));
  EXPECT_LT(text.find("\"ts\":20"), text.find("\"ts\":30"));
}

TEST(TraceRecorder, ChromeJsonShape) {
  TraceRecorder rec(1, 1);
  if (compiled()) {
    rec.record_proc(0, {5, 10, 3, 0, EvType::kStallBarrier});
    rec.record_home(0, {7, 0, 99, 4, EvType::kInvalFanout});
  }
  std::ostringstream out;
  rec.write_chrome_json(out);
  const std::string text = out.str();
  // Always a well-formed document with lane metadata, even when empty.
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  if (compiled()) {
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // the span
    EXPECT_NE(text.find("\"dur\":10"), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // the instant
    EXPECT_NE(text.find("\"name\":\"inval.fanout\""), std::string::npos);
  }
}

// A two-processor program with a contended lock, a barrier, and a shared
// block both processors write — enough to exercise every engine-side event
// class plus invalidation fan-out at the home directory.
ProgramTrace contended_trace() {
  ProgramTrace trace;
  trace.app_name = "obs-smoke";
  trace.block_size = 16;
  trace.per_proc.resize(2);
  constexpr Addr kLock = 0x1000;
  constexpr Addr kBarrier = 0x2000;
  constexpr Addr kShared = 0x100;
  for (int p = 0; p < 2; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int i = 0; i < 4; ++i) {
      stream.push_back(TraceEvent::lock(kLock));
      stream.push_back(TraceEvent::read(kShared));
      stream.push_back(TraceEvent::write(kShared));
      stream.push_back(TraceEvent::unlock(kLock));
      stream.push_back(TraceEvent::barrier(kBarrier));
    }
  }
  return trace;
}

TEST(TraceRecorder, EngineRunEmitsSyncAndInvalEvents) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 2;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(2);
  CoherenceSystem system(config);
  const ProgramTrace trace = contended_trace();
  TraceRecorder rec(2, config.num_clusters());
  Engine engine(system, trace, {}, &rec);
  const RunResult result = engine.run();
  EXPECT_GT(result.sync.barrier_episodes, 0u);
  EXPECT_GT(rec.recorded(), 0u);
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"barrier.episode\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"lock.grant\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"inval.fanout\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"stall.barrier\""), std::string::npos);
}

TEST(TraceRecorder, EngineRespectsClassMask) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  SystemConfig config;
  config.num_procs = 2;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(2);
  CoherenceSystem system(config);
  const ProgramTrace trace = contended_trace();
  TraceRecorderConfig rc;
  rc.class_mask = bit(EvClass::kBarrier);
  TraceRecorder rec(2, config.num_clusters(), rc);
  Engine engine(system, trace, {}, &rec);
  engine.run();
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"barrier.episode\""), std::string::npos);
  EXPECT_EQ(text.find("\"type\":\"lock."), std::string::npos);
  EXPECT_EQ(text.find("\"type\":\"inval."), std::string::npos);
}

TEST(TraceRecorder, RecorderDoesNotChangeSimulation) {
  SystemConfig config;
  config.num_procs = 2;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::full(2);
  const ProgramTrace trace = contended_trace();

  CoherenceSystem bare_system(config);
  Engine bare(bare_system, trace);
  const RunResult without = bare.run();

  CoherenceSystem obs_system(config);
  TraceRecorder rec(2, config.num_clusters());
  Engine instrumented(obs_system, trace, {}, &rec);
  const RunResult with = instrumented.run();

  EXPECT_EQ(without.exec_cycles, with.exec_cycles);
  EXPECT_EQ(without.protocol.messages.total(), with.protocol.messages.total());
  EXPECT_EQ(without.sync.lock_contended, with.sync.lock_contended);
}

TEST(TraceRecorder, SparseVictimizationIsRecorded) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  // A sparse directory far smaller than the working set forces entry
  // victimization; each displacement must land on the home's lane.
  SystemConfig config;
  config.num_procs = 2;
  config.cache_lines_per_proc = 64;
  config.scheme = SchemeConfig::full(2);
  config.store.sparse = true;
  config.store.sparse_entries = 4;
  config.store.sparse_assoc = 1;
  CoherenceSystem system(config);

  ProgramTrace trace;
  trace.app_name = "sparse-churn";
  trace.block_size = 16;
  trace.per_proc.resize(2);
  for (int p = 0; p < 2; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int i = 0; i < 64; ++i) {
      stream.push_back(TraceEvent::read(static_cast<Addr>(i) * 16));
    }
  }

  TraceRecorder rec(2, config.num_clusters());
  Engine engine(system, trace, {}, &rec);
  const RunResult result = engine.run();
  ASSERT_GT(result.protocol.sparse_replacements, 0u);
  std::ostringstream out;
  rec.write_jsonl(out);
  EXPECT_NE(out.str().find("\"type\":\"sparse.victim\""), std::string::npos);
}

TEST(TraceRecorder, PointerOverflowIsRecorded) {
  if (!compiled()) {
    GTEST_SKIP() << "built with DIRCC_OBS=0";
  }
  // Four processors read one block under a 1-pointer broadcast scheme: the
  // second sharer pushes the entry out of precise mode.
  SystemConfig config;
  config.num_procs = 4;
  config.cache_lines_per_proc = 16;
  config.scheme = SchemeConfig::broadcast(4, 1);
  CoherenceSystem system(config);

  ProgramTrace trace;
  trace.app_name = "overflow";
  trace.block_size = 16;
  trace.per_proc.resize(4);
  for (int p = 0; p < 4; ++p) {
    trace.per_proc[static_cast<std::size_t>(p)].push_back(
        TraceEvent::read(0x40));
  }

  TraceRecorder rec(4, config.num_clusters());
  Engine engine(system, trace, {}, &rec);
  engine.run();
  std::ostringstream out;
  rec.write_jsonl(out);
  EXPECT_NE(out.str().find("\"type\":\"ptr.overflow\""), std::string::npos);
}

}  // namespace
}  // namespace dircc::obs
