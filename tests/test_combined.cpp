// Combined-feature stress tests: every optional mechanism enabled at once
// (two-level caches, grouped entries, sparse directories, replacement
// hints, contention model, release consistency, clustered processors),
// across schemes. Value-coherence validation is on throughout, so these
// runs are end-to-end correctness proofs of the feature interactions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

struct ComboCase {
  const char* label;
  SchemeConfig scheme;
  int procs_per_cluster;
  int blocks_per_group;
  bool sparse;
  bool hints;
  bool contention;
  bool two_level;
};

class CombinedFeatures : public ::testing::TestWithParam<ComboCase> {};

SystemConfig combo_config(const ComboCase& c, int procs) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = c.procs_per_cluster;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  if (c.two_level) {
    config.l1_lines_per_proc = 16;
    config.l1_assoc = 2;
  }
  config.scheme = c.scheme;
  config.blocks_per_group = c.blocks_per_group;
  config.replacement_hints = c.hints;
  config.model_contention = c.contention;
  if (c.sparse) {
    config.store.sparse = true;
    config.store.sparse_entries = 8;
    config.store.sparse_assoc = 4;
    config.store.policy = ReplPolicy::kRandom;
  }
  return config;
}

TEST_P(CombinedFeatures, RandomTrafficRunsCoherently) {
  const ComboCase& c = GetParam();
  const int procs = c.scheme.num_nodes * c.procs_per_cluster;
  SystemConfig config = combo_config(c, procs);
  CoherenceSystem sys(config);
  Rng rng(0xc0b0);
  Cycle now = 0;
  for (int i = 0; i < 15000; ++i) {
    const auto proc = static_cast<ProcId>(
        rng.below(static_cast<std::uint64_t>(procs)));
    const auto block = static_cast<BlockAddr>(rng.below(1024));
    now += sys.access(proc, block, rng.chance(0.3), now) / 8;
  }
  EXPECT_EQ(sys.stats().accesses, 15000u);
  if (c.sparse) {
    EXPECT_GT(sys.stats().sparse_replacements, 0u);
  }
  // A tight sparse directory caps the number of cached blocks below cache
  // capacity, so caches barely evict and hints may legitimately be rare —
  // only assert hint activity where evictions are plentiful (non-sparse).
  if (c.hints && !c.sparse) {
    EXPECT_GT(sys.stats().replacement_hints_sent, 0u);
  }
}

TEST_P(CombinedFeatures, ApplicationTraceRunsUnderTheEngine) {
  const ComboCase& c = GetParam();
  const int procs = c.scheme.num_nodes * c.procs_per_cluster;
  SystemConfig config = combo_config(c, procs);
  CoherenceSystem sys(config);
  const ProgramTrace trace =
      generate_app(AppKind::kMp3d, procs, 16, 21, 0.05);
  EngineConfig engine_config;
  engine_config.release_consistency = true;
  Engine engine(sys, trace, engine_config);
  const RunResult result = engine.run();
  EXPECT_GT(result.exec_cycles, 0u);
  EXPECT_GT(result.sync.buffered_writes, 0u);
  // Acks never undershoot network invalidations (message conservation).
  EXPECT_LE(result.protocol.messages.get(MsgClass::kInvalidation),
            result.protocol.messages.get(MsgClass::kAck));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CombinedFeatures,
    ::testing::Values(
        ComboCase{"EverythingFullVector", SchemeConfig::full(8), 1, 2, true,
                  true, true, true},
        ComboCase{"EverythingCoarseVector", SchemeConfig::coarse(8, 2, 2), 1,
                  2, true, true, true, true},
        ComboCase{"EverythingClustered", SchemeConfig::full(4), 4, 2, true,
                  true, true, true},
        ComboCase{"EverythingNoBroadcast", SchemeConfig::no_broadcast(8, 2),
                  1, 2, true, true, true, true},
        ComboCase{"EverythingOverflow", SchemeConfig::overflow(8, 2, 4), 1,
                  2, true, true, true, true},
        ComboCase{"GroupedEightDeep", SchemeConfig::coarse(8, 2, 2), 1, 8,
                  true, false, true, true},
        ComboCase{"HintsAndGroupsNoSparse", SchemeConfig::full(8), 1, 4,
                  false, true, false, true},
        ComboCase{"ContentionClusteredSuperset", SchemeConfig::superset(4, 2),
                  2, 2, true, false, true, false}),
    [](const ::testing::TestParamInfo<ComboCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace dircc
