// Grouped directory entries (Section 7: "make multiple memory blocks share
// one wide entry"): per-block state, shared sharer union, and the
// extraneous-invalidation cost of the sharing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig grouped_config(int group, int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(procs);
  config.blocks_per_group = group;
  return config;
}

TEST(Grouped, KeyAndSubArithmetic) {
  CoherenceSystem sys(grouped_config(2));
  // 4 clusters: home-0 blocks are 0, 4, 8, 12, ... Grouping pairs
  // consecutive home-local blocks: {0,4}, {8,12}.
  EXPECT_EQ(sys.group_key(0), 0u);
  EXPECT_EQ(sys.group_key(4), 0u);
  EXPECT_EQ(sys.group_key(8), 8u);
  EXPECT_EQ(sys.group_key(12), 8u);
  EXPECT_EQ(sys.sub_of(0), 0);
  EXPECT_EQ(sys.sub_of(4), 1);
  EXPECT_EQ(sys.block_at(8, 1), 12u);
  // Different homes never share a group.
  EXPECT_EQ(sys.group_key(1), 1u);
  EXPECT_EQ(sys.group_key(5), 1u);
  EXPECT_EQ(sys.sub_of(5), 1);
}

TEST(Grouped, TwoBlocksShareOneEntry) {
  CoherenceSystem sys(grouped_config(2));
  sys.access(1, 0, false);
  sys.access(2, 4, false);  // same group, other sub-block
  const DirEntry* e0 = sys.peek_entry(0);
  const DirEntry* e4 = sys.peek_entry(4);
  ASSERT_NE(e0, nullptr);
  EXPECT_EQ(e0, e4);  // one physical entry
  EXPECT_EQ(e0->state_of(0), DirState::kShared);
  EXPECT_EQ(e0->state_of(1), DirState::kShared);
  // The union covers both blocks' sharers.
  EXPECT_TRUE(sys.format().maybe_sharer(e0->sharers, 1));
  EXPECT_TRUE(sys.format().maybe_sharer(e0->sharers, 2));
}

TEST(Grouped, WriteToOneBlockPaysExtraneousInvalsForSibling) {
  CoherenceSystem sys(grouped_config(2));
  sys.access(1, 0, false);  // cluster 1 shares block 0
  sys.access(2, 4, false);  // cluster 2 shares sibling block 4
  const auto base = sys.stats().messages;
  sys.access(3, 0, true);   // write block 0
  // The union {1,2} is invalidated for block 0; cluster 2 held only the
  // sibling, so its invalidation is extraneous.
  EXPECT_EQ(sys.stats().messages.get(MsgClass::kInvalidation) -
                base.get(MsgClass::kInvalidation),
            2u);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 1u);
  // Block 0's copy died; block 4's copy survived (we invalidated block 0
  // addresses only).
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(2).probe(4), LineState::kShared);
  // The sibling's sharer must still be covered by the union.
  const DirEntry* entry = sys.peek_entry(4);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state_of(1), DirState::kShared);
  EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, 2));
}

TEST(Grouped, PerBlockDirtyOwnersAreIndependent) {
  CoherenceSystem sys(grouped_config(2));
  sys.access(1, 0, true);
  sys.access(2, 4, true);
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state_of(0), DirState::kDirty);
  EXPECT_EQ(entry->owner_of(0), 1);
  EXPECT_EQ(entry->state_of(1), DirState::kDirty);
  EXPECT_EQ(entry->owner_of(1), 2);
  // Reads forward to the right owner per block.
  sys.access(3, 0, false);
  EXPECT_EQ(sys.cache(3).version_of(0), 1u);
  sys.access(3, 4, false);
  EXPECT_EQ(sys.cache(3).version_of(4), 1u);
}

TEST(Grouped, EntryReleasedOnlyWhenWholeGroupUncached) {
  SystemConfig config = grouped_config(2);
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;
  CoherenceSystem sys(config);
  sys.access(1, 0, true);   // dirty block 0 (set 0)
  sys.access(1, 4, true);   // dirty sibling 4 (set 0 conflict!) -> actually
  // block 4 maps to cache set 0 as well and evicts block 0, writing back.
  // After the writeback sub 0 is Uncached but sub 1 is Dirty: entry lives.
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state_of(0), DirState::kUncached);
  EXPECT_EQ(entry->state_of(1), DirState::kDirty);
  // Evict the sibling too (block 8 is home 0, group {8,12}, cache set 0).
  sys.access(1, 8, false);
  EXPECT_EQ(sys.peek_entry(0), nullptr);  // whole group uncached: released
}

TEST(Grouped, UnionPersistsWhileSiblingShared) {
  CoherenceSystem sys(grouped_config(2));
  sys.access(1, 0, false);
  sys.access(2, 4, false);
  sys.access(3, 0, true);   // block 0 -> Dirty(3); union must keep {2}
  sys.access(1, 4, true);   // write sibling: invalidate union for block 4
  EXPECT_EQ(sys.cache(2).probe(4), LineState::kInvalid);
}

TEST(Grouped, RandomTrafficStaysCoherent) {
  for (int group : {2, 4, 8}) {
    SystemConfig config = grouped_config(group, 8);
    config.scheme = SchemeConfig::full(8);
    CoherenceSystem sys(config);
    Rng rng(0x600d + static_cast<std::uint64_t>(group));
    for (int i = 0; i < 8000; ++i) {
      const auto proc = static_cast<ProcId>(rng.below(8));
      const auto block = static_cast<BlockAddr>(rng.below(64));
      sys.access(proc, block, rng.chance(0.3));
      // Sub-aware superset check on a sample of blocks.
      if (i % 200 == 199) {
        for (BlockAddr b = 0; b < 64; ++b) {
          bool any_copy = false;
          for (int p = 0; p < 8; ++p) {
            if (sys.cache(static_cast<ProcId>(p)).probe(b) !=
                LineState::kInvalid) {
              any_copy = true;
              const DirEntry* entry = sys.peek_entry(b);
              ASSERT_NE(entry, nullptr) << "group " << group;
              const DirState st = entry->state_of(sys.sub_of(b));
              if (st == DirState::kShared) {
                ASSERT_TRUE(sys.format().maybe_sharer(
                    entry->sharers, sys.cluster_of(static_cast<ProcId>(p))))
                    << "group " << group << " block " << b;
              } else {
                ASSERT_EQ(st, DirState::kDirty);
              }
            }
          }
          (void)any_copy;
        }
      }
    }
  }
}

TEST(Grouped, WorksWithCoarseVectorAndSparse) {
  SystemConfig config = grouped_config(4, 16);
  config.scheme = SchemeConfig::coarse(16, 2, 2);
  config.store.sparse = true;
  config.store.sparse_entries = 8;
  config.store.sparse_assoc = 4;
  CoherenceSystem sys(config);
  Rng rng(0xbeef);
  // 2048 blocks over 16 homes and group 4 -> 32 group keys per home,
  // against 8 sparse entries: constant replacement pressure.
  for (int i = 0; i < 10000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(16)),
               static_cast<BlockAddr>(rng.below(2048)), rng.chance(0.3));
  }
  EXPECT_GT(sys.stats().sparse_replacements, 0u);
  // validate=true proved coherence throughout.
}

TEST(Grouped, NbDisplacementClearsAllGroupBlocks) {
  SystemConfig config = grouped_config(2, 8);
  config.scheme = SchemeConfig::no_broadcast(8, 2);
  CoherenceSystem sys(config);
  // With 8 clusters, block 0's group sibling (same home, next home-local
  // index) is block 8. Cluster 1 caches both; then two more clusters read
  // block 0, displacing cluster 1 from the two-pointer union.
  sys.access(1, 0, false);
  sys.access(1, 8, false);
  sys.access(2, 0, false);
  sys.access(3, 0, false);  // displacement of cluster 1
  ASSERT_GT(sys.stats().nb_read_displacements, 0u);
  // The displaced cluster lost *both* blocks the union covered.
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(1).probe(8), LineState::kInvalid);
  // Survivors are still covered by the union.
  const DirEntry* entry = sys.peek_entry(0);
  ASSERT_NE(entry, nullptr);
  for (ProcId p : {ProcId{2}, ProcId{3}}) {
    if (sys.cache(p).probe(0) != LineState::kInvalid) {
      EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, p));
    }
  }
}

TEST(Grouped, DirtyReadDisplacementInvalidatesTheLoser) {
  // Regression: with grouped entries the shared Dir_iNB pointer field can
  // already be full of *sibling-block* sharers when a dirty read re-adds
  // the owner and requester — the displaced cluster must be invalidated,
  // not silently dropped from the field.
  SystemConfig config = grouped_config(2, 8);
  config.scheme = SchemeConfig::no_broadcast(8, 2);
  CoherenceSystem sys(config);
  sys.access(1, 8, false);  // sibling block: union {1}
  sys.access(2, 8, false);  // union {1,2} -> pointer field full
  sys.access(3, 0, true);   // group mate dirty at 3
  sys.access(4, 0, false);  // dirty read: adds 3 and 4, displacing two
  EXPECT_GE(sys.stats().nb_read_displacements, 2u);
  // Every cluster still holding a copy of block 8 must be covered.
  const DirEntry* entry = sys.peek_entry(8);
  ASSERT_NE(entry, nullptr);
  for (ProcId p : {ProcId{1}, ProcId{2}}) {
    if (sys.cache(p).probe(8) != LineState::kInvalid) {
      EXPECT_TRUE(sys.format().maybe_sharer(entry->sharers, p));
    }
  }
  // And a later write to block 8 must reach any survivor (validated).
  sys.access(5, 8, true);
  for (ProcId p : {ProcId{1}, ProcId{2}}) {
    EXPECT_EQ(sys.cache(p).probe(8), LineState::kInvalid);
  }
}

TEST(Grouped, EndToEndTradesTrafficForEntries) {
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, 16, 16, 7, 0.15);
  auto run = [&](int group) {
    SystemConfig config = grouped_config(group, 16);
    config.cache_lines_per_proc = 256;
    config.scheme = SchemeConfig::full(16);
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    const RunResult result = engine.run();
    std::uint64_t live = 0;
    for (NodeId home = 0; home < 16; ++home) {
      live += sys.directory(home).live_entries();
    }
    return std::pair{result, live};
  };
  const auto [g1, live1] = run(1);
  const auto [g4, live4] = run(4);
  // Grouping shrinks the live entry count...
  EXPECT_LT(live4, live1 / 2);
  // ...and pays in extraneous invalidations / messages.
  EXPECT_GT(g4.protocol.extraneous_invalidations,
            g1.protocol.extraneous_invalidations);
  EXPECT_GE(g4.protocol.messages.total(), g1.protocol.messages.total());
}

}  // namespace
}  // namespace dircc
