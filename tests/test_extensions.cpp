// Section 7 extensions: the overflow-cache directory format (Dir_iOV) and
// replacement hints.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "directory/overflow_format.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

std::vector<NodeId> targets_of(const SharerFormat& format,
                               const SharerRepr& repr,
                               NodeId exclude = kNoNode) {
  std::vector<NodeId> out;
  format.collect_targets(repr, exclude, out);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// OverflowCacheFormat
// ---------------------------------------------------------------------------

TEST(OverflowCache, InlinePointersStayExact) {
  OverflowCacheFormat format(32, 2, 8);
  SharerRepr repr;
  format.add_sharer(repr, 3);
  format.add_sharer(repr, 9);
  EXPECT_TRUE(format.precise(repr));
  EXPECT_EQ(targets_of(format, repr), (std::vector<NodeId>{3, 9}));
  format.remove_sharer(repr, 3);
  EXPECT_EQ(targets_of(format, repr), (std::vector<NodeId>{9}));
  EXPECT_EQ(format.pool_allocations(), 0u);
}

TEST(OverflowCache, OverflowMovesIntoWideEntryExactly) {
  OverflowCacheFormat format(32, 2, 8);
  SharerRepr repr;
  format.add_sharer(repr, 3);
  format.add_sharer(repr, 9);
  format.add_sharer(repr, 20);  // overflow -> wide entry
  EXPECT_EQ(format.pool_allocations(), 1u);
  EXPECT_TRUE(format.precise(repr));  // wide entries are full vectors
  EXPECT_EQ(targets_of(format, repr), (std::vector<NodeId>{3, 9, 20}));
  format.add_sharer(repr, 31);
  EXPECT_EQ(targets_of(format, repr), (std::vector<NodeId>{3, 9, 20, 31}));
  // Wide entries even support exact removal.
  format.remove_sharer(repr, 9);
  EXPECT_EQ(targets_of(format, repr), (std::vector<NodeId>{3, 20, 31}));
  EXPECT_TRUE(format.maybe_sharer(repr, 20));
  EXPECT_FALSE(format.maybe_sharer(repr, 9));
}

TEST(OverflowCache, PoolEvictionDegradesVictimToBroadcast) {
  OverflowCacheFormat format(16, 1, 2);  // pool of just two wide entries
  SharerRepr a;
  SharerRepr b;
  SharerRepr c;
  // Overflow three blocks: the third allocation must evict the LRU (a).
  format.add_sharer(a, 0);
  format.add_sharer(a, 1);  // a -> wide
  format.add_sharer(b, 2);
  format.add_sharer(b, 3);  // b -> wide
  format.add_sharer(c, 4);
  format.add_sharer(c, 5);  // c -> wide, evicting a's slot
  EXPECT_EQ(format.pool_evictions(), 1u);
  // a's handle is stale: conservative broadcast, never losing sharers.
  EXPECT_FALSE(format.precise(a));
  EXPECT_EQ(targets_of(format, a).size(), 16u);
  EXPECT_TRUE(format.maybe_sharer(a, 0));
  // b and c still resolve exactly.
  EXPECT_EQ(targets_of(format, b), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(targets_of(format, c), (std::vector<NodeId>{4, 5}));
}

TEST(OverflowCache, StaleHandleDegradesOnNextOperation) {
  OverflowCacheFormat format(16, 1, 1);  // single-slot pool
  SharerRepr a;
  SharerRepr b;
  format.add_sharer(a, 0);
  format.add_sharer(a, 1);  // a -> wide slot 0
  format.add_sharer(b, 2);
  format.add_sharer(b, 3);  // b evicts a from slot 0
  format.add_sharer(a, 4);  // a detects the stale handle
  EXPECT_GE(format.broadcast_degradations(), 1u);
  EXPECT_EQ(targets_of(format, a).size(), 16u);
}

TEST(OverflowCache, SupersetSafetyUnderRandomChurn) {
  OverflowCacheFormat format(32, 2, 4);  // deliberately small pool
  Rng rng(0xabcdULL);
  std::vector<SharerRepr> reprs(12);
  std::vector<std::set<NodeId>> live(12);
  for (int step = 0; step < 4000; ++step) {
    const auto e = static_cast<std::size_t>(rng.below(12));
    const auto node = static_cast<NodeId>(rng.below(32));
    if (rng.chance(0.8)) {
      format.add_sharer(reprs[e], node);
      live[e].insert(node);
    } else if (!live[e].empty()) {
      format.remove_sharer(reprs[e], *live[e].begin());
      live[e].erase(live[e].begin());
    }
    if (step % 50 == 0) {
      for (std::size_t i = 0; i < reprs.size(); ++i) {
        const auto targets = targets_of(format, reprs[i]);
        for (NodeId n : live[i]) {
          ASSERT_TRUE(std::binary_search(targets.begin(), targets.end(), n))
              << "entry " << i << " lost sharer " << n;
        }
      }
    }
  }
}

TEST(OverflowCache, MakeFormatBuildsIt) {
  auto format = make_format(SchemeConfig::overflow(32, 2, 64));
  EXPECT_EQ(format->kind(), SchemeKind::kOverflowCache);
  EXPECT_EQ(format->name(), "Dir2OV");
}

TEST(OverflowCache, WorksAsSystemScheme) {
  SystemConfig config;
  config.num_procs = 16;
  config.cache_lines_per_proc = 128;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::overflow(16, 2, 32);
  CoherenceSystem sys(config);
  // Wide sharing then a write: OV should behave like the full vector.
  for (int p = 0; p < 16; ++p) {
    sys.access(static_cast<ProcId>(p), 0, false);
  }
  sys.access(0, 0, true);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 0u);
  for (int p = 1; p < 16; ++p) {
    EXPECT_EQ(sys.cache(static_cast<ProcId>(p)).probe(0),
              LineState::kInvalid);
  }
}

TEST(OverflowCache, EndToEndMatchesFullVectorWhenPoolIsLarge) {
  const ProgramTrace trace = generate_app(AppKind::kLocusRoute, 16, 16, 7,
                                          0.1);
  auto run = [&](SchemeConfig scheme) {
    SystemConfig config;
    config.num_procs = 16;
    config.cache_lines_per_proc = 256;
    config.cache_assoc = 4;
    config.scheme = scheme;
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult full = run(SchemeConfig::full(16));
  const RunResult ov = run(SchemeConfig::overflow(16, 2, 4096));
  // With an ample pool, Dir2OV tracks sharers exactly: identical traffic.
  EXPECT_EQ(ov.protocol.messages.total(), full.protocol.messages.total());
  EXPECT_EQ(ov.protocol.inval_distribution.total(),
            full.protocol.inval_distribution.total());
}

TEST(OverflowCache, TinyPoolCostsMoreThanLargePool) {
  const ProgramTrace trace = generate_app(AppKind::kLocusRoute, 16, 16, 7,
                                          0.1);
  auto run = [&](int pool) {
    SystemConfig config;
    config.num_procs = 16;
    config.cache_lines_per_proc = 256;
    config.cache_assoc = 4;
    config.scheme = SchemeConfig::overflow(16, 2, pool);
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult large = run(4096);
  const RunResult tiny = run(4);
  EXPECT_GT(tiny.protocol.messages.inv_plus_ack(),
            large.protocol.messages.inv_plus_ack());
}

// ---------------------------------------------------------------------------
// Replacement hints
// ---------------------------------------------------------------------------

SystemConfig hint_config(bool hints) {
  SystemConfig config;
  config.num_procs = 4;
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;  // force conflict evictions
  config.scheme = SchemeConfig::full(4);
  config.replacement_hints = hints;
  return config;
}

TEST(ReplacementHints, PruneStaleSharers) {
  CoherenceSystem sys(hint_config(true));
  sys.access(1, 0, false);   // cluster 1 shares block 0
  sys.access(1, 4, false);   // conflicting fill evicts block 0 -> hint
  EXPECT_EQ(sys.stats().replacement_hints_sent, 1u);
  // The entry lost its only sharer and was released.
  EXPECT_EQ(sys.peek_entry(0), nullptr);
  // A later write finds no one to invalidate.
  sys.access(2, 0, true);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 0u);
}

TEST(ReplacementHints, OffByDefaultLeavesStaleSharers) {
  CoherenceSystem sys(hint_config(false));
  sys.access(1, 0, false);
  sys.access(1, 4, false);
  EXPECT_EQ(sys.stats().replacement_hints_sent, 0u);
  ASSERT_NE(sys.peek_entry(0), nullptr);
  sys.access(2, 0, true);
  EXPECT_EQ(sys.stats().extraneous_invalidations, 1u);
}

TEST(ReplacementHints, HintCostsOneMessage) {
  CoherenceSystem sys(hint_config(true));
  sys.access(1, 0, false);
  const auto before = sys.stats().messages.get(MsgClass::kRequest);
  sys.access(1, 4, false);
  // One request for the miss plus one hint.
  EXPECT_EQ(sys.stats().messages.get(MsgClass::kRequest), before + 2);
}

TEST(ReplacementHints, EndToEndReducesExtraneousInvalidations) {
  const ProgramTrace trace = generate_app(AppKind::kLocusRoute, 16, 16, 7,
                                          0.2);
  auto run = [&](bool hints) {
    SystemConfig config;
    config.num_procs = 16;
    config.cache_lines_per_proc = 64;  // small: plenty of shared evictions
    config.cache_assoc = 4;
    config.scheme = SchemeConfig::full(16);
    config.replacement_hints = hints;
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult off = run(false);
  const RunResult on = run(true);
  EXPECT_LT(on.protocol.extraneous_invalidations,
            off.protocol.extraneous_invalidations / 2);
  EXPECT_GT(on.protocol.replacement_hints_sent, 0u);
}

TEST(ReplacementHints, CoherentUnderRandomTraffic) {
  SystemConfig config = hint_config(true);
  config.num_procs = 8;
  config.scheme = SchemeConfig::full(8);
  CoherenceSystem sys(config);
  Rng rng(0x17ULL);
  for (int i = 0; i < 5000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(8)),
               static_cast<BlockAddr>(rng.below(32)), rng.chance(0.3));
  }
  // validate=true would have aborted on any stale read.
  EXPECT_GT(sys.stats().replacement_hints_sent, 0u);
}

TEST(ReplacementHints, WorkWithSparseDirectories) {
  SystemConfig config = hint_config(true);
  config.store.sparse = true;
  config.store.sparse_entries = 4;
  config.store.sparse_assoc = 4;
  CoherenceSystem sys(config);
  Rng rng(0x23ULL);
  for (int i = 0; i < 5000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(4)),
               static_cast<BlockAddr>(rng.below(24)), rng.chance(0.3));
  }
  EXPECT_GT(sys.stats().replacement_hints_sent, 0u);
}

}  // namespace
}  // namespace dircc
